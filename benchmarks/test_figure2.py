"""Benchmark regenerating Figure 2 (CDF perturbation of a sizing move).

Times the perturbed-CDF computation for the most sensitive gate and
records the objective shift at the 99% point together with the maximum
horizontal gap (the paper's perturbation bound delta).  Asserts the
bound inequality ``delta >= delta(p*)`` that pruning relies on.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure2 import run_figure2

from .conftest import BENCH_SUITE, bench_config


@pytest.mark.parametrize("circuit", BENCH_SUITE[:2])
def test_figure2_perturbation(benchmark, circuit, capsys):
    cfg = bench_config()

    def regenerate():
        return run_figure2(circuit, cfg)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.render())
    benchmark.extra_info.update(
        {
            "gate": result.gate,
            "objective_shift_ps": round(result.objective_shift, 3),
            "max_gap_ps": round(result.max_gap, 3),
        }
    )
    assert result.objective_shift > 0.0
    assert result.max_gap >= result.objective_shift - 1e-9
