"""Ablation: the extension features' cost/benefit (DESIGN.md A1/A2 +).

* incremental SSTA vs full rerun after one sizing commit (exactness is
  asserted; the work ratio is the payoff);
* heuristic beam search vs exact pruned selection (speed vs quality);
* multi-gate iterations vs single-gate (SSTA refreshes saved to reach
  the same added area).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.heuristic_sizer import HeuristicStatisticalSizer
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.experiments.common import load_scaled
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.incremental import update_ssta_after_resize
from repro.timing.ssta import run_ssta

from .conftest import BENCH_SUITE, bench_config

CIRCUIT = BENCH_SUITE[1] if len(BENCH_SUITE) > 1 else BENCH_SUITE[0]


def test_ablation_incremental_ssta(benchmark):
    cfg = bench_config()
    circuit = load_scaled(CIRCUIT, cfg)
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=cfg.analysis)
    result = run_ssta(graph, model)
    gate = circuit.topo_gates()[circuit.n_gates // 2]

    state = {"w": gate.width}

    def one_commit():
        state["w"] += cfg.analysis.delta_w
        gate.width = state["w"]
        return update_ssta_after_resize(result, model, [gate])

    recomputed = benchmark(one_commit)
    full = run_ssta(graph, model)
    assert all(
        a.offset == b.offset and np.array_equal(a.masses, b.masses)
        for a, b in zip(result.arrivals, full.arrivals)
    )
    benchmark.extra_info.update(
        {
            "nodes_recomputed": recomputed,
            "nodes_total": graph.n_nodes,
            "cone_fraction": round(recomputed / graph.n_nodes, 3),
        }
    )


def test_ablation_full_ssta_baseline(benchmark):
    cfg = bench_config()
    circuit = load_scaled(CIRCUIT, cfg)
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=cfg.analysis)
    result = benchmark(run_ssta, graph, model)
    benchmark.extra_info["nodes_total"] = graph.n_nodes
    assert result.percentile(0.99) > 0


@pytest.mark.parametrize("beam", [1, 4, 16])
def test_ablation_heuristic_beam(benchmark, beam):
    cfg = bench_config()

    def run_heuristic():
        circuit = load_scaled(CIRCUIT, cfg)
        sizer = HeuristicStatisticalSizer(
            circuit, config=cfg.analysis, objective=cfg.objective(),
            beam_width=beam, max_iterations=3,
        )
        return sizer.run()

    result = benchmark.pedantic(run_heuristic, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "final_99_ps": round(result.final_objective, 1),
            "improvement_pct": round(result.improvement_percent, 3),
        }
    )
    assert result.final_objective <= result.initial_objective


def test_ablation_exact_reference(benchmark):
    cfg = bench_config()

    def run_exact():
        circuit = load_scaled(CIRCUIT, cfg)
        sizer = PrunedStatisticalSizer(
            circuit, config=cfg.analysis, objective=cfg.objective(),
            max_iterations=3,
        )
        return sizer.run()

    result = benchmark.pedantic(run_exact, rounds=1, iterations=1)
    benchmark.extra_info["final_99_ps"] = round(result.final_objective, 1)


@pytest.mark.parametrize("gates_per_iter", [1, 3])
def test_ablation_multi_gate_moves(benchmark, gates_per_iter):
    """Reach ~6 gate moves with 6 or 2 SSTA refreshes."""
    cfg = bench_config()
    iterations = 6 // gates_per_iter

    def run_sizer():
        circuit = load_scaled(CIRCUIT, cfg)
        sizer = PrunedStatisticalSizer(
            circuit, config=cfg.analysis, objective=cfg.objective(),
            gates_per_iteration=gates_per_iter, max_iterations=iterations,
        )
        return sizer.run()

    result = benchmark.pedantic(run_sizer, rounds=1, iterations=1)
    moves = sum(len(s.all_gates) for s in result.steps)
    benchmark.extra_info.update(
        {
            "gate_moves": moves,
            "ssta_refreshes": result.n_iterations,
            "final_99_ps": round(result.final_objective, 1),
        }
    )
    assert result.final_objective <= result.initial_objective
