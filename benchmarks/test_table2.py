"""Benchmark regenerating Table 2 (brute force vs pruned runtimes).

pytest-benchmark times one *inner-loop selection* (the paper's
runtime-per-iteration unit) for the brute-force and for the pruned
optimizer on each circuit — the ratio of the two benchmark means is the
paper's "improvement factor" column (up to 56x at full scale; smaller
at the reduced default scale since pruned-search overheads amortize
with circuit size, exactly as the paper observes).

Selection agreement (the "results identical" claim) is asserted inside
the pruned benchmark.
"""

from __future__ import annotations

import pytest

from repro.core.brute_force_sizer import BruteForceStatisticalSizer
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.experiments.common import load_scaled
from repro.experiments.table2 import Table2Result, run_table2_circuit

from .conftest import BENCH_SUITE, FULL, bench_config

#: Brute force at paper scale is hours/iteration on the big circuits;
#: cap the suite it runs on unless explicitly unlocked.
BRUTE_SUITE = BENCH_SUITE if not FULL else BENCH_SUITE[:6]

_SELECTED = {}


def _sizer(kind, circuit_name, cfg):
    circuit = load_scaled(circuit_name, cfg)
    cls = BruteForceStatisticalSizer if kind == "brute" else PrunedStatisticalSizer
    return cls(
        circuit,
        config=cfg.analysis,
        objective=cfg.objective(),
        max_iterations=1,
    )


@pytest.mark.parametrize("circuit", BRUTE_SUITE)
def test_table2_brute_force_iteration(benchmark, circuit):
    cfg = bench_config()
    sizer = _sizer("brute", circuit, cfg)

    def one_selection():
        selection = sizer._select_gate()  # noqa: SLF001
        return selection.best_gate, selection.best_sensitivity, selection.stats

    gate, s, stats = benchmark.pedantic(one_selection, rounds=2, iterations=1)
    _SELECTED[("brute", circuit)] = (gate.name if gate else None, s)
    benchmark.extra_info.update(
        {
            "candidates": stats.candidates,
            "stat_ops": stats.convolutions + stats.max_ops,
            "selected_gate": gate.name if gate else None,
        }
    )
    assert gate is not None


@pytest.mark.parametrize("circuit", BRUTE_SUITE)
def test_table2_pruned_iteration(benchmark, circuit):
    cfg = bench_config()
    sizer = _sizer("pruned", circuit, cfg)

    def one_selection():
        selection = sizer._select_gate()  # noqa: SLF001
        return selection.best_gate, selection.best_sensitivity, selection.stats

    gate, s, stats = benchmark.pedantic(one_selection, rounds=2, iterations=1)
    benchmark.extra_info.update(
        {
            "candidates": stats.candidates,
            "pruned": stats.pruned,
            "pruned_fraction": round(stats.pruned_fraction, 3),
            "stat_ops": stats.convolutions + stats.max_ops,
            "selected_gate": gate.name if gate else None,
        }
    )
    assert gate is not None
    brute = _SELECTED.get(("brute", circuit))
    if brute is not None:
        # The paper's exactness claim: identical selection and value.
        assert brute[0] == gate.name
        assert brute[1] == s


def test_table2_report(benchmark, capsys):
    """Full multi-iteration Table 2 rows (runtime averages, ranges,
    improvement factors, pruning fractions) on the smallest circuit."""
    cfg = bench_config(iterations=4 if not FULL else 1000)

    def regenerate():
        return run_table2_circuit(BENCH_SUITE[0], cfg)

    row = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    result = Table2Result(rows=[row], iterations=cfg.iterations)
    with capsys.disabled():
        print()
        print(result.render())
    benchmark.extra_info.update(
        {
            "improvement_factor": round(row.improvement_factor, 2),
            "work_ratio": round(row.work_ratio, 2),
            "pruned_fraction": round(row.pruned_fraction, 3),
            "selections_match": row.selections_match,
        }
    )
    assert row.selections_match
    assert row.work_ratio > 1.0
