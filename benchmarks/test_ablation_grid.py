"""Ablation: numeric knobs of the SSTA engine (DESIGN.md A2).

Two sweeps on one benchmark circuit:

* **grid resolution** — SSTA runtime vs accuracy as ``dt`` coarsens
  (the 99-percentile bound must converge as ``dt -> 0``; the runtime
  story explains the dt used by the fast experiment configs);
* **sigma fraction** — how the gap between the deterministic delay and
  the statistical 99% point grows with process variability (at
  ``sigma = 0`` SSTA degenerates to STA; at the paper's 10% the gap is
  what makes statistical optimization worthwhile).
"""

from __future__ import annotations

import pytest

from repro.config import AnalysisConfig
from repro.experiments.common import load_scaled
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta
from repro.timing.sta import run_sta

from .conftest import bench_config

CIRCUIT = "c880"

_REFERENCE = {}


@pytest.mark.parametrize("dt", [1.0, 2.0, 4.0, 8.0, 16.0])
def test_ablation_grid_resolution(benchmark, dt):
    cfg = bench_config()
    circuit = load_scaled(CIRCUIT, cfg)
    analysis = AnalysisConfig(dt=dt)
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=analysis)

    result = benchmark(run_ssta, graph, model)
    p99 = result.percentile(0.99)
    _REFERENCE.setdefault("p99", {})[dt] = p99
    benchmark.extra_info.update(
        {"p99_ps": round(p99, 2), "sink_bins": result.sink_pdf.n_bins}
    )
    finest = min(_REFERENCE["p99"])
    # Discretization error stays within ~1.5% of the finest grid run.
    assert p99 == pytest.approx(_REFERENCE["p99"][finest], rel=0.015)


@pytest.mark.parametrize("sigma", [0.0, 0.05, 0.10, 0.20])
def test_ablation_sigma_fraction(benchmark, sigma):
    cfg = bench_config()
    circuit = load_scaled(CIRCUIT, cfg)
    analysis = AnalysisConfig(dt=2.0, sigma_fraction=sigma)
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=analysis)

    result = benchmark(run_ssta, graph, model)
    p99 = result.percentile(0.99)
    nominal = run_sta(graph, model).circuit_delay
    margin_pct = 100.0 * (p99 - nominal) / nominal
    _REFERENCE.setdefault("margin", {})[sigma] = margin_pct
    benchmark.extra_info.update(
        {"p99_ps": round(p99, 2), "margin_over_nominal_pct": round(margin_pct, 2)}
    )
    # The statistical margin grows monotonically with variability.
    margins = _REFERENCE["margin"]
    ordered = [margins[s] for s in sorted(margins)]
    assert all(b >= a - 0.25 for a, b in zip(ordered, ordered[1:]))
    if sigma == 0.0:
        assert p99 == pytest.approx(nominal, abs=2.0 * analysis.dt * 50)
