"""Shared configuration for the benchmark harness.

Every module regenerates one of the paper's tables or figures.  By
default the harness runs a scaled, laptop-friendly configuration (see
``repro.experiments.common.fast_config``); set ``REPRO_FULL=1`` to run
paper-scale circuits and iteration counts (hours, pure Python).

The suite benched by default covers small/medium/large circuit classes;
``REPRO_FULL=1`` switches to the complete ten-circuit paper suite.
Numbers of record are written into each benchmark's ``extra_info`` so
``--benchmark-json`` captures the regenerated rows alongside timings.
"""

from __future__ import annotations

import os

import pytest

from repro.config import AnalysisConfig
from repro.experiments.common import ExperimentConfig, fast_config, paper_config
from repro.netlist.benchmarks import PAPER_SUITE

FULL = os.environ.get("REPRO_FULL", "0") == "1"

#: Circuits benched by default (one per size class) vs at full scale.
BENCH_SUITE = list(PAPER_SUITE) if FULL else ["c432", "c880", "c1908", "c3540"]

#: Sizing iterations per optimizer inside the table benchmarks.
BENCH_ITERATIONS = 1000 if FULL else 8


def bench_config(iterations: int = BENCH_ITERATIONS) -> ExperimentConfig:
    """The experiment configuration used across benchmark modules."""
    if FULL:
        return paper_config(suite=BENCH_SUITE, iterations=iterations)
    return fast_config(suite=BENCH_SUITE, iterations=iterations)


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    return bench_config()
