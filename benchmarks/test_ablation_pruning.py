"""Ablation: what each piece of the pruning machinery buys.

DESIGN.md experiment A1.  Three selection strategies are timed on the
same circuit and verified to return the same gate:

* brute force (one full SSTA per candidate — the Section 3.1 baseline);
* perturbation fronts with pruning, *without* the identical-PDF
  shortcut (the paper's pseudocode verbatim);
* perturbation fronts with pruning *and* the shortcut (this library's
  default).

Also ablates the heap ordering: propagating fronts in arbitrary order
(no best-first) still terminates with the same answer but prunes later,
demonstrating why the paper sorts ``gate_list`` by ``Smx``.
"""

from __future__ import annotations

import heapq

import pytest

from repro.core.brute_force_sizer import BruteForceStatisticalSizer
from repro.core.perturbation import PerturbationFront
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.dist.ops import OpCounter
from repro.experiments.common import load_scaled
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta

from .conftest import BENCH_SUITE, bench_config

CIRCUIT = BENCH_SUITE[0]

_RESULTS = {}


def _selection(kind):
    cfg = bench_config()
    circuit = load_scaled(CIRCUIT, cfg)
    if kind == "brute":
        sizer = BruteForceStatisticalSizer(
            circuit, config=cfg.analysis, objective=cfg.objective(), max_iterations=1
        )
    else:
        sizer = PrunedStatisticalSizer(
            circuit,
            config=cfg.analysis,
            objective=cfg.objective(),
            max_iterations=1,
            drop_identical=(kind == "pruned+shortcut"),
        )
    selection = sizer._select_gate()  # noqa: SLF001
    gate = selection.best_gate
    return gate.name, selection.best_sensitivity, selection.stats


@pytest.mark.parametrize(
    "kind", ["brute", "pruned-verbatim", "pruned+shortcut"]
)
def test_ablation_selection_strategy(benchmark, kind):
    name, s, stats = benchmark.pedantic(
        lambda: _selection(kind), rounds=2, iterations=1
    )
    _RESULTS[kind] = (name, s)
    benchmark.extra_info.update(
        {
            "selected_gate": name,
            "sensitivity": round(s, 5),
            "stat_ops": stats.convolutions + stats.max_ops,
            "pruned": stats.pruned,
        }
    )
    # All strategies must agree (exactness ablation).
    values = set(_RESULTS.values())
    assert len(values) == 1


def test_ablation_unordered_fronts(benchmark):
    """Round-robin front propagation (no Smx-sorted heap): same winner,
    strictly more statistical work — quantifies the value of the
    paper's sorted gate_list."""
    cfg = bench_config()
    circuit = load_scaled(CIRCUIT, cfg)
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=cfg.analysis)
    objective = cfg.objective()
    dw = cfg.analysis.delta_w

    def round_robin():
        counter = OpCounter()
        base = run_ssta(graph, model, counter=counter)
        fronts = [
            PerturbationFront(graph, model, base, g, dw, objective, counter=counter)
            for g in circuit.topo_gates()
        ]
        max_s, best = 0.0, None
        active = list(fronts)
        while active:
            still = []
            for f in active:
                if f.sensitivity is not None:
                    if f.sensitivity > max_s:
                        max_s, best = f.sensitivity, f
                    continue
                if f.smx < max_s:
                    continue
                f.propagate_one_level()
                still.append(f)
            active = still
        return best.gate.name if best else None, max_s, counter

    name, s, counter = benchmark.pedantic(round_robin, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "selected_gate": name,
            "stat_ops": counter.total_ops,
        }
    )
    if "pruned+shortcut" in _RESULTS:
        assert _RESULTS["pruned+shortcut"][0] == name
