"""Benchmark harness regenerating every table and figure of the paper
(pytest-benchmark; see conftest.py for the REPRO_FULL switch)."""
