"""Benchmark regenerating Figure 1 (the wall of near-critical paths).

Times the full comparison — deterministic vs statistical sizing at
matched area, then exact path-delay histograms of both solutions — and
records the wall metrics (fraction of paths within 10% of the maximum
delay) plus both 99-percentile delays.  The qualitative reproduction:
the deterministic solution concentrates paths near critical and pays
for it statistically.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import run_figure1
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.paths import path_delay_histogram

from .conftest import BENCH_SUITE, bench_config
from repro.experiments.common import load_scaled


def test_figure1_comparison(benchmark, capsys):
    cfg = bench_config()
    circuit = BENCH_SUITE[0]

    def regenerate():
        return run_figure1(circuit, cfg)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.render())
    benchmark.extra_info.update(
        {
            "det_wall_fraction": round(result.det_wall, 4),
            "stat_wall_fraction": round(result.stat_wall, 4),
            "det_99_ps": round(result.det_delay_99, 1),
            "stat_99_ps": round(result.stat_delay_99, 1),
        }
    )
    assert result.stat_delay_99 <= result.det_delay_99 * 1.005


@pytest.mark.parametrize("circuit", BENCH_SUITE)
def test_figure1_path_histogram_kernel(benchmark, circuit):
    """The DAG path-counting DP is the figure's computational core;
    bench it standalone per circuit."""
    cfg = bench_config()
    c = load_scaled(circuit, cfg)
    graph = TimingGraph(c)
    model = DelayModel(c, config=cfg.analysis)

    hist = benchmark(path_delay_histogram, graph, model, bin_width=cfg.analysis.dt * 2)
    benchmark.extra_info.update(
        {
            "total_paths": f"{hist.total_paths:.3e}",
            "max_delay_ps": round(hist.max_delay, 1),
        }
    )
    assert hist.total_paths >= 1.0
