"""Engine-level microbenchmarks (not a paper artifact, but the numbers
that explain every table: per-pass cost of STA, SSTA, and Monte Carlo,
and the per-candidate cost of a perturbation front vs a full SSTA)."""

from __future__ import annotations

import pytest

from repro.core.objectives import PercentileObjective
from repro.core.perturbation import PerturbationFront
from repro.core.sensitivity import statistical_sensitivity
from repro.experiments.common import load_scaled
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.monte_carlo import run_monte_carlo
from repro.timing.ssta import run_ssta
from repro.timing.sta import run_sta

from .conftest import BENCH_SUITE, bench_config


def _setup(circuit_name):
    cfg = bench_config()
    circuit = load_scaled(circuit_name, cfg)
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=cfg.analysis)
    return cfg, circuit, graph, model


@pytest.mark.parametrize("circuit", BENCH_SUITE)
def test_engine_sta(benchmark, circuit):
    _cfg, c, graph, model = _setup(circuit)
    result = benchmark(run_sta, graph, model)
    benchmark.extra_info["circuit_delay_ps"] = round(result.circuit_delay, 1)


@pytest.mark.parametrize("circuit", BENCH_SUITE)
def test_engine_ssta(benchmark, circuit):
    _cfg, c, graph, model = _setup(circuit)
    result = benchmark(run_ssta, graph, model)
    benchmark.extra_info["p99_ps"] = round(result.percentile(0.99), 1)


@pytest.mark.parametrize("circuit", BENCH_SUITE)
def test_engine_monte_carlo(benchmark, circuit):
    cfg, c, graph, model = _setup(circuit)
    result = benchmark.pedantic(
        lambda: run_monte_carlo(graph, model, n_samples=cfg.mc_samples, seed=1),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["mc_p99_ps"] = round(result.percentile(0.99), 1)


@pytest.mark.parametrize("circuit", BENCH_SUITE[:2])
def test_engine_single_front_vs_full_ssta(benchmark, circuit):
    """Per-candidate cost: one perturbation front run to the sink (the
    pruned path) versus the full-SSTA rerun it replaces."""
    cfg, c, graph, model = _setup(circuit)
    base = run_ssta(graph, model)
    objective = PercentileObjective(cfg.percentile)
    gate = base.graph.circuit.topo_gates()[len(list(c.gates())) // 2]

    def one_front():
        front = PerturbationFront(
            graph, model, base, gate, cfg.analysis.delta_w, objective
        )
        return front.run_to_sink()

    s_front = benchmark(one_front)
    base_obj = objective.evaluate(base.sink_pdf)
    s_brute = statistical_sensitivity(
        graph, model, gate, cfg.analysis.delta_w, objective, base_obj
    )
    benchmark.extra_info["sensitivity"] = round(s_front, 6)
    assert s_front == s_brute
