"""Benchmark regenerating Table 1 (deterministic vs statistical sizing).

Each circuit's benchmark performs the full two-optimizer comparison at
matched area and records the regenerated row (node/edge counts, % size
increase, both 99-percentile delays, % improvement) in ``extra_info``.
The paper's qualitative claim — statistical never loses at matched
area, improving up to 10.5% — is asserted.

Run ``pytest benchmarks/test_table1.py --benchmark-only -s`` to see the
rendered table.
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import Table1Result, run_table1_circuit

from .conftest import BENCH_SUITE, bench_config

_ROWS = {}


@pytest.mark.parametrize("circuit", BENCH_SUITE)
def test_table1_row(benchmark, circuit):
    cfg = bench_config()

    def regenerate():
        return run_table1_circuit(circuit, cfg)

    row = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    _ROWS[circuit] = row
    benchmark.extra_info.update(
        {
            "node_edge": f"{row.n_nodes}/{row.n_edges}",
            "size_increase_pct": round(row.size_increase_pct, 2),
            "deterministic_99_ps": round(row.deterministic_delay, 1),
            "statistical_99_ps": round(row.statistical_delay, 1),
            "improvement_pct": round(row.improvement_pct, 2),
        }
    )
    # Statistical optimization must not lose at matched area.
    assert row.statistical_delay <= row.deterministic_delay * 1.005
    assert row.size_increase_pct > 0.0


def test_table1_report(benchmark, capsys):
    """Render the regenerated table from the rows the per-circuit
    benchmarks produced (falls back to a fresh run when executed
    alone).  The render itself is what gets timed here; the printout is
    the paper-style table."""
    cfg = bench_config()
    rows = [_ROWS.get(name) or run_table1_circuit(name, cfg) for name in BENCH_SUITE]
    result = Table1Result(rows=rows, iterations=cfg.iterations)
    text = benchmark.pedantic(result.render, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(text)
    benchmark.extra_info["average_improvement_pct"] = round(
        result.average_improvement_pct, 2
    )
    benchmark.extra_info["max_improvement_pct"] = round(
        result.max_improvement_pct, 2
    )
    assert result.average_improvement_pct >= -0.5
