"""Benchmark regenerating Figure 10 (area-delay curves + MC validation).

Runs both optimizers on the paper's Figure 10 circuit (c3540, scaled in
the default configuration), replays their trajectories, and evaluates
the SSTA bound and Monte Carlo at checkpoints.  Records the maximum
bound-vs-MC error (paper: < 1% at the 99-percentile on the full
circuit) and whether the statistical curve dominates at matched area.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure10 import run_figure10

from .conftest import FULL, bench_config


def test_figure10_curves(benchmark, capsys):
    cfg = bench_config()
    circuit = "c3540"

    def regenerate():
        return run_figure10(circuit, cfg, n_points=5)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.render())
    benchmark.extra_info.update(
        {
            "max_bound_error_pct": round(result.max_bound_error_pct, 3),
            "statistical_dominates": result.statistical_dominates(),
            "det_final_99_ps": round(result.deterministic[-1].bound_delay, 1),
            "stat_final_99_ps": round(result.statistical[-1].bound_delay, 1),
        }
    )
    # The bound must track Monte Carlo closely (paper: <1% full scale;
    # the scaled circuit and sample count warrant a looser gate).
    assert result.max_bound_error_pct < (2.0 if FULL else 6.0)
    assert result.statistical_dominates()
