"""Client retry/backoff policy, isolated from any real server.

The taxonomy under test (the satellite-3 contract):

* 503 + Retry-After (``ServiceOverloadedError``) is pre-execution by
  construction and retried for EVERY endpoint, ``/optimize`` included;
* transport failures (``ServiceTransportError``) are retried only for
  idempotent requests — a lost ``/optimize`` may have executed, so it
  surfaces instead of blindly resending;
* domain refusals (plain ``ServiceError``) are never retried;
* waits honor the server's Retry-After hint, add jitter, back off
  exponentially without a hint, and respect ``max_retries`` plus the
  ``total_deadline_s`` wall-clock budget.
"""

import random

import pytest

from repro.errors import (
    ServiceError,
    ServiceOverloadedError,
    ServiceTransportError,
)
from repro.service import ServiceClient, parse_retry_after


class _Script:
    """Scripted transport: raises/returns the queued outcomes in order
    and records every attempt."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def __call__(self, method, path, payload=None):
        self.calls.append((method, path))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _client(monkeypatch, outcomes, **kwargs):
    kwargs.setdefault("rng", random.Random(7))
    client = ServiceClient("http://example.invalid", **kwargs)
    script = _Script(outcomes)
    monkeypatch.setattr(client, "_request_once", script)
    sleeps = []
    monkeypatch.setattr(
        "repro.service.client.time.sleep", sleeps.append
    )
    return client, script, sleeps


class TestOverloadRetries:
    def test_overload_retried_for_idempotent_get(self, monkeypatch):
        client, script, _ = _client(monkeypatch, [
            ServiceOverloadedError("full", retry_after_s=0.01),
            {"ok": True},
        ])
        assert client._request("GET", "/stats") == {"ok": True}
        assert client.retries_performed == 1
        assert len(script.calls) == 2

    def test_overload_retried_even_for_optimize(self, monkeypatch):
        """Rejection happens before execution, so even the
        non-idempotent verb retries a 503."""
        client, script, _ = _client(monkeypatch, [
            ServiceOverloadedError("full", retry_after_s=0.01),
            ServiceOverloadedError("full", retry_after_s=0.01),
            {"ok": True},
        ])
        reply = client._request("POST", "/optimize", {}, idempotent=False)
        assert reply == {"ok": True}
        assert client.retries_performed == 2

    def test_retry_budget_exhausted_reraises(self, monkeypatch):
        client, script, _ = _client(monkeypatch, [
            ServiceOverloadedError("full", retry_after_s=0.0)
            for _ in range(5)
        ], max_retries=2)
        with pytest.raises(ServiceOverloadedError):
            client._request("GET", "/stats")
        assert len(script.calls) == 3  # first try + 2 retries
        assert client.retries_performed == 2

    def test_honors_retry_after_with_bounded_jitter(self, monkeypatch):
        client, _, sleeps = _client(monkeypatch, [
            ServiceOverloadedError("full", retry_after_s=0.2),
            {"ok": True},
        ])
        client._request("GET", "/stats")
        assert len(sleeps) == 1
        # delay + uniform(0, delay/2): herd spread, never shorter than
        # the server asked for.
        assert 0.2 <= sleeps[0] <= 0.3

    def test_backoff_doubles_without_hint(self, monkeypatch):
        client, _, sleeps = _client(monkeypatch, [
            ServiceOverloadedError("full"),  # no Retry-After parsed
            ServiceOverloadedError("full"),
            {"ok": True},
        ], backoff_base_s=0.1, max_retries=5)
        client._request("GET", "/stats")
        assert 0.1 <= sleeps[0] <= 0.15
        assert 0.2 <= sleeps[1] <= 0.3

    def test_total_deadline_caps_the_loop(self, monkeypatch):
        client, script, sleeps = _client(monkeypatch, [
            ServiceOverloadedError("full", retry_after_s=60.0),
            {"ok": True},
        ], total_deadline_s=1.0, max_retries=10)
        # Waiting 60 s would blow the 1 s budget: re-raise, no sleep.
        with pytest.raises(ServiceOverloadedError):
            client._request("GET", "/stats")
        assert sleeps == []
        assert len(script.calls) == 1


class TestTransportRetries:
    def test_transport_retried_when_idempotent(self, monkeypatch):
        client, script, _ = _client(monkeypatch, [
            ServiceTransportError("connection reset"),
            {"ok": True},
        ])
        reply = client._request("POST", "/analyze", {}, idempotent=True)
        assert reply == {"ok": True}
        assert client.retries_performed == 1

    def test_transport_never_retried_for_optimize(self, monkeypatch):
        """The lost request may have run to completion server-side;
        a blind resend could double-execute."""
        client, script, _ = _client(monkeypatch, [
            ServiceTransportError("connection reset"),
            {"ok": True},
        ])
        with pytest.raises(ServiceTransportError):
            client._request("POST", "/optimize", {}, idempotent=False)
        assert len(script.calls) == 1
        assert client.retries_performed == 0

    def test_post_defaults_to_non_idempotent(self, monkeypatch):
        client, script, _ = _client(monkeypatch, [
            ServiceTransportError("refused"),
            {"ok": True},
        ])
        with pytest.raises(ServiceTransportError):
            client._request("POST", "/anything", {})
        assert len(script.calls) == 1

    def test_get_defaults_to_idempotent(self, monkeypatch):
        client, script, _ = _client(monkeypatch, [
            ServiceTransportError("refused"),
            {"ok": True},
        ])
        assert client._request("GET", "/health") == {"ok": True}
        assert client.retries_performed == 1


class TestDomainErrorsNeverRetry:
    def test_service_error_reraised_immediately(self, monkeypatch):
        client, script, sleeps = _client(monkeypatch, [
            ServiceError("unknown circuit 'c9999'"),
            {"ok": True},
        ])
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/stats")
        # Not one of the retryable subtypes:
        assert not isinstance(
            excinfo.value, (ServiceOverloadedError, ServiceTransportError)
        )
        assert len(script.calls) == 1
        assert sleeps == []


class TestParseRetryAfter:
    def test_header_delta_seconds_wins(self):
        assert parse_retry_after("2.5", {"retry_after_s": 9.0}) == 2.5

    def test_body_fallback(self):
        assert parse_retry_after(None, {"retry_after_s": 1.5}) == 1.5

    def test_unparseable_header_falls_back_to_body(self):
        assert parse_retry_after(
            "Wed, 21 Oct 2026 07:28:00 GMT", {"retry_after_s": 3.0}
        ) == 3.0

    def test_negative_clamped_to_zero(self):
        assert parse_retry_after("-5", {}) == 0.0

    def test_nothing_parses_returns_none(self):
        assert parse_retry_after(None, {}) is None
        assert parse_retry_after("soon", {"retry_after_s": "soon"}) is None
