"""Bounded admission under saturation, and the graceful-drain
truncation regression.

The contract these tests pin: overload changes *whether* a request is
served, never *what* an answer contains.

* A saturated queue rejects fast — straight from the accept loop with
  ``503`` + ``Retry-After``, long before a handler would have touched
  the request — so rejection latency is bounded by accept-loop work,
  not by whatever slow request is wedging the handlers.
* Every *accepted* request completes with a bitwise-correct answer,
  including the ones still queued when a drain begins (regression:
  daemonized per-request threads used to be killed mid-write by the
  final flush, truncating responses).
* ``/stats``'s ``overload`` section agrees exactly with what clients
  observed from the outside.
"""

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.dist.cache import ConvolutionCache
from repro.errors import ServiceError, ServiceOverloadedError
from repro.netlist.benchmarks import load
from repro.service import ServiceClient, ServiceState, start_server
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta

FAST = AnalysisConfig(dt=8.0, delta_w=1.0)


def _local_sink(name, scale=1.0):
    cfg = FAST.with_updates(cache=None, jobs=1)
    circuit = load(name, scale=scale)
    return run_ssta(
        TimingGraph(circuit), DelayModel(circuit, config=cfg), config=cfg
    ).sink_pdf


def _slow_state(delay_s: float, gate: threading.Event = None):
    """A state whose /analyze handler stalls — the saturation fixture.
    The sleep happens INSIDE the domain call, i.e. on a pool thread
    after admission; the accept loop stays free to reject."""
    state = ServiceState(config=FAST, cache=32768)
    real = state.analyze

    def slow_analyze(*args, **kwargs):
        if gate is not None:
            gate.wait(timeout=30)
        else:
            time.sleep(delay_s)
        return real(*args, **kwargs)

    state.analyze = slow_analyze
    return state


def _serve(state, **kwargs):
    server = start_server(state, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


class TestSaturation:
    def test_queue_full_rejects_fast_and_admitted_stay_bitwise(self):
        """The acceptance scenario in one piece: saturate a 1-thread /
        1-slot server with 8 concurrent requests; exactly the admitted
        ones answer (bitwise-correct), the rest get fast 503s, and
        /stats agrees with the client-observed outcome counts."""
        gate = threading.Event()
        state = _slow_state(0.0, gate=gate)
        server, thread = _serve(
            state, handler_threads=1, queue_depth=1, retry_after_s=0.25
        )
        outcomes = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def request(idx):
            client = ServiceClient(server.url, max_retries=0)
            barrier.wait(timeout=30)
            t0 = time.perf_counter()
            try:
                rep = client.analyze("c17")
                with lock:
                    outcomes.append(("ok", rep, None))
            except ServiceOverloadedError as exc:
                elapsed = time.perf_counter() - t0
                with lock:
                    outcomes.append(("rejected", elapsed, exc))

        try:
            threads = [
                threading.Thread(target=request, args=(i,))
                for i in range(8)
            ]
            for t in threads:
                t.start()
            # Hold the gate until every rejection has landed: at most
            # 2 of 8 can be admitted (1 in-flight + 1 queued), so 6
            # rejections arriving while the handler is provably wedged
            # demonstrates pre-execution rejection by ordering, not by
            # a timing guess.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                with lock:
                    if len(outcomes) >= 6:
                        break
                time.sleep(0.01)
            gate.set()
            for t in threads:
                t.join(timeout=60)
            assert len(outcomes) == 8

            oks = [o for o in outcomes if o[0] == "ok"]
            rejected = [o for o in outcomes if o[0] == "rejected"]
            # 1 in-flight + 1 queued admitted; the rest turned away.
            assert len(oks) >= 1
            assert len(rejected) >= 5
            assert len(oks) + len(rejected) == 8

            # (1) Rejections are pre-execution fast: all six returned
            # while the lone handler was still wedged on the gate (the
            # gate only opened after they landed), and each carries
            # the Retry-After hint.  The latency bound is loose — it
            # covers serialized accept-loop work on a loaded CI box —
            # but far under the 30 s the wedged handler would cost.
            waits = sorted(o[1] for o in rejected)
            p99 = waits[min(len(waits) - 1,
                            int(round(0.99 * (len(waits) - 1))))]
            assert p99 < 5.0, f"rejections waited on handlers: {waits}"
            for _, _, exc in rejected:
                assert exc.retry_after_s == 0.25

            # (2) Every admitted answer is bitwise the serial local one.
            local = _local_sink("c17")
            for _, rep, _ in oks:
                assert rep.sink.dt == local.dt
                assert rep.sink.offset == local.offset
                assert np.array_equal(
                    np.asarray(rep.sink.masses), np.asarray(local.masses)
                )

            # (3) The server's ledger matches the clients' outcomes:
            # zero dropped accepted requests.
            stats = ServiceClient(server.url).stats()
            overload = stats["overload"]
            assert overload["rejected"] == len(rejected)
            # accepted = the analyze successes + this /stats request.
            assert overload["accepted"] == len(oks) + 1
            assert overload["completed"] == len(oks)
            assert overload["in_flight"] == 1  # the /stats request
            assert overload["queued"] == 0
            assert overload["queue_limit"] == 1
            assert overload["handler_threads"] == 1
            assert overload["queue_wait_p99_ms"] >= \
                overload["queue_wait_p50_ms"] >= 0.0
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_rejection_is_pre_execution_raw_503(self):
        """A rejected request never reaches a handler: the 503 arrives
        with Retry-After while the only handler thread is provably
        wedged, and the body carries the machine-readable marker."""
        gate = threading.Event()
        state = _slow_state(0.0, gate=gate)
        server, thread = _serve(
            state, handler_threads=1, queue_depth=1, retry_after_s=2.5
        )
        try:
            hold = []

            def wedge():
                try:
                    hold.append(ServiceClient(server.url).analyze("c17"))
                except ServiceError:  # pragma: no cover
                    pass

            wedgers = [threading.Thread(target=wedge) for _ in range(2)]
            for w in wedgers:
                w.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if server.overload_snapshot()["accepted"] >= 2:
                    break
                time.sleep(0.01)

            req = urllib.request.Request(
                server.url + "/analyze",
                data=json.dumps({"circuit": "c17"}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(req, timeout=10)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "2.5"
            body = json.loads(excinfo.value.read())
            assert body["overloaded"] is True
            assert body["retry_after_s"] == 2.5
            gate.set()
            for w in wedgers:
                w.join(timeout=30)
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_no_thread_growth_under_load(self):
        """The fixed pool IS the concurrency: hammering the server
        does not spawn request threads (the ThreadingHTTPServer
        failure mode this PR removes)."""
        state = ServiceState(config=FAST, cache=32768)
        server, thread = _serve(state, handler_threads=2, queue_depth=4)
        try:
            client = ServiceClient(server.url)
            client.analyze("c17")
            before = threading.active_count()
            workers = [
                threading.Thread(
                    target=lambda: ServiceClient(server.url).analyze("c17")
                )
                for _ in range(12)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join(timeout=60)
            after = threading.active_count()
            # Our own 12 client threads came and went; the server side
            # added nothing (pool threads existed before the load).
            assert after <= before + 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_client_retry_survives_saturation_end_to_end(self):
        """A client with a retry budget rides out a transient
        saturation spike: its 503s turn into jittered waits and the
        request eventually lands, bitwise-correct."""
        gate = threading.Event()
        state = _slow_state(0.0, gate=gate)
        server, thread = _serve(
            state, handler_threads=1, queue_depth=1, retry_after_s=0.2
        )
        try:
            wedgers = [
                threading.Thread(
                    target=lambda: ServiceClient(server.url).analyze("c17")
                )
                for _ in range(2)
            ]
            for w in wedgers:
                w.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if server.overload_snapshot()["accepted"] >= 2:
                    break
                time.sleep(0.01)
            # Open the gate shortly after the retrying client's first
            # rejection, so a retry finds a free slot.
            threading.Timer(0.3, gate.set).start()
            client = ServiceClient(
                server.url, max_retries=8, total_deadline_s=60.0
            )
            rep = client.analyze("c17")
            assert client.retries_performed >= 1
            local = _local_sink("c17")
            assert np.array_equal(
                np.asarray(rep.sink.masses), np.asarray(local.masses)
            )
            for w in wedgers:
                w.join(timeout=30)
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestDrainTruncation:
    def test_drain_completes_inflight_and_queued_responses(self):
        """Regression: a drain beginning while requests are in flight
        (and queued) must deliver every admitted response complete —
        the old daemon-thread server truncated them mid-write."""
        gate = threading.Event()
        state = _slow_state(0.0, gate=gate)
        server, thread = _serve(state, handler_threads=1, queue_depth=4)
        results = []
        errors = []

        def request():
            try:
                results.append(
                    ServiceClient(server.url, max_retries=0).analyze("c17")
                )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        try:
            clients = [threading.Thread(target=request) for _ in range(3)]
            for c in clients:
                c.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if server.overload_snapshot()["accepted"] >= 3:
                    break
                time.sleep(0.01)
            # Drain while 1 is wedged in-flight and 2 sit in the queue;
            # release the handler right after the drain begins.
            drainer = threading.Thread(
                target=server.drain, args=(30.0,), daemon=True
            )
            drainer.start()
            time.sleep(0.1)
            gate.set()
            drainer.join(timeout=30)
            for c in clients:
                c.join(timeout=30)

            assert errors == []
            assert len(results) == 3
            local = _local_sink("c17")
            for rep in results:
                # A truncated body would have failed JSON decoding in
                # the client; equality proves full delivery.
                assert np.array_equal(
                    np.asarray(rep.sink.masses), np.asarray(local.masses)
                )
            snapshot = server.overload_snapshot()
            assert snapshot["completed"] == snapshot["accepted"] == 3
            assert snapshot["in_flight"] == 0
            assert snapshot["queued"] == 0
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_drain_is_idempotent_and_reports_clean(self):
        state = ServiceState(config=FAST)
        server, thread = _serve(state)
        try:
            ServiceClient(server.url).analyze("c17")
            assert server.drain(10.0) is True
            assert server.drain(10.0) is True  # second call: stored verdict
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_bind_failure_surfaces_oserror_not_drain_crash(self):
        """Regression: a bind failure inside HTTPServer.__init__ runs
        server_close() -> drain() before the handler pool exists; the
        caller must see the real OSError (address in use), not an
        AttributeError from the cleanup path."""
        state = ServiceState(config=FAST)
        server, thread = _serve(state)
        try:
            host, port = server.server_address[:2]
            with pytest.raises(OSError):
                start_server(ServiceState(config=FAST), host, port)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_shutdown_route_drains_without_truncating_own_reply(self):
        """/shutdown runs ON a pool thread; its own response must go
        out complete before that thread consumes a stop sentinel."""
        state = ServiceState(config=FAST)
        server, thread = _serve(state, handler_threads=2)
        client = ServiceClient(server.url)
        client.analyze("c17")
        reply = client.shutdown()
        assert reply["shutting_down"] is True
        thread.join(timeout=15)
        assert not thread.is_alive()
        server.server_close()
