"""Pre-fork frontend: N workers behind one port, kill-respawn, and
snapshot reconciliation.

All workloads here are sessionless on purpose: ``SO_REUSEPORT``
balances per *connection* and the stdlib client reconnects per
request, so a session opened on one worker is unknown to its
siblings.  That worker-affinity caveat is part of the frontend's
documented contract, not something these tests paper over.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.dist.cache import ConvolutionCache
from repro.netlist.benchmarks import load
from repro.service import ServiceClient, ServiceFrontend, WorkerSpec
from repro.service.frontend import (
    merged_stats_file,
    reuseport_available,
    worker_cache_file,
)
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta

pytestmark = pytest.mark.skipif(
    not reuseport_available(),
    reason="SO_REUSEPORT load balancing unavailable on this platform",
)

FAST = AnalysisConfig(dt=8.0, delta_w=1.0)


def _local_sink(name, scale=1.0):
    cfg = FAST.with_updates(cache=None, jobs=1)
    circuit = load(name, scale=scale)
    return run_ssta(
        TimingGraph(circuit), DelayModel(circuit, config=cfg), config=cfg
    ).sink_pdf


def _local_sizing(name, iterations):
    return PrunedStatisticalSizer(
        load(name),
        config=FAST.with_updates(cache=None, jobs=1),
        max_iterations=iterations,
    ).run()


def _front(tmp_path, workers=2, **kwargs):
    spec = WorkerSpec(
        config=FAST,
        cache_capacity=32768,
        cache_file=str(tmp_path / "front.cache"),
        flush_interval_s=None,
        retry_after_s=0.1,
    )
    return ServiceFrontend(
        spec,
        port=0,
        workers=workers,
        reconcile_interval_s=kwargs.pop("reconcile_interval_s", 3600.0),
        **kwargs,
    )


class TestFrontLifecycle:
    def test_workers_share_port_and_answers_stay_bitwise(self, tmp_path):
        """The acceptance scenario: a multi-worker front serves mixed
        concurrent workloads and every accepted answer is bitwise the
        serial local one, regardless of which worker served it."""
        front = _front(tmp_path, workers=2)
        try:
            front.start()
            assert front.wait_until_ready(timeout_s=60)
            assert front.live_workers() == 2

            # Both REUSEPORT siblings actually take traffic: repeated
            # fresh connections eventually land on distinct workers.
            seen = set()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and len(seen) < 2:
                worker = ServiceClient(front.url).stats()["worker"]
                seen.add((worker["id"], worker["pid"]))
            assert len(seen) == 2, f"only saw workers {seen}"

            results = {}
            errors = []
            lock = threading.Lock()

            def analyze(name, scale):
                try:
                    rep = ServiceClient(front.url).analyze(name, scale=scale)
                    with lock:
                        results[("analyze", name, scale)] = rep
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            def optimize(name, iters):
                try:
                    rep = ServiceClient(front.url).optimize(
                        name, iterations=iters
                    )
                    with lock:
                        results[("optimize", name, iters)] = rep
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            mixed = [
                threading.Thread(target=analyze, args=("c17", 1.0)),
                threading.Thread(target=analyze, args=("c17", 0.8)),
                threading.Thread(target=analyze, args=("c432", 0.3)),
                threading.Thread(target=optimize, args=("c17", 3)),
                threading.Thread(target=analyze, args=("c17", 1.0)),
            ]
            for t in mixed:
                t.start()
            for t in mixed:
                t.join(timeout=120)
            assert errors == []

            for name, scale in [("c17", 1.0), ("c17", 0.8), ("c432", 0.3)]:
                local = _local_sink(name, scale=scale)
                rep = results[("analyze", name, scale)]
                assert rep.sink.dt == local.dt
                assert rep.sink.offset == local.offset
                assert np.array_equal(
                    np.asarray(rep.sink.masses), np.asarray(local.masses)
                )
            local_sz = _local_sizing("c17", 3)
            remote_sz = results[("optimize", "c17", 3)].result
            assert remote_sz.final_objective == local_sz.final_objective
            assert [s.gate for s in remote_sz.steps] == \
                [s.gate for s in local_sz.steps]
        finally:
            assert front.stop() is True

        # stop() reconciled: the shared base snapshot holds the union
        # of what the workers computed, and the merged stats sidecar
        # aggregates their counters.
        base = tmp_path / "front.cache"
        assert base.exists()
        merged = ConvolutionCache.load(base, capacity=32768)
        assert len(merged) > 0
        import json
        with open(merged_stats_file(str(base))) as fh:
            stats = json.load(fh)
        assert stats["workers"] >= 1
        assert stats["misses"] > 0  # the first analyses were cold

    def test_killed_worker_respawns_and_clients_ride_it_out(self, tmp_path):
        """SIGKILL one worker mid-service: the monitor respawns it,
        and a client with a retry budget never notices (beyond a
        transport retry)."""
        front = _front(tmp_path, workers=2)
        try:
            front.start()
            assert front.wait_until_ready(timeout_s=60)

            victim = ServiceClient(front.url).stats()["worker"]["pid"]
            os.kill(victim, signal.SIGKILL)

            # Retrying clients keep getting bitwise-correct answers
            # while the slot is down and after it comes back.
            local = _local_sink("c17")
            for _ in range(4):
                client = ServiceClient(
                    front.url, max_retries=6, total_deadline_s=60.0
                )
                rep = client.analyze("c17")
                assert np.array_equal(
                    np.asarray(rep.sink.masses), np.asarray(local.masses)
                )

            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if front.live_workers() == 2:
                    break
                time.sleep(0.1)
            assert front.live_workers() == 2
            assert sum(front.respawns.values()) >= 1
        finally:
            front.stop()

    def test_single_worker_front_still_fronts(self, tmp_path):
        """workers=1 through the frontend is a valid (if pointless)
        deployment; the machinery must not require siblings."""
        front = _front(tmp_path, workers=1)
        try:
            front.start()
            assert front.wait_until_ready(timeout_s=60)
            rep = ServiceClient(front.url).analyze("c17")
            local = _local_sink("c17")
            assert np.array_equal(
                np.asarray(rep.sink.masses), np.asarray(local.masses)
            )
        finally:
            assert front.stop() is True
        assert os.path.exists(worker_cache_file(str(tmp_path / "front.cache"), 0))
