"""HTTP server tests, including the concurrent-session invariants.

The load-bearing assertions:

* a server-mediated analysis returns sink bytes **identical** to the
  same run executed locally, at any concurrency (requests interleave
  freely; cache hits replay bitwise, so interleaving cannot shift a
  bit);
* concurrent sessions sharing the ONE process-wide cache achieve an
  aggregate hit rate **above** the best rate any of them reaches in
  isolation — the reason the service exists.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.errors import ServiceError
from repro.netlist.benchmarks import load
from repro.service import ServiceClient, ServiceState, start_server
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta

FAST = AnalysisConfig(dt=8.0, delta_w=1.0)


def _serve(state):
    server = start_server(state)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


@pytest.fixture
def server():
    srv, thread = _serve(ServiceState(config=FAST, cache=32768))
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


def _local_sink(name, scale=1.0):
    cfg = FAST.with_updates(cache=None, jobs=1)
    circuit = load(name, scale=scale)
    return run_ssta(
        TimingGraph(circuit), DelayModel(circuit, config=cfg), config=cfg
    ).sink_pdf


def _local_sizing(name, scale=1.0, iterations=3):
    cfg = FAST.with_updates(cache=None, jobs=1)
    return PrunedStatisticalSizer(
        load(name, scale=scale), config=cfg, max_iterations=iterations
    ).run()


def _trajectory(result):
    """Everything numeric a sizing run decides — the bitwise-invariant
    part.  Cost counters (cache hits, wall time) legitimately differ
    between a cached server run and an uncached local one."""
    return (
        result.optimizer,
        result.circuit_name,
        result.initial_objective,
        result.final_objective,
        result.initial_size,
        result.final_size,
        result.initial_widths,
        result.stop_reason,
        [
            (s.iteration, s.gate, s.sensitivity, s.objective_before,
             s.objective_after, s.total_size, s.extra_gates)
            for s in result.steps
        ],
    )


class TestEndpoints:
    def test_health(self, client):
        reply = client.health()
        assert reply["status"] == "ok"

    def test_unknown_endpoint_404(self, client, server):
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/nope")

    def test_bad_json_400(self, server):
        req = urllib.request.Request(
            server.url + "/analyze",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400
        assert "JSON" in json.loads(exc.value.read())["error"]

    def test_unknown_circuit_400(self, client):
        with pytest.raises(ServiceError, match="unknown circuit"):
            client.analyze("c9999")

    def test_missing_circuit_400(self, client):
        with pytest.raises(ServiceError, match="required"):
            client._request("POST", "/analyze", {})

    def test_analyze_bitwise_equals_local(self, client):
        rep = client.analyze("c17")
        local = _local_sink("c17")
        assert rep.sink.dt == local.dt
        assert rep.sink.offset == local.offset
        assert np.array_equal(
            np.asarray(rep.sink.masses), np.asarray(local.masses)
        )
        for p, value in rep.percentiles:
            assert value == local.percentile(p)

    def test_optimize_round_trips_real_result(self, client):
        rep = client.optimize("c17", iterations=3)
        local = _local_sizing("c17", iterations=3)
        assert _trajectory(rep.result) == _trajectory(local)

    def test_yield_query(self, client):
        rep = client.yield_query("c17", target=300.0, n_points=6)
        assert rep.yield_at_target == pytest.approx(1.0, abs=0.05)
        assert len(rep.yield_curve) == 6

    def test_session_round_trip(self, client):
        sid = client.open_session({"level_batch": False})
        assert client.session_id == sid
        client.analyze("c17")
        summary = client.close_session()
        assert summary["requests"] == 1
        assert client.session_id is None

    def test_context_manager_closes_session(self, server):
        with ServiceClient(server.url) as c:
            c.open_session()
            sid = c.session_id
            c.analyze("c17")
        stats = ServiceClient(server.url).stats()
        assert sid not in stats["sessions"]

    def test_stats_reports_latency(self, client):
        client.analyze("c17")
        stats = client.stats()
        lat = stats["requests"]["POST /analyze"]
        assert lat["count"] >= 1
        assert lat["p50_ms"] > 0
        assert lat["p99_ms"] >= lat["p50_ms"]

    def test_protocol_mismatch_detected(self, client, monkeypatch):
        monkeypatch.setattr(
            "repro.service.client.PROTOCOL_VERSION", 999
        )
        with pytest.raises(ServiceError, match="protocol mismatch"):
            client.health()


class TestLifecycle:
    def test_flush_endpoint_writes_snapshot(self, tmp_path):
        snap = tmp_path / "svc.cache"
        state = ServiceState(config=FAST, cache_file=snap)
        server, thread = _serve(state)
        try:
            client = ServiceClient(server.url)
            client.analyze("c17")
            reply = client.flush()
            assert reply["entries_saved"] > 0
            assert snap.exists()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_shutdown_endpoint_stops_server_and_flushes(self, tmp_path):
        snap = tmp_path / "svc.cache"
        state = ServiceState(config=FAST, cache_file=snap)
        server, thread = _serve(state)
        client = ServiceClient(server.url)
        client.analyze("c17")
        reply = client.shutdown()
        assert reply["shutting_down"] is True
        assert reply["entries_saved"] > 0
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()
        assert snap.exists()


#: The concurrent workload: four sessions, mixed circuits and sized
#: variants, pairwise overlapping so sharing the cache pays.
WORKLOADS = [
    ("c17", 1.0),
    ("c17", 1.0),
    ("c432", 0.25),
    ("c432", 0.25),
]


def _run_workload(client, circuit, scale):
    """One session's request sequence; returns its remote results."""
    client.open_session()
    analysis = client.analyze(circuit, scale=scale)
    sizing = client.optimize(circuit, scale=scale, iterations=3)
    summary = client.close_session()
    return analysis, sizing, summary


class TestConcurrentSessions:
    def test_concurrent_sessions_bitwise_and_cache_sharing(self):
        assert len(WORKLOADS) >= 4

        # Isolated reference: each session against its own cold
        # server.  Records the best hit rate any session achieves
        # WITHOUT sharing.
        isolated_rates = []
        for circuit, scale in WORKLOADS:
            srv, thread = _serve(ServiceState(config=FAST, cache=32768))
            try:
                _, _, summary = _run_workload(
                    ServiceClient(srv.url), circuit, scale
                )
                isolated_rates.append(summary["hit_rate"])
            finally:
                srv.shutdown()
                srv.server_close()
                thread.join(timeout=5)

        # Shared run: all sessions concurrently against ONE server.
        state = ServiceState(config=FAST, cache=32768)
        server, thread = _serve(state)
        results = [None] * len(WORKLOADS)
        errors = []
        barrier = threading.Barrier(len(WORKLOADS))

        def worker(idx, circuit, scale):
            try:
                barrier.wait(timeout=30)
                results[idx] = _run_workload(
                    ServiceClient(server.url), circuit, scale
                )
            except Exception as exc:  # pragma: no cover
                errors.append((idx, exc))

        try:
            threads = [
                threading.Thread(target=worker, args=(i, c, s))
                for i, (c, s) in enumerate(WORKLOADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert errors == []
            cache_stats = ServiceClient(server.url).stats()["cache"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

        # (1) Bitwise equality with serial local runs, per session.
        for (circuit, scale), (analysis, sizing, _) in zip(
            WORKLOADS, results
        ):
            local_sink = _local_sink(circuit, scale=scale)
            assert analysis.sink.dt == local_sink.dt
            assert analysis.sink.offset == local_sink.offset
            assert np.array_equal(
                np.asarray(analysis.sink.masses),
                np.asarray(local_sink.masses),
            ), f"sink mismatch for {circuit}@{scale}"
            local_sizing = _local_sizing(circuit, scale=scale)
            assert _trajectory(sizing.result) == \
                _trajectory(local_sizing), \
                f"sizing mismatch for {circuit}@{scale}"

        # (2) Sharing pays: the sessions' aggregate kernel hit rate
        # beats the best rate any session managed alone (same metric
        # on both sides: OpCounter hits over OpCounter requests).
        shared_hits = sum(s["kernel_hits"] for _, _, s in results)
        shared_requests = sum(s["kernel_requests"] for _, _, s in results)
        assert shared_requests > 0
        aggregate_rate = shared_hits / shared_requests
        assert aggregate_rate > max(isolated_rates), (
            f"aggregate {aggregate_rate:.3f} vs isolated "
            f"{isolated_rates}"
        )
        # The shared cache did real work for every session.
        assert cache_stats["hits"] > 0
