"""Wire-codec tests: every round trip must be bitwise faithful."""

import json

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.dist.families import truncated_gaussian_pdf
from repro.dist.pdf import DiscretePDF
from repro.errors import ServiceError
from repro.netlist.bench import C17_BENCH, parse_bench
from repro.service.protocol import (
    pdf_from_wire,
    pdf_to_wire,
    sizing_result_from_wire,
    sizing_result_to_wire,
)

FAST = AnalysisConfig(dt=8.0, delta_w=1.0)


def _round_trip_json(payload):
    """The wire dict must survive real JSON text, not just dict copies."""
    return json.loads(json.dumps(payload))


class TestPdfRoundTrip:
    def test_bitwise_round_trip(self):
        pdf = truncated_gaussian_pdf(0.7, 100.0, 7.3)
        back = pdf_from_wire(_round_trip_json(pdf_to_wire(pdf)))
        assert back.dt == pdf.dt
        assert back.offset == pdf.offset
        assert np.array_equal(
            np.asarray(back.masses), np.asarray(pdf.masses)
        )

    def test_derived_statistics_identical(self):
        pdf = truncated_gaussian_pdf(1.0, 250.0, 12.0)
        back = pdf_from_wire(_round_trip_json(pdf_to_wire(pdf)))
        for p in (0.01, 0.5, 0.9, 0.99):
            assert back.percentile(p) == pdf.percentile(p)
        assert back.mean() == pdf.mean()
        assert back.std() == pdf.std()

    def test_awkward_float_masses_survive(self):
        # Masses deliberately not summing to one bit-exactly: the
        # decode path must not renormalize.
        masses = np.array([0.1, 0.2, 0.30000000000000004, 0.4 - 1e-17])
        pdf = DiscretePDF(1.0, -3, masses / masses.sum())
        raw = np.asarray(pdf.masses).copy()
        back = pdf_from_wire(_round_trip_json(pdf_to_wire(pdf)))
        assert np.array_equal(np.asarray(back.masses), raw)
        assert back.offset == -3

    @pytest.mark.parametrize("payload", [
        {},
        {"dt": 1.0, "offset": 0},
        {"dt": 1.0, "offset": 0, "masses_b64": "###"},
        {"dt": 1.0, "offset": 0, "masses_b64": ""},
        {"dt": "x", "offset": 0, "masses_b64": "AAAAAAAA8D8="},
        # 7 bytes: not a whole number of float64s
        {"dt": 1.0, "offset": 0, "masses_b64": "AAAAAAAA8A=="},
    ])
    def test_malformed_payload_raises_service_error(self, payload):
        with pytest.raises(ServiceError):
            pdf_from_wire(payload)


class TestSizingResultRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        circuit = parse_bench(C17_BENCH, name="c17")
        return PrunedStatisticalSizer(
            circuit, config=FAST, max_iterations=3
        ).run()

    def test_round_trip_equals_original(self, result):
        back = sizing_result_from_wire(
            _round_trip_json(sizing_result_to_wire(result))
        )
        assert back == result

    def test_round_trip_preserves_derived_metrics(self, result):
        back = sizing_result_from_wire(
            _round_trip_json(sizing_result_to_wire(result))
        )
        assert back.cache_hits == result.cache_hits
        assert back.cache_hit_rate == result.cache_hit_rate
        assert back.improvement_percent == result.improvement_percent
        assert back.n_iterations == result.n_iterations
        assert [s.stats for s in back.steps] == [
            s.stats for s in result.steps
        ]

    def test_malformed_payload_raises_service_error(self, result):
        wire = sizing_result_to_wire(result)
        del wire["steps"]
        with pytest.raises(ServiceError):
            sizing_result_from_wire(wire)
