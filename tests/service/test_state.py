"""ServiceState tests: sessions, residency, eviction, snapshots.

The server-vs-local bitwise invariant and the concurrent-session
behaviour live in ``test_server.py``; this file pins the domain layer
in isolation (no HTTP).
"""

import threading

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.errors import ServiceError
from repro.netlist.benchmarks import load
from repro.service.protocol import pdf_from_wire, sizing_result_from_wire
from repro.service.state import ServiceState
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta

FAST = AnalysisConfig(dt=8.0, delta_w=1.0)


@pytest.fixture
def state():
    return ServiceState(config=FAST, cache=4096)


def _local_sink(name, scale=1.0, config=FAST):
    """Reference sink distribution: a plain local run, no cache."""
    cfg = config.with_updates(cache=None, jobs=1)
    circuit = load(name, scale=scale)
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=cfg)
    return run_ssta(graph, model, config=cfg).sink_pdf


class TestConstruction:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ServiceError, match="max_resident"):
            ServiceState(config=FAST, max_resident=0)
        with pytest.raises(ServiceError, match="TTL"):
            ServiceState(config=FAST, ttl_s=0.0)
        with pytest.raises(ServiceError, match="budget"):
            ServiceState(config=FAST, cache_budget_bytes=-1)

    def test_base_config_never_carries_jobs_or_foreign_cache(self, state):
        assert state.base_config.cache is None
        assert state.base_config.jobs == 1


class TestSessions:
    def test_open_use_close(self, state):
        sid = state.open_session({"level_batch": False})
        out = state.analyze("c17", session_id=sid)
        assert out["kernel"]["requests"] > 0
        summary = state.close_session(sid)
        assert summary["requests"] == 1
        assert summary["kernel_requests"] == out["kernel"]["requests"]
        assert summary["overrides"] == {"level_batch": False}

    def test_unknown_session_rejected(self, state):
        with pytest.raises(ServiceError, match="unknown session"):
            state.analyze("c17", session_id="nope")
        with pytest.raises(ServiceError, match="unknown session"):
            state.close_session("nope")

    def test_bad_override_rejected_at_open(self, state):
        with pytest.raises(ServiceError, match="not overridable"):
            state.open_session({"cache": 16})
        with pytest.raises(ServiceError, match="not overridable"):
            state.open_session({"jobs": 4})
        with pytest.raises(ServiceError, match="bad config override"):
            state.open_session({"dt": -1.0})

    def test_session_overrides_change_numbers(self, state):
        coarse = state.open_session()
        fine = state.open_session({"dt": 4.0})
        a = state.analyze("c17", session_id=coarse)
        b = state.analyze("c17", session_id=fine)
        assert a["percentiles"][2][1] != b["percentiles"][2][1]

    def test_hit_rate_tally(self, state):
        sid = state.open_session()
        state.analyze("c17", session_id=sid)
        state.analyze("c17", session_id=sid)
        summary = state.close_session(sid)
        # Second identical analysis replays entirely from the cache.
        assert summary["kernel_hits"] > 0
        assert 0.0 < summary["hit_rate"] <= 1.0


class TestAnalyze:
    def test_matches_local_run_bitwise(self, state):
        out = state.analyze("c17")
        remote = pdf_from_wire(out["sink"])
        local = _local_sink("c17")
        assert remote.dt == local.dt
        assert remote.offset == local.offset
        assert np.array_equal(
            np.asarray(remote.masses), np.asarray(local.masses)
        )
        for p, value in out["percentiles"]:
            assert value == local.percentile(p)

    def test_scaled_variant_is_distinct(self, state):
        a = state.analyze("c432", scale=0.2)
        b = state.analyze("c432", scale=0.3)
        assert a["gates"] != b["gates"]

    def test_unknown_circuit_rejected(self, state):
        with pytest.raises(ServiceError, match="unknown circuit"):
            state.analyze("c9999")

    def test_repeat_hits_cache(self, state):
        first = state.analyze("c17")
        second = state.analyze("c17")
        assert second["kernel"]["cache_hits"] == \
            second["kernel"]["requests"]
        assert second["sink"] == first["sink"]


class TestOptimize:
    def test_matches_local_sizer_run(self, state):
        out = state.optimize("c17", iterations=3)
        remote = sizing_result_from_wire(out["result"])
        local = PrunedStatisticalSizer(
            load("c17"),
            config=FAST.with_updates(cache=None, jobs=1),
            max_iterations=3,
        ).run()
        assert remote.final_objective == local.final_objective
        assert [s.gate for s in remote.steps] == \
            [s.gate for s in local.steps]
        assert [s.objective_after for s in remote.steps] == \
            [s.objective_after for s in local.steps]

    def test_does_not_mutate_resident_circuit(self, state):
        before = state.analyze("c17")
        state.optimize("c17", iterations=3)
        after = state.analyze("c17")
        assert after["sink"] == before["sink"]

    def test_unknown_sizer_rejected(self, state):
        with pytest.raises(ServiceError, match="unknown sizer"):
            state.optimize("c17", sizer="magic")

    def test_deterministic_sizer_supported(self, state):
        out = state.optimize("c17", iterations=2, sizer="deterministic")
        assert out["sizer"] == "deterministic"
        assert out["result"]["optimizer"] == "deterministic"

    def test_bad_iterations_rejected(self, state):
        with pytest.raises(ServiceError):
            state.optimize("c17", iterations=0)


class TestYield:
    def test_yield_query(self, state):
        out = state.yield_query("c17", target=300.0, n_points=8)
        assert out["yield_at_target"] == pytest.approx(1.0, abs=0.05)
        assert len(out["yield_curve"]) == 8
        curve = [y for _, y in out["yield_curve"]]
        assert curve == sorted(curve)
        local = _local_sink("c17")
        remote = pdf_from_wire(out["sink"])
        assert np.array_equal(
            np.asarray(remote.masses), np.asarray(local.masses)
        )


class TestResidency:
    def test_lru_bound_enforced(self):
        state = ServiceState(config=FAST, max_resident=2)
        state.analyze("c17", scale=1.0)
        state.analyze("c17", scale=0.9)
        state.analyze("c17", scale=0.8)
        assert len(state._resident) == 2
        scales = {key[1] for key in state._resident}
        assert scales == {0.9, 0.8}  # scale=1.0 was the LRU

    def test_ttl_eviction(self):
        state = ServiceState(config=FAST, ttl_s=1e-9, session_ttl_s=1e-9)
        sid = state.open_session()
        state.analyze("c17", session_id=sid)
        # Any later request evicts both the idle circuit and session.
        state.analyze("c17")
        assert sid not in state._sessions
        with pytest.raises(ServiceError, match="unknown session"):
            state.analyze("c17", session_id=sid)

    def test_distinct_configs_get_distinct_entries(self, state):
        state.analyze("c17")
        state.analyze("c17", config_overrides={"dt": 4.0})
        assert len(state._resident) == 2


class TestCacheBudget:
    def test_budget_enforced_after_requests(self):
        state = ServiceState(config=FAST, cache_budget_bytes=10_000)
        state.analyze("c432", scale=0.3)
        assert state.cache.approx_bytes <= 10_000
        # ...and the analysis still matches the uncapped local run.
        out = state.analyze("c17")
        local = _local_sink("c17")
        remote = pdf_from_wire(out["sink"])
        assert np.array_equal(
            np.asarray(remote.masses), np.asarray(local.masses)
        )


class TestSnapshotLifecycle:
    def test_flush_and_warm_start(self, tmp_path):
        snap = tmp_path / "svc.cache"
        state = ServiceState(config=FAST, cache_file=snap)
        state.analyze("c17")
        written = state.flush()
        assert written == len(state.cache) > 0

        warm = ServiceState(config=FAST, cache_file=snap)
        assert warm.loaded_entries == written
        out = warm.analyze("c17")
        # The warmed run replays entirely from the snapshot...
        assert out["kernel"]["cache_hits"] == out["kernel"]["requests"]
        # ...bitwise.
        local = _local_sink("c17")
        remote = pdf_from_wire(out["sink"])
        assert np.array_equal(
            np.asarray(remote.masses), np.asarray(local.masses)
        )

    def test_flush_without_file_is_noop(self, state):
        assert state.flush() == 0

    def test_concurrent_flushes_are_serialized(self, tmp_path):
        snap = tmp_path / "svc.cache"
        state = ServiceState(config=FAST, cache_file=snap)
        state.analyze("c17")
        errors = []

        def flusher():
            try:
                for _ in range(10):
                    state.flush()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=flusher) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        warm = ServiceState(config=FAST, cache_file=snap)
        assert warm.loaded_entries == len(state.cache)


class TestStats:
    def test_stats_shape(self, state):
        sid = state.open_session()
        state.analyze("c17", session_id=sid)
        state.record_latency("POST /analyze", 0.02)
        state.record_latency("POST /analyze", 0.04)
        stats = state.stats()
        assert stats["cache"]["requests"] == \
            stats["cache"]["hits"] + stats["cache"]["misses"]
        assert sid in stats["sessions"]
        assert stats["resident_circuits"][0]["circuit"] == "c17"
        lat = stats["requests"]["POST /analyze"]
        assert lat["count"] == 2
        assert lat["p50_ms"] in (20.0, 40.0)
        assert lat["p99_ms"] == 40.0
        # Shared-memory operand accounting is surfaced for operators:
        # a serial-only state holds no live arenas.
        arena = stats["arena"]
        assert set(arena) == {"arenas", "segments", "bytes", "detail"}
        assert arena["arenas"] >= 0
        assert arena["detail"] == []  # serial state: no live arenas
