"""Unit tests for the shared sizer scaffolding (Selection, SizingStep,
SizingResult, IterationStats)."""

import pytest

from repro.core.objectives import PercentileObjective
from repro.core.sizer_base import (
    IterationStats,
    Selection,
    SizingResult,
    SizingStep,
)
from repro.errors import OptimizationError
from repro.netlist.circuit import Gate
from repro.library.library import default_library

LIB = default_library()


def make_gate(name="g1"):
    return Gate(LIB.get("INV_X1"), ["a"], name)


class TestIterationStats:
    def test_pruned_fraction(self):
        stats = IterationStats(candidates=10, pruned=7)
        assert stats.pruned_fraction == pytest.approx(0.7)

    def test_pruned_fraction_no_candidates(self):
        assert IterationStats().pruned_fraction == 0.0


class TestSelection:
    def test_empty_selection(self):
        sel = Selection([], 100.0, 100.0, IterationStats())
        assert sel.best_gate is None
        assert sel.best_sensitivity == 0.0

    def test_best_is_first(self):
        g1, g2 = make_gate("g1"), make_gate("g2")
        sel = Selection([(g1, 5.0), (g2, 3.0)], 100.0, 92.0, IterationStats())
        assert sel.best_gate is g1
        assert sel.best_sensitivity == 5.0


class TestSizingStep:
    def test_all_gates_single(self):
        step = SizingStep(0, "g1", 1.0, 100.0, 99.0, 10.0)
        assert step.all_gates == ("g1",)

    def test_all_gates_multi(self):
        step = SizingStep(0, "g1", 1.0, 100.0, 97.0, 10.0,
                          extra_gates=("g2", "g3"))
        assert step.all_gates == ("g1", "g2", "g3")


def make_result(steps, initial_widths):
    return SizingResult(
        optimizer="test",
        circuit_name="t",
        objective_name="99-percentile delay",
        delta_w=1.0,
        initial_objective=100.0,
        final_objective=90.0,
        initial_size=5.0,
        final_size=5.0 + sum(len(s.all_gates) for s in steps),
        initial_widths=initial_widths,
        steps=steps,
        stop_reason="max_iterations",
        total_time_s=1.0,
    )


class TestSizingResult:
    def test_metrics(self):
        steps = [
            SizingStep(0, "g1", 5.0, 100.0, 95.0, 6.0),
            SizingStep(1, "g2", 3.0, 95.0, 92.0, 7.0),
        ]
        result = make_result(steps, {"g1": 1.0, "g2": 1.0})
        assert result.n_iterations == 2
        assert result.size_increase_percent == pytest.approx(40.0)
        assert result.improvement_percent == pytest.approx(10.0)

    def test_iteration_time_range(self):
        steps = [
            SizingStep(0, "g1", 1.0, 100.0, 99.0, 6.0,
                       stats=IterationStats(wall_time_s=0.5)),
            SizingStep(1, "g1", 1.0, 99.0, 98.0, 7.0,
                       stats=IterationStats(wall_time_s=1.5)),
        ]
        result = make_result(steps, {"g1": 1.0})
        assert result.mean_iteration_time_s == pytest.approx(1.0)
        assert result.iteration_time_range() == (0.5, 1.5)

    def test_empty_run(self):
        result = make_result([], {"g1": 1.0})
        assert result.mean_iteration_time_s == 0.0
        assert result.iteration_time_range() == (0.0, 0.0)
        sizes, objectives = result.area_delay_curve()
        assert sizes == [5.0]
        assert objectives == [100.0]

    def test_widths_replay_multi_gate(self):
        steps = [
            SizingStep(0, "g1", 2.0, 100.0, 96.0, 7.0, extra_gates=("g2",)),
            SizingStep(1, "g1", 1.0, 96.0, 95.0, 8.0),
        ]
        result = make_result(steps, {"g1": 1.0, "g2": 1.0})
        assert result.widths_at_iteration(0) == {"g1": 1.0, "g2": 1.0}
        assert result.widths_at_iteration(1) == {"g1": 2.0, "g2": 2.0}
        assert result.widths_at_iteration(2) == {"g1": 3.0, "g2": 2.0}

    def test_widths_replay_out_of_range(self):
        result = make_result([], {"g1": 1.0})
        with pytest.raises(OptimizationError):
            result.widths_at_iteration(1)
        with pytest.raises(OptimizationError):
            result.widths_at_iteration(-1)
