"""Unit tests for the three coordinate-descent sizers."""

import pytest

from repro.core.brute_force_sizer import BruteForceStatisticalSizer
from repro.core.deterministic_sizer import DeterministicSizer
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.core.objectives import PercentileObjective
from repro.errors import OptimizationError
from repro.library.sizing import SizingLimits, total_gate_size


class TestOuterLoop:
    def test_iterations_respected(self, c17, fast_config):
        sizer = PrunedStatisticalSizer(c17, config=fast_config, max_iterations=3)
        result = sizer.run()
        assert result.n_iterations <= 3

    def test_every_step_adds_dw(self, c17, fast_config):
        sizer = PrunedStatisticalSizer(c17, config=fast_config, max_iterations=4)
        result = sizer.run()
        expected = 6.0 + result.n_iterations * fast_config.delta_w
        assert total_gate_size(c17) == pytest.approx(expected)

    def test_objective_decreases_monotonically(self, c17, fast_config):
        sizer = PrunedStatisticalSizer(c17, config=fast_config, max_iterations=6)
        result = sizer.run()
        values = [result.initial_objective] + [s.objective_after for s in result.steps]
        assert all(b < a + 1e-9 for a, b in zip(values, values[1:]))

    def test_objective_after_consistent_with_next_before(self, c17, fast_config):
        sizer = PrunedStatisticalSizer(c17, config=fast_config, max_iterations=5)
        result = sizer.run()
        for prev, nxt in zip(result.steps, result.steps[1:]):
            assert prev.objective_after == pytest.approx(nxt.objective_before, abs=1e-9)

    def test_trajectory_replay(self, c17, fast_config):
        sizer = PrunedStatisticalSizer(c17, config=fast_config, max_iterations=4)
        result = sizer.run()
        final = result.widths_at_iteration(result.n_iterations)
        assert final == c17.widths()
        start = result.widths_at_iteration(0)
        assert all(w == 1.0 for w in start.values())

    def test_replay_bounds(self, c17, fast_config):
        sizer = PrunedStatisticalSizer(c17, config=fast_config, max_iterations=2)
        result = sizer.run()
        with pytest.raises(OptimizationError):
            result.widths_at_iteration(99)

    def test_width_limits_respected(self, c17, fast_config):
        limits = SizingLimits(w_max=2.0)
        sizer = PrunedStatisticalSizer(
            c17, config=fast_config, max_iterations=50, limits=limits
        )
        result = sizer.run()
        assert all(g.width <= 2.0 + 1e-12 for g in c17.gates())
        assert result.stop_reason in ("width_limits", "converged", "max_iterations")

    def test_invalid_max_iterations(self, c17, fast_config):
        with pytest.raises(OptimizationError):
            PrunedStatisticalSizer(c17, config=fast_config, max_iterations=0)

    def test_area_delay_curve_shape(self, c17, fast_config):
        sizer = PrunedStatisticalSizer(c17, config=fast_config, max_iterations=3)
        result = sizer.run()
        sizes, objectives = result.area_delay_curve()
        assert len(sizes) == len(objectives) == result.n_iterations + 1
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))

    def test_result_metadata(self, c17, fast_config):
        result = PrunedStatisticalSizer(
            c17, config=fast_config, max_iterations=2
        ).run()
        assert result.optimizer == "pruned-statistical"
        assert result.circuit_name == "c17"
        assert "99" in result.objective_name
        assert result.total_time_s > 0.0
        assert result.size_increase_percent > 0.0
        assert result.improvement_percent > 0.0


class TestDeterministicSizer:
    def test_improves_nominal_delay(self, c17, fast_config):
        from repro.timing.delay_model import DelayModel
        from repro.timing.graph import TimingGraph
        from repro.timing.sta import run_sta

        graph = TimingGraph(c17)
        model = DelayModel(c17, fast_config and None, fast_config)
        before = run_sta(graph, model).circuit_delay
        DeterministicSizer(c17, config=fast_config, max_iterations=8).run()
        after = run_sta(graph, model).circuit_delay
        assert after < before

    def test_only_sizes_critical_gates(self, two_path, fast_config):
        result = DeterministicSizer(
            two_path, config=fast_config, max_iterations=5
        ).run()
        for step in result.steps:
            assert step.gate != "s1"  # short path never critical

    def test_slack_margin_widens_candidates(self, c17, fast_config):
        wide = DeterministicSizer(
            c17, config=fast_config, max_iterations=1, slack_margin=1e9
        )
        stats = wide._select_gate().stats  # noqa: SLF001
        narrow = DeterministicSizer(
            c17.copy(), config=fast_config, max_iterations=1
        )
        stats2 = narrow._select_gate().stats  # noqa: SLF001
        assert stats.candidates >= stats2.candidates

    def test_objective_is_sta_delay(self, c17, fast_config):
        result = DeterministicSizer(c17, config=fast_config, max_iterations=3).run()
        # Deterministic sensitivities act on the nominal delay; the
        # recorded objective values are STA delays in ps.
        assert result.initial_objective > 0.0
        assert result.final_objective < result.initial_objective


class TestStatisticalSizers:
    def test_brute_force_improves_99(self, c17, fast_config):
        result = BruteForceStatisticalSizer(
            c17, config=fast_config, max_iterations=5
        ).run()
        assert result.final_objective < result.initial_objective

    def test_pruned_improves_99(self, c17, fast_config):
        result = PrunedStatisticalSizer(
            c17, config=fast_config, max_iterations=5
        ).run()
        assert result.final_objective < result.initial_objective

    def test_converges_when_no_gate_helps(self, chain3, fast_config):
        """In the chain every interior up-sizing hurts (see the delay
        model tests), so only n1 helps until the effort balance runs
        out; the sizer must stop with reason 'converged' eventually."""
        result = PrunedStatisticalSizer(
            chain3, config=fast_config, max_iterations=200,
        ).run()
        assert result.stop_reason in ("converged", "width_limits")

    def test_pruning_stats_populated(self, c17, fast_config):
        result = PrunedStatisticalSizer(
            c17, config=fast_config, max_iterations=2
        ).run()
        for step in result.steps:
            assert step.stats.candidates == 6
            assert 0 <= step.stats.pruned < 6
            assert step.stats.wall_time_s > 0.0
            assert step.stats.convolutions > 0

    def test_custom_percentile_objective(self, c17, fast_config):
        obj = PercentileObjective(0.9)
        result = PrunedStatisticalSizer(
            c17, config=fast_config, objective=obj, max_iterations=3
        ).run()
        assert "90" in result.objective_name
        assert result.final_objective < result.initial_objective

    def test_mean_objective_supported_by_pruned(self, c17, fast_config):
        from repro.core.objectives import MeanObjective

        result = PrunedStatisticalSizer(
            c17, config=fast_config, objective=MeanObjective(), max_iterations=3
        ).run()
        assert result.final_objective < result.initial_objective
