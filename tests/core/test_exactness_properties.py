"""Hypothesis: pruned == brute force on random circuits.

The strongest form of the paper's accuracy claim — for *any* circuit
the generator can produce, the pruned optimizer's selections and
sensitivities equal the brute-force optimizer's exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AnalysisConfig
from repro.core.brute_force_sizer import BruteForceStatisticalSizer
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.netlist.generate import CircuitSpec, generate_circuit

CFG = AnalysisConfig(dt=8.0, delta_w=1.0)


@st.composite
def small_circuits(draw):
    n_gates = draw(st.integers(min_value=6, max_value=24))
    depth = draw(st.integers(min_value=2, max_value=min(6, n_gates)))
    edges = draw(
        st.integers(min_value=int(1.5 * n_gates), max_value=int(2.4 * n_gates))
    )
    spec = CircuitSpec(
        name="hyp",
        n_inputs=draw(st.integers(min_value=4, max_value=8)),
        n_outputs=2,
        n_gates=n_gates,
        n_pin_edges=min(edges, 4 * n_gates),
        depth=depth,
        seed=draw(st.integers(min_value=0, max_value=9999)),
    )
    return spec


class TestExactnessProperty:
    @settings(max_examples=10, deadline=None)
    @given(spec=small_circuits())
    def test_pruned_equals_brute_force(self, spec):
        bf = BruteForceStatisticalSizer(
            generate_circuit(spec), config=CFG, max_iterations=2
        ).run()
        pr = PrunedStatisticalSizer(
            generate_circuit(spec), config=CFG, max_iterations=2
        ).run()
        assert [s.gate for s in bf.steps] == [s.gate for s in pr.steps]
        assert [s.sensitivity for s in bf.steps] == [
            s.sensitivity for s in pr.steps
        ]
        assert bf.final_objective == pr.final_objective

    @settings(max_examples=8, deadline=None)
    @given(spec=small_circuits())
    def test_incremental_equals_fresh(self, spec):
        fresh = PrunedStatisticalSizer(
            generate_circuit(spec), config=CFG, max_iterations=3
        ).run()
        inc = PrunedStatisticalSizer(
            generate_circuit(spec), config=CFG, max_iterations=3,
            incremental_ssta=True,
        ).run()
        assert [s.gate for s in fresh.steps] == [s.gate for s in inc.steps]
        assert fresh.final_objective == inc.final_objective
