"""Tests for the paper's extension points: multi-gate iterations and
the heuristic (future-work) sizer."""

import pytest

from repro.core.brute_force_sizer import BruteForceStatisticalSizer
from repro.core.heuristic_sizer import HeuristicStatisticalSizer
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.errors import OptimizationError


class TestMultiGateIterations:
    def test_invalid_count(self, c17, fast_config):
        with pytest.raises(OptimizationError):
            PrunedStatisticalSizer(
                c17, config=fast_config, gates_per_iteration=0
            )

    def test_sizes_multiple_gates(self, c17, fast_config):
        sizer = PrunedStatisticalSizer(
            c17, config=fast_config, gates_per_iteration=2, max_iterations=2
        )
        result = sizer.run()
        assert result.steps
        # At least one iteration should have found 2 improving gates.
        assert any(len(s.all_gates) == 2 for s in result.steps)

    def test_total_size_accounts_all_moves(self, c17, fast_config):
        sizer = PrunedStatisticalSizer(
            c17, config=fast_config, gates_per_iteration=2, max_iterations=2
        )
        result = sizer.run()
        moves = sum(len(s.all_gates) for s in result.steps)
        assert result.final_size == pytest.approx(
            result.initial_size + moves * fast_config.delta_w
        )

    def test_replay_includes_extra_gates(self, c17, fast_config):
        sizer = PrunedStatisticalSizer(
            c17, config=fast_config, gates_per_iteration=2, max_iterations=2
        )
        result = sizer.run()
        final = result.widths_at_iteration(result.n_iterations)
        assert final == c17.widths()

    def test_first_move_is_best(self, c17, fast_config):
        sizer = PrunedStatisticalSizer(
            c17, config=fast_config, gates_per_iteration=3, max_iterations=1
        )
        selection = sizer._select_gate()  # noqa: SLF001
        sensitivities = [s for _g, s in selection.moves]
        assert sensitivities == sorted(sensitivities, reverse=True)
        assert all(s > 0 for s in sensitivities)

    def test_top1_matches_single_gate_mode(self, c17, fast_config):
        multi = PrunedStatisticalSizer(
            c17.copy(), config=fast_config, gates_per_iteration=1,
            max_iterations=3,
        ).run()
        single = PrunedStatisticalSizer(
            c17.copy(), config=fast_config, max_iterations=3
        ).run()
        assert [s.gate for s in multi.steps] == [s.gate for s in single.steps]

    def test_still_improves_objective(self, c17, fast_config):
        result = PrunedStatisticalSizer(
            c17, config=fast_config, gates_per_iteration=2, max_iterations=3
        ).run()
        assert result.final_objective < result.initial_objective

    def test_multi_converges_faster_per_ssta(self, fast_config):
        """N gates per iteration reach a given area with ~N times fewer
        SSTA refreshes."""
        from repro.netlist.benchmarks import load

        single = PrunedStatisticalSizer(
            load("c432", scale=0.25), config=fast_config, max_iterations=6
        ).run()
        multi = PrunedStatisticalSizer(
            load("c432", scale=0.25), config=fast_config,
            gates_per_iteration=3, max_iterations=2,
        ).run()
        moves_multi = sum(len(s.all_gates) for s in multi.steps)
        assert moves_multi >= single.n_iterations
        assert multi.n_iterations < single.n_iterations


class TestHeuristicSizer:
    def test_invalid_beam(self, c17, fast_config):
        with pytest.raises(OptimizationError):
            HeuristicStatisticalSizer(c17, config=fast_config, beam_width=0)

    def test_improves_objective(self, c17, fast_config):
        result = HeuristicStatisticalSizer(
            c17, config=fast_config, beam_width=2, max_iterations=5
        ).run()
        assert result.final_objective < result.initial_objective

    def test_wide_beam_matches_exact(self, c17, fast_config):
        exact = BruteForceStatisticalSizer(
            c17.copy(), config=fast_config, max_iterations=4
        ).run()
        heur = HeuristicStatisticalSizer(
            c17.copy(), config=fast_config, beam_width=6, max_iterations=4
        ).run()
        assert [s.gate for s in exact.steps] == [s.gate for s in heur.steps]
        assert [s.sensitivity for s in exact.steps] == [
            s.sensitivity for s in heur.steps
        ]

    def test_narrow_beam_never_worse_than_no_optimization(self, fast_config):
        from repro.netlist.benchmarks import load

        result = HeuristicStatisticalSizer(
            load("c432", scale=0.3), config=fast_config, beam_width=1,
            max_iterations=6,
        ).run()
        assert result.final_objective <= result.initial_objective

    def test_beam_prunes_rest(self, c17, fast_config):
        sizer = HeuristicStatisticalSizer(
            c17, config=fast_config, beam_width=2, max_iterations=1
        )
        selection = sizer._select_gate()  # noqa: SLF001
        assert selection.stats.pruned == 6 - 2
        assert selection.stats.finished_fronts == 2

    def test_narrow_beam_quality_bounded(self, fast_config):
        """The beam winner's sensitivity must be within the best
        initial bound of the exact winner's sensitivity (the heuristic's
        a-priori guarantee)."""
        from repro.netlist.benchmarks import load

        circuit = load("c432", scale=0.3)
        exact = BruteForceStatisticalSizer(
            circuit.copy(), config=fast_config, max_iterations=1
        )
        sel_exact = exact._select_gate()  # noqa: SLF001
        heur = HeuristicStatisticalSizer(
            circuit.copy(), config=fast_config, beam_width=4, max_iterations=1
        )
        sel_heur = heur._select_gate()  # noqa: SLF001
        assert sel_heur.best_sensitivity <= sel_exact.best_sensitivity + 1e-9
        assert sel_heur.best_sensitivity >= 0.0


class TestIncrementalSizer:
    def test_incremental_matches_full(self, c17, fast_config):
        """incremental_ssta=True must reproduce the literal-pseudocode
        trajectory bit for bit (the update is exact)."""
        full = PrunedStatisticalSizer(
            c17.copy(), config=fast_config, max_iterations=6
        ).run()
        inc = PrunedStatisticalSizer(
            c17.copy(), config=fast_config, max_iterations=6,
            incremental_ssta=True,
        ).run()
        assert [s.gate for s in full.steps] == [s.gate for s in inc.steps]
        assert [s.sensitivity for s in full.steps] == [
            s.sensitivity for s in inc.steps
        ]
        assert full.final_objective == inc.final_objective

    def test_incremental_on_benchmark(self, fast_config):
        from repro.netlist.benchmarks import load

        full = PrunedStatisticalSizer(
            load("c432", scale=0.25), config=fast_config, max_iterations=4
        ).run()
        inc = PrunedStatisticalSizer(
            load("c432", scale=0.25), config=fast_config, max_iterations=4,
            incremental_ssta=True,
        ).run()
        assert [s.gate for s in full.steps] == [s.gate for s in inc.steps]

    def test_incremental_with_multi_gate(self, c17, fast_config):
        result = PrunedStatisticalSizer(
            c17, config=fast_config, max_iterations=3,
            incremental_ssta=True, gates_per_iteration=2,
        ).run()
        assert result.final_objective < result.initial_objective
