"""Unit tests for optimization objectives."""

import pytest

from repro.core.objectives import (
    MeanObjective,
    MeanPlusSigmaObjective,
    PercentileObjective,
    default_objective,
)
from repro.dist.families import truncated_gaussian_pdf
from repro.dist.pdf import DiscretePDF
from repro.errors import OptimizationError


class TestPercentileObjective:
    def test_evaluates_percentile(self):
        pdf = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        obj = PercentileObjective(0.99)
        assert obj.evaluate(pdf) == pytest.approx(pdf.percentile(0.99))

    def test_median(self):
        pdf = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        assert PercentileObjective(0.5).evaluate(pdf) == pytest.approx(100.0, abs=1.0)

    def test_invalid_levels(self):
        with pytest.raises(OptimizationError):
            PercentileObjective(0.0)
        with pytest.raises(OptimizationError):
            PercentileObjective(1.0)

    def test_improvement_sign(self):
        slow = truncated_gaussian_pdf(1.0, 110.0, 10.0)
        fast = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        obj = PercentileObjective(0.99)
        assert obj.improvement(slow, fast) > 0.0
        assert obj.improvement(fast, slow) < 0.0

    def test_shift_bounded(self):
        assert PercentileObjective(0.99).shift_bounded

    def test_name(self):
        assert "99" in PercentileObjective(0.99).name

    def test_default(self):
        obj = default_objective()
        assert isinstance(obj, PercentileObjective)
        assert obj.p == 0.99


class TestMeanObjective:
    def test_evaluates_mean(self):
        pdf = DiscretePDF(1.0, 0, [0.5, 0.5])
        assert MeanObjective().evaluate(pdf) == pytest.approx(pdf.mean())

    def test_shift_bounded(self):
        assert MeanObjective().shift_bounded

    def test_mean_shift_within_max_gap(self):
        """The pruning-safety condition: |J(A) - J(A')| <= max gap."""
        from repro.dist.metrics import max_percentile_gap

        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        b = truncated_gaussian_pdf(1.0, 92.0, 14.0)
        obj = MeanObjective()
        assert abs(obj.improvement(a, b)) <= abs(
            max(max_percentile_gap(a, b), -max_percentile_gap(b, a))
        ) + 1e-9


class TestMeanPlusSigma:
    def test_value(self):
        pdf = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        obj = MeanPlusSigmaObjective(k=3.0)
        assert obj.evaluate(pdf) == pytest.approx(pdf.mean() + 3.0 * pdf.std())

    def test_not_shift_bounded(self):
        assert not MeanPlusSigmaObjective().shift_bounded

    def test_invalid_k(self):
        with pytest.raises(OptimizationError):
            MeanPlusSigmaObjective(k=-1.0)

    def test_pruned_sizer_rejects(self, c17, fast_config):
        from repro.core.pruned_sizer import PrunedStatisticalSizer

        with pytest.raises(OptimizationError, match="not bounded"):
            PrunedStatisticalSizer(
                c17, config=fast_config, objective=MeanPlusSigmaObjective()
            )

    def test_brute_force_accepts(self, c17, fast_config):
        from repro.core.brute_force_sizer import BruteForceStatisticalSizer

        sizer = BruteForceStatisticalSizer(
            c17, config=fast_config, objective=MeanPlusSigmaObjective(),
            max_iterations=2,
        )
        result = sizer.run()
        assert result.final_objective <= result.initial_objective
