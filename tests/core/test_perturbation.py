"""Unit tests for perturbation fronts (Theorem 1-4 machinery).

The two decisive properties are checked on every gate of several
circuits:

1. **Exactness** — a front propagated to the sink reproduces the
   brute-force (full SSTA rerun) sensitivity bit for bit.
2. **Bound monotonicity** — ``Smx`` never increases as a front
   advances, and always upper-bounds the final exact sensitivity
   (this is precisely Theorem 4).
"""

import numpy as np
import pytest

from repro.core.objectives import PercentileObjective
from repro.core.perturbation import PerturbationFront
from repro.core.sensitivity import perturbed_sink_pdf, statistical_sensitivity
from repro.errors import OptimizationError
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta

OBJ = PercentileObjective(0.99)


def setup(circuit, config):
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=config)
    base = run_ssta(graph, model)
    return graph, model, base


class TestInitialize:
    def test_width_restored(self, c17, fast_config):
        graph, model, base = setup(c17, fast_config)
        gate = c17.gate("16")
        PerturbationFront(graph, model, base, gate, 1.0, OBJ)
        assert gate.width == 1.0

    def test_invalid_dw(self, c17, fast_config):
        graph, model, base = setup(c17, fast_config)
        with pytest.raises(OptimizationError):
            PerturbationFront(graph, model, base, c17.gate("16"), 0.0, OBJ)

    def test_initial_smx_finite_after_init(self, c17, fast_config):
        graph, model, base = setup(c17, fast_config)
        front = PerturbationFront(graph, model, base, c17.gate("16"), 1.0, OBJ)
        assert np.isfinite(front.smx) or front.is_done

    def test_front_starts_at_affected_gates(self, c17, fast_config):
        graph, model, base = setup(c17, fast_config)
        gate = c17.gate("22")  # fanins 10, 16 are gates
        front = PerturbationFront(graph, model, base, gate, 1.0, OBJ)
        # After Initialize the front has advanced to (at least) 22's level.
        assert front.curr_level > graph.level(graph.gate_output_node(gate)) - 1


class TestExactness:
    @pytest.mark.parametrize("gate_name", ["10", "11", "16", "19", "22", "23"])
    def test_sensitivity_bitwise_equals_brute_force(self, c17, fast_config, gate_name):
        graph, model, base = setup(c17, fast_config)
        base_obj = OBJ.evaluate(base.sink_pdf)
        gate = c17.gate(gate_name)
        dw = 1.0
        front = PerturbationFront(graph, model, base, gate, dw, OBJ)
        s_front = front.run_to_sink()
        s_brute = statistical_sensitivity(graph, model, gate, dw, OBJ, base_obj)
        assert s_front == s_brute  # bitwise, not approximately

    @pytest.mark.parametrize("gate_name", ["16", "22"])
    def test_sink_pdf_bitwise_equal(self, c17, fast_config, gate_name):
        graph, model, base = setup(c17, fast_config)
        gate = c17.gate(gate_name)
        front = PerturbationFront(graph, model, base, gate, 1.0, OBJ)
        front.run_to_sink()
        brute = perturbed_sink_pdf(graph, model, gate, 1.0)
        if front.sink_pdf is None:
            # Perturbation died out: brute sink must equal base sink.
            assert brute.allclose(base.sink_pdf, atol=0.0)
        else:
            assert front.sink_pdf.offset == brute.offset
            assert np.array_equal(front.sink_pdf.masses, brute.masses)

    def test_exactness_without_drop_identical(self, c17, fast_config):
        graph, model, base = setup(c17, fast_config)
        base_obj = OBJ.evaluate(base.sink_pdf)
        for gate in c17.gates():
            front = PerturbationFront(
                graph, model, base, gate, 1.0, OBJ, drop_identical=False
            )
            s_front = front.run_to_sink()
            s_brute = statistical_sensitivity(graph, model, gate, 1.0, OBJ, base_obj)
            assert s_front == s_brute

    def test_exactness_on_generated_circuit(self, fast_config):
        from repro.netlist.generate import CircuitSpec, generate_circuit

        spec = CircuitSpec("px", n_inputs=5, n_outputs=3, n_gates=30,
                           n_pin_edges=62, depth=6, seed=12)
        circuit = generate_circuit(spec)
        graph, model, base = setup(circuit, fast_config)
        base_obj = OBJ.evaluate(base.sink_pdf)
        for gate in list(circuit.gates())[::3]:
            front = PerturbationFront(graph, model, base, gate, 1.0, OBJ)
            assert front.run_to_sink() == statistical_sensitivity(
                graph, model, gate, 1.0, OBJ, base_obj
            )


class TestBoundMonotonicity:
    """The regime-qualified Theorem-4 invariant.

    While the bound is positive it can only shrink; a negative bound
    (a degradation) may be masked back toward zero by a max with
    unperturbed arrivals but can never cross into genuine improvement:
    ``Smx_next <= max(Smx_prev, 0)``.
    """

    def test_smx_never_exceeds_positive_envelope(self, c17, fast_config):
        graph, model, base = setup(c17, fast_config)
        for gate in c17.gates():
            front = PerturbationFront(graph, model, base, gate, 1.0, OBJ)
            prev = front.smx
            while not front.is_done:
                front.propagate_one_level()
                assert front.smx <= max(prev, 0.0) + 1e-6
                prev = front.smx

    def test_smx_bounds_final_sensitivity(self, c17, fast_config):
        graph, model, base = setup(c17, fast_config)
        for gate in c17.gates():
            front = PerturbationFront(graph, model, base, gate, 1.0, OBJ)
            bounds = [front.smx]
            while not front.is_done:
                front.propagate_one_level()
                bounds.append(front.smx)
            assert front.sensitivity is not None
            for b in bounds:
                assert max(b, 0.0) >= front.sensitivity - 1e-9

    def test_smx_monotone_on_generated_circuit(self, fast_config):
        from repro.netlist.generate import CircuitSpec, generate_circuit

        spec = CircuitSpec("pm", n_inputs=6, n_outputs=3, n_gates=40,
                           n_pin_edges=84, depth=8, seed=3)
        circuit = generate_circuit(spec)
        graph, model, base = setup(circuit, fast_config)
        for gate in list(circuit.gates())[::4]:
            front = PerturbationFront(graph, model, base, gate, 1.0, OBJ)
            prev = front.smx
            while not front.is_done:
                front.propagate_one_level()
                assert front.smx <= max(prev, 0.0) + 1e-6
                prev = front.smx

    def test_positive_bounds_strictly_monotone(self, c17, fast_config):
        """In the positive regime (the one the optimizer prunes in) the
        bound is genuinely non-increasing."""
        graph, model, base = setup(c17, fast_config)
        for gate in c17.gates():
            front = PerturbationFront(graph, model, base, gate, 1.0, OBJ)
            prev = front.smx
            while not front.is_done:
                front.propagate_one_level()
                if prev > 0.0 and front.smx > 0.0:
                    assert front.smx <= prev + 1e-9
                prev = front.smx


class TestFrontMechanics:
    def test_run_to_sink_idempotent_state(self, c17, fast_config):
        graph, model, base = setup(c17, fast_config)
        front = PerturbationFront(graph, model, base, c17.gate("16"), 1.0, OBJ)
        s = front.run_to_sink()
        assert front.is_done
        # Extra propagation calls are harmless no-ops.
        front.propagate_one_level()
        assert front.sensitivity == s

    def test_levels_propagated_counted(self, c17, fast_config):
        graph, model, base = setup(c17, fast_config)
        front = PerturbationFront(graph, model, base, c17.gate("10"), 1.0, OBJ)
        front.run_to_sink()
        assert front.levels_propagated >= 2
        assert front.nodes_computed >= 2

    def test_front_size_returns_to_zero(self, c17, fast_config):
        graph, model, base = setup(c17, fast_config)
        front = PerturbationFront(graph, model, base, c17.gate("16"), 1.0, OBJ)
        front.run_to_sink()
        assert front.front_size == 0

    def test_smx_equals_sensitivity_when_done(self, c17, fast_config):
        graph, model, base = setup(c17, fast_config)
        front = PerturbationFront(graph, model, base, c17.gate("16"), 1.0, OBJ)
        s = front.run_to_sink()
        assert front.smx == s

    def test_counter_attribution(self, c17, fast_config):
        from repro.dist.ops import OpCounter

        graph, model, base = setup(c17, fast_config)
        counter = OpCounter()
        front = PerturbationFront(
            graph, model, base, c17.gate("16"), 1.0, OBJ, counter=counter
        )
        front.run_to_sink()
        assert counter.total_ops > 0
        # A front must do less work than the full SSTA it replaces.
        full = OpCounter()
        run_ssta(graph, model, counter=full)
        assert counter.convolutions <= full.convolutions
