"""The paper's headline accuracy claim, as an integration test.

Section 4: "Our optimization results are identical with those of the
brute force approach" — the pruning algorithm is exact, not a
heuristic.  These tests run the pruned and brute-force sizers side by
side on several circuits and demand *identical* gate selections,
sensitivities, and final objective values.
"""

import pytest

from repro.core.brute_force_sizer import BruteForceStatisticalSizer
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.netlist.generate import CircuitSpec, generate_circuit


def run_pair(make_circuit, config, iterations):
    bf = BruteForceStatisticalSizer(
        make_circuit(), config=config, max_iterations=iterations
    ).run()
    pr = PrunedStatisticalSizer(
        make_circuit(), config=config, max_iterations=iterations
    ).run()
    return bf, pr


class TestExactEquivalence:
    def test_c17_selections_identical(self, fast_config):
        from repro.netlist.bench import C17_BENCH, parse_bench

        bf, pr = run_pair(
            lambda: parse_bench(C17_BENCH, name="c17"), fast_config, 8
        )
        assert [s.gate for s in bf.steps] == [s.gate for s in pr.steps]

    def test_c17_sensitivities_identical(self, fast_config):
        from repro.netlist.bench import C17_BENCH, parse_bench

        bf, pr = run_pair(
            lambda: parse_bench(C17_BENCH, name="c17"), fast_config, 8
        )
        assert [s.sensitivity for s in bf.steps] == [
            s.sensitivity for s in pr.steps
        ]

    def test_c17_objective_trajectory_identical(self, fast_config):
        from repro.netlist.bench import C17_BENCH, parse_bench

        bf, pr = run_pair(
            lambda: parse_bench(C17_BENCH, name="c17"), fast_config, 8
        )
        assert bf.final_objective == pr.final_objective
        assert [s.objective_after for s in bf.steps] == [
            s.objective_after for s in pr.steps
        ]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_generated_circuits_identical(self, fast_config, seed):
        spec = CircuitSpec(
            f"eq{seed}", n_inputs=6, n_outputs=3, n_gates=35,
            n_pin_edges=73, depth=7, seed=seed,
        )
        bf, pr = run_pair(lambda: generate_circuit(spec), fast_config, 4)
        assert [s.gate for s in bf.steps] == [s.gate for s in pr.steps]
        assert [s.sensitivity for s in bf.steps] == [
            s.sensitivity for s in pr.steps
        ]

    def test_without_drop_identical_shortcut(self, fast_config):
        spec = CircuitSpec(
            "eqnd", n_inputs=5, n_outputs=2, n_gates=25,
            n_pin_edges=52, depth=6, seed=9,
        )
        bf = BruteForceStatisticalSizer(
            generate_circuit(spec), config=fast_config, max_iterations=4
        ).run()
        pr = PrunedStatisticalSizer(
            generate_circuit(spec), config=fast_config, max_iterations=4,
            drop_identical=False,
        ).run()
        assert [s.gate for s in bf.steps] == [s.gate for s in pr.steps]
        assert [s.sensitivity for s in bf.steps] == [
            s.sensitivity for s in pr.steps
        ]

    def test_exact_sensitivity_tie_follows_candidate_order(self, fast_config):
        """Regression: this generated circuit has two gates (N10, N11)
        with *bit-identical* sensitivities.  The brute-force loop picks
        the first candidate among exact ties; the pruned sizer used to
        pick whichever perturbation front finished first, so the
        selections diverged on ties."""
        spec = CircuitSpec(
            "tie", n_inputs=8, n_outputs=2, n_gates=19,
            n_pin_edges=29, depth=3, seed=890,
        )
        bf, pr = run_pair(lambda: generate_circuit(spec), fast_config, 2)
        assert [s.gate for s in bf.steps] == [s.gate for s in pr.steps]
        assert [s.sensitivity for s in bf.steps] == [
            s.sensitivity for s in pr.steps
        ]

    def test_pruning_actually_prunes(self, fast_config):
        """The speed story requires most candidates to be eliminated
        before reaching the sink."""
        spec = CircuitSpec(
            "prn", n_inputs=8, n_outputs=4, n_gates=60,
            n_pin_edges=126, depth=8, seed=4,
        )
        pr = PrunedStatisticalSizer(
            generate_circuit(spec), config=fast_config, max_iterations=3
        ).run()
        fractions = [s.stats.pruned_fraction for s in pr.steps]
        assert max(fractions) > 0.3

    def test_pruned_does_less_statistical_work(self, fast_config):
        spec = CircuitSpec(
            "wrk", n_inputs=8, n_outputs=4, n_gates=60,
            n_pin_edges=126, depth=8, seed=4,
        )
        bf, pr = run_pair(lambda: generate_circuit(spec), fast_config, 2)
        bf_ops = sum(s.stats.convolutions + s.stats.max_ops for s in bf.steps)
        pr_ops = sum(s.stats.convolutions + s.stats.max_ops for s in pr.steps)
        assert pr_ops < bf_ops
