"""Unit tests for exact (brute-force) sensitivity computation."""

import numpy as np
import pytest

from repro.core.objectives import PercentileObjective
from repro.core.sensitivity import (
    deterministic_sensitivity,
    perturbed_sink_pdf,
    statistical_sensitivity,
)
from repro.errors import OptimizationError
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta
from repro.timing.sta import run_sta

OBJ = PercentileObjective(0.99)


class TestPerturbedSink:
    def test_width_restored(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        gate = c17.gate("16")
        perturbed_sink_pdf(graph, model, gate, 1.0)
        assert gate.width == 1.0

    def test_width_restored_on_error(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        with pytest.raises(OptimizationError):
            perturbed_sink_pdf(graph, model, c17.gate("16"), -1.0)
        assert c17.gate("16").width == 1.0

    def test_perturbation_changes_sink(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        base = run_ssta(graph, model).sink_pdf
        pert = perturbed_sink_pdf(graph, model, c17.gate("16"), 1.0)
        assert not (
            base.offset == pert.offset and np.array_equal(base.masses, pert.masses)
        )


class TestStatisticalSensitivity:
    def test_matches_direct_computation(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        base_obj = OBJ.evaluate(run_ssta(graph, model).sink_pdf)
        gate = c17.gate("11")
        dw = 1.0
        s = statistical_sensitivity(graph, model, gate, dw, OBJ, base_obj)
        pert = perturbed_sink_pdf(graph, model, gate, dw)
        assert s == pytest.approx((base_obj - OBJ.evaluate(pert)) / dw)

    def test_pi_driven_gate_positive(self, c17, library, fast_config):
        """Gate 11 drives two loads and is driven by PIs: up-sizing it
        must help the 99% delay."""
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        base_obj = OBJ.evaluate(run_ssta(graph, model).sink_pdf)
        s = statistical_sensitivity(graph, model, c17.gate("11"), 1.0, OBJ, base_obj)
        assert s > 0.0

    def test_sensitivity_scale_invariance(self, c17, library, fast_config):
        """S is per unit width: doubling dw should roughly halve the
        marginal effect only through nonlinearity, not through units."""
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        base_obj = OBJ.evaluate(run_ssta(graph, model).sink_pdf)
        gate = c17.gate("11")
        s1 = statistical_sensitivity(graph, model, gate, 1.0, OBJ, base_obj)
        s2 = statistical_sensitivity(graph, model, gate, 2.0, OBJ, base_obj)
        # Delay improvement is concave in width: S(dw=2) <= S(dw=1).
        assert s2 <= s1 + 1e-9


class TestDeterministicSensitivity:
    def test_matches_direct_sta(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        base = run_sta(graph, model).circuit_delay
        gate = c17.gate("11")
        s = deterministic_sensitivity(graph, model, gate, 1.0, base)
        gate.width = 2.0
        after = run_sta(graph, model).circuit_delay
        gate.width = 1.0
        assert s == pytest.approx(base - after)

    def test_off_critical_gate_zero_or_negative(self, two_path, library, fast_config):
        """Up-sizing the short-path gate cannot speed the circuit."""
        graph = TimingGraph(two_path)
        model = DelayModel(two_path, library, fast_config)
        base = run_sta(graph, model).circuit_delay
        s = deterministic_sensitivity(graph, model, two_path.gate("s1"), 1.0, base)
        assert s <= 1e-12

    def test_invalid_dw(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        with pytest.raises(OptimizationError):
            deterministic_sensitivity(graph, model, c17.gate("11"), 0.0, 100.0)
