"""Shared fixtures: small hand-built circuits and fast configs.

The hand-built circuits are small enough to reason about exactly:

* ``chain3`` — INV chain, no reconvergence (convolution only);
* ``diamond`` — classic reconvergent fan-out (max correlations);
* ``two_path`` — two parallel paths of different depth merging at one
  output gate (the minimal "wall" example of Figure 1);
* ``c17`` — the genuine ISCAS'85 netlist.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.library.library import default_library
from repro.netlist.bench import C17_BENCH, parse_bench
from repro.netlist.circuit import Circuit

#: Coarse grid for fast unit tests.
FAST = AnalysisConfig(dt=8.0, delta_w=1.0)

from repro.dist.backends import available_backends

#: Every selectable convolution backend, straight from the registry so
#: a newly added backend is parametrized into the cross-backend suites
#: automatically.
ALL_BACKENDS = available_backends()


@pytest.fixture
def fast_config():
    """Coarse-grid analysis config to keep unit tests quick."""
    return FAST


@pytest.fixture(params=ALL_BACKENDS)
def backend(request):
    """Parametrizes a test over every convolution backend."""
    return request.param


@pytest.fixture
def backend_config(backend):
    """Default-grid config under each convolution backend — reruns the
    consuming test (SSTA, sizers, incremental updates) per backend."""
    return AnalysisConfig(backend=backend)


@pytest.fixture
def fast_backend_config(backend):
    """Coarse-grid variant of :func:`backend_config` for sizer suites."""
    return AnalysisConfig(dt=8.0, delta_w=1.0, backend=backend)


@pytest.fixture
def library():
    """The default 180nm-like cell library."""
    return default_library()


def build_chain3(library=None) -> Circuit:
    """a -> INV -> INV -> INV -> out (single path, three stages)."""
    lib = library if library is not None else default_library()
    inv = lib.get("INV_X1")
    c = Circuit("chain3")
    c.add_input("a")
    c.add_gate(inv, ["a"], "n1")
    c.add_gate(inv, ["n1"], "n2")
    c.add_gate(inv, ["n2"], "out")
    c.add_output("out")
    return c


def build_diamond(library=None) -> Circuit:
    """One driver fans out to two branches that reconverge at a NAND."""
    lib = library if library is not None else default_library()
    inv = lib.get("INV_X1")
    nand = lib.get("NAND2_X1")
    c = Circuit("diamond")
    c.add_input("a")
    c.add_gate(inv, ["a"], "stem")
    c.add_gate(inv, ["stem"], "left")
    c.add_gate(inv, ["stem"], "right")
    c.add_gate(nand, ["left", "right"], "out")
    c.add_output("out")
    return c


def build_two_path(library=None) -> Circuit:
    """A long and a short path from distinct inputs merging at a NAND —
    the minimal unbalanced-path example."""
    lib = library if library is not None else default_library()
    inv = lib.get("INV_X1")
    nand = lib.get("NAND2_X1")
    c = Circuit("two_path")
    c.add_input("a")
    c.add_input("b")
    c.add_gate(inv, ["a"], "l1")
    c.add_gate(inv, ["l1"], "l2")
    c.add_gate(inv, ["l2"], "l3")
    c.add_gate(inv, ["b"], "s1")
    c.add_gate(nand, ["l3", "s1"], "out")
    c.add_output("out")
    return c


@pytest.fixture
def chain3(library):
    return build_chain3(library)


@pytest.fixture
def diamond(library):
    return build_diamond(library)


@pytest.fixture
def two_path(library):
    return build_two_path(library)


@pytest.fixture
def c17():
    return parse_bench(C17_BENCH, name="c17")


@pytest.fixture
def rng():
    return np.random.default_rng(20050307)
