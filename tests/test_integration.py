"""End-to-end integration tests across the whole stack.

Each test tells one of the paper's stories on a small circuit, going
through the public package API only (what a downstream user would
write).
"""

import pytest

import repro
from repro.config import AnalysisConfig

CFG = AnalysisConfig(dt=8.0, delta_w=1.0)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestEndToEndOptimization:
    def test_full_statistical_flow(self):
        """load -> analyze -> optimize -> re-analyze, via public API."""
        circuit = repro.load("c432", scale=0.3)
        graph = repro.TimingGraph(circuit)
        model = repro.DelayModel(circuit, config=CFG)
        before = repro.run_ssta(graph, model).percentile(0.99)

        result = repro.PrunedStatisticalSizer(
            circuit, config=CFG, max_iterations=8
        ).run()

        after = repro.run_ssta(graph, model).percentile(0.99)
        assert after < before
        assert result.final_objective == pytest.approx(after, abs=1e-6)

    def test_statistical_beats_deterministic_at_matched_area(self):
        """The Table 1 story on a scaled benchmark."""
        det_c = repro.load("c432", scale=0.3)
        det = repro.DeterministicSizer(det_c, config=CFG, max_iterations=12).run()

        stat_c = repro.load("c432", scale=0.3)
        stat = repro.PrunedStatisticalSizer(
            stat_c, config=CFG, max_iterations=max(1, det.n_iterations)
        ).run()

        def stat_delay(circuit):
            g = repro.TimingGraph(circuit)
            m = repro.DelayModel(circuit, config=CFG)
            return repro.run_ssta(g, m).percentile(0.99)

        assert stat_delay(stat_c) <= stat_delay(det_c) * 1.005

    def test_bound_vs_monte_carlo_after_optimization(self):
        """The Figure 10 validation story."""
        circuit = repro.load("c432", scale=0.3)
        repro.PrunedStatisticalSizer(circuit, config=CFG, max_iterations=6).run()
        graph = repro.TimingGraph(circuit)
        model = repro.DelayModel(circuit, config=CFG)
        bound = repro.run_ssta(graph, model).percentile(0.99)
        mc = repro.run_monte_carlo(graph, model, n_samples=4000, seed=3)
        assert abs(bound - mc.percentile(0.99)) / mc.percentile(0.99) < 0.06
        assert mc.percentile(0.99) <= bound + mc.percentile_stderr(0.99) * 4

    def test_deterministic_wall_formation(self):
        """The Figure 1 story: deterministic sizing concentrates paths
        near critical relative to the statistical solution."""
        det_c = repro.load("c432", scale=0.3)
        det = repro.DeterministicSizer(det_c, config=CFG, max_iterations=15).run()
        stat_c = repro.load("c432", scale=0.3)
        repro.PrunedStatisticalSizer(
            stat_c, config=CFG, max_iterations=max(1, det.n_iterations)
        ).run()

        def wall(circuit):
            g = repro.TimingGraph(circuit)
            m = repro.DelayModel(circuit, config=CFG)
            hist = repro.path_delay_histogram(g, m, bin_width=16.0)
            return repro.wall_metric(hist, margin_fraction=0.1)

        # Walls are stochastic at this scale; require "not much smaller".
        assert wall(det_c) >= wall(stat_c) * 0.5

    def test_bench_roundtrip_then_optimize(self, tmp_path):
        """External .bench netlists drop into the same flow."""
        circuit = repro.load("c17")
        path = tmp_path / "c17.bench"
        path.write_text(repro.write_bench(circuit))
        reparsed = repro.parse_bench_file(path)
        result = repro.PrunedStatisticalSizer(
            reparsed, config=CFG, max_iterations=4
        ).run()
        assert result.n_iterations >= 1
        assert result.final_objective < result.initial_objective

    def test_custom_library_flow(self):
        """A user-defined library drives the whole stack."""
        from repro.library import CellLibrary, CellType

        lib = CellLibrary(name="custom", wire_cap_per_fanout=0.5,
                          primary_output_cap=3.0)
        lib.add(CellType("MYINV", "NOT", 1, 12.0, 15.0, 1.5, 1.5))
        lib.add(CellType("MYNAND", "NAND", 2, 20.0, 18.0, 2.0, 4.0))

        c = repro.Circuit("custom")
        c.add_input("a")
        c.add_input("b")
        c.add_gate(lib.get("MYNAND"), ["a", "b"], "n1")
        c.add_gate(lib.get("MYINV"), ["n1"], "z")
        c.add_output("z")

        result = repro.BruteForceStatisticalSizer(
            c, library=lib, config=CFG, max_iterations=3
        ).run()
        assert result.final_objective <= result.initial_objective


class TestCrossEngineConsistency:
    def test_three_engines_agree_on_scale(self):
        """STA nominal, SSTA mean, and MC mean must sit within a few
        percent of each other on a benchmark circuit."""
        circuit = repro.load("c880", scale=0.4)
        graph = repro.TimingGraph(circuit)
        model = repro.DelayModel(circuit, config=CFG)
        sta = repro.run_sta(graph, model).circuit_delay
        ssta_mean = repro.run_ssta(graph, model).mean_delay()
        mc_mean = repro.run_monte_carlo(graph, model, n_samples=3000, seed=1).mean()
        assert ssta_mean == pytest.approx(mc_mean, rel=0.05)
        assert sta <= ssta_mean * 1.02

    def test_k_longest_path_matches_sta(self):
        circuit = repro.load("c499", scale=0.3)
        graph = repro.TimingGraph(circuit)
        model = repro.DelayModel(circuit, config=CFG)
        sta = repro.run_sta(graph, model)
        top = repro.k_longest_paths(graph, model, k=3)
        assert top[0].delay == pytest.approx(sta.circuit_delay)
