"""Unit tests for CellType and the EQ-1 delay model."""

import pytest

from repro.errors import LibraryError
from repro.library.cell import CellType


def make_cell(**overrides):
    params = dict(
        name="NAND2_X1",
        function="NAND",
        n_inputs=2,
        intrinsic_delay=50.0,
        drive_k=25.0,
        input_cap=2.5,
        cell_cap=5.0,
        area=2.0,
    )
    params.update(overrides)
    return CellType(**params)


class TestValidation:
    def test_valid(self):
        cell = make_cell()
        assert cell.name == "NAND2_X1"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_inputs", 0),
            ("intrinsic_delay", -1.0),
            ("drive_k", 0.0),
            ("input_cap", 0.0),
            ("cell_cap", -2.0),
            ("area", 0.0),
        ],
    )
    def test_invalid_parameters(self, field, value):
        with pytest.raises(LibraryError):
            make_cell(**{field: value})

    def test_frozen(self):
        cell = make_cell()
        with pytest.raises(Exception):
            cell.drive_k = 1.0


class TestScaling:
    def test_input_cap_scales_linearly(self):
        cell = make_cell()
        assert cell.input_cap_at(1.0) == pytest.approx(2.5)
        assert cell.input_cap_at(4.0) == pytest.approx(10.0)

    def test_cell_cap_scales_linearly(self):
        cell = make_cell()
        assert cell.cell_cap_at(2.0) == pytest.approx(10.0)

    def test_area_scales_linearly(self):
        cell = make_cell()
        assert cell.area_at(3.0) == pytest.approx(6.0)


class TestDelayEquation:
    def test_eq1_exact(self):
        # De = Dint + K * Cload / Ccell, with Ccell = w * cell_cap.
        cell = make_cell()
        assert cell.delay(1.0, 10.0) == pytest.approx(50.0 + 25.0 * 10.0 / 5.0)
        assert cell.delay(2.0, 10.0) == pytest.approx(50.0 + 25.0 * 10.0 / 10.0)

    def test_upsizing_speeds_gate_at_fixed_load(self):
        cell = make_cell()
        load = 20.0
        d1 = cell.delay(1.0, load)
        d2 = cell.delay(2.0, load)
        d4 = cell.delay(4.0, load)
        assert d1 > d2 > d4

    def test_delay_approaches_intrinsic(self):
        cell = make_cell()
        assert cell.delay(1e9, 10.0) == pytest.approx(50.0, abs=1e-3)

    def test_zero_load_gives_intrinsic(self):
        cell = make_cell()
        assert cell.delay(1.0, 0.0) == pytest.approx(50.0)

    def test_delay_monotone_in_load(self):
        cell = make_cell()
        assert cell.delay(1.0, 5.0) < cell.delay(1.0, 10.0)

    def test_invalid_width(self):
        with pytest.raises(LibraryError):
            make_cell().delay(0.0, 10.0)

    def test_invalid_load(self):
        with pytest.raises(LibraryError):
            make_cell().delay(1.0, -5.0)

    def test_derivative_matches_finite_difference(self):
        cell = make_cell()
        w, load, h = 2.0, 12.0, 1e-6
        fd = (cell.delay(w + h, load) - cell.delay(w - h, load)) / (2 * h)
        assert cell.delay_derivative_width(w, load) == pytest.approx(fd, rel=1e-5)

    def test_derivative_always_negative(self):
        cell = make_cell()
        for w in (1.0, 2.0, 8.0):
            assert cell.delay_derivative_width(w, 10.0) < 0.0
