"""Unit tests for the cell library and its default characterization."""

import pytest

from repro.errors import LibraryError
from repro.library.cell import CellType
from repro.library.library import TAU_180NM, CellLibrary, default_library


class TestCellLibrary:
    def test_add_and_get(self):
        lib = CellLibrary(name="t")
        cell = CellType("X", "NOT", 1, 10.0, 20.0, 1.0, 1.0)
        lib.add(cell)
        assert lib.get("X") is cell
        assert "X" in lib
        assert len(lib) == 1

    def test_duplicate_rejected(self):
        lib = CellLibrary(name="t")
        cell = CellType("X", "NOT", 1, 10.0, 20.0, 1.0, 1.0)
        lib.add(cell)
        with pytest.raises(LibraryError):
            lib.add(cell)

    def test_missing_get(self):
        with pytest.raises(LibraryError):
            CellLibrary(name="t").get("nope")

    def test_find_by_function(self):
        lib = default_library()
        cell = lib.find("nand", 2)
        assert cell.function == "NAND"
        assert cell.n_inputs == 2

    def test_find_missing(self):
        lib = default_library()
        with pytest.raises(LibraryError):
            lib.find("NAND", 9)

    def test_has(self):
        lib = default_library()
        assert lib.has("NOT", 1)
        assert not lib.has("NOT", 2)


class TestDefaultLibrary:
    def test_complete_function_coverage(self):
        """Every .bench operator must be mappable."""
        lib = default_library()
        for function, n in [
            ("NOT", 1), ("BUF", 1),
            ("NAND", 2), ("NAND", 3), ("NAND", 4),
            ("NOR", 2), ("NOR", 3), ("NOR", 4),
            ("AND", 2), ("AND", 3), ("AND", 4),
            ("OR", 2), ("OR", 3), ("OR", 4),
            ("XOR", 2), ("XNOR", 2),
        ]:
            assert lib.has(function, n), f"missing {function}/{n}"

    def test_inverter_is_reference(self):
        lib = default_library()
        inv = lib.get("INV_X1")
        assert inv.intrinsic_delay == pytest.approx(TAU_180NM)
        assert inv.drive_k == pytest.approx(TAU_180NM)

    def test_logical_effort_ordering(self):
        """NAND2 has lower logical effort than NOR2 (series NMOS beats
        series PMOS), reflected as lower input capacitance at equal
        drive."""
        lib = default_library()
        assert lib.get("NAND2_X1").input_cap < lib.get("NOR2_X1").input_cap

    def test_parasitic_delay_grows_with_fanin(self):
        lib = default_library()
        assert (
            lib.get("NAND2_X1").intrinsic_delay
            < lib.get("NAND3_X1").intrinsic_delay
            < lib.get("NAND4_X1").intrinsic_delay
        )

    def test_xor_is_expensive(self):
        lib = default_library()
        assert lib.get("XOR2_X1").input_cap > lib.get("NAND2_X1").input_cap

    def test_fo4_delay_plausible_for_180nm(self):
        """An inverter driving 4 identical inverters should sit in the
        80-150 ps range typical of a 180nm process."""
        lib = default_library()
        inv = lib.get("INV_X1")
        fo4_load = 4.0 * inv.input_cap_at(1.0)
        delay = inv.delay(1.0, fo4_load)
        assert 80.0 <= delay <= 150.0

    def test_custom_tau(self):
        lib = default_library(tau=10.0, name="fast")
        assert lib.get("INV_X1").drive_k == pytest.approx(10.0)
        assert lib.name == "fast"

    def test_functions_listing(self):
        lib = default_library()
        functions = lib.functions()
        assert "NAND" in functions and "XOR" in functions

    def test_cells_iteration(self):
        lib = default_library()
        assert len(list(lib.cells())) == len(lib)
