"""Unit tests for sizing limits and circuit-size metrics."""

import pytest

from repro.errors import OptimizationError
from repro.library.sizing import (
    SizingLimits,
    size_increase_percent,
    total_area,
    total_gate_size,
)
from tests.conftest import build_chain3


class TestSizingLimits:
    def test_defaults(self):
        lim = SizingLimits()
        assert lim.w_min == 1.0
        assert lim.w_max == 16.0

    def test_clamp(self):
        lim = SizingLimits(w_min=1.0, w_max=4.0)
        assert lim.clamp(0.5) == 1.0
        assert lim.clamp(2.0) == 2.0
        assert lim.clamp(9.0) == 4.0

    def test_can_upsize(self):
        lim = SizingLimits(w_min=1.0, w_max=2.0)
        assert lim.can_upsize(1.0, 1.0)
        assert not lim.can_upsize(1.5, 1.0)

    def test_can_upsize_boundary(self):
        lim = SizingLimits(w_min=1.0, w_max=2.0)
        assert lim.can_upsize(1.0, 1.0)  # lands exactly on w_max

    def test_invalid_limits(self):
        with pytest.raises(OptimizationError):
            SizingLimits(w_min=0.0)
        with pytest.raises(OptimizationError):
            SizingLimits(w_min=2.0, w_max=1.0)


class TestSizeMetrics:
    def test_total_gate_size_minimum(self):
        c = build_chain3()
        assert total_gate_size(c) == pytest.approx(3.0)

    def test_total_gate_size_after_resize(self):
        c = build_chain3()
        c.gate("n1").width = 2.5
        assert total_gate_size(c) == pytest.approx(4.5)

    def test_total_area_uses_cell_area(self):
        c = build_chain3()
        inv_area = c.gate("n1").cell.area
        assert total_area(c) == pytest.approx(3.0 * inv_area)

    def test_size_increase_percent(self):
        assert size_increase_percent(100.0, 197.0) == pytest.approx(97.0)

    def test_size_increase_zero_initial(self):
        with pytest.raises(OptimizationError):
            size_increase_percent(0.0, 10.0)
