"""Smoke tests for the shipped examples.

Each example is executed in-process (``runpy``) with arguments chosen
for speed (c17 or heavily scaled circuits).  The assertions check the
narrative output, not just survival — an example that runs but prints
garbage is a broken example.  ``quickstart.py`` runs full-size c432 and
is exercised by the documentation workflow instead.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv, capsys):
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_yield_wall(self, capsys):
        out = run_example("yield_wall.py", ["c17", "4"], capsys)
        assert "deterministic solution (the wall)" in out
        assert "yield at a" in out
        assert "99% delay: deterministic" in out

    def test_pruning_speedup(self, capsys):
        out = run_example("pruning_speedup.py", ["c432", "0.2"], capsys)
        assert "pruned search:" in out
        assert "brute force:" in out
        assert "selections identical" in out  # the exactness assert ran

    def test_custom_library(self, capsys):
        out = run_example("custom_library.py", [], capsys)
        assert "matches the API-built twin" in out
        assert "variability model sweep" in out
        assert "no built-ins used" in out

    def test_design_closure(self, capsys):
        out = run_example("design_closure.py", ["c432", "0.15"], capsys)
        assert "multi-gate sizing" in out
        assert "heuristic-vs-exact" in out
        assert "bitwise identical: True" in out
        assert "rho=0.9" in out
