"""Hypothesis property tests for the synthetic circuit generator.

Whatever spec the experiments throw at it, the generator must deliver
exact node/edge counts, exact depth, and a structurally valid circuit —
these invariants are what make the Table 1 "node/edge" column
trustworthy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlist.generate import CircuitSpec, generate_circuit
from repro.netlist.validate import structural_issues


@st.composite
def specs(draw):
    n_gates = draw(st.integers(min_value=4, max_value=80))
    depth = draw(st.integers(min_value=2, max_value=min(10, n_gates)))
    # edges/gate between 1.2 and 3.0 — brackets the real benchmarks.
    edges = draw(
        st.integers(
            min_value=max(n_gates, int(1.2 * n_gates)),
            max_value=3 * n_gates,
        )
    )
    n_inputs = draw(st.integers(min_value=3, max_value=20))
    n_outputs = draw(st.integers(min_value=1, max_value=max(1, n_gates // 4)))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return CircuitSpec(
        name="hyp",
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        n_gates=n_gates,
        n_pin_edges=edges,
        depth=depth,
        seed=seed,
    )


class TestGeneratorProperties:
    @settings(max_examples=60, deadline=None)
    @given(spec=specs())
    def test_exact_counts(self, spec):
        circuit = generate_circuit(spec)
        assert circuit.n_nets == spec.n_nets
        assert circuit.n_pin_edges == spec.n_pin_edges

    @settings(max_examples=60, deadline=None)
    @given(spec=specs())
    def test_exact_depth(self, spec):
        circuit = generate_circuit(spec)
        assert circuit.depth() == spec.depth

    @settings(max_examples=60, deadline=None)
    @given(spec=specs())
    def test_structurally_valid(self, spec):
        circuit = generate_circuit(spec)
        assert structural_issues(circuit) == []

    @settings(max_examples=40, deadline=None)
    @given(spec=specs())
    def test_deterministic(self, spec):
        a = generate_circuit(spec)
        b = generate_circuit(spec)
        assert [g.inputs for g in a.topo_gates()] == [
            g.inputs for g in b.topo_gates()
        ]

    @settings(max_examples=40, deadline=None)
    @given(spec=specs())
    def test_timing_graph_buildable(self, spec):
        """Every generated circuit must survive the full timing stack
        construction (graph + levelization)."""
        from repro.timing.graph import TimingGraph

        circuit = generate_circuit(spec)
        graph = TimingGraph(circuit)
        position = {n: i for i, n in enumerate(graph.topo_nodes())}
        assert all(position[e.src] < position[e.dst] for e in graph.edges)

    @settings(max_examples=30, deadline=None)
    @given(spec=specs(), factor=st.sampled_from([0.5, 0.75, 1.5]))
    def test_scaled_specs_generate(self, spec, factor):
        scaled = spec.scaled(factor)
        circuit = generate_circuit(scaled)
        assert circuit.n_nets == scaled.n_nets
        assert circuit.n_pin_edges == scaled.n_pin_edges
