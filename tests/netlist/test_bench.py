"""Unit tests for the ISCAS .bench reader/writer."""

import pytest

from repro.errors import BenchParseError
from repro.netlist.bench import C17_BENCH, parse_bench, parse_bench_file, write_bench


class TestParse:
    def test_c17(self):
        c = parse_bench(C17_BENCH, name="c17")
        assert c.n_gates == 6
        assert set(c.inputs) == {"1", "2", "3", "6", "7"}
        assert set(c.outputs) == {"22", "23"}
        assert c.gate("10").cell.function == "NAND"
        assert c.gate("10").inputs == ("1", "3")

    def test_comments_and_blank_lines(self):
        text = """
        # header comment
        INPUT(a)

        OUTPUT(z)   # trailing comment
        z = NOT(a)  # another
        """
        c = parse_bench(text)
        assert c.n_gates == 1

    def test_case_insensitive_keywords(self):
        text = "input(a)\noutput(z)\nz = not(a)\n"
        c = parse_bench(text)
        assert c.gate("z").cell.function == "NOT"

    def test_all_operators(self):
        text = (
            "INPUT(a)\nINPUT(b)\n"
            "n1 = AND(a, b)\nn2 = NAND(a, b)\nn3 = OR(a, b)\n"
            "n4 = NOR(a, b)\nn5 = XOR(a, b)\nn6 = XNOR(a, b)\n"
            "n7 = NOT(a)\nn8 = BUFF(b)\nn9 = BUF(n1)\n"
            "z = AND(n2, n3, n4, n5)\n"
            "z2 = NAND(n6, n7, n8, n9)\n"
            "OUTPUT(z)\nOUTPUT(z2)\n"
        )
        c = parse_bench(text)
        assert c.gate("n1").cell.function == "AND"
        assert c.gate("n8").cell.function == "BUF"
        assert c.gate("z").cell.n_inputs == 4

    def test_whitespace_tolerance(self):
        text = "INPUT( a )\nOUTPUT( z )\nz  =  NAND( a ,  a2 )\na2 = NOT(a)\n"
        c = parse_bench(text)
        assert c.gate("z").inputs == ("a", "a2")

    def test_unknown_operator(self):
        with pytest.raises(BenchParseError) as exc:
            parse_bench("INPUT(a)\nz = MAJ(a, a, a)\nOUTPUT(z)\n")
        assert "line 2" in str(exc.value)

    def test_dff_rejected(self):
        with pytest.raises(BenchParseError, match="DFF"):
            parse_bench("INPUT(a)\nz = DFF(a)\nOUTPUT(z)\n")

    def test_garbage_line(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nthis is not bench\n")

    def test_empty_operands(self):
        with pytest.raises(BenchParseError):
            parse_bench("INPUT(a)\nz = NAND()\nOUTPUT(z)\n")

    def test_missing_cell_variant(self):
        # 5-input NAND is not in the default library.
        text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n" \
               "z = NAND(a, b, c, d, e)\nOUTPUT(z)\n"
        with pytest.raises(BenchParseError):
            parse_bench(text)


class TestWrite:
    def test_roundtrip_c17(self):
        c = parse_bench(C17_BENCH, name="c17")
        text = write_bench(c)
        c2 = parse_bench(text, name="c17rt")
        assert c2.n_gates == c.n_gates
        assert set(c2.inputs) == set(c.inputs)
        assert set(c2.outputs) == set(c.outputs)
        for g in c.gates():
            g2 = c2.gate(g.output)
            assert g2.cell.function == g.cell.function
            assert set(g2.inputs) == set(g.inputs)

    def test_topological_emission(self):
        c = parse_bench(C17_BENCH)
        lines = [l for l in write_bench(c).splitlines() if "=" in l]
        names = [l.split("=")[0].strip() for l in lines]
        assert names.index("10") < names.index("22")

    def test_roundtrip_generated(self):
        from repro.netlist.generate import CircuitSpec, generate_circuit

        spec = CircuitSpec("rt", n_inputs=6, n_outputs=3, n_gates=25,
                           n_pin_edges=50, depth=5, seed=7)
        c = generate_circuit(spec)
        c2 = parse_bench(write_bench(c), name="rt2")
        assert c2.n_gates == c.n_gates
        assert c2.n_pin_edges == c.n_pin_edges


class TestParseFile:
    def test_file(self, tmp_path):
        path = tmp_path / "mini.bench"
        path.write_text(C17_BENCH)
        c = parse_bench_file(path)
        assert c.name == "mini"
        assert c.n_gates == 6


class TestWriterDeterminism:
    def test_write_is_deterministic(self):
        from repro.netlist.benchmarks import load

        a = write_bench(load("c432"))
        b = write_bench(load("c432"))
        assert a == b

    def test_roundtrip_preserves_timing(self):
        """Re-parsing an exported netlist must give identical SSTA
        results (the export is lossless for everything timing uses)."""
        from repro.netlist.benchmarks import load
        from repro.netlist.bench import parse_bench
        from repro.config import AnalysisConfig
        from repro.timing.delay_model import DelayModel
        from repro.timing.graph import TimingGraph
        from repro.timing.ssta import run_ssta

        cfg = AnalysisConfig(dt=8.0)
        original = load("c880", scale=0.3)
        clone = parse_bench(write_bench(original), name="clone")
        results = []
        for c in (original, clone):
            g = TimingGraph(c)
            m = DelayModel(c, config=cfg)
            results.append(run_ssta(g, m).percentile(0.99))
        assert results[0] == results[1]
