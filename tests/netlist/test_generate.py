"""Unit tests for the synthetic ISCAS-like circuit generator."""

import pytest

from repro.errors import NetlistError
from repro.netlist.generate import CircuitSpec, generate_circuit


def spec(**overrides):
    params = dict(
        name="t",
        n_inputs=8,
        n_outputs=4,
        n_gates=40,
        n_pin_edges=84,
        depth=6,
        seed=3,
    )
    params.update(overrides)
    return CircuitSpec(**params)


class TestSpecValidation:
    def test_valid(self):
        s = spec()
        assert s.n_nets == 48

    def test_depth_bounds(self):
        with pytest.raises(NetlistError):
            spec(depth=0)
        with pytest.raises(NetlistError):
            spec(depth=41)

    def test_edge_bounds(self):
        with pytest.raises(NetlistError):
            spec(n_pin_edges=39)  # < n_gates
        with pytest.raises(NetlistError):
            spec(n_pin_edges=161)  # > 4 * n_gates

    def test_no_inputs(self):
        with pytest.raises(NetlistError):
            spec(n_inputs=0)

    def test_scaled_preserves_shape(self):
        s = spec(n_gates=100, n_pin_edges=205, depth=16)
        half = s.scaled(0.5)
        assert half.n_gates == 50
        ratio = half.n_pin_edges / half.n_gates
        assert ratio == pytest.approx(2.05, abs=0.1)
        assert 1 <= half.depth <= half.n_gates

    def test_scaled_invalid_factor(self):
        with pytest.raises(NetlistError):
            spec().scaled(0.0)


class TestGeneration:
    def test_exact_node_edge_counts(self):
        s = spec()
        c = generate_circuit(s)
        assert c.n_nets == s.n_nets
        assert c.n_pin_edges == s.n_pin_edges

    def test_exact_depth(self):
        s = spec(depth=9, n_gates=60, n_pin_edges=120)
        c = generate_circuit(s)
        assert c.depth() == 9

    def test_structurally_valid(self):
        c = generate_circuit(spec())
        c.validate()  # raises on any issue

    def test_deterministic_per_seed(self):
        a = generate_circuit(spec(seed=11))
        b = generate_circuit(spec(seed=11))
        assert [g.name for g in a.topo_gates()] == [g.name for g in b.topo_gates()]
        assert [g.inputs for g in a.topo_gates()] == [g.inputs for g in b.topo_gates()]

    def test_different_seeds_differ(self):
        a = generate_circuit(spec(seed=1))
        b = generate_circuit(spec(seed=2))
        assert [g.inputs for g in a.topo_gates()] != [g.inputs for g in b.topo_gates()]

    def test_all_inputs_used(self):
        c = generate_circuit(spec())
        for net in c.inputs:
            assert c.fanout_count(net) > 0

    def test_reconvergence_present(self):
        """Multi-fan-out nets must exist — they create the reconvergent
        structure that makes the SSTA max a bound rather than exact."""
        c = generate_circuit(spec(n_gates=80, n_pin_edges=168, depth=8))
        multi = [n for n in c.nets() if c.fanout_count(n) > 1]
        assert len(multi) >= 5

    def test_fanin_mix(self):
        """Edges/gates ~2.1 should give mostly 2-input with some
        3-input gates."""
        s = spec(n_gates=100, n_pin_edges=210, depth=10)
        c = generate_circuit(s)
        fanins = sorted(g.n_inputs for g in c.gates())
        assert fanins[0] >= 1
        assert fanins[-1] <= 4
        assert sum(fanins) == 210

    def test_one_input_gates_when_sparse(self):
        s = spec(n_gates=50, n_pin_edges=80, depth=5)
        c = generate_circuit(s)
        assert any(g.n_inputs == 1 for g in c.gates())
        assert c.n_pin_edges == 80

    def test_tiny_circuit(self):
        s = CircuitSpec("tiny", n_inputs=2, n_outputs=1, n_gates=2,
                        n_pin_edges=3, depth=2, seed=0)
        c = generate_circuit(s)
        c.validate()
        assert c.n_gates == 2

    def test_output_count_near_target(self):
        s = spec(n_gates=120, n_pin_edges=250, depth=10, n_outputs=10)
        c = generate_circuit(s)
        assert len(c.outputs) >= 10
        # Outputs should not explode past a small multiple of the target.
        assert len(c.outputs) <= 40
