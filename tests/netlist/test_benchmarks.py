"""Unit tests for the paper benchmark registry."""

import pytest

from repro.errors import NetlistError
from repro.netlist.benchmarks import PAPER_SUITE, SPECS, load, paper_row, spec_for

#: Table 1, column 2 of the paper.
PAPER_COUNTS = {
    "c432": (214, 379),
    "c499": (561, 978),
    "c880": (425, 804),
    "c1355": (570, 1071),
    "c1908": (466, 858),
    "c2670": (1059, 1731),
    "c3540": (991, 1972),
    "c5315": (1806, 3311),
    "c6288": (2503, 4999),
    "c7552": (2202, 3945),
}


class TestRegistry:
    def test_suite_order_matches_paper(self):
        assert PAPER_SUITE == list(PAPER_COUNTS)

    def test_paper_rows(self):
        for name, counts in PAPER_COUNTS.items():
            assert paper_row(name) == counts

    def test_unknown_name(self):
        with pytest.raises(NetlistError):
            load("c9999")
        with pytest.raises(NetlistError):
            spec_for("c9999")

    @pytest.mark.parametrize("name", ["c432", "c499", "c880", "c1355", "c1908"])
    def test_generated_counts_match_paper(self, name):
        c = load(name)
        assert (c.n_nets, c.n_pin_edges) == PAPER_COUNTS[name]

    @pytest.mark.parametrize("name", ["c2670", "c3540", "c5315", "c6288", "c7552"])
    def test_generated_counts_match_paper_large(self, name):
        c = load(name)
        assert (c.n_nets, c.n_pin_edges) == PAPER_COUNTS[name]

    def test_c17_is_genuine(self):
        c = load("c17")
        assert c.n_gates == 6
        assert all(g.cell.function == "NAND" for g in c.gates())

    def test_load_returns_fresh_copy(self):
        a = load("c432")
        gate = next(iter(a.gates()))
        gate.width = 9.0
        b = load("c432")
        assert b.gate(gate.output).width == 1.0

    def test_scaled_load(self):
        c = load("c3540", scale=0.25)
        full = spec_for("c3540")
        assert c.n_gates == pytest.approx(full.n_gates * 0.25, rel=0.05)
        c.validate()

    def test_depths_match_real_benchmarks(self):
        # Depths taken from the real ISCAS'85 circuits.
        assert load("c432").depth() == 17
        assert load("c6288").depth() == 124

    def test_all_specs_consistent(self):
        for name, s in SPECS.items():
            assert s.n_nets == PAPER_COUNTS[name][0]
            assert s.n_pin_edges == PAPER_COUNTS[name][1]
