"""Generator scale contract: byte-identical paper suite, linear growth.

The O(nodes + edges) generator rewrite is locked from both ends:

* **Fingerprint regression** — every PAPER_SUITE circuit (and the
  scaled-down variants the quick paths use) must hash to the exact
  structure recorded from the pre-rewrite generator in
  ``golden/structure_fingerprints.json``.  Any change to the RNG draw
  stream — a reordered draw, a filtered pool materialized differently,
  an extra shuffle — shows up here as a changed SHA-256 before any
  timing number moves.
* **Scale-up contract** — ``CircuitSpec.scaled`` at factors 10^2-10^3
  produces validated specs whose generated circuits hit gate/edge/depth
  targets exactly (the guard fallback now raises instead of silently
  shrinking pins), deterministically per seed.
* **Linear scaling** (``-m slow``) — generating 10^5 gates completes in
  seconds and doubling the gate count at that size costs at most ~2.5x
  wall-clock; a full sparse-storage SSTA over the 10^5-gate circuit
  completes as the analysis-side smoke.
"""

import hashlib
import json
import time
from pathlib import Path

import pytest

from repro.errors import NetlistError
from repro.netlist.benchmarks import PAPER_SUITE, load, spec_for
from repro.netlist.generate import (
    MAX_SCALED_GATES,
    CircuitSpec,
    generate_circuit,
)

GOLDEN = Path(__file__).parent / "golden" / "structure_fingerprints.json"


def fingerprint(circuit) -> str:
    """Order-sensitive structural hash: inputs, outputs, and every
    gate's cell/pin wiring in insertion order."""
    h = hashlib.sha256()
    h.update(("inputs:" + ",".join(circuit.inputs)).encode())
    h.update(("outputs:" + ",".join(circuit.outputs)).encode())
    for g in circuit.gates():
        h.update(
            f"gate:{g.output}={g.cell.name}({','.join(g.inputs)})".encode()
        )
    return h.hexdigest()


class TestFingerprintRegression:
    """The PAPER_SUITE circuits are byte-identical across the rewrite."""

    def test_golden_file_covers_the_suite(self):
        golden = json.loads(GOLDEN.read_text())
        for name in PAPER_SUITE:
            assert name in golden, f"no recorded fingerprint for {name}"

    @pytest.mark.parametrize("key", sorted(json.loads(GOLDEN.read_text())))
    def test_structure_locked(self, key):
        golden = json.loads(GOLDEN.read_text())
        if "@" in key:
            name, scale = key.split("@")
            circuit = load(name, scale=float(scale))
        else:
            circuit = load(key)
        assert fingerprint(circuit) == golden[key], (
            f"{key}: generated structure diverged from the pre-rewrite "
            "generator — the RNG draw stream changed"
        )


class TestScaledUp:
    def test_scaled_spec_is_validated_and_proportional(self):
        base = spec_for("c880")
        big = base.scaled(100)
        assert big.n_gates == 100 * base.n_gates
        # Fan-in mix (edges per gate) preserved to rounding.
        assert big.n_pin_edges / big.n_gates == pytest.approx(
            base.n_pin_edges / base.n_gates, rel=0.01
        )
        # Depth grows ~sqrt(factor): levels stay wide.
        assert big.depth == pytest.approx(base.depth * 10, abs=1)
        assert big.depth <= big.n_gates

    def test_generated_counts_exact_at_scale(self):
        spec = spec_for("c432").scaled(50)
        circuit = generate_circuit(spec)
        assert circuit.n_gates == spec.n_gates
        assert circuit.n_pin_edges == spec.n_pin_edges
        assert len(circuit.inputs) == spec.n_inputs
        assert circuit.depth() == spec.depth
        circuit.validate()

    def test_generation_is_deterministic(self):
        spec = spec_for("c880").scaled(30)
        assert fingerprint(generate_circuit(spec)) == fingerprint(
            generate_circuit(spec)
        )

    def test_scaled_down_unchanged(self):
        # Factor < 1 is the historical quick-path behavior; the golden
        # fingerprints include c432@0.25 / c880@0.25, so here it is
        # enough that the spec arithmetic still round-trips.
        small = spec_for("c880").scaled(0.25)
        assert small.n_gates == 91
        generate_circuit(small).validate()

    def test_gate_cap_raises_loudly(self):
        base = spec_for("c6288")
        with pytest.raises(NetlistError, match="MAX_SCALED_GATES"):
            base.scaled((MAX_SCALED_GATES // base.n_gates) + 10)

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(NetlistError):
            spec_for("c17").scaled(0.0)
        with pytest.raises(NetlistError):
            spec_for("c17").scaled(-2)

    def test_infeasible_pin_edges_rejected(self):
        # More pin edges than max_fanin * gates cannot be wired.
        with pytest.raises(NetlistError, match="n_pin_edges"):
            CircuitSpec("bad", 8, 2, 10, 41, 3)


@pytest.mark.slow
class TestLargeScaleSmoke:
    """The 10^5-gate workload class (CI scale-smoke job, `-m slow`)."""

    def test_100k_gates_generate_in_seconds_with_linear_scaling(self):
        base = spec_for("c880")
        half = base.scaled(137)   # ~50k gates
        full = base.scaled(274)   # ~100k gates

        def best_of(spec, reps=3):
            best = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                circuit = generate_circuit(spec)
                best = min(best, time.perf_counter() - t0)
            return best, circuit

        t_half, _ = best_of(half)
        t_full, circuit = best_of(full)
        assert circuit.n_gates >= 100_000
        assert circuit.n_pin_edges == full.n_pin_edges
        assert t_full < 30.0, f"100k-gate generation took {t_full:.1f}s"
        # Linear scaling: 2x gates within ~2.5x wall-clock (measured
        # ~2.0x-2.4x; 2.8 leaves headroom for noisy CI runners).
        ratio = t_full / max(t_half, 1e-9)
        assert ratio < 2.8, (
            f"2x gates cost {ratio:.2f}x wall-clock — superlinear regression"
        )

    def test_100k_gate_ssta_completes_under_sparse_storage(self):
        from repro.config import AnalysisConfig
        from repro.dist.sparse import SparseDiscretePDF
        from repro.timing.delay_model import DelayModel
        from repro.timing.graph import TimingGraph
        from repro.timing.ssta import run_ssta

        spec = spec_for("c880").scaled(274)
        circuit = generate_circuit(spec)
        # Coarse grid keeps the smoke CI-sized; sparse storage is the
        # point of the exercise at this node count.
        cfg = AnalysisConfig(dt=16.0, sparse_eps=1e-16)
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=cfg)
        result = run_ssta(graph, model, config=cfg)
        assert sum(
            isinstance(p, SparseDiscretePDF) for p in result.arrivals
        ) >= graph.n_nodes - 2
        assert result.percentile(0.99) > result.sink_pdf.mean() > 0.0
