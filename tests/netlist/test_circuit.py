"""Unit tests for the Circuit/Gate netlist model."""

import pytest

from repro.errors import NetlistError
from repro.library.library import default_library
from repro.netlist.circuit import Circuit, Gate

LIB = default_library()
INV = LIB.get("INV_X1")
NAND = LIB.get("NAND2_X1")


class TestGate:
    def test_pin_count_enforced(self):
        with pytest.raises(NetlistError):
            Gate(NAND, ["a"], "out")

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(NetlistError):
            Gate(NAND, ["a", "a"], "out")

    def test_self_loop_rejected(self):
        with pytest.raises(NetlistError):
            Gate(INV, ["out"], "out")

    def test_bad_width_rejected(self):
        with pytest.raises(NetlistError):
            Gate(INV, ["a"], "out", width=0.0)

    def test_name_is_output(self):
        g = Gate(INV, ["a"], "out")
        assert g.name == "out"
        assert g.n_inputs == 1


class TestConstruction:
    def test_duplicate_input_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        with pytest.raises(NetlistError):
            c.add_input("a")

    def test_duplicate_output_rejected(self):
        c = Circuit("t")
        c.add_output("z")
        with pytest.raises(NetlistError):
            c.add_output("z")

    def test_two_drivers_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate(INV, ["a"], "n1")
        with pytest.raises(NetlistError):
            c.add_gate(INV, ["a"], "n1")

    def test_gate_driving_input_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate(INV, ["a"], "a2")
        with pytest.raises(NetlistError):
            c.add_gate(INV, ["a2"], "a")

    def test_input_declared_after_driver_rejected(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate(INV, ["a"], "n1")
        with pytest.raises(NetlistError):
            c.add_input("n1")

    def test_forward_references_allowed(self):
        """Gates may consume nets declared by later gates."""
        c = Circuit("t")
        c.add_input("a")
        c.add_gate(INV, ["n1"], "n2")
        c.add_gate(INV, ["a"], "n1")
        c.add_output("n2")
        order = [g.name for g in c.topo_gates()]
        assert order == ["n1", "n2"]


class TestQueries:
    def test_counts(self, c17):
        assert c17.n_gates == 6
        assert c17.n_nets == 11
        assert c17.n_pin_edges == 12

    def test_nets_ordering(self, chain3):
        assert chain3.nets() == ["a", "n1", "n2", "out"]

    def test_fanouts(self, diamond):
        consumers = {g.name for g, _pin in diamond.fanouts("stem")}
        assert consumers == {"left", "right"}
        assert diamond.fanout_count("stem") == 2

    def test_gate_lookup(self, chain3):
        assert chain3.gate("n1").cell.function == "NOT"
        with pytest.raises(NetlistError):
            chain3.gate("a")

    def test_is_input(self, chain3):
        assert chain3.is_input("a")
        assert not chain3.is_input("n1")


class TestTopology:
    def test_topological_order(self, c17):
        order = [g.name for g in c17.topo_gates()]
        assert order.index("10") < order.index("22")
        assert order.index("11") < order.index("16")
        assert order.index("16") < order.index("23")

    def test_levels(self, c17):
        levels = c17.levels()
        assert levels["1"] == 0
        assert levels["10"] == 1
        assert levels["16"] == 2
        # 22 = NAND(10, 16): level = 1 + max(1, 2) = 3
        assert levels["22"] == 3

    def test_depth(self, c17):
        assert c17.depth() == 3

    def test_cycle_detected(self):
        c = Circuit("loop")
        c.add_input("a")
        c.add_gate(NAND, ["a", "n2"], "n1")
        c.add_gate(INV, ["n1"], "n2")
        c.add_output("n2")
        with pytest.raises(NetlistError):
            c.topo_gates()

    def test_undriven_net_detected(self):
        c = Circuit("broken")
        c.add_input("a")
        c.add_gate(NAND, ["a", "ghost"], "n1")
        c.add_output("n1")
        with pytest.raises(NetlistError):
            c.topo_gates()

    def test_resize_does_not_invalidate_topology(self, c17):
        order_before = c17.topo_gates()
        c17.gate("22").width = 4.0
        assert c17.topo_gates() is order_before  # cache retained


class TestCopyAndWidths:
    def test_copy_independent(self, c17):
        dup = c17.copy()
        dup.gate("22").width = 8.0
        assert c17.gate("22").width == 1.0

    def test_copy_preserves_structure(self, c17):
        dup = c17.copy()
        assert dup.n_gates == c17.n_gates
        assert dup.inputs == c17.inputs
        assert dup.outputs == c17.outputs
        assert [g.name for g in dup.topo_gates()] == [
            g.name for g in c17.topo_gates()
        ]

    def test_widths_roundtrip(self, c17):
        c17.gate("16").width = 3.0
        snapshot = c17.widths()
        c17.gate("16").width = 1.0
        c17.set_widths(snapshot)
        assert c17.gate("16").width == 3.0


class TestCircuitLevelFixture:
    def test_levels_c17_exact(self, c17):
        levels = c17.levels()
        # PIs level 0; 10,11 level 1; 16,19 level 2; 22,23 level 3.
        assert levels["10"] == 1 and levels["11"] == 1
        assert levels["16"] == 2 and levels["19"] == 2
        assert levels["22"] == 3 and levels["23"] == 3
