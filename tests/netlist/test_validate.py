"""Unit tests for structural netlist validation."""

import pytest

from repro.errors import NetlistError
from repro.library.library import default_library
from repro.netlist.circuit import Circuit
from repro.netlist.validate import structural_issues, validate_circuit

LIB = default_library()
INV = LIB.get("INV_X1")
NAND = LIB.get("NAND2_X1")


def valid_circuit():
    c = Circuit("ok")
    c.add_input("a")
    c.add_gate(INV, ["a"], "z")
    c.add_output("z")
    return c


class TestStructuralIssues:
    def test_valid_circuit_clean(self):
        assert structural_issues(valid_circuit()) == []

    def test_no_inputs(self):
        c = Circuit("t")
        c.add_output("z")
        issues = structural_issues(c)
        assert any("no primary inputs" in s for s in issues)

    def test_no_outputs(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate(INV, ["a"], "z")
        issues = structural_issues(c)
        assert any("no primary outputs" in s for s in issues)

    def test_no_gates(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_output("a")
        issues = structural_issues(c)
        assert any("no gates" in s for s in issues)

    def test_undriven_output(self):
        c = valid_circuit()
        c.add_output("ghost")
        issues = structural_issues(c)
        assert any("ghost" in s and "not driven" in s for s in issues)

    def test_undriven_gate_input(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate(NAND, ["a", "ghost"], "z")
        c.add_output("z")
        issues = structural_issues(c)
        assert any("undriven net 'ghost'" in s for s in issues)

    def test_dangling_internal_net(self):
        c = valid_circuit()
        c.add_gate(INV, ["a"], "orphan")
        issues = structural_issues(c)
        assert any("orphan" in s and "dangle" in s for s in issues)

    def test_unused_primary_input(self):
        c = valid_circuit()
        c.add_input("b")
        issues = structural_issues(c)
        assert any("'b' is unused" in s for s in issues)

    def test_cycle(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_gate(NAND, ["a", "n2"], "n1")
        c.add_gate(INV, ["n1"], "n2")
        c.add_gate(INV, ["n1"], "z")
        c.add_output("z")
        issues = structural_issues(c)
        assert any("cycle" in s for s in issues)

    def test_multiple_issues_reported(self):
        c = Circuit("t")
        c.add_input("a")
        c.add_input("b")  # unused
        c.add_gate(INV, ["a"], "z")
        c.add_gate(INV, ["a"], "orphan")  # dangles
        c.add_output("z")
        issues = structural_issues(c)
        assert len(issues) >= 2


class TestValidateCircuit:
    def test_valid_passes(self):
        validate_circuit(valid_circuit())

    def test_invalid_raises_with_details(self):
        c = valid_circuit()
        c.add_input("b")
        with pytest.raises(NetlistError, match="unused"):
            validate_circuit(c)

    def test_paper_benchmarks_validate(self):
        from repro.netlist.benchmarks import load

        for name in ("c17", "c432", "c880"):
            load(name).validate()
