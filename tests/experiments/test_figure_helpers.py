"""Unit tests for the figure experiments' helper machinery."""

import numpy as np
import pytest

from repro.experiments.figure1 import _aligned_histogram_series
from repro.experiments.figure10 import TradeoffPoint, _checkpoints
from repro.timing.paths import PathHistogram


class TestCheckpoints:
    def test_zero_steps(self):
        assert _checkpoints(0, 5) == [0]

    def test_includes_start_and_end(self):
        marks = _checkpoints(30, 6)
        assert marks[0] == 0
        assert marks[-1] == 30

    def test_monotone_unique(self):
        marks = _checkpoints(17, 5)
        assert marks == sorted(set(marks))

    def test_few_steps_many_points(self):
        marks = _checkpoints(2, 10)
        assert marks == [0, 1, 2]

    def test_count_near_requested(self):
        marks = _checkpoints(100, 6)
        assert 5 <= len(marks) <= 7


class TestTradeoffPoint:
    def test_bound_error(self):
        p = TradeoffPoint(iteration=0, total_size=10.0,
                          bound_delay=101.0, mc_delay=100.0)
        assert p.bound_error_pct == pytest.approx(1.0)

    def test_bound_error_zero_mc(self):
        p = TradeoffPoint(iteration=0, total_size=10.0,
                          bound_delay=101.0, mc_delay=0.0)
        assert p.bound_error_pct == 0.0

    def test_bound_error_symmetric(self):
        lo = TradeoffPoint(0, 1.0, 99.0, 100.0)
        hi = TradeoffPoint(0, 1.0, 101.0, 100.0)
        assert lo.bound_error_pct == pytest.approx(hi.bound_error_pct)


class TestAlignedHistogramSeries:
    def _hist(self, counts, offset=0, bin_width=10.0):
        return PathHistogram(bin_width=bin_width, offset=offset,
                             counts=np.asarray(counts, dtype=float))

    def test_mass_preserved(self):
        det = self._hist([1, 2, 3, 4, 5, 6, 7, 8])
        stat = self._hist([8, 7, 6, 5, 4, 3, 2, 1])
        series = _aligned_histogram_series(det, stat, n_points=4)
        assert sum(series[1]) == pytest.approx(det.total_paths)
        assert sum(series[3]) == pytest.approx(stat.total_paths)

    def test_columns_equal_length(self):
        det = self._hist(np.arange(1, 30, dtype=float))
        stat = self._hist(np.arange(1, 12, dtype=float))
        series = _aligned_histogram_series(det, stat, n_points=7)
        assert {len(col) for col in series} == {7}

    def test_normalized_delays_in_unit_range(self):
        det = self._hist([1, 1, 1, 1], offset=5)
        stat = self._hist([2, 2], offset=3)
        series = _aligned_histogram_series(det, stat, n_points=3)
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in series[0])
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in series[2])
