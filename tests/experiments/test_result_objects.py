"""Unit tests for experiment result objects built from synthetic rows
(no circuit computation — pure reporting logic)."""

import pytest

from repro.experiments.table1 import Table1Result, Table1Row
from repro.experiments.table2 import Table2Result, Table2Row


def t1_row(circuit="cX", det=100.0, stat=90.0):
    return Table1Row(
        circuit=circuit,
        n_nodes=100,
        n_edges=200,
        size_increase_pct=10.0,
        deterministic_delay=det,
        statistical_delay=stat,
    )


class TestTable1Row:
    def test_improvement(self):
        assert t1_row().improvement_pct == pytest.approx(10.0)

    def test_zero_deterministic(self):
        assert t1_row(det=0.0).improvement_pct == 0.0

    def test_negative_improvement_possible(self):
        assert t1_row(det=90.0, stat=100.0).improvement_pct < 0.0


class TestTable1Result:
    def test_aggregates(self):
        result = Table1Result(
            rows=[t1_row(det=100, stat=95), t1_row(det=100, stat=90)],
            iterations=10,
        )
        assert result.average_improvement_pct == pytest.approx(7.5)
        assert result.max_improvement_pct == pytest.approx(10.0)

    def test_empty(self):
        result = Table1Result(rows=[], iterations=10)
        assert result.average_improvement_pct == 0.0
        assert result.max_improvement_pct == 0.0

    def test_render_has_all_circuits(self):
        result = Table1Result(
            rows=[t1_row("alpha"), t1_row("beta")], iterations=3
        )
        text = result.render()
        assert "alpha" in text and "beta" in text
        assert "100/200" in text


def t2_row(brute=10.0, pruned=1.0):
    return Table2Row(
        circuit="cY",
        brute_force_s=brute,
        pruned_s=pruned,
        time_range_s=(0.5, 1.5),
        improvement_range=(5.0, 15.0),
        pruned_fraction=0.9,
        work_ratio=12.0,
        selections_match=True,
    )


class TestTable2Row:
    def test_improvement_factor(self):
        assert t2_row().improvement_factor == pytest.approx(10.0)

    def test_zero_pruned_time(self):
        assert t2_row(pruned=0.0).improvement_factor == float("inf")


class TestTable2Result:
    def test_max_factor(self):
        result = Table2Result(
            rows=[t2_row(brute=10.0), t2_row(brute=30.0)], iterations=4
        )
        assert result.max_improvement_factor == pytest.approx(30.0)

    def test_empty(self):
        assert Table2Result(rows=[], iterations=4).max_improvement_factor == 0.0

    def test_render_columns(self):
        text = Table2Result(rows=[t2_row()], iterations=4).render()
        assert "brute force" in text
        assert "pruned %" in text
        assert "0.5-1.5" in text
