"""Integration tests for the table/figure experiment harness.

These run the real experiment code on heavily scaled configurations —
small enough for CI, large enough that the paper's qualitative claims
(who wins, what is bounded by what) are actually asserted.
"""

import pytest

from repro.config import AnalysisConfig
from repro.experiments import (
    ExperimentConfig,
    evaluate_statistical,
    evaluate_widths,
    fast_config,
    load_scaled,
    paper_config,
    run_figure1,
    run_figure2,
    run_figure10,
    run_table1,
    run_table2,
)

#: Tiny preset shared by the harness tests.
TINY = ExperimentConfig(
    suite=("c432",),
    scales={"c432": 0.35},
    iterations=6,
    analysis=AnalysisConfig(dt=8.0, delta_w=1.0),
    mc_samples=1500,
)


class TestConfigs:
    def test_fast_config_scales_large_circuits(self):
        cfg = fast_config()
        assert cfg.scale_of("c6288") < 0.5
        assert cfg.scale_of("c432") == 1.0

    def test_paper_config_full_size(self):
        cfg = paper_config()
        assert cfg.scale_of("c6288") == 1.0
        assert cfg.iterations >= 1000

    def test_objective_percentile(self):
        assert TINY.objective().p == 0.99

    def test_load_scaled(self):
        c = load_scaled("c432", TINY)
        assert c.n_gates < 178

    def test_evaluate_widths_restores(self):
        c = load_scaled("c432", TINY)
        before = c.widths()
        widths = {k: 2.0 for k in before}
        evaluate_widths(c, widths, TINY)
        assert c.widths() == before

    def test_evaluate_statistical_positive(self):
        c = load_scaled("c432", TINY)
        assert evaluate_statistical(c, TINY) > 0.0


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(TINY)

    def test_row_per_circuit(self, result):
        assert [r.circuit for r in result.rows] == ["c432"]

    def test_statistical_not_worse(self, result):
        """The paper's qualitative claim at matched area."""
        row = result.rows[0]
        assert row.statistical_delay <= row.deterministic_delay * 1.005

    def test_counts_reported(self, result):
        row = result.rows[0]
        assert row.n_nodes > 0 and row.n_edges > row.n_nodes // 2

    def test_size_increase_positive(self, result):
        assert result.rows[0].size_increase_pct > 0.0

    def test_render_contains_columns(self, result):
        text = result.render()
        assert "Table 1" in text
        assert "% impr." in text
        assert "c432" in text
        assert "average improvement" in text

    def test_aggregates(self, result):
        assert result.max_improvement_pct >= result.average_improvement_pct


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(TINY)

    def test_selections_match(self, result):
        assert all(r.selections_match for r in result.rows)

    def test_pruned_faster_or_close(self, result):
        """At tiny scale the speedup is small, but pruned must never be
        drastically slower; at benchmark scale it wins (Table 2)."""
        row = result.rows[0]
        assert row.improvement_factor > 0.5

    def test_work_ratio_above_one(self, result):
        assert result.rows[0].work_ratio > 1.0

    def test_pruning_happens(self, result):
        assert result.rows[0].pruned_fraction > 0.0

    def test_render(self, result):
        text = result.render()
        assert "Table 2" in text and "imp. factor" in text


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1("c432", TINY)

    def test_histograms_populated(self, result):
        assert result.det_histogram.total_paths > 1.0
        assert result.stat_histogram.total_paths > 1.0

    def test_wall_metrics_in_range(self, result):
        assert 0.0 <= result.stat_wall <= 1.0
        assert 0.0 <= result.det_wall <= 1.0

    def test_render(self, result):
        text = result.render()
        assert "Figure 1" in text and "deterministic" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure2("c432", TINY)

    def test_objective_improves(self, result):
        assert result.objective_after < result.objective_before

    def test_max_gap_bounds_objective_shift(self, result):
        """delta >= delta(p*) — the inequality pruning relies on."""
        assert result.max_gap >= result.objective_shift - 1e-9

    def test_gap_profile_shape(self, result):
        levels, gaps = result.gap_profile()
        assert len(levels) == len(gaps) == 19
        assert max(gaps) <= result.max_gap + 1e-6

    def test_named_gate(self):
        res = run_figure2("c432", TINY, gate_name=None)
        named = run_figure2("c432", TINY, gate_name=res.gate)
        assert named.gate == res.gate
        assert named.objective_shift == pytest.approx(res.objective_shift)

    def test_render(self, result):
        text = result.render()
        assert "Figure 2" in text and "delta" in text


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure10("c432", TINY, n_points=3)

    def test_curves_have_checkpoints(self, result):
        assert len(result.deterministic) >= 2
        assert len(result.statistical) >= 2

    def test_areas_increase_along_curve(self, result):
        sizes = [p.total_size for p in result.statistical]
        assert sizes == sorted(sizes)

    def test_bound_tracks_monte_carlo(self, result):
        """Paper: <1% at full scale; allow slack for the tiny config."""
        assert result.max_bound_error_pct < 6.0

    def test_statistical_dominates(self, result):
        assert result.statistical_dominates()

    def test_render(self, result):
        text = result.render()
        assert "Figure 10" in text and "MC 99%" in text
