"""Unit tests for the text report helpers."""

import pytest

from repro.experiments.report import format_series, format_table


class TestFormatTable:
    def test_contains_title_and_headers(self):
        out = format_table("My Table", ["a", "bb"], [[1, 2.5], [3, 4.0]])
        assert "My Table" in out
        assert "a" in out and "bb" in out

    def test_row_count(self):
        out = format_table("T", ["x"], [[1], [2], [3]])
        # title + underline + header + separator + 3 rows
        assert len(out.splitlines()) == 7

    def test_float_formatting(self):
        out = format_table("T", ["x"], [[1234.567], [12.345], [1.23456], [0.0]])
        lines = out.splitlines()
        assert "1235" in lines[4]
        assert "12.3" in lines[5]
        assert "1.235" in lines[6]
        assert lines[7].strip().endswith("0")

    def test_alignment_consistent(self):
        out = format_table("T", ["col"], [["x"], ["longer"]])
        rows = out.splitlines()[2:]
        assert len({len(r) for r in rows if r}) <= 2


class TestFormatSeries:
    def test_columns_zip(self):
        out = format_series("S", ["t", "v"], [[1.0, 2.0], [10.0, 20.0]])
        assert "10" in out and "20" in out

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            format_series("S", ["t", "v"], [[1.0], [10.0, 20.0]])

    def test_empty_series(self):
        out = format_series("S", ["t"], [])
        assert "S" in out
