"""Tests for the repro-ssta command-line interface."""

import threading

import pytest

from repro.cli import build_parser, main
from repro.netlist.bench import C17_BENCH


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_unknown_circuit_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "c9999"])


class TestCommands:
    def test_analyze_c17(self, capsys):
        assert main(["analyze", "c17", "--mc-samples", "300"]) == 0
        out = capsys.readouterr().out
        assert "STA delay" in out
        assert "SSTA 99% bound" in out

    def test_analyze_scaled(self, capsys):
        assert main(["analyze", "c432", "--scale", "0.3",
                     "--mc-samples", "200"]) == 0
        out = capsys.readouterr().out
        assert "gates" in out

    def test_bench_file(self, tmp_path, capsys):
        path = tmp_path / "c17.bench"
        path.write_text(C17_BENCH)
        assert main(["bench", str(path), "--mc-samples", "200"]) == 0
        assert "Timing summary" in capsys.readouterr().out

    def test_optimize_statistical(self, capsys):
        assert main(["optimize", "c17", "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert "pruned-statistical" in out
        assert "improvement" in out
        assert "cache hit rate" in out  # the cache is on by default

    def test_optimize_cache_disabled(self, capsys):
        assert main(["optimize", "c17", "-n", "3", "--cache", "0"]) == 0
        out = capsys.readouterr().out
        assert "pruned-statistical" in out
        assert "cache hit rate" not in out

    def test_optimize_cached_and_uncached_report_same_objective(self, capsys):
        assert main(["optimize", "c17", "-n", "3", "--cache", "0"]) == 0
        plain = capsys.readouterr().out
        assert main(["optimize", "c17", "-n", "3"]) == 0
        cached = capsys.readouterr().out
        pick = lambda text: [
            line for line in text.splitlines() if "final" in line
        ]
        assert pick(plain) == pick(cached)

    def test_optimize_deterministic(self, capsys):
        assert main(["optimize", "c17", "-n", "3", "--deterministic"]) == 0
        assert "deterministic" in capsys.readouterr().out

    def test_analyze_jobs_matches_serial(self, capsys):
        """--jobs shards level batches across workers; every reported
        statistic must be identical to the serial run (the knob is
        bitwise-transparent end to end)."""
        assert main(["analyze", "c17", "--mc-samples", "200"]) == 0
        serial = capsys.readouterr().out
        assert main(["analyze", "c17", "--mc-samples", "200",
                     "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_optimize_jobs_matches_serial(self, capsys):
        assert main(["optimize", "c17", "-n", "2"]) == 0
        serial = capsys.readouterr().out
        assert main(["optimize", "c17", "-n", "2", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        pick = lambda text: [
            line for line in text.splitlines()
            if "final" in line or "iterations" in line
        ]
        assert pick(serial) == pick(parallel)

    def test_optimize_cache_file_conflicts_with_cache_zero(self, tmp_path):
        """--cache 0 promises an uncached run; combining it with a
        snapshot file must fail loudly, not silently re-enable."""
        with pytest.raises(SystemExit, match="cache"):
            main(["optimize", "c17", "-n", "1", "--cache", "0",
                  "--cache-file", str(tmp_path / "x.cache")])
        assert not (tmp_path / "x.cache").exists()

    def test_optimize_cache_file_conflicts_with_deterministic(self, tmp_path):
        """The deterministic baseline has nothing to snapshot; the
        knob must fail loudly rather than silently no-op."""
        with pytest.raises(SystemExit, match="deterministic"):
            main(["optimize", "c17", "-n", "1", "--deterministic",
                  "--cache-file", str(tmp_path / "x.cache")])
        assert not (tmp_path / "x.cache").exists()

    def test_optimize_cache_file_warm_start(self, tmp_path, capsys):
        """Second run against the same snapshot resolves its kernel
        work from the loaded entries and reports the same objective."""
        snap = tmp_path / "c17.cache"
        assert main(["optimize", "c17", "-n", "2",
                     "--cache-file", str(snap)]) == 0
        first = capsys.readouterr().out
        assert snap.exists()
        assert "cache entries saved" in first
        assert "cache entries loaded" not in first

        assert main(["optimize", "c17", "-n", "2",
                     "--cache-file", str(snap)]) == 0
        second = capsys.readouterr().out
        assert "cache entries loaded" in second

        def grab(text, label):
            return [ln for ln in text.splitlines() if label in ln]

        assert grab(first, "final") == grab(second, "final")

        def hit_rate(text):
            (line,) = grab(text, "cache hit rate")
            return float(line.split("|")[-1])

        assert hit_rate(second) > hit_rate(first)

    def test_optimize_cache_file_warm_start_hit_rate_jobs_invariant(
        self, tmp_path, capsys
    ):
        """Warm-start coverage must not depend on the execution plan:
        an identical re-run serves *every* kernel request from the
        snapshot (hit rate exactly 1.000) at jobs=1 and jobs=2 alike —
        under jobs>1 the loaded entries are additionally routed into
        the shared-memory operand arena (the 'preloaded' row) so warm
        shards ship index tuples from the first level."""
        snap = tmp_path / "c17.cache"
        assert main(["optimize", "c17", "-n", "2",
                     "--cache-file", str(snap)]) == 0
        capsys.readouterr()

        def row(text, label):
            (line,) = [ln for ln in text.splitlines() if label in ln]
            return line.split("|")[-1].strip()

        rates = {}
        for jobs in ("1", "2"):
            assert main(["optimize", "c17", "-n", "2", "--jobs", jobs,
                         "--cache-file", str(snap)]) == 0
            out = capsys.readouterr().out
            assert "cache entries loaded" in out
            rates[jobs] = row(out, "cache hit rate")
            if jobs == "2":
                assert int(row(out, "cache entries preloaded")) > 0
        assert rates["1"] == rates["2"] == "1.000"

    def test_optimize_cache_file_accumulates_entries(self, tmp_path, capsys):
        """The snapshot is re-saved after every run: the second run's
        saved entry count can only grow (append-on-exit semantics)."""
        snap = tmp_path / "c17.cache"

        def saved(text):
            (line,) = [
                ln for ln in text.splitlines()
                if "cache entries saved" in ln
            ]
            return int(line.split("|")[-1])

        assert main(["optimize", "c17", "-n", "2",
                     "--cache-file", str(snap)]) == 0
        first = saved(capsys.readouterr().out)
        assert first > 0

        assert main(["optimize", "c17", "-n", "4",
                     "--cache-file", str(snap)]) == 0
        second_out = capsys.readouterr().out
        assert "cache entries saved" in second_out  # re-saved, not just loaded
        assert saved(second_out) >= first

    def test_optimize_cache_file_saved_even_when_run_raises(
        self, tmp_path, monkeypatch, capsys
    ):
        """A crashed run must still snapshot its warm state."""
        import repro.cli as cli_mod

        class ExplodingSizer(cli_mod.PrunedStatisticalSizer):
            def run(self):
                # Do real kernel work first so the cache has entries.
                super().run()
                raise RuntimeError("boom after real work")

        monkeypatch.setattr(
            cli_mod, "PrunedStatisticalSizer", ExplodingSizer
        )
        snap = tmp_path / "crash.cache"
        with pytest.raises(RuntimeError, match="boom"):
            main(["optimize", "c17", "-n", "2",
                  "--cache-file", str(snap)])
        assert snap.exists()

        from repro.dist.cache import ConvolutionCache

        assert len(ConvolutionCache.load(snap)) > 0

    def test_figure2_runs(self, capsys):
        assert main(["figure2", "c432", "--iterations", "2"]) == 0
        assert "Figure 2" in capsys.readouterr().out


class TestYieldAndExport:
    def test_yield_command(self, capsys):
        assert main(["yield", "c17", "--target", "280"]) == 0
        out = capsys.readouterr().out
        assert "Timing yield" in out
        assert "yield curve" in out
        assert "yield at 280" in out

    def test_yield_without_target(self, capsys):
        assert main(["yield", "c17"]) == 0
        assert "delay at 99% yield" in capsys.readouterr().out

    def test_export_to_stdout(self, capsys):
        assert main(["export", "c17"]) == 0
        out = capsys.readouterr().out
        assert "INPUT(1)" in out and "= NAND(" in out

    def test_export_to_file_roundtrips(self, tmp_path, capsys):
        path = tmp_path / "exported.bench"
        assert main(["export", "c432", "-o", str(path)]) == 0
        assert main(["bench", str(path), "--mc-samples", "200"]) == 0
        out = capsys.readouterr().out
        assert "Timing summary" in out

    def test_analyze_includes_corners(self, capsys):
        assert main(["analyze", "c17", "--mc-samples", "200"]) == 0
        out = capsys.readouterr().out
        assert "corner best/typ/worst" in out
        assert "pessimism" in out


@pytest.fixture
def service_url():
    """An in-process analysis server for exercising the client verbs
    (the serve verb's own lifecycle is covered in tests/service/)."""
    from repro.config import DEFAULT_CONFIG
    from repro.service import ServiceState, start_server

    # Default grid so service-side numbers are comparable with the
    # local `analyze` output (c17 keeps this fast).
    state = ServiceState(config=DEFAULT_CONFIG)
    server = start_server(state)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.url
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestClientCommands:
    def test_client_analyze(self, service_url, capsys):
        assert main(["client", "--url", service_url,
                     "analyze", "c17"]) == 0
        out = capsys.readouterr().out
        assert "Timing summary (service)" in out
        assert "SSTA 99% bound" in out
        assert "server cache hit rate" in out

    def test_client_analyze_matches_local_numbers(self, service_url,
                                                  capsys):
        """The service and the local path print byte-identical SSTA
        statistics (shared rows of the two summary tables)."""
        assert main(["client", "--url", service_url,
                     "analyze", "c17"]) == 0
        remote = capsys.readouterr().out
        assert main(["analyze", "c17", "--mc-samples", "200"]) == 0
        local = capsys.readouterr().out

        def rows(text, labels):
            picked = {}
            for line in text.splitlines():
                for label in labels:
                    if label in line:
                        picked[label] = line.split("|")[-1].strip()
            return picked

        labels = ["STA delay", "SSTA mean", "SSTA sigma",
                  "SSTA 99% bound"]
        assert rows(remote, labels) == rows(local, labels)

    def test_client_optimize(self, service_url, capsys):
        assert main(["client", "--url", service_url, "optimize",
                     "c17", "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "sizing (service)" in out
        assert "final 99-percentile delay" in out

    def test_client_yield(self, service_url, capsys):
        assert main(["client", "--url", service_url, "yield",
                     "c17", "--target", "290"]) == 0
        out = capsys.readouterr().out
        assert "Timing yield (service)" in out
        assert "yield curve" in out

    def test_client_stats(self, service_url, capsys):
        assert main(["client", "--url", service_url,
                     "analyze", "c17"]) == 0
        capsys.readouterr()
        assert main(["client", "--url", service_url, "stats"]) == 0
        out = capsys.readouterr().out
        assert "Service statistics" in out
        assert "cache hit rate" in out
        assert "request latency" in out

    def test_client_unreachable_server(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="cannot reach"):
            main(["client", "--url", "http://127.0.0.1:1",
                  "stats"])

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8731
        assert args.cache_file is None
        assert args.func.__name__ == "cmd_serve"
