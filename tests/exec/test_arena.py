"""Arena-transport test tier: lifecycle, differential, faults, leaks.

The PR-7 tentpole replaces pickled mass vectors in shard payloads with
``(segment, generation, offset, length)`` index tuples into a
shared-memory operand arena.  This suite locks the contract in four
layers:

* **unit lifecycle** — publish/dedupe, epoch turns under the byte
  budget, pin-deferred resets, zero-copy view round trips, and the
  loud-failure paths: stale generation, vanished segment, corrupt
  header, out-of-bounds ref all raise
  :class:`~repro.errors.DistributionError`, never wrong bytes;
* **three-way differential** — random DAGs through every engine
  (forward, backward, incremental, perturbation fronts) with dispatch
  *forced* (cost gate zeroed, one-item shards) must produce bitwise
  identical sinks, OpCounter tallies, and cache request streams for
  shm transport == pickle transport == serial, across jobs {1, 2, 4},
  every backend, and cache off / ample / tiny;
* **fault injection** — a worker killed mid-life latches the executor
  serial with the arena fully unlinked and a clean stderr (no
  resource-tracker leaked-segment warnings), asserted from a real
  subprocess; corrupt/stale arena state is loud at the worker entry
  points themselves;
* **leak regression** — 50 analyze cycles under a tiny cache budget
  and a deliberately starved arena budget (maximum epoch churn) leave
  ``/dev/shm`` and the arena byte accounting exactly at baseline after
  ``shutdown_executors()``.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AnalysisConfig
from repro.core.objectives import default_objective
from repro.core.perturbation import PerturbationFront
from repro.dist.backends import get_backend
from repro.dist.cache import ConvolutionCache
from repro.dist.families import truncated_gaussian_pdf
from repro.dist.ops import OpCounter, convolve_batch_raws
from repro.errors import DistributionError
from repro.exec import (
    ProcessExecutor,
    SERIAL_EXECUTOR,
    get_executor,
    shutdown_executors,
)
from repro.exec.arena import (
    ArenaClient,
    HEADER_BYTES,
    OperandArena,
    live_arena_stats,
    shm_available,
)
from repro.exec.plan import ConvolveBatchRefs
from repro.exec.pool import _run_convolve_shard_refs, _run_max_shard_refs
from repro.netlist.generate import CircuitSpec, generate_circuit
from repro.timing.criticality import run_backward_ssta
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.incremental import update_ssta_after_resize
from repro.timing.ssta import run_ssta

from tests.conftest import ALL_BACKENDS, build_two_path

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

CACHE_SPECS = (None, 1 << 14, 32)

#: The parallel plans the differential runs against the serial
#: reference: both transports, and jobs beyond the worker count.
FORCED_PLANS = ((2, "shm"), (4, "shm"), (2, "pickle"))


def g(center, sigma=40.0, dt=4.0):
    return truncated_gaussian_pdf(dt, center, sigma)


def _pairs(n, dt=4.0):
    return [
        (g(500.0 + 7 * i, dt=dt).masses, g(800.0 + 11 * i, 25.0, dt=dt).masses)
        for i in range(n)
    ]


def _groups(n):
    out = []
    for i in range(n):
        k = 2 + (i % 3)
        out.append(tuple(g(400.0 + 13 * i + 31 * j, 20.0 + 5 * j)
                         for j in range(k)))
    return out


def _shm_entries():
    """Named ``rpa-`` segments *owned by this process* currently
    visible in /dev/shm (None on platforms that don't expose the
    tmpfs directory).  Scoped by the creator-PID baked into every
    arena segment name so a concurrent arena user — another test
    process, a benchmark run — can't perturb baseline comparisons."""
    d = "/dev/shm"
    if not os.path.isdir(d):
        return None
    prefix = f"rpa-{os.getpid():x}-"
    return sorted(n for n in os.listdir(d) if n.startswith(prefix))


@pytest.fixture(scope="module")
def eager_shm():
    """A 2-worker shm-transport plan that shards even 2-item batches
    and never folds a batch to serial on cost — every batch genuinely
    crosses the process boundary through the arena."""
    ex = ProcessExecutor(2, min_items_per_shard=1, min_dispatch_cost_us=0.0)
    yield ex
    ex.close()


@pytest.fixture(scope="module")
def forced_registry():
    """Force real dispatch on the registry executors the engines
    resolve: one-item shards and a zeroed cost gate for every plan in
    :data:`FORCED_PLANS`, restored on module teardown."""
    saved = {}
    for jobs, transport in FORCED_PLANS:
        ex = get_executor(jobs, transport)
        saved[(jobs, transport)] = (
            ex.min_items_per_shard, ex.min_dispatch_cost_us
        )
        ex.min_items_per_shard = 1
        ex.min_dispatch_cost_us = 0.0
    yield
    for (jobs, transport), (mi, md) in saved.items():
        ex = get_executor(jobs, transport)
        ex.min_items_per_shard = mi
        ex.min_dispatch_cost_us = md


# ----------------------------------------------------------------------
# Unit lifecycle
# ----------------------------------------------------------------------

class TestArenaLifecycle:
    def test_publish_dedupes_and_views_roundtrip(self):
        arena = OperandArena()
        try:
            a = g(500.0).masses
            b = g(800.0, 25.0).masses
            refs = arena.publish([a, b, a.copy()])
            # Content addressing: the copy resolves to the first ref.
            assert refs[0] == refs[2]
            assert refs[0] != refs[1]
            assert arena.entries == 2
            assert arena.live_bytes == 8 * (a.size + b.size)
            name, gen, off, n = refs[0]
            assert isinstance(name, str) and name.startswith("rpa-")
            assert gen == arena.generation and n == a.size
            assert off >= HEADER_BYTES and off % 8 == 0

            client = ArenaClient()
            try:
                va = client.view(refs[0])
                assert np.array_equal(va, a)
                assert not va.flags.writeable
                assert client.view(refs[0]) is va  # memoized
                pdf = client.pdf(4.0, 100, refs[1])
                assert np.array_equal(pdf.masses, b)
                assert pdf.dt == 4.0 and pdf.offset == 100
                assert client.pdf(4.0, 100, refs[1]) is pdf  # memoized
                # Drop the zero-copy views before clear() so the
                # mapped buffers have no exported pointers left.
                del va, pdf
            finally:
                client.clear()

            # Re-publishing already-resident vectors adds nothing.
            again = arena.publish([b, a])
            assert again == [refs[1], refs[0]]
            assert arena.entries == 2
        finally:
            arena.close()

    def test_segments_unlink_on_close(self):
        arena = OperandArena()
        arena.publish([g(500.0).masses])
        names = arena.segment_names
        assert names
        listing = _shm_entries()
        if listing is not None:
            assert set(names) <= set(listing)
        arena.close()
        arena.close()  # idempotent
        listing = _shm_entries()
        if listing is not None:
            assert not set(names) & set(listing)
        with pytest.raises(DistributionError, match="closed"):
            arena.publish([g(500.0).masses])

    def test_budget_crossing_turns_the_epoch(self):
        arena = OperandArena(slab_bytes=1 << 12, budget_bytes=1 << 12)
        try:
            big = np.linspace(0.0, 1.0, 300)  # 2400 B
            r1 = arena.publish([big])[0]
            gen1 = arena.generation
            old_names = arena.segment_names
            # A second distinct vector crosses the 4 KiB budget: the
            # arena turns the epoch before writing it.
            r2 = arena.publish([big + 1.0])[0]
            assert arena.generation == gen1 + 1
            assert r2[1] == gen1 + 1
            assert not set(old_names) & set(arena.segment_names)
            assert arena.entries == 1  # the old index is gone
            assert r1[0] != r2[0]
        finally:
            arena.close()

    def test_foreign_pin_defers_reset_own_pin_does_not(self):
        arena = OperandArena(slab_bytes=1 << 12, budget_bytes=1 << 12)
        try:
            big = np.linspace(0.0, 1.0, 300)
            arena.publish([big])
            gen1 = arena.generation
            # A pin held by "another batch in flight" (no token passed)
            # must defer the epoch turn even over budget …
            with arena.pinned():
                arena.publish([big + 1.0])
                assert arena.generation == gen1
                assert arena._reset_pending
            # … and the deferred turn fires once the pin drains.
            with arena.pinned() as token:
                arena.publish([big + 2.0], token=token)
            assert arena.generation == gen1 + 1
            # The caller's own pin never blocks its own publish: its
            # refs are not in flight yet, so over-budget publishes
            # keep turning the epoch even while the token is held.
            gen_before = arena.generation
            with arena.pinned() as token:
                arena.publish([big + 3.0] * 2, token=token)
                arena.publish([np.linspace(2.0, 3.0, 300)], token=token)
            assert arena.generation > gen_before
        finally:
            arena.close()

    def test_stale_generation_is_loud(self):
        arena = OperandArena()
        client = ArenaClient()
        try:
            old_ref = arena.publish([g(500.0).masses])[0]
            arena.reset()  # epoch turn: old bytes reclaimed
            new_ref = arena.publish([g(800.0, 25.0).masses])[0]
            client.view(new_ref)  # client now knows the new generation
            with pytest.raises(DistributionError, match="stale"):
                client.view(old_ref)
        finally:
            client.clear()
            arena.close()

    def test_newer_generation_drops_old_client_state(self):
        arena = OperandArena()
        client = ArenaClient()
        try:
            r1 = arena.publish([g(500.0).masses])[0]
            client.view(r1)
            old_segments = set(client._segments)
            arena.reset()
            r2 = arena.publish([g(800.0, 25.0).masses])[0]
            client.view(r2)
            assert not old_segments & set(client._segments)
            assert all(ref[1] == r2[1] for ref in client._views)
        finally:
            client.clear()
            arena.close()

    def test_vanished_segment_is_loud(self):
        arena = OperandArena()
        ref = arena.publish([g(500.0).masses])[0]
        arena.close()  # unlinks the segment out from under the ref
        client = ArenaClient()
        try:
            with pytest.raises(DistributionError, match="vanished"):
                client.view(ref)
        finally:
            client.clear()

    def test_corrupt_header_is_loud(self):
        arena = OperandArena()
        try:
            ref = arena.publish([g(500.0).masses])[0]
            slab = arena._slabs[0]
            slab.buf[0] = slab.buf[0] ^ 0xFF  # smash the magic
            client = ArenaClient()
            try:
                with pytest.raises(DistributionError, match="validation"):
                    client.view(ref)
            finally:
                client.clear()
        finally:
            arena.close()

    def test_wrong_generation_header_is_loud(self):
        """A header whose generation differs from the ref's (a slab
        recycled across an epoch turn) must fail attach validation."""
        arena = OperandArena()
        try:
            name, gen, off, n = arena.publish([g(500.0).masses])[0]
            client = ArenaClient()
            try:
                with pytest.raises(DistributionError, match="validation"):
                    client.view((name, gen + 1, off, n))
            finally:
                client.clear()
        finally:
            arena.close()

    def test_out_of_bounds_ref_is_loud(self):
        arena = OperandArena()
        client = ArenaClient()
        try:
            name, gen, off, n = arena.publish([g(500.0).masses])[0]
            with pytest.raises(DistributionError, match="out of bounds"):
                client.view((name, gen, off, 10 ** 9))
            with pytest.raises(DistributionError, match="out of bounds"):
                client.view((name, gen, 0, 1))  # inside the header
        finally:
            client.clear()
            arena.close()

    def test_live_arena_stats_track_publication(self):
        base = live_arena_stats()
        arena = OperandArena()
        try:
            arena.publish(_pairs(3)[0])
            now = live_arena_stats()
            assert now["arenas"] == base["arenas"] + 1
            assert now["bytes"] > base["bytes"]
        finally:
            arena.close()
        after = live_arena_stats()
        assert after["arenas"] == base["arenas"]
        assert after["bytes"] == base["bytes"]


class TestWorkerEntryFaults:
    """The actual worker entry points must be loud on bad refs — a
    stale or vanished ref raises DistributionError, never computes."""

    def test_convolve_entry_rejects_vanished_ref(self):
        bogus = ("rpa-dead00-00000000-g1-s0", 1, HEADER_BYTES, 8)
        batch = ConvolveBatchRefs("direct", ((bogus, bogus),))
        with pytest.raises(DistributionError):
            _run_convolve_shard_refs(batch)

    def test_max_entry_rejects_vanished_ref(self):
        from repro.exec.plan import MaxBatchRefs

        bogus = ("rpa-dead00-00000000-g1-s0", 1, HEADER_BYTES, 8)
        batch = MaxBatchRefs(((
            (4.0, 10, bogus), (4.0, 12, bogus),
        ),))
        with pytest.raises(DistributionError):
            _run_max_shard_refs(batch)

    def test_fault_crosses_the_process_boundary(self, eager_shm):
        """A worker that hits a bad ref raises DistributionError
        through the future — the coordinator sees the loud failure,
        not a wrong answer."""
        kernel = get_backend("direct")
        eager_shm.run_convolve_batch(kernel, _pairs(4))  # warm the pool
        bogus = ("rpa-dead00-00000000-g1-s0", 1, HEADER_BYTES, 8)
        batch = ConvolveBatchRefs("direct", ((bogus, bogus),))
        fut = eager_shm._ensure_pool().submit(_run_convolve_shard_refs, batch)
        with pytest.raises(DistributionError):
            fut.result(timeout=60)


# ----------------------------------------------------------------------
# Executor-level transport behaviour
# ----------------------------------------------------------------------

class TestShmTransportExecutor:
    def test_batches_bitwise_vs_serial_and_dedupe_across_batches(
        self, backend, eager_shm
    ):
        kernel = get_backend(backend)
        for n in (2, 5, 11):
            pairs = _pairs(n)
            cp, cs = OpCounter(), OpCounter()
            par = eager_shm.run_convolve_batch(kernel, pairs, counter=cp)
            ser = SERIAL_EXECUTOR.run_convolve_batch(kernel, pairs,
                                                     counter=cs)
            for a, b in zip(par, ser):
                assert np.array_equal(a, b)
            assert cp.convolutions == cs.convolutions == n
        groups = _groups(5)
        par = eager_shm.run_max_batch(groups)
        ser = SERIAL_EXECUTOR.run_max_batch(groups)
        for (lo_a, m_a), (lo_b, m_b) in zip(par, ser):
            assert lo_a == lo_b
            assert np.array_equal(m_a, m_b)
        # The arena was consulted and content-deduplicated: replaying
        # a batch adds no new entries.
        arena = eager_shm.arena
        assert arena is not None and arena.entries > 0
        before = arena.entries
        eager_shm.run_convolve_batch(kernel, _pairs(5))
        assert arena.entries == before

    def test_ref_payloads_are_an_order_smaller_than_pickle(self, eager_shm):
        """The acceptance gate in micro form: for a realistic batch of
        dense operands, the shm shard payloads must pickle to <10% of
        the pickle transport's bytes."""
        pairs = _pairs(16, dt=1.0)  # ~320-bin operands
        kernel = get_backend("direct")
        pickle_ex = ProcessExecutor(2, min_items_per_shard=1,
                                    transport="pickle")
        try:
            for ex in (eager_shm, pickle_ex):
                ex.payload_audit = True
                ex.payload_bytes = 0
                ex.payload_shards = 0
            shm_out = eager_shm.run_convolve_batch(kernel, pairs)
            pkl_out = pickle_ex.run_convolve_batch(kernel, pairs)
            for a, b in zip(shm_out, pkl_out):
                assert np.array_equal(a, b)
            assert eager_shm.payload_shards == pickle_ex.payload_shards == 2
            assert eager_shm.payload_bytes * 10 < pickle_ex.payload_bytes
        finally:
            pickle_ex.close()
            eager_shm.payload_audit = False

    def test_cost_gate_folds_cheap_batches_inline(self):
        """Under the default gate a sub-millisecond batch never pays a
        round trip: no pool is spawned, no arena is created, and the
        bits match the serial plan."""
        ex = ProcessExecutor(2, min_items_per_shard=1)
        try:
            kernel = get_backend("direct")
            pairs = _pairs(4)
            out = ex.run_convolve_batch(kernel, pairs)
            ref = convolve_batch_raws(kernel, pairs)
            for a, b in zip(out, ref):
                assert np.array_equal(a, b)
            assert ex._pool is None
            assert ex.arena is None
        finally:
            ex.close()

    def test_publish_failure_latches_pickle_fallback(self):
        ex = ProcessExecutor(2, min_items_per_shard=1,
                             min_dispatch_cost_us=0.0)
        try:
            def no_arena():
                raise OSError("no shared memory for you")

            ex._ensure_arena = no_arena
            kernel = get_backend("direct")
            pairs = _pairs(6)
            out = ex.run_convolve_batch(kernel, pairs)
            ref = convolve_batch_raws(kernel, pairs)
            for a, b in zip(out, ref):
                assert np.array_equal(a, b)
            assert ex._shm_broken  # latched: pickle wire from here on
            assert ex.arena is None
        finally:
            ex.close()

    def test_preload_operands_roundtrip(self, eager_shm):
        arrays = [p[0] for p in _pairs(5)]
        n = eager_shm.preload_operands(arrays)
        assert n == 5
        arena = eager_shm.arena
        before = arena.entries
        # The coming batch's publish finds everything resident.
        refs = arena.publish(arrays)
        assert arena.entries == before
        assert len(refs) == 5

    def test_transport_validation(self):
        with pytest.raises(ValueError, match="transport"):
            ProcessExecutor(2, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="transport"):
            AnalysisConfig(transport="carrier-pigeon")
        assert get_executor(1, "pickle") is SERIAL_EXECUTOR
        assert get_executor(2, "shm") is not get_executor(2, "pickle")


# ----------------------------------------------------------------------
# Engine differential: shm == pickle == serial, bitwise (Satellite 1)
# ----------------------------------------------------------------------

@st.composite
def circuits(draw):
    n_gates = draw(st.integers(min_value=5, max_value=20))
    depth = draw(st.integers(min_value=2, max_value=min(6, n_gates)))
    edges = draw(
        st.integers(min_value=int(1.5 * n_gates), max_value=int(2.5 * n_gates))
    )
    seed = draw(st.integers(min_value=0, max_value=9999))
    spec = CircuitSpec(
        name="hyp",
        n_inputs=draw(st.integers(min_value=3, max_value=8)),
        n_outputs=2,
        n_gates=n_gates,
        n_pin_edges=min(edges, 4 * n_gates),
        depth=depth,
        seed=seed,
    )
    return generate_circuit(spec)


def _cfg(backend, cache_spec, jobs, transport="shm", **kw):
    cache = None if cache_spec is None else ConvolutionCache(cache_spec)
    return AnalysisConfig(dt=8.0, backend=backend, cache=cache, jobs=jobs,
                          transport=transport, **kw)


def _assert_bitwise(pdfs_a, pdfs_b):
    for a, b in zip(pdfs_a, pdfs_b):
        assert a.offset == b.offset
        assert a.dt == b.dt
        assert np.array_equal(a.masses, b.masses)


def _tallies(counter):
    return (
        counter.convolutions,
        counter.max_ops,
        counter.convolve_cache_hits,
        counter.max_cache_hits,
    )


def _stats(cache):
    if cache is None:
        return None
    return (cache.stats.hits, cache.stats.misses, cache.stats.evictions)


def _forward(circuit, backend, cache_spec, jobs, transport="shm"):
    cfg = _cfg(backend, cache_spec, jobs, transport)
    c = circuit.copy()
    graph = TimingGraph(c)
    model = DelayModel(c, config=cfg)
    counter = OpCounter()
    result = run_ssta(graph, model, config=cfg, counter=counter)
    return result, counter, cfg.cache


class TestEngineDifferential:
    """With dispatch forced (zeroed cost gate, one-item shards), every
    engine must be transport- and jobs-invariant down to the bit — and
    the cache request stream must be the serial one by construction."""

    @settings(max_examples=3, deadline=None)
    @given(circuit=circuits())
    def test_forward_three_way(self, circuit, forced_registry):
        for backend in ALL_BACKENDS:
            for cache_spec in CACHE_SPECS:
                ref, ref_counter, ref_cache = _forward(
                    circuit, backend, cache_spec, 1
                )
                for jobs, transport in FORCED_PLANS:
                    got, counter, cache = _forward(
                        circuit, backend, cache_spec, jobs, transport
                    )
                    _assert_bitwise(got.arrivals, ref.arrivals)
                    assert _tallies(counter) == _tallies(ref_counter)
                    assert _stats(cache) == _stats(ref_cache)
        # The shm plans genuinely went through an arena.
        arena = get_executor(2, "shm").arena
        assert arena is not None and arena.entries > 0

    @settings(max_examples=3, deadline=None)
    @given(circuit=circuits())
    def test_backward_three_way(self, circuit, forced_registry):
        for backend in ("direct", "fft"):
            for cache_spec in (None, 32):
                out = {}
                for jobs, transport in (
                    (1, "shm"), (2, "shm"), (2, "pickle")
                ):
                    cfg = _cfg(backend, cache_spec, jobs, transport)
                    c = circuit.copy()
                    graph = TimingGraph(c)
                    model = DelayModel(c, config=cfg)
                    counter = OpCounter()
                    out[(jobs, transport)] = (
                        run_backward_ssta(
                            graph, model, config=cfg, counter=counter
                        ),
                        counter,
                        cfg.cache,
                    )
                ref, ref_counter, ref_cache = out[(1, "shm")]
                for key in ((2, "shm"), (2, "pickle")):
                    got, counter, cache = out[key]
                    _assert_bitwise(got.to_sink, ref.to_sink)
                    assert _tallies(counter) == _tallies(ref_counter)
                    assert _stats(cache) == _stats(ref_cache)

    @settings(max_examples=3, deadline=None)
    @given(circuit=circuits(), which=st.integers(min_value=0, max_value=999))
    def test_incremental_three_way(self, circuit, which, forced_registry):
        for cache_spec in (None, 1 << 14):
            out = {}
            for jobs, transport in ((1, "shm"), (2, "shm"), (2, "pickle")):
                cfg = _cfg("auto", cache_spec, jobs, transport)
                c = circuit.copy()
                graph = TimingGraph(c)
                model = DelayModel(c, config=cfg)
                base = run_ssta(graph, model, config=cfg)
                gates = c.topo_gates()
                gate = gates[which % len(gates)]
                gate.width += 1.0
                n = update_ssta_after_resize(base, model, [gate])
                out[(jobs, transport)] = (base, n)
            ref, ref_n = out[(1, "shm")]
            for key in ((2, "shm"), (2, "pickle")):
                base, n = out[key]
                _assert_bitwise(base.arrivals, ref.arrivals)
                assert n == ref_n

    @settings(max_examples=3, deadline=None)
    @given(circuit=circuits(), which=st.integers(min_value=0, max_value=999))
    def test_fronts_three_way(self, circuit, which, forced_registry):
        for cache_spec in (None, 32):
            out = {}
            for jobs, transport in ((1, "shm"), (2, "shm"), (2, "pickle")):
                cfg = _cfg("direct", cache_spec, jobs, transport,
                           delta_w=1.0)
                c = circuit.copy()
                graph = TimingGraph(c)
                model = DelayModel(c, config=cfg)
                base = run_ssta(graph, model, config=cfg)
                gates = c.topo_gates()
                gate = gates[which % len(gates)]
                front = PerturbationFront(
                    graph, model, base, gate, cfg.delta_w,
                    default_objective(),
                )
                trajectory = [front.smx]
                while not front.is_done:
                    front.propagate_one_level()
                    trajectory.append(front.smx)
                out[(jobs, transport)] = (front, trajectory)
            ref_front, ref_traj = out[(1, "shm")]
            for key in ((2, "shm"), (2, "pickle")):
                front, traj = out[key]
                assert traj == ref_traj
                assert front.sensitivity == ref_front.sensitivity
                assert front.nodes_computed == ref_front.nodes_computed
                assert front.reached_sink == ref_front.reached_sink
                if ref_front.sink_pdf is not None:
                    assert front.sink_pdf is not None
                    _assert_bitwise([front.sink_pdf], [ref_front.sink_pdf])


# ----------------------------------------------------------------------
# Fault injection (Satellite 2)
# ----------------------------------------------------------------------

_KILL_SCRIPT = '''\
"""Kill a worker mid-life; the executor must degrade to serial with
the arena fully unlinked and a clean exit (asserted by the parent)."""
import os
import sys

sys.path.insert(0, {src!r})

import numpy as np

from repro.dist.backends import get_backend
from repro.dist.families import truncated_gaussian_pdf
from repro.dist.ops import convolve_batch_raws
from repro.exec import ProcessExecutor


def main():
    ex = ProcessExecutor(2, min_items_per_shard=1, min_dispatch_cost_us=0.0)
    pairs = [
        (truncated_gaussian_pdf(4.0, 500.0 + 7 * i, 40.0).masses,
         truncated_gaussian_pdf(4.0, 800.0 + 11 * i, 25.0).masses)
        for i in range(8)
    ]
    kernel = get_backend("direct")
    ref = convolve_batch_raws(kernel, pairs)
    out = ex.run_convolve_batch(kernel, pairs)
    assert all(np.array_equal(a, b) for a, b in zip(out, ref))
    assert ex.arena is not None and ex.arena.entries > 0
    names = list(ex.arena.segment_names)
    assert all(os.path.exists("/dev/shm/" + n) for n in names)

    # Kill the workers out from under the pool.
    pool = ex._ensure_pool()
    for _ in range(2):
        try:
            pool.submit(os._exit, 13).result(timeout=60)
        except Exception:
            pass

    # The next batch hits the broken pool: latched serial, same bits,
    # arena closed and every named segment unlinked.
    out = ex.run_convolve_batch(kernel, pairs)
    assert all(np.array_equal(a, b) for a, b in zip(out, ref))
    assert ex._broken
    assert ex.arena is None
    for n in names:
        assert not os.path.exists("/dev/shm/" + n), n
    print("FAULT-OK")


if __name__ == "__main__":
    main()
'''


class TestFaultInjection:
    @pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                        reason="needs a visible /dev/shm")
    def test_worker_kill_degrades_serial_and_unlinks_cleanly(self, tmp_path):
        """Run the kill scenario in a real subprocess so the assertion
        covers the whole exit path: no resource-tracker leaked-segment
        warnings, no tracebacks, nothing left in /dev/shm."""
        repo_root = Path(__file__).resolve().parents[2]
        src = str(repo_root / "src")
        script = tmp_path / "kill_worker.py"
        script.write_text(_KILL_SCRIPT.format(src=src))
        proc = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True,
            cwd=repo_root, timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        assert "FAULT-OK" in proc.stdout
        assert "Traceback" not in proc.stderr
        assert "resource_tracker" not in proc.stderr
        assert "leaked" not in proc.stderr


# ----------------------------------------------------------------------
# Leak regression (Satellite 3)
# ----------------------------------------------------------------------

class TestLeakRegression:
    def test_fifty_cycles_return_to_baseline(self, forced_registry):
        """50 analyze cycles with a tiny convolution cache and a
        starved arena budget (maximum eviction/epoch churn against
        in-flight pins) must leave /dev/shm and the arena byte
        accounting exactly at baseline after shutdown_executors()."""
        shutdown_executors()
        baseline_segments = _shm_entries()
        baseline_stats = live_arena_stats()

        ex = get_executor(2, "shm")
        arena = ex._ensure_arena()
        arena._slab_bytes = 1 << 12
        # Starve the budget to ~4 cycles of operand bytes so the run
        # turns the epoch over and over.
        arena._budget_bytes = 1 << 10

        circuit = build_two_path()
        max_segments = 0
        for i in range(50):
            cfg = AnalysisConfig(dt=8.0, cache=ConvolutionCache(32), jobs=2)
            c = circuit.copy()
            # Vary the widths so each cycle publishes fresh content —
            # unique per cycle, so content dedupe cannot keep the
            # starved arena under budget.
            for j, gate in enumerate(c.topo_gates()):
                gate.width += 0.125 * (i + 1) + 0.05 * j
            graph = TimingGraph(c)
            model = DelayModel(c, config=cfg)
            run_ssta(graph, model, config=cfg)
            live = ex.arena
            if live is not None:
                max_segments = max(max_segments, len(live.segment_names))
                assert live.live_bytes < (1 << 18)
        # Epoch churn genuinely happened, and it never accumulated
        # segments: the starved budget reclaims every cycle.
        assert ex.arena is not None
        assert ex.arena.generation > 5
        assert max_segments <= 4

        shutdown_executors()
        assert ex.arena is None
        assert live_arena_stats() == baseline_stats
        after = _shm_entries()
        if baseline_segments is not None:
            assert after == baseline_segments
