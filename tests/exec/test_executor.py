"""Unit tests for the execution-plan layer (`repro.exec`).

Covers the shard geometry, the Serial/Process executor equivalence on
raw kernel batches (bitwise outputs, identical counter deltas), the
IPC payload round trip, the non-registry-backend fallback, and the
kernel-layer integration (``convolve_many`` / ``stat_max_groups`` with
an executor == without, values and tallies).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.backends import get_backend
from repro.dist.cache import ConvolutionCache
from repro.dist.families import truncated_gaussian_pdf
from repro.dist.ops import (
    OpCounter,
    convolve_batch_raws,
    convolve_many,
    max_batch_raws,
    stat_max_groups,
)
from repro.dist.pdf import DiscretePDF
from repro.exec import (
    ProcessExecutor,
    SERIAL_EXECUTOR,
    SerialExecutor,
    get_executor,
    shard_ranges,
)

from tests.conftest import ALL_BACKENDS


def g(center, sigma=40.0, dt=4.0):
    return truncated_gaussian_pdf(dt, center, sigma)


@pytest.fixture(scope="module")
def pool2():
    """The shared 2-worker plan (persistent pool, spawned once)."""
    return get_executor(2)


@pytest.fixture(scope="module")
def eager2():
    """A 2-worker plan that shards even 2-item batches, so tiny test
    batches actually cross the process boundary.  Pinned to the pickle
    transport: these tests exercise the PR-5 wire format (the shm
    transport's differential reference); the arena transport has its
    own eager fixture in ``test_arena.py``."""
    ex = ProcessExecutor(2, min_items_per_shard=1, transport="pickle")
    yield ex
    ex.close()


def _pairs(n):
    return [
        (g(500.0 + 7 * i).masses, g(800.0 + 11 * i, 25.0).masses)
        for i in range(n)
    ]


def _groups(n):
    out = []
    for i in range(n):
        k = 2 + (i % 3)
        out.append(tuple(g(400.0 + 13 * i + 31 * j, 20.0 + 5 * j)
                         for j in range(k)))
    return out


class TestShardRanges:
    @given(
        n_items=st.integers(min_value=0, max_value=500),
        jobs=st.integers(min_value=1, max_value=16),
        min_per=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_partition_properties(self, n_items, jobs, min_per):
        bounds = shard_ranges(n_items, jobs, min_items_per_shard=min_per)
        # Exact contiguous cover of range(n_items), in order.
        flat = [i for start, stop in bounds for i in range(start, stop)]
        assert flat == list(range(n_items))
        assert len(bounds) <= jobs
        if n_items:
            sizes = [stop - start for start, stop in bounds]
            assert max(sizes) - min(sizes) <= 1
            if n_items < 2 * min_per:
                assert len(bounds) == 1  # not worth splitting

    def test_empty(self):
        assert shard_ranges(0, 4) == []


class TestSerialExecutor:
    def test_matches_inline_helpers_and_tallies(self, backend):
        kernel = get_backend(backend)
        pairs = _pairs(5)
        counter = OpCounter()
        raws = SerialExecutor().run_convolve_batch(
            kernel, pairs, counter=counter
        )
        ref = convolve_batch_raws(kernel, pairs)
        for a, b in zip(raws, ref):
            assert np.array_equal(a, b)
        assert counter.convolutions == 5

        groups = _groups(4)
        outs = SERIAL_EXECUTOR.run_max_batch(groups, counter=counter)
        ref = max_batch_raws(groups)
        for (lo_a, m_a), (lo_b, m_b) in zip(outs, ref):
            assert lo_a == lo_b
            assert np.array_equal(m_a, m_b)
        assert counter.max_ops == sum(len(gr) - 1 for gr in groups)


class TestProcessExecutor:
    def test_convolve_bitwise_and_tally(self, backend, eager2):
        kernel = get_backend(backend)
        for n in (2, 3, 7, 16):
            pairs = _pairs(n)
            cp, cs = OpCounter(), OpCounter()
            par = eager2.run_convolve_batch(kernel, pairs, counter=cp)
            ser = SERIAL_EXECUTOR.run_convolve_batch(
                kernel, pairs, counter=cs
            )
            assert len(par) == n
            for a, b in zip(par, ser):
                assert np.array_equal(a, b)
            assert cp.convolutions == cs.convolutions == n

    def test_max_bitwise_and_tally(self, eager2):
        for n in (2, 5, 9):
            groups = _groups(n)
            cp, cs = OpCounter(), OpCounter()
            par = eager2.run_max_batch(groups, counter=cp)
            ser = SERIAL_EXECUTOR.run_max_batch(groups, counter=cs)
            for (lo_a, m_a), (lo_b, m_b) in zip(par, ser):
                assert lo_a == lo_b
                assert np.array_equal(m_a, m_b)
            assert cp.max_ops == cs.max_ops

    def test_small_batch_runs_inline(self, pool2):
        """One worthwhile shard or less: no IPC, same bits (the pool is
        not even spawned by this path)."""
        kernel = get_backend("direct")
        pairs = _pairs(1)
        raws = pool2.run_convolve_batch(kernel, pairs)
        assert np.array_equal(raws[0], convolve_batch_raws(kernel, pairs)[0])

    def test_non_registry_backend_falls_back_to_serial(self, eager2):
        class Custom:
            name = "custom-direct"

            def convolve_masses(self, a, b):
                return np.convolve(a, b)

        kernel = Custom()
        pairs = _pairs(6)
        counter = OpCounter()
        raws = eager2.run_convolve_batch(kernel, pairs, counter=counter)
        ref = convolve_batch_raws(kernel, pairs)
        for a, b in zip(raws, ref):
            assert np.array_equal(a, b)
        assert counter.convolutions == 6

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            ProcessExecutor(1)
        with pytest.raises(ValueError):
            ProcessExecutor(True)

    def test_get_executor_shares_instances(self):
        assert get_executor(1) is SERIAL_EXECUTOR
        assert get_executor(2) is get_executor(2)
        with pytest.raises(ValueError):
            get_executor(0)

    def test_shutdown_keeps_executors_registered(self):
        """shutdown_executors closes pools but keeps the instances:
        engines hold executors by reference, so the registry must stay
        a stable singleton per jobs count — a stale reference and a
        fresh get_executor must never manage two separate pools."""
        from repro.exec import shutdown_executors

        held = get_executor(2)  # what an engine would keep
        shutdown_executors()
        assert get_executor(2) is held
        kernel = get_backend("direct")
        raws = held.run_convolve_batch(kernel, _pairs(8))
        assert len(raws) == 8  # tracked pool respawned on demand
        shutdown_executors()

    def test_stdin_main_degrades_to_serial_without_noise(self):
        """A parent whose __main__ came from stdin cannot be re-imported
        by spawn children; the plan must degrade to in-process execution
        up front — correct results, no worker-crash tracebacks."""
        import subprocess
        import sys

        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "import numpy as np\n"
            "from repro.config import AnalysisConfig\n"
            "from repro.netlist.benchmarks import load\n"
            "from repro.timing.delay_model import DelayModel\n"
            "from repro.timing.graph import TimingGraph\n"
            "from repro.timing.ssta import run_ssta\n"
            "res = {}\n"
            "for jobs in (1, 2):\n"
            "    cfg = AnalysisConfig(jobs=jobs)\n"
            "    c = load('c17')\n"
            "    res[jobs] = run_ssta(TimingGraph(c), DelayModel(c, config=cfg),\n"
            "                         config=cfg).sink_pdf\n"
            "assert res[1].offset == res[2].offset\n"
            "assert np.array_equal(res[1].masses, res[2].masses)\n"
            "print('STDIN-OK')\n"
        )
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, "-"], input=script, capture_output=True,
            text=True, cwd=repo_root, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "STDIN-OK" in proc.stdout
        assert "Traceback" not in proc.stderr

    def test_close_is_idempotent_and_pool_respawns(self, eager2):
        eager2.close()
        eager2.close()
        kernel = get_backend("direct")
        raws = eager2.run_convolve_batch(kernel, _pairs(4))
        assert len(raws) == 4

    def test_broken_pool_latches_serial(self):
        """One BrokenProcessPool downgrades the executor for its
        lifetime: results stay correct (serial fallback) and no
        further dispatch — hence no per-batch respawn cycle — is
        attempted until an explicit close() clears the latch."""
        from concurrent.futures.process import BrokenProcessPool

        # min_dispatch_cost_us=0 so the shm cost gate cannot fold these
        # tiny batches to serial before the dispatch attempt.
        ex = ProcessExecutor(2, min_items_per_shard=1,
                             min_dispatch_cost_us=0.0)
        try:
            kernel = get_backend("direct")
            pairs = _pairs(4)
            ref = convolve_batch_raws(kernel, pairs)

            def boom(*_a, **_k):
                raise BrokenProcessPool("worker killed")

            ex._dispatch = boom
            counter = OpCounter()
            raws = ex.run_convolve_batch(kernel, pairs, counter=counter)
            for a, b in zip(raws, ref):
                assert np.array_equal(a, b)
            assert counter.convolutions == 4
            assert ex._broken

            def must_not_dispatch(*_a, **_k):
                raise AssertionError("dispatch attempted on broken pool")

            ex._dispatch = must_not_dispatch
            raws = ex.run_convolve_batch(kernel, pairs)
            for a, b in zip(raws, ref):
                assert np.array_equal(a, b)
            outs = ex.run_max_batch(_groups(3))
            assert len(outs) == 3

            del ex.__dict__["_dispatch"]
            ex.close()  # explicit close clears the latch
            assert not ex._broken
            raws = ex.run_convolve_batch(kernel, pairs)
            for a, b in zip(raws, ref):
                assert np.array_equal(a, b)
        finally:
            ex.close()

    def test_import_repro_does_not_load_pool_module(self):
        """ProcessExecutor re-exports lazily: a serial `import repro`
        must not pay for the multiprocessing pool stack."""
        import subprocess
        import sys
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        code = (
            "import sys; sys.path.insert(0, 'src')\n"
            "import repro\n"
            "assert 'repro.exec.pool' not in sys.modules\n"
            "assert repro.ProcessExecutor.__name__ == 'ProcessExecutor'\n"
            "assert 'repro.exec.pool' in sys.modules\n"
            "print('LAZY-OK')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            cwd=repo_root, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "LAZY-OK" in proc.stdout


class TestKernelLayerIntegration:
    """``convolve_many`` / ``stat_max_groups`` with an executor must be
    indistinguishable from the inline path — results, counters, and
    cache statistics — for every backend, cache on and off."""

    @pytest.mark.parametrize("cache_cap", [None, 1 << 12])
    def test_convolve_many(self, backend, cache_cap, eager2):
        pdf_pairs = [
            (g(500.0 + 3 * i), g(700.0 + 5 * (i % 4), 30.0))
            for i in range(9)
        ]
        pdf_pairs.append(pdf_pairs[0])  # intra-batch duplicate
        out = {}
        for ex in (None, SERIAL_EXECUTOR, eager2):
            cache = None if cache_cap is None else ConvolutionCache(cache_cap)
            counter = OpCounter()
            res = convolve_many(
                pdf_pairs, trim_eps=1e-9, counter=counter, backend=backend,
                cache=cache, executor=ex,
            )
            out[ex] = (res, counter, cache)
        ref_res, ref_counter, ref_cache = out[None]
        for ex in (SERIAL_EXECUTOR, eager2):
            res, counter, cache = out[ex]
            for a, b in zip(res, ref_res):
                assert a.offset == b.offset
                assert np.array_equal(a.masses, b.masses)
            assert (counter.convolutions, counter.convolve_cache_hits) == (
                ref_counter.convolutions, ref_counter.convolve_cache_hits
            )
            if cache is not None:
                assert (cache.stats.hits, cache.stats.misses) == (
                    ref_cache.stats.hits, ref_cache.stats.misses
                )

    @pytest.mark.parametrize("cache_cap", [None, 1 << 12])
    def test_stat_max_groups(self, backend, cache_cap, eager2):
        groups = [list(gr) for gr in _groups(7)]
        groups.append(list(groups[1]))  # intra-batch duplicate group
        groups.append([g(100.0)])       # single-operand passthrough
        out = {}
        for ex in (None, SERIAL_EXECUTOR, eager2):
            cache = None if cache_cap is None else ConvolutionCache(cache_cap)
            counter = OpCounter()
            res = stat_max_groups(
                groups, trim_eps=1e-9, counter=counter, backend=backend,
                cache=cache, executor=ex,
            )
            out[ex] = (res, counter, cache)
        ref_res, ref_counter, ref_cache = out[None]
        for ex in (SERIAL_EXECUTOR, eager2):
            res, counter, cache = out[ex]
            for a, b in zip(res, ref_res):
                assert a.offset == b.offset
                assert np.array_equal(a.masses, b.masses)
            assert (counter.max_ops, counter.max_cache_hits) == (
                ref_counter.max_ops, ref_counter.max_cache_hits
            )
            if cache is not None:
                assert (cache.stats.hits, cache.stats.misses) == (
                    ref_cache.stats.hits, ref_cache.stats.misses
                )


class TestIPCPayloads:
    def test_pdf_pickle_is_memo_stripped_and_bitwise(self):
        import pickle

        p = g(1234.0)
        p.percentile(0.9)
        p.trimmed(1e-9)
        blob = pickle.dumps(p)
        q = pickle.loads(blob)
        assert q.dt == p.dt and q.offset == p.offset
        assert np.array_equal(q.masses, p.masses)
        assert not q.masses.flags.writeable
        leaked = {"_cdf", "_unit_cdf", "_knots", "_ramp_floor",
                  "_trim_level", "_fp"} & set(q.__dict__)
        assert not leaked
        # Rebuilt memos are bitwise the originals (pure functions of
        # the defining triple).
        assert q.percentile(0.9) == p.percentile(0.9)

    def test_shard_result_roundtrip(self):
        import pickle

        from repro.exec.ipc import ShardResult

        res = ShardResult([np.arange(4.0)], OpCounter(convolutions=3))
        back = pickle.loads(pickle.dumps(res))
        assert np.array_equal(back.outputs[0], res.outputs[0])
        assert back.counter.convolutions == 3
