"""Differential harness: sharded-parallel SSTA == serial, bitwise.

The PR-5 tentpole makes ``AnalysisConfig(jobs=N)`` shard every level
batch across a persistent worker pool.  This suite pins the contract
that makes the knob safe:

* **bitwise values** — identical mass vectors and offsets at every
  node, across random DAGs, jobs in {1, 2, 4}, all three backends,
  and cache off / ample / tiny (eviction churn mid-level);
* **jobs-invariant accounting** — OpCounter computed tallies and hit
  tallies, and ConvolutionCache statistics, are identical across jobs
  counts at every cache capacity: the cache never leaves the
  coordinator, so unlike the level-batch knob there is no thrashing
  caveat — the request stream is the serial one *by construction*;
* **every engine** — forward SSTA, backward SSTA, incremental update
  waves, and perturbation fronts all ride the same executor seam.

The pools are the process-wide shared ones (`get_executor`), so the
suite pays the spawn cost once.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AnalysisConfig
from repro.core.objectives import default_objective
from repro.core.perturbation import PerturbationFront
from repro.dist.cache import ConvolutionCache
from repro.dist.ops import OpCounter
from repro.netlist.generate import CircuitSpec, generate_circuit
from repro.timing.criticality import run_backward_ssta
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.incremental import update_ssta_after_resize
from repro.timing.ssta import run_ssta

from tests.conftest import ALL_BACKENDS, build_two_path

JOBS = (1, 2, 4)
CACHE_SPECS = (None, 1 << 14, 32)


def _cfg(backend, cache_spec, jobs, **kw):
    cache = None if cache_spec is None else ConvolutionCache(cache_spec)
    return AnalysisConfig(dt=8.0, backend=backend, cache=cache, jobs=jobs,
                          **kw)


def _assert_bitwise(pdfs_a, pdfs_b):
    for a, b in zip(pdfs_a, pdfs_b):
        assert a.offset == b.offset
        assert a.dt == b.dt
        assert np.array_equal(a.masses, b.masses)


def _tallies(counter):
    return (
        counter.convolutions,
        counter.max_ops,
        counter.convolve_cache_hits,
        counter.max_cache_hits,
    )


def _stats(cache):
    if cache is None:
        return None
    return (cache.stats.hits, cache.stats.misses, cache.stats.evictions)


@st.composite
def circuits(draw):
    n_gates = draw(st.integers(min_value=5, max_value=32))
    depth = draw(st.integers(min_value=2, max_value=min(7, n_gates)))
    edges = draw(
        st.integers(min_value=int(1.5 * n_gates), max_value=int(2.5 * n_gates))
    )
    seed = draw(st.integers(min_value=0, max_value=9999))
    spec = CircuitSpec(
        name="hyp",
        n_inputs=draw(st.integers(min_value=3, max_value=8)),
        n_outputs=2,
        n_gates=n_gates,
        n_pin_edges=min(edges, 4 * n_gates),
        depth=depth,
        seed=seed,
    )
    return generate_circuit(spec)


def _forward(circuit, backend, cache_spec, jobs):
    cfg = _cfg(backend, cache_spec, jobs)
    c = circuit.copy()
    graph = TimingGraph(c)
    model = DelayModel(c, config=cfg)
    counter = OpCounter()
    result = run_ssta(graph, model, config=cfg, counter=counter)
    return result, counter, cfg.cache


class TestForwardDifferential:
    @settings(max_examples=8, deadline=None)
    @given(circuit=circuits())
    def test_arrivals_bitwise_and_accounting_jobs_invariant(self, circuit):
        for backend in ALL_BACKENDS:
            for cache_spec in CACHE_SPECS:
                ref, ref_counter, ref_cache = _forward(
                    circuit, backend, cache_spec, 1
                )
                for jobs in JOBS[1:]:
                    got, counter, cache = _forward(
                        circuit, backend, cache_spec, jobs
                    )
                    _assert_bitwise(got.arrivals, ref.arrivals)
                    # No thrashing caveat here: the cache request
                    # stream is jobs-independent even at capacity 32.
                    assert _tallies(counter) == _tallies(ref_counter)
                    assert _stats(cache) == _stats(ref_cache)

    def test_two_path_all_jobs(self, backend):
        circuit = build_two_path()
        ref, _, _ = _forward(circuit, backend, None, 1)
        for jobs in JOBS[1:]:
            got, _, _ = _forward(circuit, backend, None, jobs)
            _assert_bitwise(got.arrivals, ref.arrivals)


class TestBackwardDifferential:
    @settings(max_examples=5, deadline=None)
    @given(circuit=circuits())
    def test_to_sink_bitwise_and_counters(self, circuit):
        for backend in ALL_BACKENDS:
            for cache_spec in (None, 1 << 14):
                out = {}
                for jobs in (1, 2):
                    cfg = _cfg(backend, cache_spec, jobs)
                    c = circuit.copy()
                    graph = TimingGraph(c)
                    model = DelayModel(c, config=cfg)
                    counter = OpCounter()
                    out[jobs] = (
                        run_backward_ssta(
                            graph, model, config=cfg, counter=counter
                        ),
                        counter,
                    )
                _assert_bitwise(out[1][0].to_sink, out[2][0].to_sink)
                assert _tallies(out[1][1]) == _tallies(out[2][1])


class TestIncrementalDifferential:
    @settings(max_examples=5, deadline=None)
    @given(circuit=circuits(), which=st.integers(min_value=0, max_value=999))
    def test_update_wave_bitwise_and_same_work(self, circuit, which):
        for backend in ("direct", "auto"):
            for cache_spec in (None, 1 << 14):
                out = {}
                for jobs in (1, 2):
                    cfg = _cfg(backend, cache_spec, jobs)
                    c = circuit.copy()
                    graph = TimingGraph(c)
                    model = DelayModel(c, config=cfg)
                    base = run_ssta(graph, model, config=cfg)
                    gates = c.topo_gates()
                    gate = gates[which % len(gates)]
                    gate.width += 1.0
                    n = update_ssta_after_resize(base, model, [gate])
                    out[jobs] = (base, n)
                _assert_bitwise(out[1][0].arrivals, out[2][0].arrivals)
                assert out[1][1] == out[2][1]  # recomputed count


class TestPerturbationFrontDifferential:
    @settings(max_examples=5, deadline=None)
    @given(circuit=circuits(), which=st.integers(min_value=0, max_value=999))
    def test_front_sensitivity_and_trajectory(self, circuit, which):
        for backend in ("direct", "fft"):
            for cache_spec in (None, 32):
                out = {}
                for jobs in (1, 2):
                    cfg = _cfg(backend, cache_spec, jobs, delta_w=1.0)
                    c = circuit.copy()
                    graph = TimingGraph(c)
                    model = DelayModel(c, config=cfg)
                    base = run_ssta(graph, model, config=cfg)
                    gates = c.topo_gates()
                    gate = gates[which % len(gates)]
                    front = PerturbationFront(
                        graph, model, base, gate, cfg.delta_w,
                        default_objective(),
                    )
                    trajectory = [front.smx]
                    while not front.is_done:
                        front.propagate_one_level()
                        trajectory.append(front.smx)
                    out[jobs] = (front, trajectory)
                fa, ta = out[1]
                fb, tb = out[2]
                assert ta == tb
                assert fa.sensitivity == fb.sensitivity
                assert fa.nodes_computed == fb.nodes_computed
                assert fa.reached_sink == fb.reached_sink
                if fa.sink_pdf is not None:
                    assert fb.sink_pdf is not None
                    _assert_bitwise([fa.sink_pdf], [fb.sink_pdf])


class TestSequentialModeUnaffected:
    def test_jobs_inert_without_level_batch(self, backend):
        """``level_batch=False`` has no batches to shard: jobs must be
        inert — same bits, and no pool ever consulted (the sequential
        engines never resolve an executor)."""
        circuit = build_two_path()
        out = {}
        for jobs in (1, 4):
            cfg = _cfg(backend, None, jobs, level_batch=False)
            c = circuit.copy()
            graph = TimingGraph(c)
            model = DelayModel(c, config=cfg)
            out[jobs] = run_ssta(graph, model, config=cfg)
        _assert_bitwise(out[1].arrivals, out[4].arrivals)
