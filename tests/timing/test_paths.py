"""Unit tests for path-level analysis (Figure 1 substrate)."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.paths import k_longest_paths, path_delay_histogram, wall_metric
from repro.timing.sta import run_sta


class TestPathHistogram:
    def test_chain_single_path(self, chain3, library):
        graph = TimingGraph(chain3)
        model = DelayModel(chain3, library)
        hist = path_delay_histogram(graph, model, bin_width=1.0)
        assert hist.total_paths == pytest.approx(1.0)

    def test_two_path_counts(self, two_path, library):
        graph = TimingGraph(two_path)
        hist = path_delay_histogram(graph, DelayModel(two_path, library), bin_width=1.0)
        assert hist.total_paths == pytest.approx(2.0)

    def test_diamond_counts(self, diamond, library):
        graph = TimingGraph(diamond)
        hist = path_delay_histogram(graph, DelayModel(diamond, library), bin_width=1.0)
        assert hist.total_paths == pytest.approx(2.0)

    def test_c17_path_count(self, c17, library):
        # c17 source-to-sink paths: enumerate by hand.
        # 22 <- 10 <- {1,3}: 2 paths; 22 <- 16 <- 2: 1; 22 <- 16 <- 11 <- {3,6}: 2
        # 23 <- 16 (3 paths as above); 23 <- 19 <- 11 <- {3,6}: 2; 19 <- 7: 1
        graph = TimingGraph(c17)
        hist = path_delay_histogram(graph, DelayModel(c17, library), bin_width=1.0)
        assert hist.total_paths == pytest.approx(11.0)

    def test_max_delay_matches_sta(self, c17, library):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library)
        hist = path_delay_histogram(graph, model, bin_width=1.0)
        sta = run_sta(graph, model)
        assert hist.max_delay == pytest.approx(sta.circuit_delay, abs=len(
            sta.critical_edges) * 1.0)

    def test_explicit_delays(self, two_path, library):
        graph = TimingGraph(two_path)
        delays = {"l1": 10.0, "l2": 10.0, "l3": 10.0, "s1": 5.0, "out": 10.0}
        hist = path_delay_histogram(graph, delays=delays, bin_width=5.0)
        d = hist.delays[np.nonzero(hist.counts)[0]]
        assert set(d.tolist()) == {15.0, 40.0}

    def test_invalid_bin_width(self, chain3, library):
        graph = TimingGraph(chain3)
        with pytest.raises(TimingError):
            path_delay_histogram(graph, DelayModel(chain3, library), bin_width=0.0)

    def test_needs_model_or_delays(self, chain3):
        with pytest.raises(TimingError):
            path_delay_histogram(TimingGraph(chain3))

    def test_paths_within_margin(self, two_path, library):
        graph = TimingGraph(two_path)
        delays = {"l1": 10.0, "l2": 10.0, "l3": 10.0, "s1": 5.0, "out": 10.0}
        hist = path_delay_histogram(graph, delays=delays, bin_width=1.0)
        assert hist.paths_within(0.05) == pytest.approx(1.0)  # only the long one
        assert hist.paths_within(0.9) == pytest.approx(2.0)

    def test_benchmark_scale_counts_finite(self):
        from repro.netlist.benchmarks import load

        c = load("c432")
        graph = TimingGraph(c)
        hist = path_delay_histogram(graph, DelayModel(c), bin_width=10.0)
        assert np.isfinite(hist.total_paths)
        assert hist.total_paths > c.n_gates  # many more paths than gates


class TestWallMetric:
    def test_range(self, c17, library):
        graph = TimingGraph(c17)
        hist = path_delay_histogram(graph, DelayModel(c17, library), bin_width=1.0)
        w = wall_metric(hist, margin_fraction=0.1)
        assert 0.0 < w <= 1.0

    def test_full_margin_is_one(self, c17, library):
        graph = TimingGraph(c17)
        hist = path_delay_histogram(graph, DelayModel(c17, library), bin_width=1.0)
        assert wall_metric(hist, margin_fraction=0.999) == pytest.approx(1.0)

    def test_balanced_circuit_has_bigger_wall(self, two_path, library):
        graph = TimingGraph(two_path)
        unbalanced = {"l1": 10.0, "l2": 10.0, "l3": 10.0, "s1": 5.0, "out": 10.0}
        balanced = {"l1": 10.0, "l2": 10.0, "l3": 10.0, "s1": 30.0, "out": 10.0}
        h_unbal = path_delay_histogram(graph, delays=unbalanced, bin_width=1.0)
        h_bal = path_delay_histogram(graph, delays=balanced, bin_width=1.0)
        assert wall_metric(h_bal, margin_fraction=0.1) > wall_metric(
            h_unbal, margin_fraction=0.1
        )

    def test_invalid_margin(self, c17, library):
        graph = TimingGraph(c17)
        hist = path_delay_histogram(graph, DelayModel(c17, library), bin_width=1.0)
        with pytest.raises(TimingError):
            hist.paths_within(1.5)


class TestKLongestPaths:
    def test_k1_matches_sta(self, c17, library):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library)
        paths = k_longest_paths(graph, model, k=1)
        sta = run_sta(graph, model)
        assert paths[0].delay == pytest.approx(sta.circuit_delay)

    def test_sorted_descending(self, c17, library):
        graph = TimingGraph(c17)
        paths = k_longest_paths(graph, DelayModel(c17, library), k=5)
        delays = [p.delay for p in paths]
        assert delays == sorted(delays, reverse=True)

    def test_k_exceeding_path_count(self, two_path, library):
        graph = TimingGraph(two_path)
        paths = k_longest_paths(graph, DelayModel(two_path, library), k=10)
        assert len(paths) == 2

    def test_path_reconstruction_consistent(self, c17, library):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library)
        delays = model.nominal_delays()
        for path in k_longest_paths(graph, model, k=6):
            total = sum(delays[e.gate.output] for e in path.edges if e.gate)
            assert total == pytest.approx(path.delay)

    def test_paths_are_connected(self, c17, library):
        graph = TimingGraph(c17)
        for path in k_longest_paths(graph, DelayModel(c17, library), k=4):
            assert path.edges[0].src == graph.source
            assert path.edges[-1].dst == graph.sink
            for a, b in zip(path.edges, path.edges[1:]):
                assert a.dst == b.src

    def test_invalid_k(self, c17, library):
        with pytest.raises(TimingError):
            k_longest_paths(TimingGraph(c17), DelayModel(c17, library), k=0)

    def test_nets_listing(self, chain3, library):
        graph = TimingGraph(chain3)
        paths = k_longest_paths(graph, DelayModel(chain3, library), k=1)
        assert paths[0].nets == ["n1", "n2", "out"]
