"""Differential harness: level-batched propagation == sequential, bitwise.

The PR-4 tentpole makes ``AnalysisConfig(level_batch=True)`` the
default execution mode of every engine that walks the timing graph —
forward SSTA, backward SSTA, incremental updates, and perturbation
fronts all collect a topological level's ADD pairs into one
``convolve_many`` dispatch and its MAX reductions into one
``stat_max_groups`` sweep.  This suite pins the contract that makes
that safe to default:

* **bitwise values** — identical mass vectors and offsets at *every*
  node, across random DAGs, all three backends, and cache off / on /
  tiny (eviction churn mid-level);
* **identical accounting** — OpCounter tallies (computed ops *and*
  cache hits) and ConvolutionCache statistics match the sequential
  request stream whenever the cache is not thrashing (a thrashing
  cache may hit/miss differently between the orders, but values stay
  bitwise — which is exactly what the tiny-capacity runs check);
* **edge shapes** — single-node levels (chains), fan-in-1 nodes,
  disjoint-support merges (two_path's unbalanced reconvergence), and
  levels whose work resolves entirely from the cache (which must not
  touch the backend at all).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AnalysisConfig
from repro.core.objectives import default_objective
from repro.core.perturbation import PerturbationFront
from repro.dist.backends import DirectBackend
from repro.dist.cache import ConvolutionCache
from repro.dist.families import truncated_gaussian_pdf
from repro.dist.ops import OpCounter, stat_max_groups, stat_max_many
from repro.dist.pdf import DiscretePDF
from repro.netlist.generate import CircuitSpec, generate_circuit
from repro.timing.criticality import run_backward_ssta
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.incremental import update_ssta_after_resize
from repro.timing.ssta import (
    compute_level_arrivals,
    node_fanin_parts,
    run_ssta,
)

from tests.conftest import ALL_BACKENDS, build_chain3, build_two_path

#: Cache variants the differential runs cover: off, ample (no
#: eviction), and tiny (constant churn; only bitwise equality is
#: promised there — hit/miss patterns may legitimately differ).
CACHE_SPECS = (None, 1 << 14, 32)
AMPLE = (None, 1 << 14)


def _cfg(backend, cache_spec, level_batch, **kw):
    cache = None if cache_spec is None else ConvolutionCache(cache_spec)
    return AnalysisConfig(
        dt=8.0, backend=backend, cache=cache, level_batch=level_batch, **kw
    )


def _assert_bitwise(pdfs_a, pdfs_b):
    for a, b in zip(pdfs_a, pdfs_b):
        assert a.offset == b.offset
        assert a.dt == b.dt
        assert np.array_equal(a.masses, b.masses)


def _tallies(counter):
    return (
        counter.convolutions,
        counter.max_ops,
        counter.convolve_cache_hits,
        counter.max_cache_hits,
    )


@st.composite
def circuits(draw):
    n_gates = draw(st.integers(min_value=5, max_value=40))
    depth = draw(st.integers(min_value=2, max_value=min(8, n_gates)))
    edges = draw(
        st.integers(min_value=int(1.5 * n_gates), max_value=int(2.5 * n_gates))
    )
    seed = draw(st.integers(min_value=0, max_value=9999))
    spec = CircuitSpec(
        name="hyp",
        n_inputs=draw(st.integers(min_value=3, max_value=10)),
        n_outputs=2,
        n_gates=n_gates,
        n_pin_edges=min(edges, 4 * n_gates),
        depth=depth,
        seed=seed,
    )
    return generate_circuit(spec)


def _forward_pair(circuit, backend, cache_spec):
    """(batched, sequential) SSTA results + counters on fresh copies."""
    out = {}
    for level_batch in (True, False):
        cfg = _cfg(backend, cache_spec, level_batch)
        c = circuit.copy()
        graph = TimingGraph(c)
        model = DelayModel(c, config=cfg)
        counter = OpCounter()
        out[level_batch] = (
            run_ssta(graph, model, config=cfg, counter=counter),
            counter,
            cfg.cache,
        )
    return out


class TestForwardDifferential:
    @settings(max_examples=20, deadline=None)
    @given(circuit=circuits())
    def test_every_arrival_bitwise_per_backend_and_cache(self, circuit):
        for backend in ALL_BACKENDS:
            for cache_spec in CACHE_SPECS:
                out = _forward_pair(circuit, backend, cache_spec)
                _assert_bitwise(out[True][0].arrivals, out[False][0].arrivals)

    @settings(max_examples=10, deadline=None)
    @given(circuit=circuits())
    def test_counters_and_cache_stats_invariant(self, circuit):
        """At ample capacity the batched run replicates the sequential
        request stream exactly: same computed tallies, same hit
        tallies, same cache hit/miss/eviction statistics."""
        for backend in ALL_BACKENDS:
            for cache_spec in AMPLE:
                out = _forward_pair(circuit, backend, cache_spec)
                assert _tallies(out[True][1]) == _tallies(out[False][1])
                if cache_spec is not None:
                    sa, sb = out[True][2].stats, out[False][2].stats
                    assert (sa.hits, sa.misses, sa.evictions) == (
                        sb.hits, sb.misses, sb.evictions
                    )

    @pytest.mark.parametrize("builder", [build_chain3, build_two_path])
    def test_hand_circuit_shapes(self, builder, backend):
        """chain3: every level is a single fan-in-1 node.  two_path: an
        unbalanced merge whose operands have disjoint supports (three
        INV stages versus one)."""
        for cache_spec in CACHE_SPECS:
            out = _forward_pair(builder(), backend, cache_spec)
            _assert_bitwise(out[True][0].arrivals, out[False][0].arrivals)

    def test_two_path_merge_is_disjoint_support(self):
        """Guard the claim above: the two_path output gate really does
        merge disjoint-support arrivals (else the edge case is gone)."""
        circuit = build_two_path()
        cfg = _cfg("direct", None, True)
        graph = TimingGraph(circuit)
        result = run_ssta(graph, DelayModel(circuit, config=cfg), config=cfg)
        assert (
            result.arrival_of_net("s1").support[1]
            < result.arrival_of_net("l3").support[0]
        )


class TestBackwardDifferential:
    @settings(max_examples=12, deadline=None)
    @given(circuit=circuits())
    def test_to_sink_bitwise_and_counters(self, circuit):
        for backend in ALL_BACKENDS:
            for cache_spec in CACHE_SPECS:
                out = {}
                for level_batch in (True, False):
                    cfg = _cfg(backend, cache_spec, level_batch)
                    c = circuit.copy()
                    graph = TimingGraph(c)
                    model = DelayModel(c, config=cfg)
                    counter = OpCounter()
                    out[level_batch] = (
                        run_backward_ssta(
                            graph, model, config=cfg, counter=counter
                        ),
                        counter,
                    )
                _assert_bitwise(out[True][0].to_sink, out[False][0].to_sink)
                if cache_spec in AMPLE:
                    assert _tallies(out[True][1]) == _tallies(out[False][1])


class TestIncrementalDifferential:
    @settings(max_examples=12, deadline=None)
    @given(circuit=circuits(), which=st.integers(min_value=0, max_value=999))
    def test_update_wave_bitwise_and_same_work(self, circuit, which):
        for backend in ALL_BACKENDS:
            for cache_spec in AMPLE:
                out = {}
                for level_batch in (True, False):
                    cfg = _cfg(backend, cache_spec, level_batch)
                    c = circuit.copy()
                    graph = TimingGraph(c)
                    model = DelayModel(c, config=cfg)
                    base = run_ssta(graph, model, config=cfg)
                    gates = c.topo_gates()
                    gate = gates[which % len(gates)]
                    gate.width += 1.0
                    n = update_ssta_after_resize(base, model, [gate])
                    out[level_batch] = (base, n)
                _assert_bitwise(
                    out[True][0].arrivals, out[False][0].arrivals
                )
                assert out[True][1] == out[False][1]  # recomputed count


class TestPerturbationFrontDifferential:
    @settings(max_examples=12, deadline=None)
    @given(circuit=circuits(), which=st.integers(min_value=0, max_value=999))
    def test_front_sensitivity_and_trajectory(self, circuit, which):
        """A front run to the sink under level batching reproduces the
        sequential front bit for bit: same smx trajectory, same exact
        sensitivity, same sink distribution."""
        for backend in ALL_BACKENDS:
            for cache_spec in CACHE_SPECS:
                out = {}
                for level_batch in (True, False):
                    cfg = _cfg(backend, cache_spec, level_batch, delta_w=1.0)
                    c = circuit.copy()
                    graph = TimingGraph(c)
                    model = DelayModel(c, config=cfg)
                    base = run_ssta(graph, model, config=cfg)
                    gates = c.topo_gates()
                    gate = gates[which % len(gates)]
                    front = PerturbationFront(
                        graph, model, base, gate, cfg.delta_w,
                        default_objective(),
                    )
                    trajectory = [front.smx]
                    while not front.is_done:
                        front.propagate_one_level()
                        trajectory.append(front.smx)
                    out[level_batch] = (front, trajectory)
                fa, ta = out[True]
                fb, tb = out[False]
                assert ta == tb
                assert fa.sensitivity == fb.sensitivity
                assert fa.nodes_computed == fb.nodes_computed
                assert fa.reached_sink == fb.reached_sink
                if fa.sink_pdf is not None:
                    assert fb.sink_pdf is not None
                    _assert_bitwise([fa.sink_pdf], [fb.sink_pdf])


class _SpyBackend(DirectBackend):
    """Reference kernel that counts how often the engine invokes it."""

    name = "spy-direct"

    def __init__(self):
        self.singleton_calls = 0
        self.batch_calls = 0

    def convolve_masses(self, a, b):
        self.singleton_calls += 1
        return super().convolve_masses(a, b)

    def convolve_many(self, pairs):
        self.batch_calls += 1
        return super().convolve_many(pairs)

    @property
    def invocations(self):
        return self.singleton_calls + self.batch_calls


class TestAllHitsLevelSkipsBackend:
    """The empty / all-hits edge: a level with nothing left to compute
    must not touch the backend (satellite fix, pinned by invocation
    counting on a spy backend)."""

    def test_empty_level(self):
        spy = _SpyBackend()
        assert compute_level_arrivals([], trim_eps=0.0, backend=spy) == []
        assert spy.invocations == 0

    def test_fully_cached_level_never_invokes_backend(self):
        cfg = AnalysisConfig(dt=8.0)
        circuit = build_two_path()
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=cfg)
        spy = _SpyBackend()
        cache = ConvolutionCache()
        counter = OpCounter()

        def run_levels():
            got = [None] * graph.n_nodes
            got[graph.source] = DiscretePDF.delta(cfg.dt, 0.0)
            for level in range(1, graph.max_level + 1):
                nodes = graph.nodes_at_level(level)
                parts_list = [
                    node_fanin_parts(
                        graph, n, got.__getitem__, model.delay_pdf
                    )
                    for n in nodes
                ]
                res = compute_level_arrivals(
                    parts_list, trim_eps=cfg.tail_eps, counter=counter,
                    backend=spy, cache=cache,
                )
                for n, pdf in zip(nodes, res):
                    got[n] = pdf
            return got

        cold = run_levels()
        invocations_cold = spy.invocations
        assert invocations_cold > 0
        warm = run_levels()  # every level resolves from the node memo
        assert spy.invocations == invocations_cold  # zero new touches
        _assert_bitwise(cold[1:], warm[1:])
        assert counter.cache_hits > 0


class TestStatMaxGroupsDifferential:
    """Scheduler-level MAX batching against the per-call reference,
    over synthetic groups including disjoint supports, deltas, and
    single-operand groups."""

    def _groups(self):
        def g(sigma, center):
            return truncated_gaussian_pdf(8.0, center, sigma)

        delta = DiscretePDF.delta(8.0, 4000.0)
        return [
            [g(30.0, 800.0), g(30.0, 900.0)],          # overlapping pair
            [g(30.0, 800.0), g(30.0, 6000.0)],         # disjoint supports
            [g(30.0, 805.0), g(30.0, 905.0)],          # same shape as #1
            [g(20.0, 500.0)],                          # single operand
            [delta, g(25.0, 3990.0)],                  # delta operand
            [g(30.0, 800.0), g(30.0, 900.0)],          # duplicate of #1
            [g(15.0, 100.0), g(45.0, 140.0), g(25.0, 90.0)],  # 3-way
        ]

    @pytest.mark.parametrize("cache_spec", CACHE_SPECS)
    def test_bitwise_vs_sequential(self, backend, cache_spec):
        groups = self._groups()
        cache_b = None if cache_spec is None else ConvolutionCache(cache_spec)
        cache_s = None if cache_spec is None else ConvolutionCache(cache_spec)
        cb, cs = OpCounter(), OpCounter()
        batched = stat_max_groups(
            groups, trim_eps=1e-9, counter=cb, backend=backend, cache=cache_b
        )
        looped = [
            stat_max_many(
                g, trim_eps=1e-9, counter=cs, backend=backend, cache=cache_s
            )
            for g in groups
        ]
        _assert_bitwise(batched, looped)
        assert _tallies(cb) == _tallies(cs)

    def test_empty(self):
        assert stat_max_groups([]) == []

    def test_duplicate_groups_compute_once_with_cache(self):
        cache = ConvolutionCache()
        counter = OpCounter()
        stat_max_groups(self._groups(), counter=counter, cache=cache)
        # Group 5 duplicates group 0 (same contents, same alignment):
        # one computed reduction, one replayed as hits.  Computed:
        # four distinct 2-operand groups plus the 3-way merge.
        assert counter.max_ops == 4 * 1 + 2
        assert counter.max_cache_hits == 1
