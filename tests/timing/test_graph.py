"""Unit tests for the Definition-1 timing graph."""

import pytest

from repro.errors import TimingError
from repro.timing.graph import TimingGraph


class TestStructure:
    def test_single_source_single_sink(self, c17):
        g = TimingGraph(c17)
        assert g.source == 0
        assert g.sink == g.n_nodes - 1
        assert g.fanin_edges(g.source) == []
        assert g.fanout_edges(g.sink) == []

    def test_node_count(self, c17):
        g = TimingGraph(c17)
        assert g.n_nodes == c17.n_nets + 2

    def test_edge_count(self, c17):
        g = TimingGraph(c17)
        expected = c17.n_pin_edges + len(c17.inputs) + len(c17.outputs)
        assert g.n_edges == expected

    def test_net_node_roundtrip(self, c17):
        g = TimingGraph(c17)
        for net in c17.nets():
            assert g.net_of_node(g.node_of_net(net)) == net

    def test_virtual_nodes_have_no_net(self, c17):
        g = TimingGraph(c17)
        assert g.net_of_node(g.source) is None
        assert g.net_of_node(g.sink) is None

    def test_unknown_net(self, c17):
        with pytest.raises(TimingError):
            TimingGraph(c17).node_of_net("ghost")

    def test_gate_arcs_reference_gates(self, c17):
        g = TimingGraph(c17)
        node = g.node_of_net("22")
        arcs = g.fanin_edges(node)
        assert len(arcs) == 2
        assert all(e.gate is c17.gate("22") for e in arcs)
        assert {e.pin for e in arcs} == {0, 1}

    def test_source_arcs_virtual(self, c17):
        g = TimingGraph(c17)
        for edge in g.fanout_edges(g.source):
            assert edge.is_virtual

    def test_po_arcs_to_sink(self, c17):
        g = TimingGraph(c17)
        sources = {g.net_of_node(e.src) for e in g.fanin_edges(g.sink)}
        assert sources == set(c17.outputs)


class TestOrderAndLevels:
    def test_topo_order_respects_edges(self, c17):
        g = TimingGraph(c17)
        position = {n: i for i, n in enumerate(g.topo_nodes())}
        for edge in g.edges:
            assert position[edge.src] < position[edge.dst]

    def test_levels_monotone_along_edges(self, c17):
        g = TimingGraph(c17)
        for edge in g.edges:
            assert g.level(edge.src) < g.level(edge.dst)

    def test_source_and_pi_levels(self, c17):
        g = TimingGraph(c17)
        assert g.level(g.source) == 0
        for net in c17.inputs:
            assert g.level(g.node_of_net(net)) == 1

    def test_sink_is_max_level(self, c17):
        g = TimingGraph(c17)
        assert g.level(g.sink) == g.max_level
        assert all(g.level(n) <= g.max_level for n in range(g.n_nodes))

    def test_nodes_by_level_partition(self, c17):
        g = TimingGraph(c17)
        seen = []
        for lvl in range(g.max_level + 1):
            seen.extend(g.nodes_at_level(lvl))
        assert sorted(seen) == list(range(g.n_nodes))

    def test_gate_output_node(self, c17):
        g = TimingGraph(c17)
        gate = c17.gate("16")
        assert g.net_of_node(g.gate_output_node(gate)) == "16"


class TestGeneratedCircuits:
    def test_benchmark_graph_consistency(self):
        from repro.netlist.benchmarks import load

        c = load("c432")
        g = TimingGraph(c)
        assert g.n_nodes == c.n_nets + 2
        position = {n: i for i, n in enumerate(g.topo_nodes())}
        for edge in g.edges:
            assert position[edge.src] < position[edge.dst]
