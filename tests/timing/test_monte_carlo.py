"""Unit tests for the vectorized Monte Carlo timing engine."""

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.errors import TimingError
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.monte_carlo import run_monte_carlo
from repro.timing.sta import run_sta


class TestBasics:
    def test_sample_count(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        mc = run_monte_carlo(graph, model, n_samples=500, seed=1)
        assert mc.samples.shape == (500,)
        assert mc.n_samples == 500

    def test_seed_reproducible(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        a = run_monte_carlo(graph, model, n_samples=200, seed=7)
        b = run_monte_carlo(graph, model, n_samples=200, seed=7)
        assert np.array_equal(a.samples, b.samples)

    def test_different_seeds_differ(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        a = run_monte_carlo(graph, model, n_samples=200, seed=1)
        b = run_monte_carlo(graph, model, n_samples=200, seed=2)
        assert not np.array_equal(a.samples, b.samples)

    def test_chunking_invariant(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        whole = run_monte_carlo(graph, model, n_samples=300, seed=3, chunk=300)
        split = run_monte_carlo(graph, model, n_samples=300, seed=3, chunk=64)
        # Chunking changes the RNG consumption pattern per gate, so
        # samples differ individually, but statistics must agree.
        assert whole.mean() == pytest.approx(split.mean(), rel=0.02)

    def test_invalid_sample_count(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        with pytest.raises(TimingError):
            run_monte_carlo(graph, model, n_samples=0)

    def test_invalid_percentile(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        mc = run_monte_carlo(graph, model, n_samples=10, seed=0)
        with pytest.raises(TimingError):
            mc.percentile(0.0)


class TestStatisticalSanity:
    def test_samples_within_3sigma_envelope(self, chain3, library):
        """On a chain, the circuit delay is a sum of 3 truncated
        Gaussians: samples must stay within the hard truncation
        envelope around the nominal sum."""
        cfg = AnalysisConfig(sigma_fraction=0.1, truncation_sigma=3.0)
        graph = TimingGraph(chain3)
        model = DelayModel(chain3, library, cfg)
        sta = run_sta(graph, model)
        mc = run_monte_carlo(graph, model, n_samples=5000, seed=2)
        assert mc.samples.max() <= sta.circuit_delay * 1.3 + 1e-6
        assert mc.samples.min() >= sta.circuit_delay * 0.7 - 1e-6

    def test_mean_near_nominal_on_chain(self, chain3, library, fast_config):
        graph = TimingGraph(chain3)
        model = DelayModel(chain3, library, fast_config)
        sta = run_sta(graph, model)
        mc = run_monte_carlo(graph, model, n_samples=8000, seed=2)
        assert mc.mean() == pytest.approx(sta.circuit_delay, rel=0.01)

    def test_mean_above_nominal_with_reconvergence(self, c17, library, fast_config):
        """max of random variables has mean above max of means."""
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        sta = run_sta(graph, model)
        mc = run_monte_carlo(graph, model, n_samples=8000, seed=2)
        assert mc.mean() >= sta.circuit_delay * 0.99

    def test_percentiles_ordered(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        mc = run_monte_carlo(graph, model, n_samples=2000, seed=4)
        assert mc.percentile(0.5) <= mc.percentile(0.9) <= mc.percentile(0.99)

    def test_zero_sigma_equals_sta(self, c17, library):
        cfg = AnalysisConfig(sigma_fraction=0.0)
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, cfg)
        sta = run_sta(graph, model)
        mc = run_monte_carlo(graph, model, n_samples=50, seed=0)
        assert np.allclose(mc.samples, sta.circuit_delay)

    def test_to_pdf_statistics(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        mc = run_monte_carlo(graph, model, n_samples=5000, seed=9)
        pdf = mc.to_pdf(dt=2.0)
        assert pdf.mean() == pytest.approx(mc.mean(), abs=2.0)

    def test_percentile_stderr_positive_and_finite(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        mc = run_monte_carlo(graph, model, n_samples=5000, seed=9)
        err = mc.percentile_stderr(0.99)
        assert 0.0 < err < 50.0

    def test_sizing_improves_mc_delay(self, c17, library, fast_config):
        """Widening the most loaded gate should speed the circuit under
        MC as well (cross-check with the SSTA-driven claim)."""
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        before = run_monte_carlo(graph, model, n_samples=4000, seed=11).percentile(0.99)
        c17.gate("16").width = 4.0
        c17.gate("11").width = 4.0
        after = run_monte_carlo(graph, model, n_samples=4000, seed=11).percentile(0.99)
        assert after < before
