"""Unit tests for backward SSTA and statistical criticality."""

import pytest

from repro.dist.metrics import stochastically_le
from repro.errors import TimingError
from repro.timing.criticality import (
    criticality_report,
    node_criticality,
    run_backward_ssta,
)
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta
from repro.timing.sta import run_sta


def engines(circuit, config):
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=config)
    return graph, model, run_ssta(graph, model), run_backward_ssta(graph, model)


class TestBackwardSSTA:
    def test_sink_is_zero(self, c17, fast_config):
        graph, model, _fwd, bwd = engines(c17, fast_config)
        assert bwd.to_sink[graph.sink].is_point_mass
        assert bwd.to_sink[graph.sink].mean() == pytest.approx(0.0)

    def test_source_to_sink_equals_forward_sink(self, c17, fast_config):
        """The backward pass from the source must reproduce the forward
        circuit-delay distribution (same DAG, same ops, same bound)."""
        graph, model, fwd, bwd = engines(c17, fast_config)
        src = bwd.to_sink[graph.source]
        sink = fwd.sink_pdf
        assert src.mean() == pytest.approx(sink.mean(), rel=0.02)
        assert src.percentile(0.99) == pytest.approx(
            sink.percentile(0.99), rel=0.02
        )

    def test_chain_backward_equals_forward_mirror(self, chain3, fast_config):
        graph, model, fwd, bwd = engines(chain3, fast_config)
        # On a pure chain both passes see the identical convolution.
        src = bwd.to_sink[graph.source]
        assert src.allclose(fwd.sink_pdf, atol=1e-12)

    def test_to_sink_decreases_along_path(self, c17, fast_config):
        """Delay-to-sink shrinks (stochastically) as we move toward the
        sink."""
        graph, model, _fwd, bwd = engines(c17, fast_config)
        for edge in graph.edges:
            if edge.gate is None:
                continue
            assert stochastically_le(
                bwd.to_sink[edge.dst], bwd.to_sink[edge.src], tol=1e-9
            )

    def test_nominal_consistency_with_sta(self, c17, fast_config):
        """Mean of (arrival + to-sink) at any node is at least the STA
        longest path through that node."""
        graph, model, fwd, bwd = engines(c17, fast_config)
        sta = run_sta(graph, model)
        for gate in c17.gates():
            node = graph.gate_output_node(gate)
            through_mean = fwd.arrivals[node].mean() + bwd.to_sink[node].mean()
            sta_through = sta.arrival[node] + (
                sta.circuit_delay - sta.required[node]
            )
            assert through_mean >= sta_through * 0.98


class TestCriticality:
    def test_range(self, c17, fast_config):
        _graph, _model, fwd, bwd = engines(c17, fast_config)
        for gate in c17.gates():
            c = node_criticality(fwd, bwd, gate.output)
            assert 0.0 <= c <= 1.0

    def test_critical_path_nets_rank_high(self, two_path, fast_config):
        """The long path's nets must dominate the short path's."""
        _graph, _model, fwd, bwd = engines(two_path, fast_config)
        long_c = node_criticality(fwd, bwd, "l2")
        short_c = node_criticality(fwd, bwd, "s1")
        assert long_c > short_c

    def test_output_gate_highly_critical(self, chain3, fast_config):
        _graph, _model, fwd, bwd = engines(chain3, fast_config)
        # Every path passes through the chain: criticality ~ P(circuit
        # delay >= its own 99% point) ~ 0.01 at p=0.99... through-delay
        # IS the circuit delay here, so criticality = 1 - F(T99) = 0.01.
        c = node_criticality(fwd, bwd, "out", percentile=0.5)
        assert c == pytest.approx(0.5, abs=0.05)

    def test_report_sorted_and_bounded(self, c17, fast_config):
        _graph, _model, fwd, bwd = engines(c17, fast_config)
        rows = criticality_report(fwd, bwd, top_k=4)
        assert len(rows) == 4
        crits = [r.criticality for r in rows]
        assert crits == sorted(crits, reverse=True)

    def test_report_top_k_validation(self, c17, fast_config):
        _graph, _model, fwd, bwd = engines(c17, fast_config)
        with pytest.raises(TimingError):
            criticality_report(fwd, bwd, top_k=0)

    def test_statistical_winner_is_critical(self, fast_config):
        """The gate the statistical sizer picks should rank among the
        most critical nets — the mechanism behind early pruning."""
        from repro.core.pruned_sizer import PrunedStatisticalSizer
        from repro.netlist.benchmarks import load

        circuit = load("c432", scale=0.3)
        sizer = PrunedStatisticalSizer(
            circuit, config=fast_config, max_iterations=1
        )
        selection = sizer._select_gate()  # noqa: SLF001
        best = selection.best_gate
        assert best is not None
        _g, _m, fwd, bwd = engines(circuit, fast_config)
        ranked = [r.net for r in criticality_report(fwd, bwd, top_k=max(
            10, circuit.n_gates // 4))]
        assert best.name in ranked
