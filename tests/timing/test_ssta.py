"""Unit tests for the block-based SSTA engine."""

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.dist.metrics import stochastically_le
from repro.dist.ops import OpCounter, convolve, stat_max
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta
from repro.timing.sta import run_sta


class TestChainPropagation:
    def test_chain_is_pure_convolution(self, chain3, library, fast_config):
        """With a single path the sink PDF is exactly the convolution of
        the three gate delay PDFs."""
        graph = TimingGraph(chain3)
        model = DelayModel(chain3, library, fast_config)
        result = run_ssta(graph, model)
        eps = fast_config.tail_eps
        expected = convolve(
            convolve(
                model.delay_pdf(chain3.gate("n1")),
                model.delay_pdf(chain3.gate("n2")),
                trim_eps=eps,
            ),
            model.delay_pdf(chain3.gate("out")),
            trim_eps=eps,
        )
        assert result.sink_pdf.allclose(expected, atol=1e-12)

    def test_mean_matches_sta_on_chain(self, chain3, library, fast_config):
        graph = TimingGraph(chain3)
        model = DelayModel(chain3, library, fast_config)
        ssta = run_ssta(graph, model)
        sta = run_sta(graph, model)
        # Truncated Gaussians are symmetric: mean of sum == nominal sum.
        assert ssta.mean_delay() == pytest.approx(sta.circuit_delay, rel=0.02)

    def test_variance_accumulates(self, chain3, library, fast_config):
        graph = TimingGraph(chain3)
        model = DelayModel(chain3, library, fast_config)
        result = run_ssta(graph, model)
        per_gate_vars = [
            model.delay_pdf(g).var() for g in chain3.gates()
        ]
        assert result.sink_pdf.var() == pytest.approx(sum(per_gate_vars), rel=0.05)


class TestMaxPropagation:
    def test_two_path_merge(self, two_path, library, fast_config):
        """Each input-pin arc carries its own (independent) delay RV, so
        the merge is max(conv(A1, D), conv(A2, D')), not conv(max, D)."""
        graph = TimingGraph(two_path)
        model = DelayModel(two_path, library, fast_config)
        result = run_ssta(graph, model)
        eps = fast_config.tail_eps
        d = {g.output: model.delay_pdf(g) for g in two_path.gates()}
        long_arr = convolve(
            convolve(d["l1"], d["l2"], trim_eps=eps), d["l3"], trim_eps=eps
        )
        short_arr = d["s1"]
        expected = stat_max(
            convolve(long_arr, d["out"], trim_eps=eps),
            convolve(short_arr, d["out"], trim_eps=eps),
            trim_eps=eps,
        )
        assert result.sink_pdf.allclose(expected, atol=1e-12)

    def test_sink_later_than_every_po(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        result = run_ssta(graph, model)
        for net in c17.outputs:
            assert stochastically_le(result.arrival_of_net(net), result.sink_pdf)


class TestBoundProperties:
    def test_bound_exceeds_sta_nominal(self, c17, library, fast_config):
        """The 99% of the statistical bound must exceed the nominal
        longest path (variability only hurts at high percentiles)."""
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        ssta = run_ssta(graph, model)
        sta = run_sta(graph, model)
        assert ssta.percentile(0.99) > sta.circuit_delay

    def test_bound_upper_bounds_monte_carlo(self, c17, library):
        """[3]'s independence max yields an upper bound on the exact
        circuit delay CDF: every MC percentile must sit at or below the
        bound percentile (within sampling error)."""
        from repro.timing.monte_carlo import run_monte_carlo

        cfg = AnalysisConfig(dt=2.0)
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, cfg)
        ssta = run_ssta(graph, model)
        mc = run_monte_carlo(graph, model, n_samples=20000, seed=5)
        for p in (0.5, 0.9, 0.99):
            assert mc.percentile(p) <= ssta.percentile(p) + 2.0

    def test_bound_tight_at_99(self, c17, library):
        """Paper Section 4: the bound is within ~1% of MC at the
        99-percentile point."""
        from repro.timing.monte_carlo import run_monte_carlo

        cfg = AnalysisConfig(dt=2.0)
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, cfg)
        ssta = run_ssta(graph, model)
        mc = run_monte_carlo(graph, model, n_samples=20000, seed=5)
        gap = abs(ssta.percentile(0.99) - mc.percentile(0.99))
        assert gap / mc.percentile(0.99) < 0.03


class TestMechanics:
    def test_counter_tallies_work(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        counter = OpCounter()
        run_ssta(graph, model, counter=counter)
        assert counter.convolutions == c17.n_pin_edges
        # One reduction per extra fan-in arc at each multi-fan-in node.
        assert counter.max_ops > 0

    def test_deterministic_repeatable(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        a = run_ssta(graph, model).sink_pdf
        b = run_ssta(graph, model).sink_pdf
        assert a.offset == b.offset
        assert np.array_equal(a.masses, b.masses)

    def test_all_nodes_have_arrivals(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        result = run_ssta(graph, model)
        assert all(a is not None for a in result.arrivals)

    def test_percentile_alias(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        result = run_ssta(graph, model)
        assert result.percentile(0.99) == result.sink_pdf.percentile(0.99)

    def test_sizing_changes_sink(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        before = run_ssta(graph, model).percentile(0.99)
        c17.gate("16").width = 5.0
        after = run_ssta(graph, model).percentile(0.99)
        assert after != before

    def test_zero_sigma_degenerates_to_sta(self, c17, library):
        """With sigma = 0 every PDF is a point mass and SSTA must equal
        STA exactly (up to grid rounding)."""
        cfg = AnalysisConfig(dt=0.5, sigma_fraction=0.0)
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, cfg)
        ssta = run_ssta(graph, model)
        sta = run_sta(graph, model)
        assert ssta.sink_pdf.is_point_mass
        assert ssta.mean_delay() == pytest.approx(sta.circuit_delay, abs=cfg.dt * 10)
