"""Unit tests for incremental SSTA updates.

The defining property: after any sequence of resizes, the incrementally
updated arrivals must be **bitwise identical** to a from-scratch SSTA.
"""

import numpy as np
import pytest

from repro.dist.ops import OpCounter
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.incremental import update_ssta_after_resize
from repro.timing.ssta import run_ssta


def assert_same_arrivals(a, b):
    for pa, pb in zip(a.arrivals, b.arrivals):
        assert pa.offset == pb.offset
        assert np.array_equal(pa.masses, pb.masses)


class TestExactness:
    def test_single_resize_matches_full_rerun(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        result = run_ssta(graph, model)
        gate = c17.gate("16")
        gate.width = 3.0
        update_ssta_after_resize(result, model, [gate])
        assert_same_arrivals(result, run_ssta(graph, model))

    @pytest.mark.parametrize("gate_name", ["10", "11", "19", "22", "23"])
    def test_each_gate_resize(self, c17, library, fast_config, gate_name):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        result = run_ssta(graph, model)
        gate = c17.gate(gate_name)
        gate.width = 2.0
        update_ssta_after_resize(result, model, [gate])
        assert_same_arrivals(result, run_ssta(graph, model))

    def test_sequence_of_resizes(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        result = run_ssta(graph, model)
        for name, w in (("16", 2.0), ("11", 3.0), ("22", 2.0), ("16", 4.0)):
            gate = c17.gate(name)
            gate.width = w
            update_ssta_after_resize(result, model, [gate])
        assert_same_arrivals(result, run_ssta(graph, model))

    def test_batch_resize(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        result = run_ssta(graph, model)
        gates = [c17.gate("10"), c17.gate("19")]
        for g in gates:
            g.width = 2.5
        update_ssta_after_resize(result, model, gates)
        assert_same_arrivals(result, run_ssta(graph, model))

    def test_benchmark_circuit(self, fast_config):
        from repro.netlist.benchmarks import load

        circuit = load("c432", scale=0.4)
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=fast_config)
        result = run_ssta(graph, model)
        gates = list(circuit.gates())
        for g in (gates[3], gates[len(gates) // 2], gates[-2]):
            g.width += 1.0
            update_ssta_after_resize(result, model, [g])
        assert_same_arrivals(result, run_ssta(graph, model))


class TestEfficiency:
    def test_recomputes_less_than_full(self, fast_config):
        from repro.netlist.benchmarks import load

        circuit = load("c880", scale=0.5)
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=fast_config)
        result = run_ssta(graph, model)
        # A gate near the outputs should touch only a small cone.
        gate = circuit.topo_gates()[-1]
        gate.width += 1.0
        recomputed = update_ssta_after_resize(result, model, [gate])
        assert recomputed < graph.n_nodes / 4

    def test_counter_tallies(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        result = run_ssta(graph, model)
        counter = OpCounter()
        gate = c17.gate("16")
        gate.width = 2.0
        update_ssta_after_resize(result, model, [gate], counter=counter)
        assert counter.total_ops > 0

    def test_noop_resize_stops_quickly(self, c17, library, fast_config):
        """Setting a width to its current value: the wave should die at
        the seeds (recomputed arrivals are bitwise unchanged)."""
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        result = run_ssta(graph, model)
        gate = c17.gate("16")
        gate.width = gate.width  # no change
        recomputed = update_ssta_after_resize(result, model, [gate])
        assert recomputed <= 3  # the seed nodes only
        assert_same_arrivals(result, run_ssta(graph, model))
