"""Unit tests for deterministic STA."""

import pytest

from repro.errors import TimingError
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.sta import run_sta


class TestArrivals:
    def test_chain_delay_is_sum(self, chain3, library):
        graph = TimingGraph(chain3)
        model = DelayModel(chain3, library)
        delays = model.nominal_delays()
        result = run_sta(graph, model)
        assert result.circuit_delay == pytest.approx(sum(delays.values()))

    def test_two_path_takes_longest(self, two_path, library):
        graph = TimingGraph(two_path)
        model = DelayModel(two_path, library)
        d = model.nominal_delays()
        long_path = d["l1"] + d["l2"] + d["l3"] + d["out"]
        short_path = d["s1"] + d["out"]
        result = run_sta(graph, model)
        assert result.circuit_delay == pytest.approx(max(long_path, short_path))

    def test_explicit_delay_map(self, chain3, library):
        graph = TimingGraph(chain3)
        delays = {"n1": 10.0, "n2": 20.0, "out": 30.0}
        result = run_sta(graph, delays=delays)
        assert result.circuit_delay == pytest.approx(60.0)

    def test_needs_model_or_delays(self, chain3):
        graph = TimingGraph(chain3)
        with pytest.raises(TimingError):
            run_sta(graph)

    def test_arrival_monotone_along_path(self, c17, library):
        graph = TimingGraph(c17)
        result = run_sta(graph, DelayModel(c17, library))
        for edge in graph.edges:
            assert result.arrival[edge.dst] >= result.arrival[edge.src] - 1e-9


class TestCriticalPath:
    def test_critical_path_in_two_path(self, two_path, library):
        graph = TimingGraph(two_path)
        result = run_sta(graph, DelayModel(two_path, library))
        nets = result.critical_path_nets
        assert "l1" in nets and "l3" in nets and "out" in nets
        assert "s1" not in nets

    def test_critical_path_delay_consistent(self, c17, library):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library)
        delays = model.nominal_delays()
        result = run_sta(graph, model)
        path_delay = sum(
            delays[e.gate.output] for e in result.critical_edges if e.gate
        )
        assert path_delay == pytest.approx(result.circuit_delay)

    def test_critical_gates_have_zero_slack(self, c17, library):
        graph = TimingGraph(c17)
        result = run_sta(graph, DelayModel(c17, library))
        for gate in result.critical_path_gates:
            node = graph.gate_output_node(gate)
            assert result.slack(node) == pytest.approx(0.0, abs=1e-9)

    def test_all_slacks_non_negative(self, c17, library):
        graph = TimingGraph(c17)
        result = run_sta(graph, DelayModel(c17, library))
        for node in range(graph.n_nodes):
            assert result.slack(node) >= -1e-9

    def test_critical_gates_within_margin(self, two_path, library):
        graph = TimingGraph(two_path)
        result = run_sta(graph, DelayModel(two_path, library))
        strict = result.critical_gates_within(0.0)
        loose = result.critical_gates_within(1e9)
        assert set(g.name for g in strict) <= set(g.name for g in loose)
        assert len(loose) == two_path.n_gates


class TestSizingInteraction:
    def test_upsizing_pi_driven_gate_reduces_delay(self, chain3, library):
        """Up-sizing n1 (driven by a primary input, so no upstream
        loading penalty) must speed the circuit."""
        graph = TimingGraph(chain3)
        model = DelayModel(chain3, library)
        before = run_sta(graph, model).circuit_delay
        chain3.gate("n1").width = 4.0
        after = run_sta(graph, model).circuit_delay
        assert after < before

    def test_upsizing_interior_gate_can_hurt(self, chain3, library):
        """Logical-effort reality check: widening a mid-chain gate whose
        driver is minimum size loads the driver more than it gains —
        exactly why sensitivities can be negative and why the optimizer
        must measure them rather than assume improvement."""
        graph = TimingGraph(chain3)
        model = DelayModel(chain3, library)
        before = run_sta(graph, model).circuit_delay
        chain3.gate("n2").width = 4.0
        after = run_sta(graph, model).circuit_delay
        assert after > before

    def test_benchmark_sta_runs(self):
        from repro.netlist.benchmarks import load

        c = load("c432")
        graph = TimingGraph(c)
        result = run_sta(graph, DelayModel(c))
        # 17 levels of ~100+ ps gates: delay should be in the ns range.
        assert 500.0 < result.circuit_delay < 10000.0
