"""Unit tests for corner-based analysis and its documented failure
modes versus SSTA (the paper's Section-1 motivation)."""

import pytest

from repro.config import AnalysisConfig
from repro.errors import TimingError
from repro.timing.corners import Corner, run_corners, standard_corners
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.monte_carlo import run_monte_carlo
from repro.timing.ssta import run_ssta
from repro.timing.sta import run_sta


class TestCorner:
    def test_invalid_derate(self):
        with pytest.raises(TimingError):
            Corner("bad", 0.0)

    def test_standard_corners_match_model(self):
        cfg = AnalysisConfig(sigma_fraction=0.1, truncation_sigma=3.0)
        corners = {c.name: c.derate for c in standard_corners(cfg)}
        assert corners == {"best": 0.7, "typical": 1.0, "worst": 1.3}


class TestRunCorners:
    def test_typical_equals_sta(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        analysis = run_corners(graph, model)
        sta = run_sta(graph, model)
        assert analysis.delay_at("typical") == pytest.approx(sta.circuit_delay)

    def test_corner_ordering(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        analysis = run_corners(graph, model)
        assert (
            analysis.delay_at("best")
            < analysis.delay_at("typical")
            < analysis.delay_at("worst")
        )

    def test_derate_scales_linearly(self, c17, library, fast_config):
        """A global derate scales the longest path exactly."""
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        analysis = run_corners(graph, model)
        assert analysis.delay_at("worst") == pytest.approx(
            1.3 * analysis.delay_at("typical")
        )

    def test_spread(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        analysis = run_corners(graph, model)
        assert analysis.spread == pytest.approx(
            analysis.delay_at("worst") - analysis.delay_at("best")
        )

    def test_unknown_corner(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        analysis = run_corners(graph, DelayModel(c17, library, fast_config))
        with pytest.raises(TimingError):
            analysis.delay_at("ludicrous")

    def test_empty_corner_list(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        with pytest.raises(TimingError):
            run_corners(graph, DelayModel(c17, library, fast_config), corners=[])

    def test_custom_corners(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        analysis = run_corners(
            graph, model, corners=[Corner("slow", 1.1), Corner("fast", 0.9)]
        )
        assert set(analysis.delays) == {"slow", "fast"}


class TestCornerInaccuracy:
    """The paper's Section-1 claims, measured."""

    def test_worst_corner_pessimistic_vs_statistics(self, fast_config):
        """Independent intra-die variation averages out: the worst
        corner overshoots the statistical 99% delay."""
        from repro.netlist.benchmarks import load

        circuit = load("c432", scale=0.4)
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=fast_config)
        analysis = run_corners(graph, model)
        p99 = run_ssta(graph, model).percentile(0.99)
        assert analysis.pessimism_vs(p99, corner_name="worst") > 0.05

    def test_typical_corner_optimistic_vs_statistics(self, fast_config):
        """The statistical max across many paths beats all-nominal:
        typical-corner signoff under-margins the 99% delay."""
        from repro.netlist.benchmarks import load

        circuit = load("c432", scale=0.4)
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=fast_config)
        analysis = run_corners(graph, model)
        p99 = run_ssta(graph, model).percentile(0.99)
        assert analysis.pessimism_vs(p99, corner_name="typical") < 0.0

    def test_corners_bracket_monte_carlo(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        analysis = run_corners(graph, model)
        mc = run_monte_carlo(graph, model, n_samples=4000, seed=6)
        assert analysis.delay_at("best") <= mc.percentile(0.01)
        assert analysis.delay_at("worst") >= mc.percentile(0.99)

    def test_pessimism_validation(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        analysis = run_corners(graph, DelayModel(c17, library, fast_config))
        with pytest.raises(TimingError):
            analysis.pessimism_vs(0.0)


class TestBehaviorPins:
    """Additional pins on the corner API (satellite coverage), including
    cache-config neutrality: corners are deterministic STA at derated
    nominals — no distributions, so the convolution-result cache must
    be completely inert here."""

    def test_corner_is_frozen_and_hashable(self):
        c = Corner("worst", 1.3)
        with pytest.raises(Exception):
            c.derate = 1.4
        assert len({c, Corner("worst", 1.3)}) == 1

    def test_negative_derate_rejected(self):
        with pytest.raises(TimingError):
            Corner("bad", -0.5)

    def test_standard_corners_track_config_model(self):
        cfg = AnalysisConfig(sigma_fraction=0.2, truncation_sigma=2.0)
        corners = {c.name: c.derate for c in standard_corners(cfg)}
        assert corners["best"] == pytest.approx(0.6)
        assert corners["worst"] == pytest.approx(1.4)

    def test_standard_corners_default_config(self):
        corners = {c.name: c.derate for c in standard_corners()}
        assert corners == {"best": 0.7, "typical": 1.0, "worst": 1.3}

    def test_pessimism_vs_named_corner(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        analysis = run_corners(graph, model)
        typ = analysis.delay_at("typical")
        assert analysis.pessimism_vs(typ, corner_name="typical") == 0.0
        assert analysis.pessimism_vs(typ, corner_name="best") < 0.0

    def test_cache_config_is_inert_for_corners(self, c17):
        delays = {}
        for cache in (None, 1024):
            cfg = AnalysisConfig(dt=8.0, cache=cache)
            graph = TimingGraph(c17)
            analysis = run_corners(graph, DelayModel(c17, config=cfg))
            delays[cache] = analysis.delays
        assert delays[None] == delays[1024]

    def test_corners_consistent_with_derated_ssta_means(
        self, c17, library, fast_config
    ):
        """The typical corner equals the nominal longest path, which
        upper-bounds every individual path mean — pinned against the
        SSTA mean, which adds variance effects on top."""
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        analysis = run_corners(graph, model)
        ssta = run_ssta(graph, model)
        assert analysis.delay_at("typical") <= ssta.mean_delay()
        assert analysis.delay_at("worst") > ssta.percentile(0.99) * 0.99
