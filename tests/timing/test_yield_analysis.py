"""Unit tests for parametric timing-yield analysis."""

import numpy as np
import pytest

from repro.dist.families import truncated_gaussian_pdf
from repro.errors import TimingError
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.monte_carlo import run_monte_carlo
from repro.timing.yield_analysis import (
    delay_at_yield,
    timing_yield,
    yield_curve,
    yield_gain,
)


@pytest.fixture
def gaussian():
    return truncated_gaussian_pdf(1.0, 1000.0, 50.0)


class TestTimingYield:
    def test_median_target(self, gaussian):
        assert timing_yield(gaussian, 1000.0) == pytest.approx(0.5, abs=0.02)

    def test_loose_target_full_yield(self, gaussian):
        assert timing_yield(gaussian, 2000.0) == 1.0

    def test_impossible_target_zero_yield(self, gaussian):
        assert timing_yield(gaussian, 500.0) == 0.0

    def test_monotone_in_target(self, gaussian):
        targets = np.linspace(850.0, 1150.0, 20)
        yields = [timing_yield(gaussian, t) for t in targets]
        assert all(b >= a for a, b in zip(yields, yields[1:]))

    def test_negative_target_rejected(self, gaussian):
        with pytest.raises(TimingError):
            timing_yield(gaussian, -1.0)

    def test_monte_carlo_distribution(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        mc = run_monte_carlo(graph, model, n_samples=2000, seed=1)
        loose = mc.percentile(1.0) + 1.0
        assert timing_yield(mc, loose) == 1.0
        assert 0.4 < timing_yield(mc, float(np.median(mc.samples))) < 0.6


class TestDelayAtYield:
    def test_inverse_of_yield(self, gaussian):
        for y in (0.5, 0.9, 0.99):
            t = delay_at_yield(gaussian, y)
            assert timing_yield(gaussian, t) == pytest.approx(y, abs=1e-6)

    def test_is_percentile(self, gaussian):
        assert delay_at_yield(gaussian, 0.99) == gaussian.percentile(0.99)

    def test_invalid_fraction(self, gaussian):
        with pytest.raises(TimingError):
            delay_at_yield(gaussian, 0.0)
        with pytest.raises(TimingError):
            delay_at_yield(gaussian, 1.5)


class TestYieldCurve:
    def test_shape_and_monotonicity(self, gaussian):
        targets, yields = yield_curve(gaussian, n_points=25)
        assert targets.shape == yields.shape == (25,)
        assert np.all(np.diff(targets) > 0)
        assert np.all(np.diff(yields) >= -1e-12)

    def test_endpoints(self, gaussian):
        _targets, yields = yield_curve(gaussian, n_points=30)
        assert yields[0] < 0.05
        assert yields[-1] == pytest.approx(1.0, abs=1e-9)

    def test_invalid_points(self, gaussian):
        with pytest.raises(TimingError):
            yield_curve(gaussian, n_points=1)


class TestYieldGain:
    def test_faster_circuit_wins_everywhere(self):
        slow = truncated_gaussian_pdf(1.0, 1000.0, 50.0)
        fast = truncated_gaussian_pdf(1.0, 900.0, 50.0)
        cmp = yield_gain(slow, fast)
        assert cmp.max_gain > 0.3
        assert np.all(cmp.yield_b >= cmp.yield_a - 1e-9)

    def test_identical_distributions_zero_gain(self, gaussian):
        cmp = yield_gain(gaussian, gaussian)
        assert cmp.max_gain == pytest.approx(0.0, abs=1e-9)
        assert cmp.mean_gain == pytest.approx(0.0, abs=1e-9)

    def test_mixed_types(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        from repro.timing.ssta import run_ssta

        bound = run_ssta(graph, model).sink_pdf
        mc = run_monte_carlo(graph, model, n_samples=3000, seed=2)
        cmp = yield_gain(bound, mc)
        # The bound is pessimistic, so MC yields at least as much at
        # every target.
        assert cmp.mean_gain >= -0.02

    def test_optimization_improves_yield(self, c17, fast_config):
        """End to end: sizing should raise yield at a tight target."""
        from repro.core.pruned_sizer import PrunedStatisticalSizer
        from repro.timing.ssta import run_ssta

        graph = TimingGraph(c17)
        model = DelayModel(c17, config=fast_config)
        before = run_ssta(graph, model).sink_pdf
        PrunedStatisticalSizer(c17, config=fast_config, max_iterations=5).run()
        after = run_ssta(graph, model).sink_pdf
        cmp = yield_gain(before, after)
        assert cmp.max_gain > 0.05


class TestInputValidationAndEdges:
    """Behavior pins for the paths no other module exercises."""

    def test_unsupported_distribution_type_rejected(self):
        for fn in (
            lambda d: timing_yield(d, 1000.0),
            lambda d: delay_at_yield(d, 0.5),
            lambda d: yield_curve(d),
        ):
            with pytest.raises(TimingError, match="unsupported"):
                fn([1.0, 2.0, 3.0])

    def test_yield_curve_two_points(self, gaussian):
        targets, yields = yield_curve(gaussian, n_points=2)
        assert targets.shape == (2,)
        assert yields[-1] == pytest.approx(1.0, abs=1e-9)

    def test_zero_target_is_allowed(self, gaussian):
        assert timing_yield(gaussian, 0.0) == 0.0

    def test_delay_at_full_yield_is_support_end(self, gaussian):
        assert delay_at_yield(gaussian, 1.0) == pytest.approx(
            gaussian.support[1]
        )

    def test_empirical_cdf_step_semantics(self, c17, library, fast_config):
        """The Monte Carlo CDF is right-continuous at sample points:
        P(X <= x_i) counts x_i itself."""
        from repro.timing.monte_carlo import run_monte_carlo

        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        mc = run_monte_carlo(graph, model, n_samples=50, seed=3)
        xs = np.sort(mc.samples)
        assert timing_yield(mc, float(xs[0])) >= 1.0 / xs.size
        assert timing_yield(mc, float(xs[0]) - 1e-9) == 0.0
        assert timing_yield(mc, float(xs[-1])) == 1.0


class TestCacheConfigInvariance:
    """Satellite pin: yield queries must be unaffected by the
    convolution-result cache — the cached SSTA hands over a bitwise-
    identical sink distribution, so every derived yield number is
    equal, not merely close."""

    def test_yield_numbers_identical_cache_on_off(self, c17):
        from repro.config import AnalysisConfig
        from repro.timing.ssta import run_ssta

        sinks = {}
        for cache in (None, 4096):
            cfg = AnalysisConfig(dt=8.0, cache=cache)
            circuit_cfgd = c17
            graph = TimingGraph(circuit_cfgd)
            model = DelayModel(circuit_cfgd, config=cfg)
            sinks[cache] = run_ssta(graph, model, config=cfg).sink_pdf
        off, on = sinks[None], sinks[4096]
        assert np.array_equal(off.masses, on.masses)
        for target in np.linspace(*off.support, 7):
            assert timing_yield(off, float(target)) == timing_yield(
                on, float(target)
            )
        for y in (0.1, 0.5, 0.99):
            assert delay_at_yield(off, y) == delay_at_yield(on, y)
        cmp = yield_gain(off, on)
        assert cmp.max_gain == 0.0 and cmp.mean_gain == 0.0
