"""Hypothesis property tests for the SSTA engine on random circuits.

The invariants that make the bound CDF of [3] a *bound*:

* the statistical sink distribution is stochastically later than every
  primary output's arrival;
* every node's arrival is stochastically later than each single fan-in
  contribution (max dominates its operands);
* the bound's p-percentiles dominate the deterministic longest path for
  p above ~0.5 (symmetric per-gate distributions);
* reproducibility: the whole pipeline is a pure function of the
  (circuit, config) pair.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AnalysisConfig
from repro.dist.metrics import stochastically_le
from repro.dist.ops import convolve
from repro.netlist.generate import CircuitSpec, generate_circuit
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.ssta import run_ssta
from repro.timing.sta import run_sta

CFG = AnalysisConfig(dt=8.0)


@st.composite
def circuits(draw):
    n_gates = draw(st.integers(min_value=5, max_value=40))
    depth = draw(st.integers(min_value=2, max_value=min(8, n_gates)))
    edges = draw(st.integers(min_value=int(1.5 * n_gates), max_value=int(2.5 * n_gates)))
    seed = draw(st.integers(min_value=0, max_value=9999))
    spec = CircuitSpec(
        name="hyp",
        n_inputs=draw(st.integers(min_value=3, max_value=10)),
        n_outputs=2,
        n_gates=n_gates,
        n_pin_edges=min(edges, 4 * n_gates),
        depth=depth,
        seed=seed,
    )
    return generate_circuit(spec)


class TestSSTAProperties:
    @settings(max_examples=25, deadline=None)
    @given(circuit=circuits())
    def test_sink_dominates_outputs(self, circuit):
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=CFG)
        result = run_ssta(graph, model)
        for net in circuit.outputs:
            assert stochastically_le(
                result.arrival_of_net(net), result.sink_pdf, tol=1e-9
            )

    @settings(max_examples=25, deadline=None)
    @given(circuit=circuits())
    def test_arrival_dominates_each_fanin_contribution(self, circuit):
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=CFG)
        result = run_ssta(graph, model)
        for gate in circuit.topo_gates():
            node = graph.gate_output_node(gate)
            d = model.delay_pdf(gate)
            for edge in graph.fanin_edges(node):
                contrib = convolve(result.arrivals[edge.src], d)
                assert stochastically_le(contrib, result.arrivals[node], tol=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(circuit=circuits())
    def test_high_percentiles_dominate_sta(self, circuit):
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=CFG)
        ssta = run_ssta(graph, model)
        sta = run_sta(graph, model)
        assert ssta.percentile(0.99) >= sta.circuit_delay - CFG.dt

    @settings(max_examples=15, deadline=None)
    @given(circuit=circuits())
    def test_reproducible(self, circuit):
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=CFG)
        a = run_ssta(graph, model).sink_pdf
        b = run_ssta(graph, model).sink_pdf
        assert a.offset == b.offset
        assert np.array_equal(a.masses, b.masses)

    @settings(max_examples=15, deadline=None)
    @given(circuit=circuits())
    def test_sigma_zero_collapses_to_sta(self, circuit):
        cfg = AnalysisConfig(dt=2.0, sigma_fraction=0.0)
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=cfg)
        ssta = run_ssta(graph, model)
        sta = run_sta(graph, model)
        assert ssta.sink_pdf.is_point_mass
        # Each gate delay rounds to the grid once, so the worst-case
        # drift is one bin per level of logic depth.
        tol = cfg.dt * (circuit.depth() + 1)
        assert abs(ssta.mean_delay() - sta.circuit_delay) <= tol
