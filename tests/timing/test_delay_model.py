"""Unit tests for the EQ-1 delay model with live loads and widths."""

import pytest

from repro.config import AnalysisConfig
from repro.timing.delay_model import DelayModel


class TestLoadCap:
    def test_fanout_pins_plus_wire(self, diamond, library):
        model = DelayModel(diamond, library)
        stem_load = model.load_cap("stem")
        inv_cap = library.get("INV_X1").input_cap
        assert stem_load == pytest.approx(2 * inv_cap + 2 * library.wire_cap_per_fanout)

    def test_primary_output_load(self, chain3, library):
        model = DelayModel(chain3, library)
        assert model.load_cap("out") == pytest.approx(library.primary_output_cap)

    def test_load_tracks_consumer_width(self, diamond, library):
        model = DelayModel(diamond, library)
        before = model.load_cap("stem")
        diamond.gate("left").width = 3.0
        after = model.load_cap("stem")
        inv_cap = library.get("INV_X1").input_cap
        assert after - before == pytest.approx(2.0 * inv_cap)

    def test_po_with_fanout_gets_both(self, library):
        from repro.netlist.circuit import Circuit

        inv = library.get("INV_X1")
        c = Circuit("po_fan")
        c.add_input("a")
        c.add_gate(inv, ["a"], "mid")
        c.add_gate(inv, ["mid"], "z")
        c.add_output("mid")  # PO that also feeds a gate
        c.add_output("z")
        model = DelayModel(c, library)
        expected = inv.input_cap + library.wire_cap_per_fanout + library.primary_output_cap
        assert model.load_cap("mid") == pytest.approx(expected)


class TestNominalDelay:
    def test_eq1(self, chain3, library):
        model = DelayModel(chain3, library)
        g = chain3.gate("n1")
        expected = g.cell.delay(g.width, model.load_cap("n1"))
        assert model.nominal_delay(g) == pytest.approx(expected)

    def test_upsizing_self_reduces_delay(self, chain3, library):
        model = DelayModel(chain3, library)
        g = chain3.gate("n2")
        before = model.nominal_delay(g)
        g.width = 4.0
        assert model.nominal_delay(g) < before

    def test_upsizing_consumer_slows_driver(self, chain3, library):
        model = DelayModel(chain3, library)
        driver = chain3.gate("n1")
        before = model.nominal_delay(driver)
        chain3.gate("n2").width = 4.0
        assert model.nominal_delay(driver) > before

    def test_sigma_fraction(self, chain3, library):
        cfg = AnalysisConfig(sigma_fraction=0.1)
        model = DelayModel(chain3, library, cfg)
        g = chain3.gate("n1")
        assert model.sigma(g) == pytest.approx(0.1 * model.nominal_delay(g))

    def test_nominal_delays_snapshot(self, c17, library):
        model = DelayModel(c17, library)
        delays = model.nominal_delays()
        assert set(delays) == {g.output for g in c17.gates()}
        assert all(d > 0.0 for d in delays.values())


class TestDelayPDF:
    def test_mean_near_nominal(self, chain3, library, fast_config):
        model = DelayModel(chain3, library, fast_config)
        g = chain3.gate("n1")
        pdf = model.delay_pdf(g)
        assert pdf.mean() == pytest.approx(model.nominal_delay(g), rel=0.02)

    def test_sigma_near_model(self, chain3, library):
        cfg = AnalysisConfig(dt=1.0)
        model = DelayModel(chain3, library, cfg)
        g = chain3.gate("n1")
        pdf = model.delay_pdf(g)
        # 3-sigma truncation shrinks std by 0.98658.
        assert pdf.std() == pytest.approx(
            model.sigma(g) * 0.98658, rel=0.02
        )

    def test_cache_hit_same_operating_point(self, chain3, library, fast_config):
        model = DelayModel(chain3, library, fast_config)
        g1 = chain3.gate("n1")
        pdf_a = model.delay_pdf(g1)
        pdf_b = model.delay_pdf(g1)
        assert pdf_a is pdf_b
        entries, bins = model.cache_info()
        assert entries >= 1 and bins >= 1

    def test_cache_invalidated_by_resize(self, chain3, library, fast_config):
        model = DelayModel(chain3, library, fast_config)
        g = chain3.gate("n2")
        before = model.delay_pdf(g)
        g.width = 2.0
        after = model.delay_pdf(g)
        assert after.mean() < before.mean()

    def test_clear_cache(self, chain3, library, fast_config):
        model = DelayModel(chain3, library, fast_config)
        model.delay_pdf(chain3.gate("n1"))
        model.clear_cache()
        assert model.cache_info() == (0, 0)


class TestAffectedGates:
    def test_gate_and_fanin_drivers(self, c17):
        model = DelayModel(c17)
        gate = c17.gate("22")  # NAND(10, 16)
        affected = {g.name for g in model.gates_affected_by_resize(gate)}
        assert affected == {"22", "10", "16"}

    def test_pi_driven_gate_only_itself(self, c17):
        model = DelayModel(c17)
        gate = c17.gate("10")  # NAND(1, 3): both primary inputs
        affected = {g.name for g in model.gates_affected_by_resize(gate)}
        assert affected == {"10"}

    def test_matches_paper_initialize_set(self, diamond):
        model = DelayModel(diamond)
        gate = diamond.gate("out")
        affected = {g.name for g in model.gates_affected_by_resize(gate)}
        assert affected == {"out", "left", "right"}
