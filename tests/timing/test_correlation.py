"""Unit tests for the spatial-correlation extension (quad-tree model)."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.timing.correlation import (
    GridPlacement,
    QuadTreeCorrelation,
    run_monte_carlo_correlated,
)
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.monte_carlo import run_monte_carlo


class TestGridPlacement:
    def test_all_gates_placed(self, c17):
        place = GridPlacement.from_circuit(c17)
        for gate in c17.gates():
            x, y = place.position_of(gate.output)
            assert 0.0 <= x < 1.0
            assert 0.0 <= y <= 1.0

    def test_levels_map_to_x(self, c17):
        place = GridPlacement.from_circuit(c17)
        x10, _ = place.position_of("10")  # level 1
        x22, _ = place.position_of("22")  # level 3
        assert x10 < x22

    def test_unknown_gate(self, c17):
        place = GridPlacement.from_circuit(c17)
        with pytest.raises(TimingError):
            place.position_of("ghost")

    def test_distance_symmetric(self, c17):
        place = GridPlacement.from_circuit(c17)
        assert place.distance("10", "22") == place.distance("22", "10")
        assert place.distance("10", "10") == 0.0


class TestQuadTreeModel:
    def test_invalid_params(self):
        with pytest.raises(TimingError):
            QuadTreeCorrelation(levels=0)
        with pytest.raises(TimingError):
            QuadTreeCorrelation(rho=1.5)

    def test_region_indexing(self):
        model = QuadTreeCorrelation()
        assert model.region_index(0.1, 0.1, 1) == 0
        assert model.region_index(0.9, 0.1, 1) == 1
        assert model.region_index(0.1, 0.9, 1) == 2
        assert model.region_index(0.9, 0.9, 1) == 3

    def test_self_correlation_is_one(self, c17):
        place = GridPlacement.from_circuit(c17)
        model = QuadTreeCorrelation(rho=0.5)
        assert model.correlation_between(place, "10", "10") == 1.0

    def test_correlation_decays_with_distance(self):
        place = GridPlacement(positions={
            "a": (0.10, 0.10), "b": (0.12, 0.12), "far": (0.95, 0.95),
        })
        model = QuadTreeCorrelation(levels=3, rho=0.6)
        near = model.correlation_between(place, "a", "b")
        far = model.correlation_between(place, "a", "far")
        assert near > far
        assert near == pytest.approx(0.6)  # same region at every level
        assert far == pytest.approx(0.0)

    def test_sampled_deviations_unit_variance(self, rng):
        place = GridPlacement(positions={"a": (0.2, 0.2), "b": (0.8, 0.8)})
        model = QuadTreeCorrelation(levels=2, rho=0.5)
        z = model.sample_deviations(rng, place, ["a", "b"], 40000)
        assert z.shape == (2, 40000)
        assert z.std(axis=1) == pytest.approx([1.0, 1.0], abs=0.03)
        assert z.mean(axis=1) == pytest.approx([0.0, 0.0], abs=0.03)

    def test_sampled_correlation_matches_model(self, rng):
        place = GridPlacement(positions={
            "a": (0.1, 0.1), "b": (0.15, 0.12), "far": (0.9, 0.9),
        })
        model = QuadTreeCorrelation(levels=3, rho=0.6)
        z = model.sample_deviations(rng, place, ["a", "b", "far"], 60000)
        emp_near = np.corrcoef(z[0], z[1])[0, 1]
        emp_far = np.corrcoef(z[0], z[2])[0, 1]
        assert emp_near == pytest.approx(
            model.correlation_between(place, "a", "b"), abs=0.03
        )
        assert emp_far == pytest.approx(0.0, abs=0.03)

    def test_rho_zero_is_independent(self, rng):
        place = GridPlacement(positions={"a": (0.1, 0.1), "b": (0.11, 0.1)})
        model = QuadTreeCorrelation(levels=3, rho=0.0)
        z = model.sample_deviations(rng, place, ["a", "b"], 50000)
        assert abs(np.corrcoef(z[0], z[1])[0, 1]) < 0.03


class TestCorrelatedMonteCarlo:
    def test_runs_and_reproducible(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        corr = QuadTreeCorrelation(levels=2, rho=0.5)
        a = run_monte_carlo_correlated(graph, model, corr, n_samples=400, seed=4)
        b = run_monte_carlo_correlated(graph, model, corr, n_samples=400, seed=4)
        assert np.array_equal(a.samples, b.samples)

    def test_rho_zero_statistics_match_independent(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        corr = QuadTreeCorrelation(levels=2, rho=0.0)
        dep = run_monte_carlo_correlated(graph, model, corr, n_samples=8000, seed=1)
        ind = run_monte_carlo(graph, model, n_samples=8000, seed=2)
        assert dep.mean() == pytest.approx(ind.mean(), rel=0.02)
        assert dep.std() == pytest.approx(ind.std(), rel=0.15)

    def test_correlation_widens_circuit_delay_spread(self, library, fast_config):
        """Fully correlated variation cannot average out across a path,
        so the circuit-delay sigma grows with rho."""
        from repro.netlist.benchmarks import load

        circuit = load("c432", scale=0.3)
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=fast_config)
        lo = run_monte_carlo_correlated(
            graph, model, QuadTreeCorrelation(levels=2, rho=0.0),
            n_samples=4000, seed=3,
        )
        hi = run_monte_carlo_correlated(
            graph, model, QuadTreeCorrelation(levels=2, rho=0.9),
            n_samples=4000, seed=3,
        )
        assert hi.std() > lo.std() * 1.3

    def test_marginals_respect_truncation(self, c17, library, fast_config):
        from repro.timing.sta import run_sta

        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        corr = QuadTreeCorrelation(levels=2, rho=0.7)
        mc = run_monte_carlo_correlated(graph, model, corr, n_samples=4000, seed=5)
        nominal = run_sta(graph, model).circuit_delay
        # 3-sigma, 10% sigma: samples within +-30% of nominal paths.
        assert mc.samples.max() <= nominal * 1.3 + 1e-6

    def test_invalid_sample_count(self, c17, library, fast_config):
        graph = TimingGraph(c17)
        model = DelayModel(c17, library, fast_config)
        with pytest.raises(TimingError):
            run_monte_carlo_correlated(
                graph, model, QuadTreeCorrelation(), n_samples=0
            )
