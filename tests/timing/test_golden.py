"""Golden-regression and cross-backend harness for the timing engines.

Two protections layered together:

* **Golden files** (``tests/timing/golden/*.json``) lock the c17,
  c432, c880, and c1908 sink statistics at their recorded values.  Any
  change to the kernels, the variation model, or the mass accounting
  that moves a sink percentile shows up here first — including an
  accidental change of the default backend's numerics, since ``auto``
  must reproduce the direct goldens *bitwise* at default-grid sizes,
  any divergence of the level-batched scheduler, since batched and
  sequential propagation must reproduce the goldens (and each other)
  bitwise under every backend, cache on and off, and any divergence of
  the sharded-parallel execution plan, since ``jobs=2``/``jobs=4``
  must reproduce the serial arrivals bitwise with jobs-invariant
  tallies (``TestParallelGolden``).
* **Cross-backend reruns** drive the existing engine contracts (SSTA
  vs Monte Carlo, incremental-vs-full bitwise equality, pruned-vs-
  brute-force exactness) under every convolution backend via the
  ``backend_config`` fixture, so a backend cannot pass the kernel
  tests yet corrupt an engine that threads it differently.

The Figure-10 gate here is the acceptance bar: the c432 SSTA p99 must
stay within the paper's <1% of a 10k-sample Monte Carlo under *every*
backend.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.config import AnalysisConfig
from repro.core.brute_force_sizer import BruteForceStatisticalSizer
from repro.core.heuristic_sizer import HeuristicStatisticalSizer
from repro.core.pruned_sizer import PrunedStatisticalSizer
from repro.dist.cache import ConvolutionCache
from repro.dist.ops import OpCounter
from repro.netlist.benchmarks import load
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.incremental import update_ssta_after_resize
from repro.timing.monte_carlo import run_monte_carlo
from repro.timing.ssta import run_ssta

GOLDEN_DIR = Path(__file__).parent / "golden"
#: Circuits with full-SSTA sink goldens (default grid).
GOLDEN_CIRCUITS = ("c17", "c432", "c880", "c1908")
#: Circuits with sizer-trajectory goldens (coarse grid; the larger two
#: would cost minutes per variant for no additional coverage of the
#: optimizer logic).
SIZER_GOLDEN_CIRCUITS = ("c17", "c432")

#: direct and auto must reproduce the goldens to round-off of the
#: recorded decimal literals; fft carries ~1e-15 relative kernel error
#: per convolution, far below a picosecond after hundreds of ops.
PERCENTILE_TOL = {
    "direct": 1e-9,
    "auto": 1e-9,
    "fft": 1e-6,
    # The compiled tier is a 1e-12-TV class like fft (sequential
    # instead of pairwise reductions); degraded it *is* direct, which
    # the same tolerance also covers.
    "compiled": 1e-6,
    "compiled-auto": 1e-6,
}


def golden(circuit: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{circuit}.json").read_text())


def ssta_for(circuit_name: str, config: AnalysisConfig):
    circuit = load(circuit_name)
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=config)
    return run_ssta(graph, model, config=config), graph, model


class TestGoldenSinkStatistics:
    @pytest.mark.parametrize("circuit", GOLDEN_CIRCUITS)
    def test_sink_percentiles_locked(self, circuit, backend_config, backend):
        gold = golden(circuit)
        assert gold["dt"] == backend_config.dt
        result, _, _ = ssta_for(circuit, backend_config)
        sink = result.sink_pdf
        tol = PERCENTILE_TOL[backend]
        assert sink.mean() == pytest.approx(gold["mean"], abs=tol)
        assert sink.std() == pytest.approx(gold["std"], abs=tol)
        assert sink.percentile(0.50) == pytest.approx(gold["p50"], abs=tol)
        assert sink.percentile(0.90) == pytest.approx(gold["p90"], abs=tol)
        assert sink.percentile(0.99) == pytest.approx(gold["p99"], abs=tol)

    @pytest.mark.parametrize("circuit", GOLDEN_CIRCUITS)
    def test_auto_reproduces_direct_bitwise(self, circuit):
        """At default-grid sizes auto *is* direct — not merely close."""
        direct, _, _ = ssta_for(circuit, AnalysisConfig(backend="direct"))
        auto, _, _ = ssta_for(circuit, AnalysisConfig(backend="auto"))
        for pd, pa in zip(direct.arrivals, auto.arrivals):
            assert pd.offset == pa.offset
            assert np.array_equal(pd.masses, pa.masses)

    @pytest.mark.parametrize("circuit", GOLDEN_CIRCUITS)
    def test_op_counts_locked_and_backend_invariant(
        self, circuit, backend_config
    ):
        gold = golden(circuit)
        result, _, _ = ssta_for(circuit, backend_config)
        assert result.counter.convolutions == gold["convolutions"]
        assert result.counter.max_ops == gold["max_ops"]

    @pytest.mark.parametrize("circuit", GOLDEN_CIRCUITS)
    def test_sink_bin_count_locked(self, circuit, backend_config, backend):
        gold = golden(circuit)
        result, _, _ = ssta_for(circuit, backend_config)
        if backend == "fft":
            # FFT may strip sub-resolution boundary bins; the support
            # stays within one grid step of the golden one.
            assert abs(result.sink_pdf.n_bins - gold["n_bins"]) <= 2
        else:
            assert result.sink_pdf.n_bins == gold["n_bins"]

    @pytest.mark.parametrize("cache", [None, 4096])
    @pytest.mark.parametrize("circuit", GOLDEN_CIRCUITS)
    def test_batched_equals_sequential_equals_golden(
        self, circuit, backend_config, backend, cache
    ):
        """The PR-4 acceptance gate: level-batched == sequential,
        bitwise, on every golden circuit under every backend with the
        cache on and off — and both reproduce the golden percentiles.
        Fresh cache instances per mode so neither run warms the other.
        """
        gold = golden(circuit)
        results = {}
        for level_batch in (True, False):
            cfg = backend_config.with_updates(
                level_batch=level_batch,
                cache=None if cache is None else ConvolutionCache(cache),
            )
            results[level_batch], _, _ = ssta_for(circuit, cfg)
        for pb, ps in zip(results[True].arrivals, results[False].arrivals):
            assert pb.offset == ps.offset
            assert np.array_equal(pb.masses, ps.masses)
        sink = results[True].sink_pdf
        tol = PERCENTILE_TOL[backend]
        assert sink.percentile(0.50) == pytest.approx(gold["p50"], abs=tol)
        assert sink.percentile(0.99) == pytest.approx(gold["p99"], abs=tol)


#: Serial (jobs=1) reference runs for the parallel golden gate, built
#: once per (circuit, backend, cache on/off) — the parallel variants
#: only need something bitwise to diff against.
_SERIAL_REFS: dict = {}


def _serial_reference(circuit, backend, cached):
    key = (circuit, backend, cached)
    ref = _SERIAL_REFS.get(key)
    if ref is None:
        cfg = AnalysisConfig(
            backend=backend,
            cache=ConvolutionCache(4096) if cached else None,
        )
        result, _, _ = ssta_for(circuit, cfg)
        ref = _SERIAL_REFS[key] = result
    return ref


@pytest.fixture(scope="module")
def forced_shm_dispatch():
    """Zero the shm cost gate on the registry executors the parallel
    goldens resolve, so the ``shm`` leg genuinely ships arena refs
    (default-grid ISCAS levels are otherwise folded inline as not
    worth a round trip).  Restored on module teardown."""
    from repro.exec import get_executor

    saved = {}
    for jobs in (2, 4):
        ex = get_executor(jobs, "shm")
        saved[jobs] = ex.min_dispatch_cost_us
        ex.min_dispatch_cost_us = 0.0
    yield
    for jobs, gate in saved.items():
        get_executor(jobs, "shm").min_dispatch_cost_us = gate


class TestParallelGolden:
    """The PR-5/PR-7 acceptance gate: ``jobs=2`` and ``jobs=4``
    reproduce the ``jobs=1`` arrivals bitwise on every golden circuit,
    under every backend, cache on and off, over **both** operand
    transports (the shared-memory arena with its cost gate forced
    open, and the pickle wire format) — and the computed OpCounter
    tallies are jobs- and transport-invariant (the golden-locked
    counts, exactly)."""

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    @pytest.mark.parametrize("jobs", [2, 4])
    @pytest.mark.parametrize("cached", [False, True])
    @pytest.mark.parametrize("circuit", GOLDEN_CIRCUITS)
    def test_parallel_reproduces_serial_bitwise(
        self, circuit, backend_config, backend, cached, jobs, transport,
        forced_shm_dispatch,
    ):
        gold = golden(circuit)
        cfg = backend_config.with_updates(
            jobs=jobs,
            transport=transport,
            cache=ConvolutionCache(4096) if cached else None,
        )
        result, _, _ = ssta_for(circuit, cfg)
        ref = _serial_reference(circuit, backend, cached)
        for pp, ps in zip(result.arrivals, ref.arrivals):
            assert pp.offset == ps.offset
            assert np.array_equal(pp.masses, ps.masses)
        # Tallies are jobs-invariant (computed *and* hits); cache-off
        # computed counts additionally match the golden-locked values.
        assert (
            result.counter.convolutions,
            result.counter.max_ops,
            result.counter.convolve_cache_hits,
            result.counter.max_cache_hits,
        ) == (
            ref.counter.convolutions,
            ref.counter.max_ops,
            ref.counter.convolve_cache_hits,
            ref.counter.max_cache_hits,
        )
        if not cached:
            assert result.counter.convolutions == gold["convolutions"]
            assert result.counter.max_ops == gold["max_ops"]
        sink = result.sink_pdf
        tol = PERCENTILE_TOL[backend]
        assert sink.percentile(0.50) == pytest.approx(gold["p50"], abs=tol)
        assert sink.percentile(0.99) == pytest.approx(gold["p99"], abs=tol)


SIZER_CLASSES = {
    "pruned-statistical": PrunedStatisticalSizer,
    "heuristic-statistical": HeuristicStatisticalSizer,
}

#: Cache variants every sizer-golden case runs under; a tiny third
#: capacity forces eviction churn mid-run.
CACHE_VARIANTS = {
    "cache-off": lambda: None,
    "cache-on": lambda: ConvolutionCache(),
    "cache-tiny": lambda: ConvolutionCache(capacity=64),
}


def run_sizer(circuit_name: str, optimizer: str, cache):
    gold = golden(f"sizer_{circuit_name}")
    cfg = AnalysisConfig(
        dt=gold["dt"], delta_w=gold["delta_w"], cache=cache
    )
    kwargs = {}
    if optimizer == "heuristic-statistical":
        kwargs["beam_width"] = gold["beam_width"]
    circuit = load(circuit_name)
    result = SIZER_CLASSES[optimizer](
        circuit, config=cfg, max_iterations=gold["max_iterations"], **kwargs
    ).run()
    return result, circuit, gold["optimizers"][optimizer]


class TestSizerGoldenOutcomes:
    """The optimizer's *answers* locked at their recorded values.

    Selections, sensitivities, final widths, and the final p99 must be
    exactly the golden ones whether the convolution-result cache is
    off, on, or thrashing at a tiny capacity — a broken cache key that
    changed any decision (or any numeric outcome) fails here with the
    full trajectory diff.  Float comparisons are exact on purpose: JSON
    round-trips Python floats losslessly, and cache hits promise
    bit-identical results, not close ones.
    """

    @pytest.mark.parametrize("circuit", SIZER_GOLDEN_CIRCUITS)
    @pytest.mark.parametrize("optimizer", sorted(SIZER_CLASSES))
    @pytest.mark.parametrize("variant", sorted(CACHE_VARIANTS))
    def test_outcomes_match_golden(self, circuit, optimizer, variant):
        result, sized, gold = run_sizer(
            circuit, optimizer, CACHE_VARIANTS[variant]()
        )
        assert [list(s.all_gates) for s in result.steps] == gold[
            "selected_gates"
        ]
        assert [s.sensitivity for s in result.steps] == gold["sensitivities"]
        assert sized.widths() == gold["final_widths"]
        assert result.final_objective == gold["final_p99"]
        assert result.initial_objective == gold["initial_p99"]
        assert result.stop_reason == gold["stop_reason"]

    @pytest.mark.parametrize("optimizer", sorted(SIZER_CLASSES))
    def test_cache_on_equals_cache_off_trajectories(self, optimizer):
        """Beyond matching the golden snapshot: the full step records
        of cached and uncached runs agree field by field."""
        off, _, _ = run_sizer("c17", optimizer, None)
        on, _, _ = run_sizer("c17", optimizer, ConvolutionCache())
        assert len(off.steps) == len(on.steps)
        for a, b in zip(off.steps, on.steps):
            assert a.all_gates == b.all_gates
            assert a.sensitivity == b.sensitivity
            assert a.objective_before == b.objective_before
            assert a.objective_after == b.objective_after
            assert a.total_size == b.total_size
        assert off.final_objective == on.final_objective

    def test_cached_run_actually_hits(self):
        """Guard against a silently dead cache: the pruned run must
        serve a meaningful share of kernel requests from the memo."""
        cache = ConvolutionCache()
        result, _, _ = run_sizer("c17", "pruned-statistical", cache)
        assert result.cache_hits > 0
        assert result.cache_hit_rate > 0.2
        # One whole-node memo hit stands in for several kernel requests
        # on the counter, so the cache's own lookup tally is smaller —
        # but it must show life too.
        assert cache.stats.hits > 0


class TestFigure10ValidationPerBackend:
    def test_c432_p99_within_paper_gap_of_monte_carlo(self, backend_config):
        """Acceptance gate: bound-vs-MC < 1% at p99 under every backend
        (paper Section 4 / Figure 10)."""
        result, graph, model = ssta_for("c432", backend_config)
        mc = run_monte_carlo(
            graph, model, n_samples=10_000, seed=0, config=backend_config
        )
        ssta_p99 = result.percentile(0.99)
        mc_p99 = mc.percentile(0.99)
        gap_pct = 100.0 * abs(ssta_p99 - mc_p99) / mc_p99
        assert ssta_p99 >= mc_p99  # the SSTA max is an upper bound
        assert gap_pct < 1.0


class TestCrossBackendEngineContracts:
    def test_incremental_update_matches_full_rerun_bitwise(
        self, backend_config
    ):
        """The incremental engine's wave cutoff relies on bitwise
        equality — it must hold under each backend."""
        circuit = load("c17")
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=backend_config)
        base = run_ssta(graph, model, config=backend_config)
        gate = circuit.topo_gates()[1]
        gate.width += 1.0
        update_ssta_after_resize(base, model, [gate])
        fresh = run_ssta(graph, model, config=backend_config)
        for upd, ref in zip(base.arrivals, fresh.arrivals):
            assert upd.offset == ref.offset
            assert np.array_equal(upd.masses, ref.masses)

    def test_pruned_equals_brute_force_per_backend(self, fast_backend_config):
        """Section 4's headline exactness claim, re-proven per backend:
        identical selections, sensitivities, and objectives."""
        bf = BruteForceStatisticalSizer(
            load("c17"), config=fast_backend_config, max_iterations=4
        ).run()
        pr = PrunedStatisticalSizer(
            load("c17"), config=fast_backend_config, max_iterations=4
        ).run()
        assert [s.gate for s in bf.steps] == [s.gate for s in pr.steps]
        assert [s.sensitivity for s in bf.steps] == [
            s.sensitivity for s in pr.steps
        ]
        assert bf.final_objective == pr.final_objective

    def test_high_resolution_grid_cross_backend(self):
        """The regime the FFT backend exists for: a fine grid pushing
        arrival supports past the crossover.  Direct and FFT must agree
        on the sink CDF; auto must be usable end to end."""
        fine = {
            name: ssta_for("c17", AnalysisConfig(dt=0.05, backend=name))[0]
            for name in ("direct", "fft", "auto", "compiled",
                         "compiled-auto")
        }
        sink_d = fine["direct"].sink_pdf
        assert sink_d.n_bins > 512  # actually beyond the crossover
        for name in ("fft", "auto", "compiled", "compiled-auto"):
            sink = fine[name].sink_pdf
            assert sink_d.tv_distance(sink) < 1e-9
            for p in (0.5, 0.9, 0.99):
                assert sink.percentile(p) == pytest.approx(
                    sink_d.percentile(p), abs=1e-6
                )

    def test_criticality_inherits_backward_pass_backend(
        self, backend_config, backend
    ):
        """Criticality queries default to the kernel the backward pass
        ran under — no silent backend mixing within one analysis."""
        from repro.timing.criticality import (
            criticality_report,
            run_backward_ssta,
        )

        forward, graph, model = ssta_for("c17", backend_config)
        backward = run_backward_ssta(graph, model, config=backend_config)
        assert backward.backend.name == backend
        rows = criticality_report(forward, backward, top_k=6)
        assert rows and all(0.0 <= r.criticality <= 1.0 for r in rows)

    def test_monte_carlo_is_backend_invariant(self, backend_config):
        mc = run_monte_carlo(
            *ssta_for("c17", backend_config)[1:],
            n_samples=500,
            seed=7,
            config=backend_config,
        )
        ref = run_monte_carlo(
            *ssta_for("c17", AnalysisConfig(backend="direct"))[1:],
            n_samples=500,
            seed=7,
        )
        assert np.array_equal(mc.samples, ref.samples)
