"""Sparse-grid PDF storage: round-trip, accuracy budget, engine parity.

Locks the contract of :mod:`repro.dist.sparse` from three directions:

* **Representation** — masking keeps the boundary bins (offset/support
  arithmetic), drops at most ``eps`` total mass, round-trips bitwise at
  ``eps = 0``, and actually shrinks storage on masked vectors;
* **Kernels** — every public ops entry point accepts sparse operands
  (densify-on-entry) and reproduces the dense computation bitwise when
  nothing was dropped;
* **Engines** — ``AnalysisConfig(sparse_eps=...)`` stores arrivals
  sparsely in forward/backward/incremental SSTA under every backend and
  both execution modes, with sink statistics within the 1e-12
  total-variation budget of the dense analysis on the golden circuits
  (Hypothesis sweeps the budget; the goldens pin the default).
"""

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AnalysisConfig
from repro.dist.ops import (
    convolve,
    convolve_many,
    stat_max,
    stat_max_groups,
    stat_max_many,
)
from repro.dist.pdf import DiscretePDF
from repro.dist.sparse import SparseDiscretePDF, as_dense, sparsify
from repro.errors import DistributionError
from repro.netlist.benchmarks import load
from repro.timing.criticality import criticality_report, run_backward_ssta
from repro.timing.delay_model import DelayModel
from repro.timing.graph import TimingGraph
from repro.timing.incremental import update_ssta_after_resize
from repro.timing.ssta import run_ssta

from tests.conftest import ALL_BACKENDS

GOLDEN_DIR = Path(__file__).parent.parent / "timing" / "golden"
GOLDEN_CIRCUITS = ("c17", "c432", "c880", "c1908")

#: Working sparsification budget: far below analysis precision, still
#: dropping the (numerically zero) bin floor wide-support arrivals
#: accumulate.
WORKING_EPS = 1e-16


@st.composite
def pdfs(draw, max_bins: int = 48):
    n = draw(st.integers(min_value=1, max_value=max_bins))
    raw = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    if sum(raw) <= 0.0:
        raw = [r + 1.0 for r in raw]
    offset = draw(st.integers(min_value=-50, max_value=50))
    return DiscretePDF(2.0, offset, np.asarray(raw))


class TestRepresentation:
    def test_zero_eps_round_trip_is_bitwise(self):
        pdf = DiscretePDF(2.0, 5, np.array([0.25, 0.0, 0.5, 0.0, 0.25]))
        sp = SparseDiscretePDF.from_dense(pdf, 0.0)
        back = sp.to_dense()
        assert back.offset == pdf.offset
        assert back.dt == pdf.dt
        assert np.array_equal(back.masses, pdf.masses)
        # Interior exact zeros were dropped from storage.
        assert sp.kept_bins == 3

    def test_boundary_bins_always_survive(self):
        # Tiny boundary bins sit below any positive threshold but must
        # survive so offset and support stay exact.
        masses = np.array([1e-30, 0.5, 0.5, 1e-30])
        pdf = DiscretePDF(2.0, -3, masses)
        sp = SparseDiscretePDF.from_dense(pdf, 1e-6)
        assert sp.offset == pdf.offset
        assert sp.n_bins == pdf.n_bins
        back = sp.to_dense()
        assert back.offset == pdf.offset
        assert back.n_bins == pdf.n_bins
        assert back.support == pdf.support

    def test_masking_drops_at_most_eps(self):
        rng = np.random.default_rng(7)
        masses = rng.random(200)
        masses[rng.random(200) < 0.6] *= 1e-18
        pdf = DiscretePDF(2.0, 0, masses)
        for eps in (1e-15, 1e-9, 1e-4):
            sp = SparseDiscretePDF.from_dense(pdf, eps)
            assert sp.dropped_mass <= eps + 1e-15
            assert pdf.tv_distance(sp.to_dense()) <= eps

    def test_storage_shrinks_on_masked_vectors(self):
        masses = np.full(1000, 1e-19)
        masses[490:510] = 0.05
        pdf = DiscretePDF(2.0, 0, masses)
        sp = SparseDiscretePDF.from_dense(pdf, 1e-12)
        assert sp.kept_bins < 30
        assert sp.nbytes < pdf.masses.nbytes / 4
        # One central run plus the two forced boundary bins.
        assert sp.starts.size <= 3

    def test_query_delegation(self):
        pdf = DiscretePDF(2.0, 10, np.array([0.2, 0.3, 0.5]))
        sp = SparseDiscretePDF.from_dense(pdf, 0.0)
        assert sp.mean() == pdf.mean()
        assert sp.std() == pdf.std()
        assert sp.percentile(0.9) == pdf.percentile(0.9)
        assert sp.cdf_at(24.0) == pdf.cdf_at(24.0)
        assert sp.support == pdf.support
        assert sp.tv_distance(pdf) == 0.0

    def test_sparsify_idempotent_and_as_dense_passthrough(self):
        pdf = DiscretePDF(2.0, 0, np.array([0.5, 0.5]))
        sp = sparsify(pdf, 0.0)
        assert sparsify(sp, 0.0) is sp
        assert as_dense(pdf) is pdf
        dense = as_dense(sp)
        assert isinstance(dense, DiscretePDF)
        assert np.array_equal(dense.masses, pdf.masses)

    def test_to_dense_is_deterministic(self):
        pdf = DiscretePDF(2.0, 0, np.linspace(1e-20, 1.0, 64))
        sp = SparseDiscretePDF.from_dense(pdf, 1e-9)
        a, b = sp.to_dense(), sp.to_dense()
        assert a.offset == b.offset
        assert np.array_equal(a.masses, b.masses)

    def test_negative_eps_rejected(self):
        pdf = DiscretePDF(2.0, 0, np.array([1.0]))
        with pytest.raises(DistributionError):
            SparseDiscretePDF.from_dense(pdf, -1e-9)

    @settings(max_examples=120, deadline=None)
    @given(pdf=pdfs(), eps=st.floats(min_value=0.0, max_value=1e-4))
    def test_round_trip_within_budget(self, pdf, eps):
        sp = SparseDiscretePDF.from_dense(pdf, eps)
        back = sp.to_dense()
        assert back.offset == pdf.offset
        assert back.n_bins == pdf.n_bins
        # eps of masked mass plus the machine-precision renormalization
        # term (one rounding per bin when mass was actually dropped).
        assert pdf.tv_distance(back) <= eps + 1e-15

    @settings(max_examples=60, deadline=None)
    @given(pdf=pdfs())
    def test_zero_eps_round_trip_bitwise_property(self, pdf):
        back = SparseDiscretePDF.from_dense(pdf, 0.0).to_dense()
        assert back.offset == pdf.offset
        assert np.array_equal(back.masses, pdf.masses)


class TestKernelEntryPoints:
    """Sparse operands densify on entry: lossless sparse forms must
    reproduce the dense kernel results bitwise at every public entry."""

    @settings(max_examples=40, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_convolve_accepts_sparse(self, a, b):
        want = convolve(a, b)
        got = convolve(sparsify(a, 0.0), sparsify(b, 0.0))
        assert got.offset == want.offset
        assert np.array_equal(got.masses, want.masses)

    @settings(max_examples=40, deadline=None)
    @given(a=pdfs(), b=pdfs(), c=pdfs())
    def test_max_entries_accept_sparse(self, a, b, c):
        want = stat_max_many([a, b, c])
        got = stat_max_many([sparsify(a, 0.0), b, sparsify(c, 0.0)])
        assert got.offset == want.offset
        assert np.array_equal(got.masses, want.masses)
        w2 = stat_max(a, b)
        g2 = stat_max(sparsify(a, 0.0), sparsify(b, 0.0))
        assert np.array_equal(g2.masses, w2.masses)

    def test_batched_entries_accept_sparse(self):
        rng = np.random.default_rng(3)
        ps = [DiscretePDF(2.0, i, rng.random(8) + 1e-3) for i in range(6)]
        pairs = [(ps[0], ps[1]), (ps[2], ps[3])]
        want = convolve_many(pairs)
        got = convolve_many(
            [(sparsify(a, 0.0), sparsify(b, 0.0)) for a, b in pairs]
        )
        for w, g in zip(want, got):
            assert g.offset == w.offset
            assert np.array_equal(g.masses, w.masses)
        groups = [[ps[0], ps[1], ps[2]], [ps[3]], [ps[4], ps[5]]]
        want_g = stat_max_groups(groups)
        got_g = stat_max_groups(
            [[sparsify(p, 0.0) for p in g] for g in groups]
        )
        for w, g in zip(want_g, got_g):
            assert g.offset == w.offset
            assert np.array_equal(g.masses, w.masses)

    def test_single_operand_group_densifies(self):
        pdf = DiscretePDF(2.0, 0, np.array([0.5, 0.25, 0.25]))
        out = stat_max_many([sparsify(pdf, 0.0)])
        assert isinstance(out, DiscretePDF)
        assert np.array_equal(out.masses, pdf.masses)


class TestConfigKnob:
    def test_defaults_and_validation(self):
        assert AnalysisConfig().sparse_eps == 0.0
        assert AnalysisConfig(sparse_eps=1e-16).sparse_eps == 1e-16
        for bad in (-1e-12, 1e-3, 0.5, float("nan")):
            with pytest.raises(ValueError):
                AnalysisConfig(sparse_eps=bad)

    def test_zero_eps_is_bitwise_inert(self):
        circuit = load("c17")
        graph = TimingGraph(circuit)
        cfg = AnalysisConfig()
        model = DelayModel(circuit, config=cfg)
        plain = run_ssta(graph, model, config=cfg)
        explicit = run_ssta(
            graph, model, config=cfg.with_updates(sparse_eps=0.0)
        )
        for a, b in zip(plain.arrivals, explicit.arrivals):
            assert isinstance(b, DiscretePDF)
            assert np.array_equal(a.masses, b.masses)


def _sparse_cfg(backend, level_batch, eps=WORKING_EPS):
    return AnalysisConfig(backend=backend, level_batch=level_batch,
                          sparse_eps=eps)


class TestEngineParity:
    """sparse_eps > 0 across every engine: sparse storage in place,
    golden sink statistics within the 1e-12 TV budget."""

    @pytest.mark.parametrize("level_batch", [True, False])
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("circuit", GOLDEN_CIRCUITS)
    def test_forward_sink_within_budget(self, circuit, backend, level_batch):
        c = load(circuit)
        graph = TimingGraph(c)
        cfg = _sparse_cfg(backend, level_batch)
        model = DelayModel(c, config=cfg)
        dense_cfg = cfg.with_updates(sparse_eps=0.0)
        dense = run_ssta(graph, model, config=dense_cfg)
        sparse = run_ssta(graph, model, config=cfg)
        stored = [p for p in sparse.arrivals
                  if isinstance(p, SparseDiscretePDF)]
        assert len(stored) >= graph.n_nodes - 2  # source delta stays dense
        assert dense.sink_pdf.tv_distance(sparse.sink_pdf) <= 1e-12
        gold = json.loads((GOLDEN_DIR / f"{circuit}.json").read_text())
        # The golden percentiles hold at analysis precision.
        assert sparse.percentile(0.99) == pytest.approx(gold["p99"], abs=1e-6)
        assert sparse.sink_pdf.mean() == pytest.approx(gold["mean"], abs=1e-6)

    @pytest.mark.parametrize("level_batch", [True, False])
    def test_backward_and_criticality_within_budget(self, level_batch):
        c = load("c432")
        graph = TimingGraph(c)
        cfg = _sparse_cfg("auto", level_batch)
        model = DelayModel(c, config=cfg)
        dense_cfg = cfg.with_updates(sparse_eps=0.0)
        fwd_d = run_ssta(graph, model, config=dense_cfg)
        bwd_d = run_backward_ssta(graph, model, config=dense_cfg)
        fwd_s = run_ssta(graph, model, config=cfg)
        bwd_s = run_backward_ssta(graph, model, config=cfg)
        assert any(isinstance(p, SparseDiscretePDF) for p in bwd_s.to_sink)
        for net in c.inputs[:5]:
            tv = bwd_d.to_sink_of_net(net).tv_distance(
                bwd_s.to_sink_of_net(net)
            )
            assert tv <= 1e-12
        top_d = [r.net for r in criticality_report(fwd_d, bwd_d, top_k=5)]
        top_s = [r.net for r in criticality_report(fwd_s, bwd_s, top_k=5)]
        assert top_d == top_s

    def test_incremental_update_stays_sparse_and_close(self):
        c = load("c432")
        graph = TimingGraph(c)
        cfg = _sparse_cfg("auto", True)
        model = DelayModel(c, config=cfg)
        result = run_ssta(graph, model, config=cfg)
        gate = c.gate(c.outputs[0])
        gate.width += model.config.delta_w
        n = update_ssta_after_resize(result, model, [gate])
        assert n >= 1
        fresh = run_ssta(graph, model, config=cfg)
        assert result.sink_pdf.tv_distance(fresh.sink_pdf) <= 1e-12
        assert any(
            isinstance(p, SparseDiscretePDF) for p in result.arrivals
        )
