"""Unit tests for the DiscretePDF value type."""

import numpy as np
import pytest

from repro.config import MAX_BINS
from repro.dist.pdf import DiscretePDF
from repro.errors import DistributionError


class TestConstruction:
    def test_normalizes_mass(self):
        pdf = DiscretePDF(1.0, 0, [2.0, 2.0])
        assert pdf.masses.sum() == pytest.approx(1.0)
        assert np.array_equal(pdf.masses, [0.5, 0.5])

    def test_positional_signature(self):
        pdf = DiscretePDF(2.0, 3, [1.0])
        assert pdf.dt == 2.0 and pdf.offset == 3 and pdf.n_bins == 1

    def test_rejects_bad_dt(self):
        with pytest.raises(DistributionError):
            DiscretePDF(0.0, 0, [1.0])
        with pytest.raises(DistributionError):
            DiscretePDF(-1.0, 0, [1.0])

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            DiscretePDF(1.0, 0, [])

    def test_rejects_negative_mass(self):
        with pytest.raises(DistributionError):
            DiscretePDF(1.0, 0, [0.5, -0.1])

    def test_rejects_zero_total(self):
        with pytest.raises(DistributionError):
            DiscretePDF(1.0, 0, [0.0, 0.0])

    def test_rejects_nan(self):
        with pytest.raises(DistributionError):
            DiscretePDF(1.0, 0, [0.5, float("nan")])

    def test_rejects_over_max_bins(self):
        with pytest.raises(DistributionError, match="MAX_BINS"):
            DiscretePDF(1.0, 0, np.ones(MAX_BINS + 1))

    def test_immutable(self):
        pdf = DiscretePDF(1.0, 0, [0.5, 0.5])
        with pytest.raises(Exception):
            pdf.masses[0] = 1.0
        with pytest.raises(Exception):
            pdf.dt = 2.0

    def test_does_not_mutate_caller_array(self):
        arr = np.array([0.5, 0.5])
        DiscretePDF(1.0, 0, arr)
        arr[0] = 0.25  # caller's array must stay writable
        assert arr[0] == 0.25


class TestConstructors:
    def test_delta(self):
        pdf = DiscretePDF.delta(2.0, 10.0)
        assert pdf.is_point_mass
        assert pdf.offset == 5
        assert pdf.mean() == pytest.approx(10.0)

    def test_delta_rounds_to_grid(self):
        assert DiscretePDF.delta(2.0, 10.9).offset == 5
        assert DiscretePDF.delta(2.0, 11.1).offset == 6

    def test_from_samples_moments(self, rng):
        samples = rng.normal(100.0, 10.0, 50_000)
        pdf = DiscretePDF.from_samples(1.0, samples)
        assert pdf.mean() == pytest.approx(samples.mean(), abs=0.5)
        assert pdf.std() == pytest.approx(samples.std(), rel=0.05)

    def test_from_samples_empty(self):
        with pytest.raises(DistributionError):
            DiscretePDF.from_samples(1.0, [])


class TestStructure:
    def test_times(self):
        pdf = DiscretePDF(2.0, 3, [0.25, 0.5, 0.25])
        assert np.array_equal(pdf.times, [6.0, 8.0, 10.0])

    def test_support(self):
        pdf = DiscretePDF(2.0, 3, [0.25, 0.5, 0.25])
        assert pdf.support == (6.0, 10.0)

    def test_shifted_bins(self):
        pdf = DiscretePDF(2.0, 3, [0.5, 0.5])
        moved = pdf.shifted_bins(4)
        assert moved.offset == 7
        assert np.array_equal(moved.masses, pdf.masses)
        assert pdf.shifted_bins(0) is pdf

    def test_shifted_time(self):
        pdf = DiscretePDF(2.0, 0, [1.0])
        assert pdf.shifted(7.9).offset == 4  # rounds to nearest bin


class TestMoments:
    def test_mean_two_point(self):
        pdf = DiscretePDF(1.0, 0, [0.5, 0.5])
        assert pdf.mean() == pytest.approx(0.5)

    def test_var_std(self):
        pdf = DiscretePDF(1.0, 0, [0.5, 0.5])
        assert pdf.var() == pytest.approx(0.25)
        assert pdf.std() == pytest.approx(0.5)

    def test_point_mass_zero_var(self):
        assert DiscretePDF.delta(1.0, 42.0).var() == 0.0


class TestCDFPercentile:
    def test_cdf_monotone(self):
        pdf = DiscretePDF(1.0, 0, [0.2, 0.3, 0.5])
        cdf = pdf.cdf()
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_cdf_at_outside_support(self):
        pdf = DiscretePDF(1.0, 10, [0.5, 0.5])
        assert pdf.cdf_at(5.0) == 0.0
        assert pdf.cdf_at(100.0) == 1.0  # exactly

    def test_percentile_validates(self):
        pdf = DiscretePDF(1.0, 0, [1.0])
        with pytest.raises(DistributionError):
            pdf.percentile(0.0)
        with pytest.raises(DistributionError):
            pdf.percentile(1.5)

    def test_percentile_cdf_roundtrip(self):
        pdf = DiscretePDF(1.0, 0, [0.1, 0.2, 0.4, 0.2, 0.1])
        for p in (0.15, 0.5, 0.9, 0.99):
            assert pdf.cdf_at(pdf.percentile(p)) == pytest.approx(p, abs=1e-12)

    def test_percentiles_vectorized(self):
        pdf = DiscretePDF(1.0, 0, [0.1, 0.2, 0.4, 0.2, 0.1])
        levels = np.array([0.25, 0.5, 0.75])
        vec = pdf.percentiles(levels)
        assert np.allclose(vec, [pdf.percentile(p) for p in levels])

    def test_percentile_monotone_in_p(self):
        pdf = DiscretePDF(1.0, 0, [0.3, 0.4, 0.3])
        qs = pdf.percentiles(np.linspace(0.01, 1.0, 50))
        assert np.all(np.diff(qs) >= 0)

    def test_percentile_one_is_support_end(self):
        pdf = DiscretePDF(2.0, 5, [0.5, 0.5])
        assert pdf.percentile(1.0) == pytest.approx(12.0)

    def test_percentile_plateau_takes_left_edge(self):
        """T(A, p) = inf{t : F(t) >= p}: a zero-mass interior bin makes
        a CDF plateau and the percentile must sit at its left edge."""
        pdf = DiscretePDF(1.0, 0, [0.5, 0.0, 0.5])
        assert pdf.percentile(0.5) == 0.0
        assert pdf.percentiles(np.array([0.5]))[0] == 0.0

    def test_from_samples_outlier_raises_not_oom(self):
        """A huge sample span must raise the diagnostic error before
        any allocation is attempted."""
        with pytest.raises(DistributionError, match="MAX_BINS"):
            DiscretePDF.from_samples(1e-6, [0.0, 1e7])


class TestTrimming:
    def test_noop_returns_self(self):
        pdf = DiscretePDF(1.0, 0, [0.25, 0.5, 0.25])
        assert pdf.trimmed(1e-9) is pdf

    def test_strips_exact_zero_tails(self):
        pdf = DiscretePDF(1.0, 0, [0.0, 0.5, 0.5, 0.0, 0.0])
        t = pdf.trimmed(0.0)
        assert t.offset == 1
        assert t.n_bins == 2

    def test_mass_preserving(self):
        masses = np.array([1e-12, 0.5, 0.5, 1e-12])
        pdf = DiscretePDF(1.0, 0, masses)
        t = pdf.trimmed(1e-9)
        assert t.n_bins == 2
        # Tail mass is lumped onto the boundary bins, not renormalized
        # away: totals and interior proportions survive bitwise.
        assert t.masses.sum() == pytest.approx(1.0, abs=1e-15)
        assert t.masses[0] == pytest.approx(pdf.masses[0] + pdf.masses[1])

    def test_idempotent(self):
        pdf = DiscretePDF(1.0, 0, [1e-12, 0.5, 0.5, 1e-12])
        once = pdf.trimmed(1e-9)
        assert once.trimmed(1e-9) is once

    def test_never_drops_everything(self):
        pdf = DiscretePDF(1.0, 0, [0.4, 0.6])
        t = pdf.trimmed(10.0)  # absurd eps: keep the heaviest bin
        assert t.n_bins == 1
        assert t.offset == 1

    def test_rejects_negative_eps(self):
        with pytest.raises(DistributionError):
            DiscretePDF(1.0, 0, [1.0]).trimmed(-1e-9)


class TestAllclose:
    def test_identical(self):
        a = DiscretePDF(1.0, 0, [0.5, 0.5])
        b = DiscretePDF(1.0, 0, [0.5, 0.5])
        assert a.allclose(b, atol=0.0)

    def test_different_offsets_compared_on_union_grid(self):
        a = DiscretePDF(1.0, 0, [1.0])
        b = DiscretePDF(1.0, 1, [1.0])
        assert not a.allclose(b, atol=0.5)

    def test_different_dt_never_close(self):
        a = DiscretePDF(1.0, 0, [1.0])
        b = DiscretePDF(2.0, 0, [1.0])
        assert not a.allclose(b, atol=1.0)
