"""Cached-vs-uncached equivalence harness for the kernel result cache.

The :class:`~repro.dist.cache.ConvolutionCache` promises *bitwise
transparency*: any sequence of kernel requests served through a cache
— whatever its capacity, however much eviction churn it suffers —
returns exactly the bits the uncached kernels would have produced.
These tests pin that promise under every backend with adversarial
operands (deltas, disjoint supports, repeated and translated operands,
mass-deficient cumulative sums), plus the batched ``convolve_many``
equivalence contract: bitwise against the looped path for every
shipped backend — ``direct`` by construction, ``fft`` via its runtime
row-bitwise probe (which falls back to the loop on builds whose
stacked transform is not row-bitwise).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AnalysisConfig
from repro.dist.backends import FFTBackend, available_backends, get_backend
from repro.dist.cache import (
    DEFAULT_CACHE_CAPACITY,
    CacheStats,
    ConvolutionCache,
)
from repro.dist.families import truncated_gaussian_pdf
from repro.dist.ops import OpCounter, convolve, convolve_many, stat_max_many
from repro.dist.pdf import DiscretePDF
from repro.errors import DistributionError

ALL_BACKENDS = available_backends()


@st.composite
def pdfs(draw, max_bins: int = 48, max_offset: int = 120):
    """Random trimmed PDFs, adversarial for mass accounting (masses
    spanning many decades leave cumulative sums shy of 1; ``n == 1``
    produces deltas; random offsets produce disjoint supports)."""
    n = draw(st.integers(min_value=1, max_value=max_bins))
    exponents = draw(
        st.lists(st.integers(min_value=-14, max_value=0), min_size=n, max_size=n)
    )
    mantissas = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    raw = [m * 10.0 ** e for m, e in zip(mantissas, exponents)]
    if sum(raw) <= 0.0:
        raw = [r + 1.0 for r in raw]
    offset = draw(st.integers(min_value=-max_offset, max_value=max_offset))
    pdf = DiscretePDF(2.0, offset, np.asarray(raw))
    trim = draw(st.sampled_from([0.0, 0.0, 1e-12, 1e-6]))
    return pdf.trimmed(trim)


def assert_bitwise(a: DiscretePDF, b: DiscretePDF) -> None:
    assert a.dt == b.dt
    assert a.offset == b.offset
    assert np.array_equal(a.masses, b.masses)


class TestCachedConvolveBitwise:
    @settings(max_examples=120, deadline=None)
    @given(a=pdfs(), b=pdfs(), trim=st.sampled_from([0.0, 1e-9, 1e-6]))
    def test_hit_is_bitwise_identical_per_backend(self, a, b, trim):
        for backend in ALL_BACKENDS:
            cache = ConvolutionCache(capacity=8)
            plain = convolve(a, b, trim_eps=trim, backend=backend)
            miss = convolve(a, b, trim_eps=trim, backend=backend, cache=cache)
            hit = convolve(a, b, trim_eps=trim, backend=backend, cache=cache)
            assert_bitwise(plain, miss)
            assert_bitwise(plain, hit)
            assert cache.stats.hits == 1 and cache.stats.misses == 1

    @settings(max_examples=60, deadline=None)
    @given(a=pdfs())
    def test_repeated_operand_squares(self, a):
        """convolve(a, a) — one operand appearing twice in the key."""
        cache = ConvolutionCache(capacity=4)
        for backend in ALL_BACKENDS:
            plain = convolve(a, a, backend=backend)
            for _ in range(2):
                assert_bitwise(
                    plain, convolve(a, a, backend=backend, cache=cache)
                )

    def test_identical_offsets_return_the_stored_object(self):
        """The O(1) fast path: same operands, same offsets — the hit is
        the very object the miss produced (immutable, shareable)."""
        rng = np.random.default_rng(7)
        a = DiscretePDF(2.0, 3, rng.random(40))
        b = DiscretePDF(2.0, -5, rng.random(25))
        cache = ConvolutionCache()
        first = convolve(a, b, trim_eps=1e-9, cache=cache)
        second = convolve(a, b, trim_eps=1e-9, cache=cache)
        assert second is first

    def test_translated_operands_hit_and_stay_bitwise(self):
        """Offsets are absent from the ADD key: a translated recurrence
        of the same mass vectors hits, and the replayed result matches
        the uncached convolution at the new offsets bit for bit."""
        rng = np.random.default_rng(8)
        raw_a, raw_b = rng.random(30), rng.random(20)
        a = DiscretePDF(2.0, 0, raw_a)
        b = DiscretePDF(2.0, 0, raw_b)
        cache = ConvolutionCache()
        convolve(a, b, trim_eps=1e-9, cache=cache)
        # Same raw vectors normalized identically, new offsets: content-
        # equal translations (shifted_bins would renormalize by the
        # stored sum and perturb the last ulp — a legitimate miss).
        a2 = DiscretePDF(2.0, 17, raw_a)
        b2 = DiscretePDF(2.0, -4, raw_b)
        plain = convolve(a2, b2, trim_eps=1e-9)
        cached = convolve(a2, b2, trim_eps=1e-9, cache=cache)
        assert cache.stats.hits == 1
        assert_bitwise(plain, cached)

    def test_deltas_and_disjoint_supports(self):
        delta = DiscretePDF.delta(2.0, 40.0)
        far = DiscretePDF(2.0, 100_000, np.random.default_rng(9).random(12))
        cache = ConvolutionCache()
        for backend in ALL_BACKENDS:
            plain = convolve(delta, far, backend=backend)
            convolve(delta, far, backend=backend, cache=cache)
            hit = convolve(delta, far, backend=backend, cache=cache)
            assert_bitwise(plain, hit)

    def test_distinct_equal_content_operands_hit(self):
        """Keys are content fingerprints, not object ids: a re-created
        equal-valued operand hits the original entry."""
        rng = np.random.default_rng(10)
        raw = rng.random(33)
        a1 = DiscretePDF(2.0, 2, raw.copy())
        b = DiscretePDF(2.0, 0, rng.random(15))
        cache = ConvolutionCache()
        first = convolve(a1, b, cache=cache)
        a2 = DiscretePDF(2.0, 2, raw.copy())
        second = convolve(a2, b, cache=cache)
        assert cache.stats.hits == 1
        assert second is first

    def test_trim_eps_and_backend_partition_the_key(self):
        rng = np.random.default_rng(11)
        a = DiscretePDF(2.0, 0, rng.random(700))
        b = DiscretePDF(2.0, 0, rng.random(700))
        cache = ConvolutionCache()
        convolve(a, b, trim_eps=0.0, backend="direct", cache=cache)
        convolve(a, b, trim_eps=1e-6, backend="direct", cache=cache)
        convolve(a, b, trim_eps=0.0, backend="fft", cache=cache)
        assert cache.stats.misses == 3 and cache.stats.hits == 0
        # and each variant now hits its own entry, bitwise-correctly
        d = convolve(a, b, trim_eps=0.0, backend="direct", cache=cache)
        f = convolve(a, b, trim_eps=0.0, backend="fft", cache=cache)
        assert cache.stats.hits == 2
        assert_bitwise(d, convolve(a, b, trim_eps=0.0, backend="direct"))
        assert_bitwise(f, convolve(a, b, trim_eps=0.0, backend="fft"))

    def test_same_named_foreign_backend_cannot_serve_entry(self):
        """Two distinct FFTBackend instances share a name; the entry
        verifier must treat the second as a miss, never serve bits
        computed under a different kernel object."""
        rng = np.random.default_rng(12)
        a = DiscretePDF(2.0, 0, rng.random(20))
        b = DiscretePDF(2.0, 0, rng.random(20))
        cache = ConvolutionCache()
        mine = FFTBackend()
        convolve(a, b, backend=mine, cache=cache)
        out = convolve(a, b, backend=FFTBackend(), cache=cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
        assert_bitwise(out, convolve(a, b, backend="fft"))


class TestCachedStatMaxBitwise:
    @settings(max_examples=80, deadline=None)
    @given(ops=st.lists(pdfs(max_bins=24), min_size=2, max_size=5))
    def test_hit_is_bitwise_identical(self, ops):
        cache = ConvolutionCache(capacity=8)
        plain = stat_max_many(ops, trim_eps=1e-9)
        miss = stat_max_many(ops, trim_eps=1e-9, cache=cache)
        hit = stat_max_many(ops, trim_eps=1e-9, cache=cache)
        assert_bitwise(plain, miss)
        assert_bitwise(plain, hit)
        assert hit is miss  # same anchor: the stored object comes back

    def test_relative_alignment_is_the_key(self):
        """Translating *all* operands together hits (same relative
        alignment) and replays bitwise at the new anchor; translating
        one operand alone is a different MAX and must miss."""
        rng = np.random.default_rng(13)
        raws = [rng.random(18) for _ in range(3)]
        ops = [DiscretePDF(2.0, 3 * i, raw) for i, raw in enumerate(raws)]
        cache = ConvolutionCache()
        stat_max_many(ops, cache=cache)
        together = [
            DiscretePDF(2.0, p.offset + 11, raw)
            for p, raw in zip(ops, raws)
        ]
        plain = stat_max_many(together)
        cached = stat_max_many(together, cache=cache)
        assert cache.stats.hits == 1
        assert_bitwise(plain, cached)
        skewed = [ops[0].shifted_bins(1), ops[1], ops[2]]
        stat_max_many(skewed, cache=cache)
        assert cache.stats.misses == 2  # the skewed call missed

    def test_single_operand_bypasses_the_cache(self):
        p = DiscretePDF(2.0, 0, np.random.default_rng(14).random(10))
        cache = ConvolutionCache()
        out = stat_max_many([p], trim_eps=0.0, cache=cache)
        assert out is p
        assert cache.stats.requests == 0


class TestEvictionChurn:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(pdfs(max_bins=16), min_size=4, max_size=7),
        capacity=st.integers(min_value=1, max_value=3),
    )
    def test_tiny_capacity_stays_bitwise(self, ops, capacity):
        """A thrashing cache loses hits, never correctness: every
        result under churn equals the uncached one bitwise."""
        cache = ConvolutionCache(capacity=capacity)
        for _round in range(2):
            for i in range(len(ops) - 1):
                plain = convolve(ops[i], ops[i + 1], trim_eps=1e-9)
                churned = convolve(
                    ops[i], ops[i + 1], trim_eps=1e-9, cache=cache
                )
                assert_bitwise(plain, churned)
        assert len(cache) <= capacity

    def test_lru_eviction_order_and_stats(self):
        rng = np.random.default_rng(15)
        mk = lambda seed_row: DiscretePDF(2.0, 0, rng.random(8) + 0.01)
        a, b, c, d = (mk(i) for i in range(4))
        cache = ConvolutionCache(capacity=2)
        convolve(a, b, cache=cache)  # entry 1
        convolve(a, c, cache=cache)  # entry 2
        convolve(a, b, cache=cache)  # touch entry 1 (now MRU)
        convolve(a, d, cache=cache)  # evicts entry 2 (LRU)
        assert cache.stats.evictions == 1
        convolve(a, b, cache=cache)  # still cached
        assert cache.stats.hits == 2
        convolve(a, c, cache=cache)  # was evicted: a miss again
        assert cache.stats.misses == 4

    def test_clear_drops_entries_keeps_stats(self):
        rng = np.random.default_rng(16)
        a = DiscretePDF(2.0, 0, rng.random(10))
        cache = ConvolutionCache()
        convolve(a, a, cache=cache)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1
        cache.stats.reset()
        assert cache.stats.requests == 0


class TestConvolveManyEquivalence:
    """The batched entry point against the looped kernels."""

    @settings(max_examples=80, deadline=None)
    @given(ops=st.lists(pdfs(max_bins=32), min_size=2, max_size=6))
    def test_direct_batches_are_bitwise_the_loop(self, ops):
        pairs = [(ops[i], ops[(i + 1) % len(ops)]) for i in range(len(ops))]
        batched = convolve_many(pairs, trim_eps=1e-9, backend="direct")
        for (a, b), out in zip(pairs, batched):
            assert_bitwise(
                out, convolve(a, b, trim_eps=1e-9, backend="direct")
            )

    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(pdfs(max_bins=32), min_size=2, max_size=6))
    def test_auto_below_crossover_is_bitwise_the_loop(self, ops):
        pairs = [(ops[i], ops[(i + 1) % len(ops)]) for i in range(len(ops))]
        batched = convolve_many(pairs, trim_eps=1e-9, backend="auto")
        for (a, b), out in zip(pairs, batched):
            assert_bitwise(out, convolve(a, b, trim_eps=1e-9, backend="auto"))

    @settings(max_examples=40, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=2**16), min_size=2, max_size=5
        ),
        n=st.sampled_from([300, 700, 1100]),
    )
    def test_fft_batches_are_bitwise_the_loop(self, seeds, n):
        """The batched-path contract is *bitwise* per pair: either the
        platform's stacked transform is row-bitwise (probed once) or
        the backend falls back to the loop — both make this exact.
        Bitwise equality is what lets cached batched and singleton
        computations share entries."""
        pairs = [
            (
                DiscretePDF(1.0, 0, np.random.default_rng(s).random(n)),
                DiscretePDF(1.0, 5, np.random.default_rng(s + 1).random(n)),
            )
            for s in seeds
        ]
        batched = convolve_many(pairs, backend="fft")
        for (a, b), out in zip(pairs, batched):
            assert_bitwise(out, convolve(a, b, backend="fft"))

    def test_mixed_shapes_group_correctly(self):
        rng = np.random.default_rng(17)
        pairs = [
            (DiscretePDF(2.0, 0, rng.random(20)), DiscretePDF(2.0, 0, rng.random(20))),
            (DiscretePDF(2.0, 1, rng.random(33)), DiscretePDF(2.0, 2, rng.random(7))),
            (DiscretePDF(2.0, 0, rng.random(20)), DiscretePDF(2.0, 3, rng.random(20))),
            (DiscretePDF(2.0, -4, rng.random(1)), DiscretePDF(2.0, 0, rng.random(50))),
        ]
        for backend in ALL_BACKENDS:
            batched = convolve_many(pairs, trim_eps=1e-9, backend=backend)
            for (a, b), out in zip(pairs, batched):
                assert_bitwise(
                    out, convolve(a, b, trim_eps=1e-9, backend=backend)
                )

    def test_empty_batch(self):
        assert convolve_many([]) == []

    def test_cached_pairs_skip_the_batch_and_stay_bitwise(self):
        rng = np.random.default_rng(18)
        pairs = [
            (DiscretePDF(2.0, 0, rng.random(25)), DiscretePDF(2.0, 0, rng.random(25)))
            for _ in range(4)
        ]
        cache = ConvolutionCache()
        counter = OpCounter()
        first = convolve_many(
            pairs, trim_eps=1e-9, cache=cache, counter=counter
        )
        second = convolve_many(
            pairs, trim_eps=1e-9, cache=cache, counter=counter
        )
        assert counter.convolutions == 4
        assert counter.convolve_cache_hits == 4
        for x, y in zip(first, second):
            assert y is x

    def test_backend_without_convolve_many_falls_back(self):
        class Minimal:
            name = "minimal-direct"

            def convolve_masses(self, a, b):
                return np.convolve(a, b)

        rng = np.random.default_rng(19)
        pairs = [
            (DiscretePDF(2.0, 0, rng.random(12)), DiscretePDF(2.0, 1, rng.random(9)))
            for _ in range(3)
        ]
        out = convolve_many(pairs, backend=Minimal())
        for (a, b), o in zip(pairs, out):
            assert_bitwise(o, convolve(a, b, backend="direct"))


class TestCacheConfigKnob:
    def test_coerce_none_int_instance(self):
        assert ConvolutionCache.coerce(None) is None
        made = ConvolutionCache.coerce(16)
        assert isinstance(made, ConvolutionCache) and made.capacity == 16
        inst = ConvolutionCache(capacity=4)
        assert ConvolutionCache.coerce(inst) is inst

    @pytest.mark.parametrize("bad", ["big", 1.5, True, object()])
    def test_coerce_rejects_junk(self, bad):
        with pytest.raises(DistributionError):
            ConvolutionCache.coerce(bad)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_capacity_must_be_positive(self, bad):
        with pytest.raises(DistributionError):
            ConvolutionCache(capacity=bad)

    def test_analysis_config_wires_the_knob(self):
        assert AnalysisConfig().cache is None
        cfg = AnalysisConfig(cache=128)
        assert isinstance(cfg.cache, ConvolutionCache)
        assert cfg.cache.capacity == 128
        inst = ConvolutionCache()
        assert inst.capacity == DEFAULT_CACHE_CAPACITY
        assert AnalysisConfig(cache=inst).cache is inst

    def test_with_updates_shares_the_instance(self):
        cfg = AnalysisConfig(cache=64)
        derived = cfg.with_updates(dt=1.0)
        assert derived.cache is cfg.cache

    def test_config_rejects_junk_cache(self):
        with pytest.raises(ValueError):
            AnalysisConfig(cache="huge")

    def test_stats_hit_rate(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        stats.hits, stats.misses = 3, 1
        assert stats.requests == 4
        assert stats.hit_rate == pytest.approx(0.75)


class TestNodeMemoGuards:
    def test_same_named_foreign_backend_cannot_serve_node_entry(self):
        """Mirror of the convolve-level guard: the whole-node memo must
        verify the backend instance, not just its name."""
        from repro.timing.graph import TimingGraph
        from repro.timing.ssta import compute_node_arrival

        rng = np.random.default_rng(21)
        arrival = DiscretePDF(2.0, 0, rng.random(10))
        delay = DiscretePDF(2.0, 4, rng.random(6))
        cache = ConvolutionCache()
        kernel_a = FFTBackend()
        kernel_b = FFTBackend()  # distinct instance, same name
        key = cache.node_key([(arrival, delay)], 1e-9, kernel_a)
        assert cache.node_key([(arrival, delay)], 1e-9, kernel_b) == key
        result = convolve(arrival, delay, trim_eps=1e-9, backend=kernel_a)
        cache.store_node(key, result, kernel_a)
        assert cache.lookup_node(key, kernel_a) is result
        assert cache.lookup_node(key, kernel_b) is None

    def test_batched_fft_loop_fallback_is_bitwise(self, monkeypatch):
        """A transform size the platform flagged as non-row-bitwise
        must route through the (bitwise) convolve_masses loop."""
        from repro.dist.backends import FFTBackend, _next_fast_len

        rng = np.random.default_rng(23)
        pairs = [
            (
                DiscretePDF(1.0, 0, rng.random(700)),
                DiscretePDF(1.0, 1, rng.random(700)),
            )
            for _ in range(3)
        ]
        nfft = _next_fast_len(700 + 700 - 1)
        monkeypatch.setitem(FFTBackend._batch_nfft_bitwise, nfft, False)
        batched = convolve_many(pairs, backend="fft")
        for (a, b), out in zip(pairs, batched):
            assert_bitwise(out, convolve(a, b, backend="fft"))

    def test_batched_fft_rows_do_not_pin_the_batch_matrix(self):
        """Cached raw vectors from a batch must own their storage —
        a view would keep the whole (k, nfft) matrix alive per entry."""
        rng = np.random.default_rng(22)
        pairs = [
            (
                DiscretePDF(1.0, 0, rng.random(600)),
                DiscretePDF(1.0, 2, rng.random(600)),
            )
            for _ in range(4)
        ]
        raws = get_backend("fft").convolve_many(
            [(a.masses, b.masses) for a, b in pairs]
        )
        for raw in raws:
            assert raw.base is None  # owns its buffer, not a view
            assert raw.size == 600 + 600 - 1


class TestGapMemo:
    def test_roundtrip_and_absolute_offset_keying(self):
        from repro.dist.metrics import max_percentile_gap

        rng = np.random.default_rng(20)
        a = DiscretePDF(2.0, 0, rng.random(30))
        b = DiscretePDF(2.0, 1, rng.random(30))
        cache = ConvolutionCache()
        assert cache.lookup_gap(a, b) is None
        gap = max_percentile_gap(a, b)
        cache.store_gap(a, b, gap)
        assert cache.lookup_gap(a, b) == gap
        # translated pair: absolute offsets differ -> no entry served
        assert cache.lookup_gap(a.shifted_bins(2), b.shifted_bins(2)) is None


class TestBatchDedupAgainstSequential:
    """Batched requests must replicate the *sequential* cache stream:
    duplicate pairs within one ``convolve_many`` batch compute once and
    replay as hits (PR-4 level batching folds a whole topological
    level into one batch, so intra-batch duplicates became the norm)."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_duplicate_pairs_compute_once_and_hit(self, backend):
        rng = np.random.default_rng(41)
        a = DiscretePDF(2.0, 0, rng.random(24))
        b = DiscretePDF(2.0, 3, rng.random(18))
        c = DiscretePDF(2.0, -2, rng.random(30))
        pairs = [(a, b), (c, b), (a, b), (a, b)]
        cache = ConvolutionCache()
        counter = OpCounter()
        batched = convolve_many(
            pairs, trim_eps=1e-9, counter=counter, backend=backend,
            cache=cache,
        )
        assert counter.convolutions == 2      # (a,b) once, (c,b) once
        assert counter.convolve_cache_hits == 2
        assert cache.stats.misses == 2
        assert cache.stats.hits == 2
        # Duplicates replay the stored object itself (same offsets).
        assert batched[2] is batched[0]
        assert batched[3] is batched[0]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_translated_duplicate_replays_bitwise(self, backend):
        """A duplicate at shifted offsets shares the raw entry and is
        re-anchored exactly as a sequential translated hit would be.
        Exactly-normalized (dyadic) masses make the shifted twins share
        the mass vector — and hence the content key — bitwise."""
        a = DiscretePDF(2.0, 0, np.asarray([0.25, 0.5, 0.125, 0.125]))
        b = DiscretePDF(2.0, 1, np.asarray([0.5, 0.25, 0.25]))
        pairs = [(a, b), (a.shifted_bins(7), b.shifted_bins(-2))]
        cache = ConvolutionCache()
        counter = OpCounter()
        batched = convolve_many(
            pairs, trim_eps=1e-9, counter=counter, backend=backend,
            cache=cache,
        )
        assert counter.convolutions == 1
        assert counter.convolve_cache_hits == 1
        seq = convolve(
            a.shifted_bins(7), b.shifted_bins(-2), trim_eps=1e-9,
            backend=backend, cache=ConvolutionCache(),
        )
        assert_bitwise(batched[1], seq)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_tallies_and_stats_match_a_sequential_loop(self, backend):
        """End-to-end invariance: one batch with repeats and translated
        twins produces exactly the tallies and cache statistics of the
        equivalent ``convolve`` loop."""
        rng = np.random.default_rng(47)
        a = DiscretePDF(2.0, 0, rng.random(22))
        b = DiscretePDF(2.0, 2, rng.random(26))
        c = DiscretePDF(2.0, -1, rng.random(22))
        pairs = [(a, b), (a, c), (a, b), (a.shifted_bins(3), b), (c, c)]
        cache_b, cache_s = ConvolutionCache(), ConvolutionCache()
        cb, cs = OpCounter(), OpCounter()
        batched = convolve_many(
            pairs, trim_eps=1e-9, counter=cb, backend=backend,
            cache=cache_b,
        )
        looped = [
            convolve(x, y, trim_eps=1e-9, counter=cs, backend=backend,
                     cache=cache_s)
            for x, y in pairs
        ]
        for bb, ss in zip(batched, looped):
            assert_bitwise(bb, ss)
        assert (cb.convolutions, cb.convolve_cache_hits) == (
            cs.convolutions, cs.convolve_cache_hits
        )
        assert (cache_b.stats.hits, cache_b.stats.misses) == (
            cache_s.stats.hits, cache_s.stats.misses
        )

    def test_without_cache_duplicates_are_recomputed(self):
        """No cache, no dedupe: the sequential loop computes every
        request, so the batch must too (tally invariance)."""
        rng = np.random.default_rng(53)
        a = DiscretePDF(2.0, 0, rng.random(16))
        b = DiscretePDF(2.0, 1, rng.random(16))
        counter = OpCounter()
        convolve_many([(a, b), (a, b)], counter=counter)
        assert counter.convolutions == 2
        assert counter.convolve_cache_hits == 0

    def test_tiny_capacity_dup_resolution_stays_bitwise(self):
        """Capacity 1: the representative's entry is evicted before the
        duplicate resolves, forcing the recompute path — results must
        still be bitwise the loop's."""
        rng = np.random.default_rng(59)
        a = DiscretePDF(2.0, 0, rng.random(24))
        b = DiscretePDF(2.0, 1, rng.random(24))
        c = DiscretePDF(2.0, 2, rng.random(20))
        pairs = [(a, b), (c, a), (a, b)]
        cache = ConvolutionCache(capacity=1)
        batched = convolve_many(pairs, trim_eps=1e-9, cache=cache)
        plain = [convolve(x, y, trim_eps=1e-9) for x, y in pairs]
        for bb, ss in zip(batched, plain):
            assert_bitwise(bb, ss)


class TestBatchAwareKeyAPI:
    """The public key builders + key-accepting lookups the batched
    callers use must agree with the internal key derivation."""

    def test_convolve_key_roundtrip(self):
        from repro.dist.backends import get_backend

        rng = np.random.default_rng(61)
        a = DiscretePDF(2.0, 0, rng.random(12))
        b = DiscretePDF(2.0, 5, rng.random(14))
        kernel = get_backend("direct")
        cache = ConvolutionCache()
        res = convolve(a, b, trim_eps=1e-9, backend=kernel, cache=cache)
        key = cache.convolve_key(a, b, 1e-9, kernel)
        assert cache.lookup_convolve(a, b, 1e-9, kernel, key=key) is res
        # The precomputed key is authoritative: a wrong key misses.
        wrong = cache.convolve_key(b, a, 1e-9, kernel)
        assert cache.lookup_convolve(a, b, 1e-9, kernel, key=wrong) is None

    def test_max_key_roundtrip(self):
        pdfs_ = [
            DiscretePDF(2.0, 0, np.asarray([0.25, 0.25, 0.5])),
            DiscretePDF(2.0, 4, np.asarray([0.5, 0.125, 0.375])),
        ]
        cache = ConvolutionCache()
        res = stat_max_many(pdfs_, trim_eps=1e-9, cache=cache)
        key = cache.max_key(pdfs_, 1e-9)
        assert cache.lookup_max(pdfs_, 1e-9, key=key) is res
        # Relative alignment is the key: translating the whole group
        # shares the entry (re-anchored), per the PR-3 contract.
        shifted = [p.shifted_bins(3) for p in pdfs_]
        assert cache.max_key(shifted, 1e-9) == key


class TestCacheStatsMerge:
    """Per-shard stats aggregation: commutative, field-distinct."""

    @given(
        records=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=100),
            ),
            min_size=0,
            max_size=10,
        ),
        order_seed=st.randoms(use_true_random=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_is_order_invariant(self, records, order_seed):
        shards = [
            CacheStats(hits=h, misses=m, evictions=e) for h, m, e in records
        ]
        sequential = CacheStats()
        for s in shards:
            sequential.merge(s)
        shuffled = list(shards)
        order_seed.shuffle(shuffled)
        scrambled = CacheStats()
        for s in shuffled:
            scrambled.merge(s)
        assert (scrambled.hits, scrambled.misses, scrambled.evictions) == (
            sequential.hits, sequential.misses, sequential.evictions
        )
        assert scrambled.requests == sum(s.requests for s in shards)

    def test_merge_then_hit_rate(self):
        a = CacheStats(hits=3, misses=1)
        a.merge(CacheStats(hits=1, misses=3))
        assert a.requests == 8
        assert a.hit_rate == 0.5


class TestSnapshotPersistence:
    """``save``/``load`` round trips: entries replay bitwise in a
    fresh process-equivalent cache, LRU order survives, and
    non-registry-kernel entries are refused at save time."""

    def _warm_cache(self, backend="auto"):
        kernel = get_backend(backend)
        cache = ConvolutionCache()
        a = truncated_gaussian_pdf(2.0, 500.0, 40.0)
        b = truncated_gaussian_pdf(2.0, 300.0, 25.0)
        c = truncated_gaussian_pdf(2.0, 900.0, 60.0)
        conv = convolve(a, b, trim_eps=1e-9, backend=kernel, cache=cache)
        mx = stat_max_many([conv, c], trim_eps=1e-9, backend=kernel,
                           cache=cache)
        return cache, (a, b, c), (conv, mx), kernel

    def test_roundtrip_replays_bitwise(self, tmp_path, backend):
        cache, (a, b, c), (conv, mx), kernel = self._warm_cache(backend)
        path = tmp_path / "snap.cache"
        n = cache.save(path)
        assert n == len(cache) > 0

        loaded = ConvolutionCache.load(path)
        assert len(loaded) == len(cache)
        hit = loaded.lookup_convolve(a, b, 1e-9, kernel)
        assert hit is not None
        assert_bitwise(hit, conv)
        hit_mx = loaded.lookup_max([conv, c], 1e-9)
        assert hit_mx is not None
        assert_bitwise(hit_mx, mx)
        assert loaded.stats.misses == 0

    def test_translated_replay_from_snapshot(self, tmp_path):
        """Raw vectors survive the round trip: a loaded entry serves a
        *translated* recurrence of the operand pair (different
        offsets), re-anchored bitwise — same contract as a live one.
        Exactly-normalized masses, so translation preserves the
        fingerprint (a renormalizing shift would change the content,
        and rightly miss)."""
        kernel = get_backend("direct")
        cache = ConvolutionCache()
        a = DiscretePDF(2.0, 10, np.asarray([0.25, 0.25, 0.5]))
        b = DiscretePDF(2.0, -4, np.asarray([0.5, 0.5]))
        convolve(a, b, trim_eps=1e-9, backend=kernel, cache=cache)
        path = tmp_path / "snap.cache"
        cache.save(path)
        loaded = ConvolutionCache.load(path)
        live = convolve(a.shifted_bins(5), b, trim_eps=1e-9, backend=kernel)
        hit = loaded.lookup_convolve(a.shifted_bins(5), b, 1e-9, kernel)
        assert hit is not None
        assert_bitwise(hit, live)

    def test_capacity_override_keeps_most_recent(self, tmp_path):
        cache = ConvolutionCache()
        kernel = get_backend("direct")
        pdfs_ = [truncated_gaussian_pdf(2.0, 200.0 + 40 * i, 15.0 + 3 * i)
                 for i in range(6)]
        for i in range(5):
            convolve(pdfs_[i], pdfs_[i + 1], backend=kernel, cache=cache)
        assert len(cache) == 5  # distinct contents, distinct keys
        path = tmp_path / "snap.cache"
        cache.save(path)
        loaded = ConvolutionCache.load(path, capacity=2)
        assert len(loaded) == 2
        # The most recently used entries survive the trim.
        assert loaded.lookup_convolve(pdfs_[4], pdfs_[5], 0.0, kernel) is not None

    def test_non_registry_backend_entries_skipped(self, tmp_path):
        class Custom:
            name = "direct"  # deliberately aliases the registry name

            def convolve_masses(self, x, y):
                return np.convolve(x, y)

        custom = Custom()
        cache = ConvolutionCache()
        a = truncated_gaussian_pdf(2.0, 500.0, 40.0)
        b = truncated_gaussian_pdf(2.0, 300.0, 25.0)
        convolve(a, b, backend=custom, cache=cache)
        path = tmp_path / "snap.cache"
        assert cache.save(path) == 0  # alias refused, nothing written
        assert len(ConvolutionCache.load(path)) == 0

    def test_unknown_format_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "bad.cache"
        path.write_bytes(pickle.dumps({"format": 99, "entries": []}))
        with pytest.raises(DistributionError):
            ConvolutionCache.load(path)

    def test_truncated_snapshot_rejected_cleanly(self, tmp_path):
        """An interrupted write must surface as a DistributionError,
        not a raw pickle traceback (and save() itself replaces
        atomically, so a good snapshot is never half-overwritten)."""
        cache, _, _, _ = self._warm_cache("direct")
        path = tmp_path / "snap.cache"
        cache.save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(DistributionError, match="corrupt"):
            ConvolutionCache.load(path)
        # No temp litter left behind by save().
        assert list(tmp_path.iterdir()) == [path]

    def test_wrong_shape_snapshot_rejected_cleanly(self, tmp_path):
        """Payloads that unpickle but have the wrong structure are
        corruption too — DistributionError, not KeyError/TypeError."""
        import pickle

        for payload in (
            {"format": 1},                              # missing keys
            {"format": 1, "capacity": 8, "entries": [("k",)]},  # bad arity
            [1, 2, 3],                                  # not a dict
        ):
            path = tmp_path / "bad.cache"
            path.write_bytes(pickle.dumps(payload))
            with pytest.raises(DistributionError, match="corrupt"):
                ConvolutionCache.load(path)

    def test_foreign_pickle_rejected_cleanly(self, tmp_path):
        """A pickle referencing a module this build lacks (e.g. a
        snapshot from a version that moved a class) must surface as
        DistributionError, not a raw ModuleNotFoundError."""
        path = tmp_path / "foreign.cache"
        # Hand-rolled pickle opcodes: GLOBAL nosuchmodule.Thing
        path.write_bytes(b"cnosuchmodule\nThing\n.")
        with pytest.raises(DistributionError, match="corrupt"):
            ConvolutionCache.load(path)

    def test_gap_entries_roundtrip(self, tmp_path):
        cache = ConvolutionCache()
        a = truncated_gaussian_pdf(2.0, 500.0, 40.0)
        b = truncated_gaussian_pdf(2.0, 520.0, 40.0)
        cache.store_gap(a, b, 3.25)
        path = tmp_path / "snap.cache"
        cache.save(path)
        assert ConvolutionCache.load(path).lookup_gap(a, b) == 3.25


class TestThreadSafety:
    """Concurrency contract of the shared cache (the analysis service
    holds ONE process-wide instance under a threading HTTP server).

    N threads hammering lookup/store concurrently must never corrupt
    the LRU order, the entry map, the byte accounting, or the stats
    tallies — and the final :class:`CacheStats` must equal the merge
    of the per-thread deltas each thread observed locally.
    """

    N_THREADS = 8
    ROUNDS = 60

    @staticmethod
    def _operands(n_pairs: int, seed: int = 7):
        rng = np.random.default_rng(seed)
        pairs = []
        for i in range(n_pairs):
            a = DiscretePDF(2.0, i, rng.random(6) + 1e-3)
            b = DiscretePDF(2.0, -i, rng.random(5) + 1e-3)
            pairs.append((a, b))
        return pairs

    def _hammer(self, cache, capacity_note, n_pairs):
        """Run the stress loop; return per-thread observed deltas."""
        import threading

        backend = get_backend("direct")
        pairs = self._operands(n_pairs)
        barrier = threading.Barrier(self.N_THREADS)
        deltas = []
        errors = []

        def worker(tid: int):
            local = CacheStats()
            try:
                barrier.wait()
                for r in range(self.ROUNDS):
                    # Each thread walks the pair list at its own phase
                    # so lookups and stores interleave heavily.
                    for j in range(len(pairs)):
                        a, b = pairs[(j + tid * 3 + r) % len(pairs)]
                        hit = cache.lookup_convolve(a, b, 1e-9, backend)
                        if hit is not None:
                            local.record(hits=1)
                        else:
                            local.record(misses=1)
                            res = convolve(a, b, trim_eps=1e-9,
                                           backend=backend)
                            cache.store_convolve(
                                a, b, 1e-9, backend,
                                res.masses.copy(), res,
                            )
            except BaseException as exc:  # pragma: no cover - fail loud
                errors.append((tid, exc))
            deltas.append(local)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, f"worker raised under {capacity_note}: {errors}"
        return deltas

    def test_stats_equal_merged_thread_deltas_ample_capacity(self):
        cache = ConvolutionCache(1 << 12)
        deltas = self._hammer(cache, "ample capacity", n_pairs=24)
        merged = CacheStats()
        for d in deltas:
            merged.merge(d)
        assert cache.stats.requests == self.N_THREADS * self.ROUNDS * 24
        assert (cache.stats.hits, cache.stats.misses) == (
            merged.hits, merged.misses,
        )
        # Ample capacity: nothing was ever evicted, and every distinct
        # pair is resident exactly once.
        assert cache.stats.evictions == 0
        assert len(cache) == 24

    def test_lru_and_bytes_stay_consistent_under_churn(self):
        capacity = 8
        cache = ConvolutionCache(capacity)
        deltas = self._hammer(cache, "churn capacity", n_pairs=24)
        merged = CacheStats()
        for d in deltas:
            merged.merge(d)
        # Tallies still merge exactly even while evicting constantly.
        assert (cache.stats.hits, cache.stats.misses) == (
            merged.hits, merged.misses,
        )
        assert cache.stats.requests == merged.requests
        # The LRU invariants survived: bounded, uncorrupted, and the
        # running byte tally equals a fresh walk of the entries.
        assert len(cache) <= capacity
        entries = list(cache._entries.items())
        assert len(entries) == len(cache)
        from repro.dist.cache import _entry_nbytes

        assert cache.approx_bytes == sum(
            _entry_nbytes(e) for _k, e in entries
        )
        # Every resident entry still replays bitwise.
        backend = get_backend("direct")
        for a, b in self._operands(24):
            hit = cache.lookup_convolve(a, b, 1e-9, backend)
            if hit is not None:
                fresh = convolve(a, b, trim_eps=1e-9, backend=backend)
                assert hit.offset == fresh.offset
                assert np.array_equal(hit.masses, fresh.masses)

    def test_concurrent_mixed_kind_requests(self):
        """ADD, MAX, node, and gap entries share one locked LRU."""
        import threading

        cache = ConvolutionCache(1 << 10)
        backend = get_backend("direct")
        pairs = self._operands(12)
        barrier = threading.Barrier(4)
        errors = []

        def adds():
            try:
                barrier.wait()
                for _ in range(40):
                    for a, b in pairs:
                        if cache.lookup_convolve(a, b, 1e-9, backend) is None:
                            r = convolve(a, b, trim_eps=1e-9, backend=backend)
                            cache.store_convolve(a, b, 1e-9, backend,
                                                 r.masses.copy(), r)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def maxes():
            try:
                barrier.wait()
                for _ in range(40):
                    for a, b in pairs:
                        if cache.lookup_max([a, b], 1e-9) is None:
                            r = stat_max_many([a, b], trim_eps=1e-9)
                            cache.store_max([a, b], 1e-9,
                                            r.masses.copy(), r)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def gaps():
            try:
                barrier.wait()
                for _ in range(40):
                    for a, b in pairs:
                        if cache.lookup_gap(a, b) is None:
                            cache.store_gap(a, b, 0.25)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def evictor():
            try:
                barrier.wait()
                for _ in range(40):
                    cache.evict_to_bytes(max(0, cache.approx_bytes - 4096))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=f)
                   for f in (adds, maxes, gaps, evictor)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        snap_hits, snap_misses, snap_evictions = cache.stats.snapshot()
        assert snap_hits + snap_misses == cache.stats.requests
        assert snap_evictions >= 0
        assert len(cache) <= cache.capacity


class TestByteBudget:
    def test_approx_bytes_tracks_entries(self):
        cache = ConvolutionCache(64)
        assert cache.approx_bytes == 0
        a = DiscretePDF(2.0, 0, np.ones(8))
        b = DiscretePDF(2.0, 1, np.ones(4))
        r = convolve(a, b, trim_eps=1e-9, backend="direct")
        cache.store_convolve(a, b, 1e-9, get_backend("direct"),
                             r.masses.copy(), r)
        one = cache.approx_bytes
        assert one > 0
        cache.clear()
        assert cache.approx_bytes == 0
        assert len(cache) == 0

    def test_evict_to_bytes_drops_lru_first(self):
        backend = get_backend("direct")
        cache = ConvolutionCache(64)
        rng = np.random.default_rng(3)
        pairs = []
        for i in range(6):
            a = DiscretePDF(2.0, i, rng.random(8) + 1e-3)
            b = DiscretePDF(2.0, 2 * i, rng.random(8) + 1e-3)
            r = convolve(a, b, trim_eps=1e-9, backend=backend)
            cache.store_convolve(a, b, 1e-9, backend, r.masses.copy(), r)
            pairs.append((a, b))
        full = cache.approx_bytes
        evicted = cache.evict_to_bytes(full // 2)
        assert evicted > 0
        assert cache.approx_bytes <= full // 2
        assert cache.stats.evictions == evicted
        # The survivors are the most recently used (the last stores).
        hits = [
            cache.lookup_convolve(a, b, 1e-9, backend) is not None
            for a, b in pairs
        ]
        assert hits == sorted(hits)  # False... then True...
        assert any(hits) and not all(hits)

    def test_evict_to_zero_and_negative_budget(self):
        backend = get_backend("direct")
        cache = ConvolutionCache(8)
        a = DiscretePDF(2.0, 0, np.ones(4))
        b = DiscretePDF(2.0, 0, np.ones(3))
        r = convolve(a, b, trim_eps=1e-9, backend=backend)
        cache.store_convolve(a, b, 1e-9, backend, r.masses.copy(), r)
        assert cache.evict_to_bytes(0) == 1
        assert len(cache) == 0
        with pytest.raises(DistributionError, match="budget"):
            cache.evict_to_bytes(-1)

    def test_snapshot_load_restores_byte_accounting(self, tmp_path):
        backend = get_backend("direct")
        cache = ConvolutionCache(8)
        a = DiscretePDF(2.0, 0, np.ones(4))
        b = DiscretePDF(2.0, 0, np.ones(3))
        r = convolve(a, b, trim_eps=1e-9, backend=backend)
        cache.store_convolve(a, b, 1e-9, backend, r.masses.copy(), r)
        path = tmp_path / "snap.cache"
        cache.save(path)
        loaded = ConvolutionCache.load(path)
        assert loaded.approx_bytes == cache.approx_bytes


class TestMergeSnapshots:
    """The multi-worker front's reconciliation primitive: fold several
    per-worker snapshot files into one, union of entries, later paths
    winning LRU position, unreadable contributors skipped."""

    def _snap(self, tmp_path, name, mus):
        kernel = get_backend("direct")
        cache = ConvolutionCache()
        pairs = []
        for mu in mus:
            # Distinct sigmas per entry: content keys are translation-
            # invariant, so same-shape operands at different means
            # would all collapse into ONE cache entry.
            a = truncated_gaussian_pdf(2.0, mu, mu / 15.0)
            b = truncated_gaussian_pdf(2.0, mu / 2.0, mu / 25.0)
            convolve(a, b, trim_eps=1e-9, backend=kernel, cache=cache)
            pairs.append((a, b))
        path = tmp_path / name
        cache.save(path)
        return path, pairs, kernel

    def test_union_of_disjoint_workers(self, tmp_path):
        p0, pairs0, kernel = self._snap(tmp_path, "w0", [300.0, 400.0])
        p1, pairs1, _ = self._snap(tmp_path, "w1", [500.0, 600.0])
        out = tmp_path / "base"
        n = ConvolutionCache.merge_snapshots([p0, p1], out)
        assert n == 4
        merged = ConvolutionCache.load(out)
        for a, b in pairs0 + pairs1:
            assert merged.lookup_convolve(a, b, 1e-9, kernel) is not None

    def test_overlap_dedupes_and_replays_bitwise(self, tmp_path):
        p0, pairs0, kernel = self._snap(tmp_path, "w0", [300.0, 400.0])
        p1, pairs1, _ = self._snap(tmp_path, "w1", [400.0, 500.0])
        out = tmp_path / "base"
        n = ConvolutionCache.merge_snapshots([p0, p1], out)
        assert n == 3  # 400.0 pair is content-identical in both
        merged = ConvolutionCache.load(out)
        a, b = pairs0[1]
        hit = merged.lookup_convolve(a, b, 1e-9, kernel)
        plain = convolve(a, b, trim_eps=1e-9, backend=kernel)
        assert hit is not None
        assert_bitwise(hit, plain)

    def test_missing_and_corrupt_contributors_skipped(self, tmp_path):
        p0, pairs0, kernel = self._snap(tmp_path, "w0", [300.0])
        corrupt = tmp_path / "w1"
        corrupt.write_bytes(b"not a snapshot")
        out = tmp_path / "base"
        n = ConvolutionCache.merge_snapshots(
            [p0, corrupt, tmp_path / "missing"], out
        )
        assert n == 1
        assert len(ConvolutionCache.load(out)) == 1

    def test_no_contributors_leaves_target_untouched(self, tmp_path):
        out = tmp_path / "base"
        out.write_bytes(b"sentinel")
        n = ConvolutionCache.merge_snapshots(
            [tmp_path / "missing"], out
        )
        assert n == 0
        assert out.read_bytes() == b"sentinel"

    def test_capacity_trims_lru_first(self, tmp_path):
        p0, pairs0, kernel = self._snap(
            tmp_path, "w0", [300.0, 400.0, 500.0]
        )
        out = tmp_path / "base"
        n = ConvolutionCache.merge_snapshots([p0], out, capacity=2)
        assert n == 2
        merged = ConvolutionCache.load(out)
        a, b = pairs0[-1]  # most recent survives
        assert merged.lookup_convolve(a, b, 1e-9, kernel) is not None

    def test_merge_into_a_contributor_path(self, tmp_path):
        """The front merges {base, workers...} back INTO base; the
        in-place case must not corrupt (load-all-then-write)."""
        p0, pairs0, kernel = self._snap(tmp_path, "base", [300.0])
        p1, pairs1, _ = self._snap(tmp_path, "base.w0", [500.0])
        n = ConvolutionCache.merge_snapshots([p0, p1], p0)
        assert n == 2
        merged = ConvolutionCache.load(p0)
        for a, b in pairs0 + pairs1:
            assert merged.lookup_convolve(a, b, 1e-9, kernel) is not None


class TestConcurrentSaveRace:
    def test_parallel_saves_to_one_path_never_corrupt(self, tmp_path):
        """Regression: save() used a pid-only temp name, so two
        writers in one process (periodic flusher vs SIGTERM drain)
        could interleave pickles in one temp file.  Per-writer temp
        names make any interleaving of saves end with a loadable
        snapshot and no leftover temp litter."""
        kernel = get_backend("direct")
        cache = ConvolutionCache()
        for mu in (300.0, 400.0, 500.0):
            a = truncated_gaussian_pdf(2.0, mu, mu / 15.0)
            b = truncated_gaussian_pdf(2.0, mu / 2.0, mu / 25.0)
            convolve(a, b, trim_eps=1e-9, backend=kernel, cache=cache)
        path = tmp_path / "snap.cache"
        errors = []

        def hammer():
            try:
                for _ in range(25):
                    cache.save(path)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        import threading as _threading

        threads = [_threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        loaded = ConvolutionCache.load(path)
        assert len(loaded) == len(cache)
        assert list(tmp_path.glob("*.tmp.*")) == []
