"""Compiled-tier harness: provider differentials, fused construction,
the bitwise MAX sweep, the fallback matrix, and registry compatibility.

Layered on the PR-2 cross-backend harness (the ``compiled`` and
``compiled-auto`` names join every ``ALL_BACKENDS`` loop automatically
via the registry), this module adds what the generic loops cannot
check:

* the compiled tier's *own* equivalence classes — raw convolutions
  within 1e-12 TV of ``direct``, MAX sweeps bitwise, scalar == batched
  bitwise, cache replays bitwise with fresh computes;
* the degradation matrix — ``REPRO_DISABLE_COMPILED``, numba-absent
  with no C compiler — under which the compiled backends must *be*
  the pure-NumPy direct kernels, bit for bit, with exactly one
  warning;
* the process-boundary paths: compiled kernels resolved by name inside
  spawned workers on both transports, matching ``direct``.

Every test here passes whether or not a provider resolves on this
host: provider-specific classes skip when the tier is degraded, and
the degradation tests force it.
"""

from __future__ import annotations

import sys
import warnings

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.config import AnalysisConfig
from repro.dist import _compiled
from repro.dist.backends import (
    CompiledAutoBackend,
    get_backend,
    is_registry_backend,
)
from repro.dist.cache import ConvolutionCache
from repro.dist.ops import (
    OpCounter,
    _max_masses,
    convolve,
    convolve_many,
    max_batch_raws,
    stat_max_groups,
    stat_max_many,
)
from repro.dist.pdf import DiscretePDF
from repro.errors import DistributionError

from tests.dist.test_backends import TV_TOL, pdfs

#: Resolved once at collection: the host's provider (C in the test
#: container, numba on the CI compiled leg), or None when degraded.
PROVIDER = _compiled.get_provider()

needs_provider = pytest.mark.skipif(
    PROVIDER is None,
    reason=f"compiled tier degraded ({_compiled.fail_reason()})",
)
needs_max_sweep = pytest.mark.skipif(
    PROVIDER is None or not PROVIDER.max_ok,
    reason="compiled MAX sweep unavailable",
)


def _tv(p: DiscretePDF, q: DiscretePDF) -> float:
    """Total variation on the union grid (absolute-bin alignment)."""
    lo = min(p.offset, q.offset)
    hi = max(p.offset + p.masses.size, q.offset + q.masses.size)
    a = np.zeros(hi - lo)
    b = np.zeros(hi - lo)
    a[p.offset - lo : p.offset - lo + p.masses.size] = p.masses
    b[q.offset - lo : q.offset - lo + q.masses.size] = q.masses
    return 0.5 * float(np.abs(a - b).sum())


def _rand_pdf(rng, n, offset=0, dt=2.0) -> DiscretePDF:
    m = rng.random(n) + 1e-4
    return DiscretePDF(dt, offset, m)


@pytest.fixture
def fresh_provider_state():
    """Clear the provider memo after a test that patched the
    environment, so later callers re-resolve the real one.  The reset
    is deliberately lazy: this fixture tears down *before* monkeypatch
    restores the environment, so resolving eagerly here would memoize
    the patched world again."""
    yield
    _compiled.reset_provider_cache()


class TestCompiledDifferentials:
    """The tier's tolerance class vs the bitwise reference."""

    @settings(deadline=None, max_examples=60)
    @given(a=pdfs(), b=pdfs())
    def test_convolve_matches_direct_within_tv(self, a, b):
        d = convolve(a, b, backend="direct")
        c = convolve(a, b, backend="compiled")
        assert c.offset == d.offset
        assert _tv(c, d) < TV_TOL

    @settings(deadline=None, max_examples=60)
    @given(a=pdfs(), b=pdfs())
    def test_convolve_trimmed_within_semantic_budget(self, a, b):
        """With a trim the two arithmetic classes may cut the boundary
        bin differently when cumulative mass sits within an ulp of the
        threshold — a legal difference bounded by the trim budget
        itself, on top of the raw tolerance."""
        trim = 1e-9
        d = convolve(a, b, trim_eps=trim, backend="direct")
        c = convolve(a, b, trim_eps=trim, backend="compiled")
        assert _tv(c, d) < trim + TV_TOL
        for q in (0.5, 0.99):
            assert c.percentile(q) == pytest.approx(
                d.percentile(q), abs=a.dt
            )

    @settings(deadline=None, max_examples=30)
    @given(a=pdfs(), b=pdfs())
    def test_compiled_auto_matches_direct_within_tv(self, a, b):
        d = convolve(a, b, backend="direct")
        c = convolve(a, b, backend="compiled-auto")
        assert c.offset == d.offset
        assert _tv(c, d) < TV_TOL

    def test_scalar_equals_batched_bitwise(self):
        rng = np.random.default_rng(7)
        pairs = [
            (_rand_pdf(rng, rng.integers(1, 40)),
             _rand_pdf(rng, rng.integers(1, 40), offset=3))
            for _ in range(17)
        ]
        batched = convolve_many(
            pairs, trim_eps=1e-9, backend="compiled"
        )
        for (a, b), res in zip(pairs, batched):
            single = convolve(a, b, trim_eps=1e-9, backend="compiled")
            assert single.offset == res.offset
            assert np.array_equal(single.masses, res.masses)

    def test_deterministic_across_calls(self):
        rng = np.random.default_rng(11)
        a = _rand_pdf(rng, 33)
        b = _rand_pdf(rng, 17, offset=-4)
        r1 = convolve(a, b, trim_eps=1e-9, backend="compiled")
        r2 = convolve(a, b, trim_eps=1e-9, backend="compiled")
        assert r1.offset == r2.offset
        assert np.array_equal(r1.masses, r2.masses)

    def test_result_honors_pdf_contract(self):
        rng = np.random.default_rng(13)
        a = _rand_pdf(rng, 29)
        b = _rand_pdf(rng, 31, offset=5)
        c = convolve(a, b, trim_eps=1e-9, backend="compiled")
        assert np.all(c.masses >= 0.0)
        assert c.masses.sum() == pytest.approx(1.0, abs=1e-12)
        assert not c.masses.flags.writeable
        # The fused construction must produce a fully usable PDF.
        assert c.percentile(0.5) <= c.percentile(0.99)
        assert c.trimmed(1e-9) is c  # trim-idempotence memo stamped


@needs_provider
class TestFusedConstruction:
    """Cache and executor interplay of the compiled construction."""

    def test_cache_hit_is_stored_object(self):
        cache = ConvolutionCache(64)
        rng = np.random.default_rng(17)
        a = _rand_pdf(rng, 21)
        b = _rand_pdf(rng, 13, offset=2)
        first = convolve(
            a, b, trim_eps=1e-9, backend="compiled", cache=cache
        )
        again = convolve(
            a, b, trim_eps=1e-9, backend="compiled", cache=cache
        )
        assert again is first

    def test_translated_replay_bitwise_with_fresh_compute(self):
        """The rebuild_trimmed hook: a hit at a shifted anchor rebuilds
        through the compiled trim, matching a fresh fused compute at
        that anchor bit for bit."""
        cache = ConvolutionCache(64)
        rng = np.random.default_rng(19)
        raw_a, raw_b = rng.random(27) + 1e-4, rng.random(18) + 1e-4
        a = DiscretePDF(2.0, 3, raw_a)
        b = DiscretePDF(2.0, -1, raw_b)
        convolve(a, b, trim_eps=1e-9, backend="compiled", cache=cache)
        # Content-equal translation: same raw vectors normalized
        # identically, new offset (shifted_bins would renormalize and
        # perturb the last ulp — a legitimate miss).
        a2 = DiscretePDF(2.0, 10, raw_a)
        hit = convolve(
            a2, b, trim_eps=1e-9, backend="compiled", cache=cache
        )
        fresh = convolve(a2, b, trim_eps=1e-9, backend="compiled")
        assert hit.offset == fresh.offset
        assert np.array_equal(hit.masses, fresh.masses)
        assert cache.stats.hits >= 1

    def test_executor_raws_build_bitwise_with_inline(self):
        """trim_raws over executor-shipped raws == the inline fused
        batch (the trim is a pure function of the raw bits)."""
        from repro.exec.executor import SERIAL_EXECUTOR

        rng = np.random.default_rng(23)
        pairs = [
            (_rand_pdf(rng, rng.integers(2, 50)),
             _rand_pdf(rng, rng.integers(2, 50), offset=1))
            for _ in range(9)
        ]
        inline = convolve_many(pairs, trim_eps=1e-9, backend="compiled")
        via_exec = convolve_many(
            pairs, trim_eps=1e-9, backend="compiled",
            executor=SERIAL_EXECUTOR,
        )
        for r_i, r_e in zip(inline, via_exec):
            assert r_i.offset == r_e.offset
            assert np.array_equal(r_i.masses, r_e.masses)

    def test_counter_tallies_match_direct(self):
        rng = np.random.default_rng(29)
        pairs = [
            (_rand_pdf(rng, 12), _rand_pdf(rng, 9, offset=2))
            for _ in range(6)
        ]
        cd, cc = OpCounter(), OpCounter()
        convolve_many(pairs, trim_eps=1e-9, backend="direct", counter=cd)
        convolve_many(pairs, trim_eps=1e-9, backend="compiled", counter=cc)
        assert cc.convolutions == cd.convolutions == len(pairs)


@needs_max_sweep
class TestCompiledMaxSweep:
    """The grouped-MAX sweep must be bitwise the NumPy sweep."""

    def _groups(self, seed, n_groups=7):
        rng = np.random.default_rng(seed)
        return [
            tuple(
                _rand_pdf(
                    rng, int(rng.integers(2, 40)),
                    offset=int(rng.integers(-6, 7)),
                )
                for _ in range(int(rng.integers(2, 5)))
            )
            for _ in range(n_groups)
        ]

    def test_sweep_bitwise_with_numpy_sweep(self):
        groups = self._groups(31)
        kernel = get_backend("compiled")
        swept = max_batch_raws(groups, kernel=kernel)
        stock = max_batch_raws(groups)
        for (lo_s, m_s), (lo_n, m_n) in zip(swept, stock):
            assert lo_s == lo_n
            assert np.array_equal(m_s, m_n)

    def test_stat_max_many_bitwise_across_backends(self):
        groups = self._groups(37, n_groups=3)
        for pdfs_ in groups:
            d = stat_max_many(pdfs_, trim_eps=1e-9, backend="direct")
            c = stat_max_many(pdfs_, trim_eps=1e-9, backend="compiled")
            assert c.offset == d.offset
            assert np.array_equal(c.masses, d.masses)

    def test_stat_max_groups_bitwise_with_cache(self):
        groups = self._groups(41)
        ref = stat_max_groups(groups, trim_eps=1e-9, backend="direct")
        for cache in (None, ConvolutionCache(64)):
            got = stat_max_groups(
                groups, trim_eps=1e-9, backend="compiled", cache=cache
            )
            for r, g in zip(ref, got):
                assert r.offset == g.offset
                assert np.array_equal(r.masses, g.masses)

    def test_single_group_sweep_matches_max_masses(self):
        kernel = get_backend("compiled")
        for pdfs_ in self._groups(43, n_groups=4):
            lo_c, m_c = kernel.grouped_max_raws([pdfs_])[0]
            lo_n, m_n = _max_masses(pdfs_)
            assert lo_c == lo_n
            assert np.array_equal(m_c, m_n)


class TestFallbackMatrix:
    """Degraded compiled == pure-NumPy direct, bit for bit, warned
    once — under the kill switch and under a host with neither numba
    nor a C compiler."""

    def _assert_degraded_is_direct(self):
        kernel = get_backend("compiled")
        assert kernel.warm_up() is None
        rng = np.random.default_rng(47)
        a = _rand_pdf(rng, 33)
        b = _rand_pdf(rng, 17, offset=-2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert not kernel.fused_trim_active
            assert not kernel.max_sweep_active
            c = convolve(a, b, trim_eps=1e-9, backend="compiled")
            ca = convolve(a, b, trim_eps=1e-9, backend="compiled-auto")
        d = convolve(a, b, trim_eps=1e-9, backend="direct")
        assert c.offset == d.offset
        assert np.array_equal(c.masses, d.masses)
        assert ca.offset == d.offset
        assert np.array_equal(ca.masses, d.masses)
        # MAX falls back to the stock sweep — also bitwise.
        g = (a, b)
        md = stat_max_many(g, trim_eps=1e-9, backend="direct")
        mc = stat_max_many(g, trim_eps=1e-9, backend="compiled")
        assert md.offset == mc.offset
        assert np.array_equal(md.masses, mc.masses)

    def test_kill_switch_degrades_to_direct(
        self, monkeypatch, fresh_provider_state
    ):
        monkeypatch.setenv(_compiled.DISABLE_ENV, "1")
        _compiled.reset_provider_cache()
        assert _compiled.get_provider() is None
        assert _compiled.DISABLE_ENV in _compiled.fail_reason()
        self._assert_degraded_is_direct()

    def test_numba_and_compiler_absent_degrades_to_direct(
        self, monkeypatch, fresh_provider_state
    ):
        """Module patching simulates the barest host: ``import numba``
        raises and the C provider cannot build."""
        # The ambient kill switch (e.g. CI's degraded leg) would mask
        # the provider-resolution path this test is about.
        monkeypatch.delenv(_compiled.DISABLE_ENV, raising=False)
        monkeypatch.setitem(sys.modules, "numba", None)

        class _NoCompiler:
            def __init__(self):
                raise RuntimeError("no C compiler found")

        monkeypatch.setattr(_compiled, "_CProvider", _NoCompiler)
        _compiled.reset_provider_cache()
        assert _compiled.get_provider() is None
        assert "numba unavailable" in _compiled.fail_reason()
        self._assert_degraded_is_direct()

    def test_degraded_warns_exactly_once(
        self, monkeypatch, fresh_provider_state
    ):
        monkeypatch.setenv(_compiled.DISABLE_ENV, "1")
        _compiled.reset_provider_cache()
        monkeypatch.setattr(_compiled, "_warned", False)
        rng = np.random.default_rng(53)
        a = _rand_pdf(rng, 9)
        b = _rand_pdf(rng, 7)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            convolve(a, b, backend="compiled")
            convolve(a, b, backend="compiled")
        degraded = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "compiled kernel tier unavailable" in str(w.message)
        ]
        assert len(degraded) == 1
        assert "[compiled]" in str(degraded[0].message)

    def test_self_check_failure_rejects_provider(
        self, monkeypatch, fresh_provider_state
    ):
        """A provider that cannot prove its contract never serves."""
        monkeypatch.delenv(_compiled.DISABLE_ENV, raising=False)
        monkeypatch.setitem(sys.modules, "numba", None)

        class _LyingProvider:
            kind = "cext"
            max_ok = True

            def conv_trim_many(self, pairs, dts, offsets, eps, want):
                raise AssertionError("wrong bits")

        monkeypatch.setattr(
            _compiled, "_CProvider", lambda: _LyingProvider()
        )
        _compiled.reset_provider_cache()
        assert _compiled.get_provider() is None
        assert "self-check failed" in _compiled.fail_reason()

    @needs_provider
    def test_max_sweep_mismatch_disables_only_the_sweep(self):
        """A max_ok=False provider still serves ADD; the MAX side runs
        the stock NumPy sweep (bitwise anyway, by the guard)."""
        kernel = get_backend("compiled")
        p = _compiled.get_provider()
        original = p.max_ok
        try:
            p.max_ok = False
            assert kernel.fused_trim_active
            assert not kernel.max_sweep_active
            rng = np.random.default_rng(59)
            groups = [
                (_rand_pdf(rng, 9), _rand_pdf(rng, 11, offset=1))
            ]
            stock = max_batch_raws(groups)
            gated = max_batch_raws(groups, kernel=kernel)
            assert stock[0][0] == gated[0][0]
            assert np.array_equal(stock[0][1], gated[0][1])
        finally:
            p.max_ok = original


class TestRegistryCompat:
    """The compiled tier must stay a registry backend so name-keyed
    machinery (cache snapshots, worker shipping) keeps working."""

    def test_compiled_backends_are_registry_singletons(self):
        for name in ("compiled", "compiled-auto"):
            kernel = get_backend(name)
            assert is_registry_backend(kernel)
            assert get_backend(name) is kernel

    def test_compiled_auto_shares_the_compiled_singleton(self):
        ca = get_backend("compiled-auto")
        assert ca._compiled is get_backend("compiled")  # noqa: SLF001

    def test_cache_snapshot_roundtrip_under_compiled(self, tmp_path):
        cache = ConvolutionCache(64)
        rng = np.random.default_rng(61)
        pairs = [
            (_rand_pdf(rng, 15), _rand_pdf(rng, 12, offset=1))
            for _ in range(5)
        ]
        ref = convolve_many(
            pairs, trim_eps=1e-9, backend="compiled", cache=cache
        )
        path = tmp_path / "snap.pkl"
        assert cache.save(path) == len(pairs)
        loaded = ConvolutionCache.load(path)
        hits = convolve_many(
            pairs, trim_eps=1e-9, backend="compiled", cache=loaded
        )
        assert loaded.stats.hits == len(pairs)
        for r, h in zip(ref, hits):
            assert r.offset == h.offset
            assert np.array_equal(r.masses, h.masses)

    def test_unknown_backend_raises_distribution_error(self):
        with pytest.raises(DistributionError, match="available"):
            AnalysisConfig(backend="compiled-fast")
        with pytest.raises(DistributionError, match="available"):
            get_backend("compiled-fast")

    def test_invalid_cost_ratio_rejected(self):
        with pytest.raises(DistributionError):
            CompiledAutoBackend(cost_ratio=-1.0)

    def test_compiled_auto_dispatch_boundaries(self):
        ca = get_backend("compiled-auto")
        assert ca.chooses(17, 17) == "compiled"
        assert ca.chooses(33, 129) == "compiled"
        assert ca.chooses(4097, 4097) == "fft"
        # Asymmetric pairs stay compiled (direct degenerates to O(N)).
        assert ca.chooses(1, 8192) == "compiled"

    def test_compiled_auto_fft_side_matches_fft_backend(self):
        rng = np.random.default_rng(67)
        n = 4097
        a = DiscretePDF(2.0, 0, rng.random(n) + 1e-4)
        b = DiscretePDF(2.0, 3, rng.random(n) + 1e-4)
        ca = get_backend("compiled-auto")
        assert ca.chooses(n, n) == "fft"
        via_ca = convolve(a, b, backend="compiled-auto")
        via_fft = convolve(a, b, backend="fft")
        assert _tv(via_ca, via_fft) < TV_TOL


@needs_provider
class TestCompiledInWorkers:
    """Compiled kernels resolved by name inside spawned workers, both
    transports, matching direct (satellite 3's process-boundary leg).

    One module-scoped executor per transport would leak pools across
    unrelated modules; these build and close their own tiny pools.
    """

    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_parallel_compiled_matches_direct(self, transport):
        from repro.exec.pool import ProcessExecutor

        ex = ProcessExecutor(
            2, min_items_per_shard=1, transport=transport,
            min_dispatch_cost_us=0.0,
        )
        try:
            rng = np.random.default_rng(71)
            pairs = [
                (_rand_pdf(rng, int(rng.integers(2, 40))),
                 _rand_pdf(rng, int(rng.integers(2, 40)), offset=2))
                for _ in range(8)
            ]
            groups = [
                (_rand_pdf(rng, 9, offset=-1), _rand_pdf(rng, 14)),
                (_rand_pdf(rng, 21), _rand_pdf(rng, 6, offset=4)),
            ]
            par = convolve_many(
                pairs, trim_eps=1e-9, backend="compiled", executor=ex
            )
            inline = convolve_many(
                pairs, trim_eps=1e-9, backend="compiled"
            )
            direct = convolve_many(
                pairs, trim_eps=1e-9, backend="direct"
            )
            for p, i, d in zip(par, inline, direct):
                # Worker raws + coordinator trim == inline fused path,
                # bitwise; both sit within the class budget of direct.
                assert p.offset == i.offset
                assert np.array_equal(p.masses, i.masses)
                assert _tv(p, d) < 1e-9 + TV_TOL
            par_max = stat_max_groups(
                groups, trim_eps=1e-9, backend="compiled", executor=ex
            )
            direct_max = stat_max_groups(
                groups, trim_eps=1e-9, backend="direct"
            )
            for p, d in zip(par_max, direct_max):
                assert p.offset == d.offset
                assert np.array_equal(p.masses, d.masses)
        finally:
            ex.close()
