"""Unit tests for CDF comparison metrics (the pruning-bound measure)."""

import pytest

from repro.dist.families import truncated_gaussian_pdf
from repro.dist.metrics import max_percentile_gap, stochastically_le
from repro.dist.ops import convolve, stat_max
from repro.dist.pdf import DiscretePDF
from repro.errors import GridMismatchError


class TestMaxPercentileGap:
    def test_pure_shift_recovers_shift(self):
        a = truncated_gaussian_pdf(1.0, 110.0, 10.0)
        b = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        # b is exactly a shifted 10 ps earlier: gap == 10 everywhere.
        assert max_percentile_gap(a, b) == pytest.approx(10.0, abs=0.1)

    def test_identical_zero(self):
        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        assert max_percentile_gap(a, a) == 0.0

    def test_degradation_negative(self):
        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        worse = truncated_gaussian_pdf(1.0, 120.0, 10.0)
        assert max_percentile_gap(a, worse) == pytest.approx(-20.0, abs=0.1)

    def test_reshape_takes_max_over_levels(self):
        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        b = truncated_gaussian_pdf(1.0, 100.0, 5.0)  # narrower, same mean
        gap = max_percentile_gap(a, b)
        # At high percentiles the narrow CDF sits well to the left.
        assert gap == pytest.approx(a.percentile(0.999) - b.percentile(0.999), abs=1.0)

    def test_bounds_percentile_shift_at_any_level(self):
        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        b = truncated_gaussian_pdf(1.0, 93.0, 13.0)
        gap = max_percentile_gap(a, b)
        for p in (0.05, 0.5, 0.9, 0.99):
            assert a.percentile(p) - b.percentile(p) <= gap + 1e-9

    def test_nonexpansive_through_convolution_pure_shift(self):
        """Theorem 1: convolving both sides with the same PDF cannot
        grow the maximum horizontal gap (exact for a pure shift, where
        the gap is the shift at every level including the tail ramp)."""
        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        b = a.shifted_bins(-5)
        d = truncated_gaussian_pdf(1.0, 50.0, 5.0)
        before = max_percentile_gap(a, b)
        assert before == pytest.approx(5.0, abs=1e-9)
        after = max_percentile_gap(convolve(a, d), convolve(b, d))
        assert after <= before + 1e-9

    def test_nonexpansive_through_convolution_envelope(self):
        """For reshaping perturbations the gap's p->0 limit is the
        support-start difference; convolution stays under that envelope."""
        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        b = truncated_gaussian_pdf(1.0, 95.0, 12.0)
        d = truncated_gaussian_pdf(1.0, 50.0, 5.0)
        envelope = max(
            max_percentile_gap(a, b), a.support[0] - b.support[0]
        )
        after = max_percentile_gap(convolve(a, d), convolve(b, d))
        assert after <= envelope + 1e-9

    def test_nonexpansive_through_stat_max(self):
        """Theorems 2-3: max against a common arrival cannot grow the gap
        (in the positive regime)."""
        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        b = a.shifted_bins(-5)
        c = truncated_gaussian_pdf(1.0, 98.0, 8.0)
        before = max_percentile_gap(a, b)
        after = max_percentile_gap(stat_max(a, c), stat_max(b, c))
        assert after <= max(before, 0.0) + 1e-9

    def test_plateau_gap_uses_inf_semantics(self):
        """A plateau in b's CDF must not shrink the reported gap: at the
        plateau level, T(b, p) is the plateau's left edge."""
        a = DiscretePDF(1.0, 10, [0.25, 0.25, 0.5])
        b = DiscretePDF(1.0, 0, [0.5, 0.0, 0.5])
        # At p = 0.5: T(a, 0.5) = 11.0, T(b, 0.5) = 0.0 -> gap 11.0.
        assert max_percentile_gap(a, b) == pytest.approx(11.0)

    def test_grid_mismatch_rejected(self):
        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        b = truncated_gaussian_pdf(2.0, 100.0, 10.0)
        with pytest.raises(GridMismatchError):
            max_percentile_gap(a, b)


class TestStochasticallyLE:
    def test_shifted_ordering(self):
        early = truncated_gaussian_pdf(1.0, 90.0, 10.0)
        late = truncated_gaussian_pdf(1.0, 110.0, 10.0)
        assert stochastically_le(early, late)
        assert not stochastically_le(late, early)

    def test_reflexive(self):
        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        assert stochastically_le(a, a)

    def test_crossing_cdfs_not_ordered(self):
        wide = truncated_gaussian_pdf(1.0, 100.0, 20.0)
        narrow = truncated_gaussian_pdf(1.0, 100.0, 5.0)
        assert not stochastically_le(wide, narrow)
        assert not stochastically_le(narrow, wide)

    def test_tolerance_absorbs_tiny_violations(self):
        a = DiscretePDF(1.0, 0, [0.5, 0.5])
        b = DiscretePDF(1.0, 0, [0.5 + 1e-12, 0.5 - 1e-12])
        assert stochastically_le(b, a, tol=1e-9)

    def test_max_dominates_operands(self):
        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        b = truncated_gaussian_pdf(1.0, 105.0, 7.0)
        m = stat_max(a, b)
        assert stochastically_le(a, m)
        assert stochastically_le(b, m)

    def test_convolution_preserves_order(self):
        early = truncated_gaussian_pdf(1.0, 90.0, 10.0)
        late = truncated_gaussian_pdf(1.0, 110.0, 10.0)
        d = truncated_gaussian_pdf(1.0, 30.0, 3.0)
        assert stochastically_le(convolve(early, d), convolve(late, d))

    def test_grid_mismatch_rejected(self):
        a = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        b = truncated_gaussian_pdf(2.0, 100.0, 10.0)
        with pytest.raises(GridMismatchError):
            stochastically_le(a, b)
