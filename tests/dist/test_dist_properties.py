"""Hypothesis property tests for the distribution kernels.

The algebra the SSTA engine leans on, checked over randomized mass
vectors rather than hand-picked Gaussians:

* convolution conserves probability mass and adds means/variances;
* the independence max is commutative, associative, and stochastically
  dominates every operand;
* trimming never moves mass off the grid (total stays 1) and never
  moves the mean by more than the trimmed mass times the support span;
* CDF and percentile are mutual inverses under the shared interpolant.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.metrics import max_percentile_gap, stochastically_le
from repro.dist.ops import OpCounter, convolve, stat_max, stat_max_many
from repro.dist.pdf import DiscretePDF


@st.composite
def pdfs(draw, max_bins: int = 24):
    n = draw(st.integers(min_value=1, max_value=max_bins))
    raw = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    if sum(raw) <= 0.0:
        raw = [r + 1.0 for r in raw]
    offset = draw(st.integers(min_value=-50, max_value=50))
    return DiscretePDF(2.0, offset, np.asarray(raw))


class TestConvolutionAlgebra:
    @settings(max_examples=80, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_mass_conserved(self, a, b):
        c = convolve(a, b)
        assert c.masses.sum() == float(np.float64(1.0)) or abs(
            c.masses.sum() - 1.0
        ) < 1e-12

    @settings(max_examples=80, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_means_add(self, a, b):
        c = convolve(a, b)
        assert abs(c.mean() - (a.mean() + b.mean())) < 1e-6

    @settings(max_examples=80, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_variances_add(self, a, b):
        c = convolve(a, b)
        assert abs(c.var() - (a.var() + b.var())) < 1e-6

    @settings(max_examples=50, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_commutative(self, a, b):
        ab, ba = convolve(a, b), convolve(b, a)
        assert ab.offset == ba.offset
        assert np.allclose(ab.masses, ba.masses, atol=1e-14)

    @settings(max_examples=50, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_result_dominates_operand_shift(self, a, b):
        """A + B is stochastically at least A shifted by B's support start."""
        c = convolve(a, b)
        floor = a.shifted_bins(b.offset)
        assert stochastically_le(floor, c, tol=1e-9)


class TestMaxAlgebra:
    @settings(max_examples=80, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_commutative(self, a, b):
        ab, ba = stat_max(a, b), stat_max(b, a)
        assert ab.offset == ba.offset
        assert np.allclose(ab.masses, ba.masses, atol=1e-14)

    @settings(max_examples=50, deadline=None)
    @given(a=pdfs(), b=pdfs(), c=pdfs())
    def test_associative(self, a, b, c):
        left = stat_max(stat_max(a, b), c)
        right = stat_max(a, stat_max(b, c))
        assert left.offset == right.offset
        assert np.allclose(left.masses, right.masses, atol=1e-12)

    @settings(max_examples=80, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_dominates_operands(self, a, b):
        m = stat_max(a, b)
        assert stochastically_le(a, m, tol=1e-9)
        assert stochastically_le(b, m, tol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(pdfs(max_bins=12), min_size=2, max_size=5))
    def test_many_matches_fold(self, ops):
        many = stat_max_many(ops)
        fold = ops[0]
        for p in ops[1:]:
            fold = stat_max(fold, p)
        assert many.offset == fold.offset
        assert np.allclose(many.masses, fold.masses, atol=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(pdfs(max_bins=12), min_size=1, max_size=5))
    def test_counter_arithmetic(self, ops):
        counter = OpCounter()
        stat_max_many(ops, counter=counter)
        assert counter.max_ops == len(ops) - 1
        assert counter.convolutions == 0


class TestQueryConsistency:
    @settings(max_examples=80, deadline=None)
    @given(a=pdfs(), p=st.floats(min_value=1e-6, max_value=1.0))
    def test_cdf_percentile_roundtrip(self, a, p):
        t = a.percentile(p)
        assert abs(a.cdf_at(t) - p) < 1e-9

    @settings(max_examples=80, deadline=None)
    @given(a=pdfs())
    def test_gap_to_self_is_zero(self, a):
        assert max_percentile_gap(a, a) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_gap_antisymmetry_bound(self, a, b):
        """gap(a,b) and gap(b,a) cannot both be negative: one direction
        always sees the other's latest deviation."""
        assert max(max_percentile_gap(a, b), max_percentile_gap(b, a)) >= -1e-9


class TestTrimming:
    @settings(max_examples=80, deadline=None)
    @given(a=pdfs(), eps=st.floats(min_value=0.0, max_value=1e-3))
    def test_mass_stays_one(self, a, eps):
        t = a.trimmed(eps)
        assert abs(t.masses.sum() - 1.0) < 1e-12

    @settings(max_examples=80, deadline=None)
    @given(a=pdfs(), eps=st.floats(min_value=0.0, max_value=1e-3))
    def test_mean_moves_at_most_eps_span(self, a, eps):
        t = a.trimmed(eps)
        span = (a.n_bins + 1) * a.dt
        assert abs(t.mean() - a.mean()) <= eps * span + 1e-12

    @settings(max_examples=80, deadline=None)
    @given(a=pdfs(), eps=st.floats(min_value=0.0, max_value=1e-3))
    def test_idempotent(self, a, eps):
        once = a.trimmed(eps)
        assert once.trimmed(eps) is once
