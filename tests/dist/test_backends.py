"""Cross-backend equivalence harness for the convolution kernels.

The FFT backend exists to kill the O(n^2) convolution wall, but the
pruned sizer's guarantees are stated over *reproducible statistics*, so
the speedup only counts if every backend computes the same
distributions.  These tests pin that equivalence:

* Hypothesis property tests assert FFT == direct within 1e-12
  total-variation over random trimmed PDFs, including deltas,
  single-bin operands, disjoint-offset supports, and operands whose
  cumulative sums carry rounding mass deficits;
* the ``auto`` backend is *bitwise* the direct kernel below its
  crossover (the property the default config leans on);
* :class:`~repro.dist.ops.OpCounter` tallies are invariant under the
  backend choice — work statistics count statistical operations, not
  implementation FLOPs;
* the ``_padded_cdfs`` mass renormalization is pinned against the old
  deflating behavior (regression for the trimming bias fix).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AnalysisConfig
from repro.dist.backends import (
    AutoBackend,
    DirectBackend,
    FFTBackend,
    available_backends,
    get_backend,
)
from repro.dist.ops import OpCounter, _padded_cdfs, convolve, stat_max, stat_max_many
from repro.dist.pdf import DiscretePDF
from repro.errors import DistributionError

#: From the registry, so a new backend lands in every loop below.
ALL_BACKENDS = available_backends()

#: The harness's equivalence budget (ISSUE headline tolerance).
TV_TOL = 1e-12


@st.composite
def pdfs(draw, max_bins: int = 64, max_offset: int = 200):
    """Random trimmed PDFs, adversarial for mass accounting.

    Masses span up to 14 decades, which makes cumulative sums carry
    visible rounding deficits (``cdf[-1] != 1.0``), and a random trim
    exercises lumped boundary bins — the two shapes the mass-handling
    bugs hide in.  Deltas arise naturally from ``n == 1``.
    """
    n = draw(st.integers(min_value=1, max_value=max_bins))
    exponents = draw(
        st.lists(
            st.integers(min_value=-14, max_value=0), min_size=n, max_size=n
        )
    )
    mantissas = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    raw = [m * 10.0 ** e for m, e in zip(mantissas, exponents)]
    if sum(raw) <= 0.0:
        raw = [r + 1.0 for r in raw]
    offset = draw(st.integers(min_value=-max_offset, max_value=max_offset))
    pdf = DiscretePDF(2.0, offset, np.asarray(raw))
    trim = draw(st.sampled_from([0.0, 0.0, 1e-12, 1e-6, 1e-3]))
    return pdf.trimmed(trim)


class TestFFTDirectEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_fft_matches_direct_within_tv_budget(self, a, b):
        d = convolve(a, b, backend="direct")
        f = convolve(a, b, backend="fft")
        assert f.dt == d.dt
        # Supports may differ only by bins below FFT resolution (masses
        # under ~eps relative to the peak clamp to exact zero and the
        # zero boundary bins are stripped); tv_distance aligns the
        # union grid, so the budget covers structure too.
        assert d.tv_distance(f) <= TV_TOL

    @settings(max_examples=60, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_fft_matches_direct_after_trimming(self, a, b):
        d = convolve(a, b, trim_eps=1e-9, backend="direct")
        f = convolve(a, b, trim_eps=1e-9, backend="fft")
        assert d.tv_distance(f) <= TV_TOL

    @settings(max_examples=60, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_fft_result_honors_pdf_contract(self, a, b):
        f = convolve(a, b, backend="fft")
        assert np.all(f.masses >= 0.0)
        assert abs(f.masses.sum() - 1.0) < 1e-12

    def test_delta_times_delta(self):
        a = DiscretePDF.delta(2.0, 100.0)
        b = DiscretePDF.delta(2.0, -30.0)
        d = convolve(a, b, backend="direct")
        f = convolve(a, b, backend="fft")
        assert f.offset == d.offset == 35
        assert d.tv_distance(f) <= TV_TOL

    def test_delta_times_wide(self):
        rng = np.random.default_rng(3)
        wide = DiscretePDF(2.0, -40, rng.random(900))
        delta = DiscretePDF.delta(2.0, 64.0)
        d = convolve(delta, wide, backend="direct")
        f = convolve(delta, wide, backend="fft")
        assert d.tv_distance(f) <= TV_TOL

    def test_single_bin_operands(self):
        a = DiscretePDF(2.0, 5, np.asarray([3.0]))
        b = DiscretePDF(2.0, -2, np.asarray([0.25]))
        for backend in ALL_BACKENDS:
            c = convolve(a, b, backend=backend)
            assert c.offset == 3
            assert c.n_bins == 1
            assert c.masses[0] == 1.0

    def test_disjoint_offset_supports(self):
        rng = np.random.default_rng(11)
        a = DiscretePDF(2.0, -100_000, rng.random(80))
        b = DiscretePDF(2.0, +100_000, rng.random(80))
        d = convolve(a, b, backend="direct")
        f = convolve(a, b, backend="fft")
        assert d.offset == f.offset == 0  # offsets add, far supports cancel
        assert d.n_bins == f.n_bins == 159
        assert d.tv_distance(f) <= TV_TOL

    def test_mass_deficient_cumsum_operands(self):
        # Masses spanning many magnitudes make cumsum end a few ulp
        # from 1 (the "mass-deficient" shape); convolution equivalence
        # must be unaffected.
        rng = np.random.default_rng(1)
        m = rng.random(37) * 10.0 ** rng.integers(-12, 0, 37)
        a = DiscretePDF(2.0, 0, m)
        assert a._cdf[-1] != 1.0  # the shape is actually adversarial
        b = DiscretePDF(2.0, 4, rng.random(21))
        d = convolve(a, b, backend="direct")
        f = convolve(a, b, backend="fft")
        assert d.tv_distance(f) <= TV_TOL

    def test_large_operands_stay_within_budget(self):
        rng = np.random.default_rng(5)
        a = DiscretePDF(1.0, 0, rng.random(4096))
        b = DiscretePDF(1.0, 100, rng.random(4096))
        d = convolve(a, b, backend="direct")
        f = convolve(a, b, backend="fft")
        assert d.tv_distance(f) <= TV_TOL
        # percentile drift is bounded by the TV budget over the support
        for p in (0.5, 0.9, 0.99):
            assert abs(d.percentile(p) - f.percentile(p)) < 1e-6


class TestAutoBackend:
    @settings(max_examples=100, deadline=None)
    @given(a=pdfs(), b=pdfs())
    def test_auto_is_bitwise_direct_below_crossover(self, a, b):
        # max_bins=64 operands sit far below the ~512-bin crossover.
        d = convolve(a, b, backend="direct")
        c = convolve(a, b, backend="auto")
        assert c.offset == d.offset
        assert np.array_equal(c.masses, d.masses)

    def test_dispatch_small_pairs_direct(self):
        auto = AutoBackend()
        assert auto.chooses(33, 33) == "direct"
        assert auto.chooses(129, 129) == "direct"

    def test_dispatch_large_equal_pairs_fft(self):
        auto = AutoBackend()
        assert auto.chooses(2048, 2048) == "fft"
        assert auto.chooses(8193, 8193) == "fft"

    def test_dispatch_asymmetric_pairs_direct(self):
        # Direct convolution with a tiny operand is O(N) — always wins.
        auto = AutoBackend()
        assert auto.chooses(1, 8193) == "direct"
        assert auto.chooses(33, 8193) == "direct"

    def test_dispatch_matches_kernel_used(self):
        rng = np.random.default_rng(9)
        a = DiscretePDF(1.0, 0, rng.random(2048))
        b = DiscretePDF(1.0, 0, rng.random(2048))
        assert AutoBackend().chooses(a.n_bins, b.n_bins) == "fft"
        via_auto = convolve(a, b, backend="auto")
        via_fft = convolve(a, b, backend="fft")
        assert np.array_equal(via_auto.masses, via_fft.masses)

    def test_invalid_cost_ratio_rejected(self):
        with pytest.raises(DistributionError):
            AutoBackend(cost_ratio=0.0)


class TestBackendRegistry:
    def test_available_backends(self):
        assert set(available_backends()) == {
            "direct", "fft", "auto", "compiled", "compiled-auto"
        }

    def test_get_backend_by_name(self):
        for name in ALL_BACKENDS:
            assert get_backend(name).name == name

    def test_get_backend_is_singleton_per_name(self):
        assert get_backend("fft") is get_backend("fft")

    def test_unknown_name_raises(self):
        with pytest.raises(DistributionError, match="unknown convolution"):
            get_backend("winograd")

    def test_instance_passthrough(self):
        mine = FFTBackend()
        assert get_backend(mine) is mine

    def test_non_backend_object_raises(self):
        with pytest.raises(DistributionError):
            get_backend(object())

    def test_config_accepts_known_backends(self):
        for name in ALL_BACKENDS:
            assert AnalysisConfig(backend=name).backend == name

    def test_config_rejects_unknown_backend(self):
        """A typo'd name raises DistributionError naming the available
        backends — the same failure surface get_backend presents."""
        with pytest.raises(DistributionError, match="unknown convolution"):
            AnalysisConfig(backend="winograd")

    def test_config_unknown_backend_error_lists_available(self):
        try:
            AnalysisConfig(backend="winograd")
        except DistributionError as exc:
            for name in available_backends():
                assert name in str(exc)
        else:  # pragma: no cover
            pytest.fail("unknown backend was accepted")


class TestFFTCache:
    def test_repeated_calls_bitwise_identical(self):
        rng = np.random.default_rng(21)
        a = rng.random(2048)
        b = rng.random(2048)
        backend = FFTBackend()
        first = backend.convolve_masses(a, b)
        second = backend.convolve_masses(a, b)  # cache hit
        assert np.array_equal(first, second)

    def test_cache_keys_by_identity_not_value(self):
        rng = np.random.default_rng(22)
        a = rng.random(2048)
        b = rng.random(2048)
        backend = FFTBackend()
        backend.convolve_masses(a, b)
        # An equal-valued but distinct array must not alias the entry.
        a2 = a.copy()
        out = backend.convolve_masses(a2, b)
        assert np.allclose(out, backend.convolve_masses(a, b))

    def test_dead_operands_leave_cache(self):
        backend = FFTBackend()
        rng = np.random.default_rng(23)
        a = rng.random(2048)
        b = rng.random(2048)
        backend.convolve_masses(a, b)
        assert len(backend._rfft_cache) == 2
        del a, b
        assert len(backend._rfft_cache) == 0  # weakref callbacks fired

    def test_small_operands_not_cached(self):
        backend = FFTBackend()
        rng = np.random.default_rng(24)
        backend.convolve_masses(rng.random(16), rng.random(16))
        assert len(backend._rfft_cache) == 0


class TestOpCounterInvariance:
    def test_convolve_tally_invariant(self):
        rng = np.random.default_rng(31)
        a = DiscretePDF(2.0, 0, rng.random(600))
        b = DiscretePDF(2.0, 9, rng.random(600))
        tallies = {}
        for backend in ALL_BACKENDS:
            counter = OpCounter()
            convolve(a, b, counter=counter, backend=backend)
            convolve(a, b, trim_eps=1e-9, counter=counter, backend=backend)
            tallies[backend] = (counter.convolutions, counter.max_ops)
        assert tallies["direct"] == tallies["fft"] == tallies["auto"] == (2, 0)

    def test_max_tally_invariant(self):
        rng = np.random.default_rng(32)
        fanin = [DiscretePDF(2.0, 3 * i, rng.random(40)) for i in range(5)]
        tallies = {}
        for backend in ALL_BACKENDS:
            counter = OpCounter()
            stat_max(fanin[0], fanin[1], counter=counter, backend=backend)
            stat_max_many(fanin, counter=counter, backend=backend)
            tallies[backend] = (counter.convolutions, counter.max_ops)
        assert tallies["direct"] == tallies["fft"] == tallies["auto"] == (0, 5)


class TestStatMaxManyEdgeCases:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_raises(self, backend):
        with pytest.raises(DistributionError, match="at least one"):
            stat_max_many([], backend=backend)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_single_operand_passthrough(self, backend):
        rng = np.random.default_rng(41)
        p = DiscretePDF(2.0, -7, rng.random(30))
        out = stat_max_many([p], backend=backend)
        assert out is p  # untrimmed single operand passes through

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_single_operand_trims(self, backend):
        rng = np.random.default_rng(42)
        p = DiscretePDF(2.0, 0, rng.random(30) * 1e-6 + np.eye(30)[15])
        out = stat_max_many([p], trim_eps=1e-3, backend=backend)
        assert out.offset == p.trimmed(1e-3).offset
        assert np.array_equal(out.masses, p.trimmed(1e-3).masses)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_invalid_backend_rejected_even_for_single_operand(self, backend):
        p = DiscretePDF.delta(2.0, 10.0)
        with pytest.raises(DistributionError):
            stat_max_many([p], backend="bogus")


class TestPaddedCdfMassRenormalization:
    """Regression: trimmed/rounded operands used to deflate the MAX.

    ``_padded_cdfs`` carried each operand's final cumulative (1 minus a
    rounding deficit) rightwards, so the CDF product inherited every
    operand's deficit wherever its support had ended.  Rows are now
    renormalized to end at exactly 1.
    """

    @staticmethod
    def _adversarial_pdf(seed: int) -> DiscretePDF:
        rng = np.random.default_rng(seed)
        m = rng.random(37) * 10.0 ** rng.integers(-12, 0, 37)
        return DiscretePDF(2.0, int(rng.integers(-4, 4)), m)

    #: Seeds whose cumulative sums land strictly *below* 1 (rounding
    #: can overshoot too, but only deficits deflate the old product).
    UNDERSHOOT_SEEDS = (1, 8, 10)

    def test_rows_end_at_exactly_one(self):
        pdfs_ = [self._adversarial_pdf(s) for s in self.UNDERSHOOT_SEEDS]
        assert any(p._cdf[-1] != 1.0 for p in pdfs_)  # shape is real
        _lo, grid = _padded_cdfs(pdfs_)
        assert np.all(grid[:, -1] == 1.0)
        # rows stay monotone after renormalization
        assert np.all(np.diff(grid, axis=1) >= -1e-18)

    def test_max_cdf_reaches_one(self):
        pdfs_ = [self._adversarial_pdf(s) for s in (1, 8, 10, 13)]
        out = stat_max_many(pdfs_)
        assert out._cdf[-1] == pytest.approx(1.0, abs=1e-15)

    def test_old_vs_new_gap_pinned(self):
        """The fix is a few-ulp correction: pin both its existence and
        its magnitude so neither the bug nor a large behavior change
        can sneak back in."""
        pdfs_ = [self._adversarial_pdf(s) for s in self.UNDERSHOOT_SEEDS]
        assert all(p._cdf[-1] < 1.0 for p in pdfs_)
        lo = min(p.offset for p in pdfs_)
        hi = max(p.offset + p.n_bins for p in pdfs_)
        width = hi - lo
        old_grid = np.empty((len(pdfs_), width))
        for i, p in enumerate(pdfs_):
            start = p.offset - lo
            cs = p._cdf
            old_grid[i, :start] = 0.0
            old_grid[i, start : start + p.n_bins] = cs
            old_grid[i, start + p.n_bins :] = cs[-1]  # old deflation
        old_cdf = np.prod(old_grid, axis=0)
        out = stat_max_many(pdfs_)
        # Re-align onto the union grid (zero boundary bins strip off).
        new_masses = np.zeros(width)
        start = out.offset - lo
        new_masses[start : start + out.n_bins] = out.masses
        new_cdf = np.cumsum(new_masses)
        # old behavior really deflated the product...
        assert old_cdf[-1] < 1.0
        # ...the fix lifts it to exactly 1 at the end of the support...
        assert new_cdf[-1] == pytest.approx(1.0, abs=1e-15)
        # ...and the correction is ulp-scale, never a reshaping.
        assert np.max(np.abs(new_cdf - old_cdf)) < 1e-12
        assert np.all(new_cdf - old_cdf >= -1e-15)  # never pushed down
