"""Unit tests for the truncated-Gaussian variation model."""

import numpy as np
import pytest

from repro.dist.families import sample_truncated_gaussian, truncated_gaussian_pdf
from repro.errors import DistributionError

#: std shrink factor of a 3-sigma-truncated renormalized Gaussian.
TRUNC3_STD = 0.98658


class TestTruncatedGaussianPDF:
    def test_mean_preserved(self):
        pdf = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        assert pdf.mean() == pytest.approx(100.0, abs=0.05)

    def test_std_matches_truncated_law(self):
        pdf = truncated_gaussian_pdf(0.5, 100.0, 10.0)
        assert pdf.std() == pytest.approx(10.0 * TRUNC3_STD, rel=0.01)

    def test_support_respects_truncation(self):
        pdf = truncated_gaussian_pdf(1.0, 100.0, 10.0, truncation=3.0)
        lo, hi = pdf.support
        assert lo >= 100.0 - 30.0 - 1.0
        assert hi <= 100.0 + 30.0 + 1.0

    def test_symmetric_about_mean(self):
        pdf = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        assert pdf.percentile(0.5) == pytest.approx(100.0, abs=0.5)

    def test_mass_normalized(self):
        pdf = truncated_gaussian_pdf(1.0, 100.0, 10.0)
        assert pdf.masses.sum() == pytest.approx(1.0, abs=1e-12)

    def test_zero_sigma_point_mass(self):
        pdf = truncated_gaussian_pdf(2.0, 100.0, 0.0)
        assert pdf.is_point_mass
        assert pdf.mean() == pytest.approx(100.0)

    def test_tighter_truncation_smaller_std(self):
        wide = truncated_gaussian_pdf(0.5, 100.0, 10.0, truncation=3.0)
        tight = truncated_gaussian_pdf(0.5, 100.0, 10.0, truncation=1.0)
        assert tight.std() < wide.std()

    def test_invalid_params(self):
        with pytest.raises(DistributionError):
            truncated_gaussian_pdf(1.0, 100.0, -1.0)
        with pytest.raises(DistributionError):
            truncated_gaussian_pdf(1.0, 100.0, 10.0, truncation=0.0)


class TestSampler:
    def test_within_truncation_envelope(self, rng):
        s = sample_truncated_gaussian(rng, 100.0, 10.0, 20_000)
        assert s.min() >= 70.0
        assert s.max() <= 130.0

    def test_moments_match_pdf(self, rng):
        """The sampled law and the discretized law are the same law."""
        pdf = truncated_gaussian_pdf(0.25, 100.0, 10.0)
        s = sample_truncated_gaussian(rng, 100.0, 10.0, 200_000)
        assert s.mean() == pytest.approx(pdf.mean(), abs=0.1)
        assert s.std() == pytest.approx(pdf.std(), rel=0.01)

    def test_quantiles_match_pdf(self, rng):
        pdf = truncated_gaussian_pdf(0.25, 100.0, 10.0)
        s = sample_truncated_gaussian(rng, 100.0, 10.0, 200_000)
        for p in (0.1, 0.5, 0.9, 0.99):
            assert np.quantile(s, p) == pytest.approx(pdf.percentile(p), abs=0.2)

    def test_reproducible(self):
        a = sample_truncated_gaussian(np.random.default_rng(7), 100.0, 10.0, 100)
        b = sample_truncated_gaussian(np.random.default_rng(7), 100.0, 10.0, 100)
        assert np.array_equal(a, b)

    def test_zero_sigma_constant(self, rng):
        s = sample_truncated_gaussian(rng, 42.0, 0.0, 10)
        assert np.array_equal(s, np.full(10, 42.0))

    def test_zero_samples(self, rng):
        assert sample_truncated_gaussian(rng, 100.0, 10.0, 0).size == 0

    def test_invalid_params(self, rng):
        with pytest.raises(DistributionError):
            sample_truncated_gaussian(rng, 100.0, -1.0, 10)
        with pytest.raises(DistributionError):
            sample_truncated_gaussian(rng, 100.0, 10.0, -1)
