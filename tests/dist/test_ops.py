"""Unit tests for the ADD/MAX kernels and the OpCounter instrument."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.families import truncated_gaussian_pdf
from repro.dist.metrics import stochastically_le
from repro.dist.ops import OpCounter, convolve, stat_max, stat_max_many
from repro.dist.pdf import DiscretePDF
from repro.errors import DistributionError, GridMismatchError


@pytest.fixture
def g_small():
    return truncated_gaussian_pdf(1.0, 50.0, 5.0)


@pytest.fixture
def g_large():
    return truncated_gaussian_pdf(1.0, 80.0, 8.0)


class TestConvolve:
    def test_conserves_mass(self, g_small, g_large):
        c = convolve(g_small, g_large)
        assert c.masses.sum() == pytest.approx(1.0, abs=1e-12)

    def test_adds_means(self, g_small, g_large):
        c = convolve(g_small, g_large)
        assert c.mean() == pytest.approx(g_small.mean() + g_large.mean(), abs=1e-9)

    def test_adds_variances(self, g_small, g_large):
        c = convolve(g_small, g_large)
        assert c.var() == pytest.approx(g_small.var() + g_large.var(), rel=1e-9)

    def test_commutative(self, g_small, g_large):
        ab = convolve(g_small, g_large)
        ba = convolve(g_large, g_small)
        assert ab.offset == ba.offset
        assert np.allclose(ab.masses, ba.masses, atol=1e-15)

    def test_delta_is_identity_shift(self, g_small):
        shift = DiscretePDF.delta(1.0, 10.0)
        c = convolve(g_small, shift)
        assert c.offset == g_small.offset + 10
        # Identical up to one renormalization rounding (sum is 1 +- ulp).
        assert np.allclose(c.masses, g_small.masses, atol=1e-15, rtol=0.0)

    def test_grid_mismatch_rejected(self, g_small):
        other = truncated_gaussian_pdf(2.0, 50.0, 5.0)
        with pytest.raises(GridMismatchError):
            convolve(g_small, other)

    def test_trimming_bounds_loss(self, g_small, g_large):
        eps = 1e-6
        c = convolve(g_small, g_large, trim_eps=eps)
        full = convolve(g_small, g_large)
        assert c.n_bins <= full.n_bins
        assert abs(c.mean() - full.mean()) < eps * 1000


class TestStatMax:
    def test_cdf_is_product(self, g_small, g_large):
        m = stat_max(g_small, g_large)
        ts = m.times
        expected = np.asarray(g_small.cdf_at(ts)) * np.asarray(g_large.cdf_at(ts))
        # Product relation holds at grid knots (modulo the interpolant's
        # leading-ramp handling at the very first bin).
        assert np.allclose(np.asarray(m.cdf_at(ts))[1:], expected[1:], atol=1e-9)

    def test_commutative(self, g_small, g_large):
        ab = stat_max(g_small, g_large)
        ba = stat_max(g_large, g_small)
        assert ab.offset == ba.offset
        assert np.allclose(ab.masses, ba.masses, atol=1e-15)

    def test_associative(self, g_small, g_large):
        g3 = truncated_gaussian_pdf(1.0, 60.0, 6.0)
        left = stat_max(stat_max(g_small, g_large), g3)
        right = stat_max(g_small, stat_max(g_large, g3))
        assert left.offset == right.offset
        assert np.allclose(left.masses, right.masses, atol=1e-12)

    def test_dominates_both_operands(self, g_small, g_large):
        m = stat_max(g_small, g_large)
        assert stochastically_le(g_small, m)
        assert stochastically_le(g_large, m)

    def test_idempotent_on_identical(self, g_small):
        m = stat_max(g_small, g_small)
        # max of iid copies is later than either copy but within support
        assert m.support[1] == g_small.support[1]
        assert m.mean() >= g_small.mean()

    def test_disjoint_supports_picks_later(self, g_small):
        late = truncated_gaussian_pdf(1.0, 500.0, 5.0)
        m = stat_max(g_small, late)
        assert m.allclose(late, atol=1e-12)

    def test_grid_mismatch_rejected(self, g_small):
        with pytest.raises(GridMismatchError):
            stat_max(g_small, truncated_gaussian_pdf(2.0, 50.0, 5.0))


class TestStatMaxMany:
    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            stat_max_many([])

    def test_single_passthrough(self, g_small):
        assert stat_max_many([g_small]) is g_small

    def test_matches_pairwise_fold(self, g_small, g_large):
        g3 = truncated_gaussian_pdf(1.0, 60.0, 6.0)
        many = stat_max_many([g_small, g_large, g3])
        fold = stat_max(stat_max(g_small, g_large), g3)
        assert many.offset == fold.offset
        assert np.allclose(many.masses, fold.masses, atol=1e-12)

    def test_pair_matches_stat_max_bitwise(self, g_small, g_large):
        many = stat_max_many([g_small, g_large])
        pair = stat_max(g_small, g_large)
        assert many.offset == pair.offset
        assert np.array_equal(many.masses, pair.masses)

    def test_dominates_every_operand(self, g_small, g_large):
        ops = [g_small, g_large, truncated_gaussian_pdf(1.0, 65.0, 3.0)]
        m = stat_max_many(ops)
        for op in ops:
            assert stochastically_le(op, m)


class TestOpCounter:
    def test_hand_computed_totals(self, g_small, g_large):
        """3 convolutions + one 3-way max (2 reductions) + one pair (1)."""
        counter = OpCounter()
        c1 = convolve(g_small, g_large, counter=counter)
        c2 = convolve(g_small, g_small, counter=counter)
        c3 = convolve(g_large, g_large, counter=counter)
        stat_max_many([c1, c2, c3], counter=counter)
        stat_max(c1, c2, counter=counter)
        assert counter.convolutions == 3
        assert counter.max_ops == 3
        assert counter.total_ops == 6

    def test_single_operand_max_costs_nothing(self, g_small):
        counter = OpCounter()
        stat_max_many([g_small], counter=counter)
        assert counter.total_ops == 0

    def test_none_counter_is_silent(self, g_small, g_large):
        convolve(g_small, g_large)  # must not raise
        stat_max(g_small, g_large)

    def test_merge_and_reset(self):
        a = OpCounter(convolutions=2, max_ops=1)
        b = OpCounter(convolutions=3, max_ops=4)
        a.merge(b)
        assert (a.convolutions, a.max_ops) == (5, 5)
        a.reset()
        assert a.total_ops == 0

    def test_counting_does_not_change_results(self, g_small, g_large):
        counter = OpCounter()
        with_c = convolve(g_small, g_large, counter=counter)
        without = convolve(g_small, g_large)
        assert with_c.offset == without.offset
        assert np.array_equal(with_c.masses, without.masses)

    @given(
        deltas=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
            ),
            min_size=0,
            max_size=12,
        ),
        order_seed=st.randoms(use_true_random=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_is_order_invariant(self, deltas, order_seed):
        """The parallel execution layer's accounting contract: merging
        N per-shard counters in *any* order equals the sequential
        tally.  Shard completion order is nondeterministic, so the
        aggregate must not depend on it."""
        shards = [
            OpCounter(convolutions=c, max_ops=m,
                      convolve_cache_hits=ch, max_cache_hits=mh)
            for c, m, ch, mh in deltas
        ]
        sequential = OpCounter()
        for shard in shards:
            sequential.merge(shard)
        shuffled = list(shards)
        order_seed.shuffle(shuffled)
        scrambled = OpCounter()
        for shard in shuffled:
            scrambled.merge(shard)
        assert (
            scrambled.convolutions,
            scrambled.max_ops,
            scrambled.convolve_cache_hits,
            scrambled.max_cache_hits,
        ) == (
            sequential.convolutions,
            sequential.max_ops,
            sequential.convolve_cache_hits,
            sequential.max_cache_hits,
        )
        # Merging never leaks shard-local tallies into other fields.
        assert scrambled.total_requests == sum(
            s.total_requests for s in shards
        )


class TestOpCounterCacheAccounting:
    """Cache hits are recorded distinctly — they must never inflate
    the computed mult/add tallies, and computed-plus-hits must be
    invariant under the cache knob."""

    def _run_sequence(self, g_small, g_large, cache):
        counter = OpCounter()
        g3 = truncated_gaussian_pdf(1.0, 60.0, 6.0)
        for _ in range(3):  # repeats: the cacheable shape
            convolve(g_small, g_large, counter=counter, cache=cache)
            convolve(g_small, g3, counter=counter, cache=cache)
            stat_max_many([g_small, g_large, g3], counter=counter, cache=cache)
        return counter

    def test_hits_tallied_separately_not_as_convolutions(
        self, g_small, g_large
    ):
        from repro.dist.cache import ConvolutionCache

        counter = OpCounter()
        cache = ConvolutionCache()
        convolve(g_small, g_large, counter=counter, cache=cache)
        convolve(g_small, g_large, counter=counter, cache=cache)
        assert counter.convolutions == 1
        assert counter.convolve_cache_hits == 1
        stat_max_many([g_small, g_large], counter=counter, cache=cache)
        stat_max_many([g_small, g_large], counter=counter, cache=cache)
        assert counter.max_ops == 1
        assert counter.max_cache_hits == 1
        assert counter.total_ops == 2  # computed work only
        assert counter.cache_hits == 2
        assert counter.total_requests == 4

    def test_tallies_cache_invariant_for_misses(self, g_small, g_large):
        """First-touch (all-miss) tallies equal the cache-off tallies,
        and computed + hits always equals the cache-off totals."""
        from repro.dist.cache import ConvolutionCache

        off = self._run_sequence(g_small, g_large, None)
        on = self._run_sequence(g_small, g_large, ConvolutionCache())
        cold = self._run_sequence(
            g_small, g_large, ConvolutionCache(capacity=1)
        )  # capacity 1 churns: some repeats still miss
        assert off.cache_hits == 0
        assert on.convolutions + on.convolve_cache_hits == off.convolutions
        assert on.max_ops + on.max_cache_hits == off.max_ops
        assert on.total_requests == off.total_requests
        assert cold.convolutions + cold.convolve_cache_hits == off.convolutions
        assert cold.max_ops + cold.max_cache_hits == off.max_ops

    def test_merge_preserves_hit_fields_distinctly(self):
        a = OpCounter(convolutions=2, max_ops=1, convolve_cache_hits=5,
                      max_cache_hits=2)
        b = OpCounter(convolutions=1, max_ops=1, convolve_cache_hits=3,
                      max_cache_hits=4)
        a.merge(b)
        assert a.convolutions == 3  # hits did not leak into mult/adds
        assert a.max_ops == 2
        assert a.convolve_cache_hits == 8
        assert a.max_cache_hits == 6
        a.reset()
        assert a.total_requests == 0

    def test_hit_rate(self):
        c = OpCounter()
        assert c.cache_hit_rate == 0.0
        c.convolutions, c.convolve_cache_hits = 1, 3
        assert c.cache_hit_rate == pytest.approx(0.75)

    def test_cached_counting_does_not_change_results(self, g_small, g_large):
        from repro.dist.cache import ConvolutionCache

        cache = ConvolutionCache()
        counter = OpCounter()
        plain = convolve(g_small, g_large)
        for _ in range(2):
            cached = convolve(
                g_small, g_large, counter=counter, cache=cache
            )
            assert cached.offset == plain.offset
            assert np.array_equal(cached.masses, plain.masses)


class TestStatMaxGroups:
    """The grouped MAX sweep: per-group results and tallies must be
    indistinguishable from looping ``stat_max_many``."""

    def _groups(self, g_small, g_large):
        g3 = truncated_gaussian_pdf(1.0, 65.0, 6.0)
        far = truncated_gaussian_pdf(1.0, 500.0, 4.0)  # disjoint support
        return [
            [g_small, g_large],
            [g_small, far],
            [g_small, g_large, g3],
            [g3],                       # single operand: trim-through
            [g_small, g_large],         # duplicate of group 0
        ]

    def test_bitwise_vs_looped(self, g_small, g_large):
        from repro.dist.ops import stat_max_groups

        groups = self._groups(g_small, g_large)
        batched = stat_max_groups(groups, trim_eps=1e-9)
        looped = [stat_max_many(g, trim_eps=1e-9) for g in groups]
        for b, s in zip(batched, looped):
            assert b.offset == s.offset
            assert np.array_equal(b.masses, s.masses)

    def test_single_operand_passthrough_matches_stat_max_many(self, g_small):
        from repro.dist.ops import stat_max_groups

        counter = OpCounter()
        (out,) = stat_max_groups([[g_small]], counter=counter)
        assert out is g_small  # trimmed() returns self when untouched
        assert counter.total_requests == 0

    def test_empty_batch(self):
        from repro.dist.ops import stat_max_groups

        assert stat_max_groups([]) == []

    def test_empty_group_rejected(self, g_small):
        from repro.dist.ops import stat_max_groups

        with pytest.raises(DistributionError):
            stat_max_groups([[g_small], []])

    def test_grid_mismatch_rejected(self, g_small):
        from repro.dist.ops import stat_max_groups

        other = truncated_gaussian_pdf(2.0, 50.0, 5.0)
        with pytest.raises(GridMismatchError):
            stat_max_groups([[g_small, other]])

    def test_tallies_match_looped_with_and_without_cache(
        self, g_small, g_large
    ):
        """The satellite invariant: computed op counts *and* cache-hit
        tallies are identical between the grouped sweep and the
        sequential loop, cache on and off."""
        from repro.dist.cache import ConvolutionCache
        from repro.dist.ops import stat_max_groups

        groups = self._groups(g_small, g_large)
        for spec in (None, 4096):
            cb, cs = OpCounter(), OpCounter()
            cache_b = None if spec is None else ConvolutionCache(spec)
            cache_s = None if spec is None else ConvolutionCache(spec)
            stat_max_groups(groups, counter=cb, cache=cache_b)
            for g in groups:
                stat_max_many(g, counter=cs, cache=cache_s)
            assert (cb.max_ops, cb.max_cache_hits) == (
                cs.max_ops, cs.max_cache_hits
            )
            assert (cb.convolutions, cb.convolve_cache_hits) == (0, 0)
            if spec is not None:
                assert (
                    cache_b.stats.hits, cache_b.stats.misses
                ) == (cache_s.stats.hits, cache_s.stats.misses)

    def test_mixed_shapes_partition_correctly(self):
        """Groups of different operand counts and union widths stack
        into separate products yet come back in input order."""
        from repro.dist.ops import stat_max_groups

        mk = lambda c, s: truncated_gaussian_pdf(1.0, c, s)  # noqa: E731
        groups = [
            [mk(50.0, 5.0), mk(52.0, 5.0)],     # shape A
            [mk(90.0, 9.0), mk(94.0, 9.0), mk(92.0, 9.0)],
            [mk(51.0, 5.0), mk(53.0, 5.0)],     # shape A again
            [DiscretePDF.delta(1.0, 10.0), DiscretePDF.delta(1.0, 12.0)],
        ]
        batched = stat_max_groups(groups)
        for b, g in zip(batched, groups):
            ref = stat_max_many(g)
            assert b.offset == ref.offset
            assert np.array_equal(b.masses, ref.masses)
