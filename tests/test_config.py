"""Unit tests for the analysis configuration and error hierarchy."""

import pytest

from repro.config import (
    DEFAULT_CONFIG,
    DEFAULT_PERCENTILE,
    DEFAULT_SIGMA_FRACTION,
    DEFAULT_TRUNCATION_SIGMA,
    AnalysisConfig,
)
from repro.errors import (
    BenchParseError,
    DistributionError,
    GridMismatchError,
    LibraryError,
    NetlistError,
    OptimizationError,
    ReproError,
    TimingError,
)


class TestAnalysisConfig:
    def test_paper_defaults(self):
        """Section 4: sigma = 10% of nominal, 3-sigma truncation,
        99-percentile objective."""
        assert DEFAULT_SIGMA_FRACTION == 0.10
        assert DEFAULT_TRUNCATION_SIGMA == 3.0
        assert DEFAULT_PERCENTILE == 0.99
        assert DEFAULT_CONFIG.sigma_fraction == 0.10

    def test_immutable(self):
        with pytest.raises(Exception):
            DEFAULT_CONFIG.dt = 1.0

    def test_with_updates(self):
        derived = DEFAULT_CONFIG.with_updates(dt=8.0, delta_w=1.0)
        assert derived.dt == 8.0
        assert derived.delta_w == 1.0
        assert derived.percentile == DEFAULT_CONFIG.percentile
        assert DEFAULT_CONFIG.dt != 8.0  # original untouched

    @pytest.mark.parametrize(
        "field,value",
        [
            ("dt", 0.0),
            ("dt", -1.0),
            ("tail_eps", -0.1),
            ("tail_eps", 0.6),
            ("percentile", 0.0),
            ("percentile", 1.0),
            ("sigma_fraction", -0.1),
            ("truncation_sigma", 0.0),
            ("delta_w", 0.0),
            ("jobs", 0),
            ("jobs", -2),
            ("jobs", 1.5),
            ("jobs", True),
        ],
    )
    def test_invalid_values(self, field, value):
        with pytest.raises(ValueError):
            AnalysisConfig(**{field: value})

    def test_jobs_default_and_updates(self):
        assert DEFAULT_CONFIG.jobs == 1
        assert DEFAULT_CONFIG.with_updates(jobs=4).jobs == 4

    def test_zero_tail_eps_allowed(self):
        assert AnalysisConfig(tail_eps=0.0).tail_eps == 0.0

    def test_zero_sigma_allowed(self):
        assert AnalysisConfig(sigma_fraction=0.0).sigma_fraction == 0.0


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GridMismatchError,
            DistributionError,
            NetlistError,
            BenchParseError,
            LibraryError,
            TimingError,
            OptimizationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_bench_parse_error_line_numbers(self):
        err = BenchParseError("bad operator", line_no=7)
        assert "line 7" in str(err)
        assert err.line_no == 7

    def test_bench_parse_error_without_line(self):
        err = BenchParseError("general problem")
        assert err.line_no is None
        assert "general problem" in str(err)

    def test_bench_parse_is_netlist_error(self):
        assert issubclass(BenchParseError, NetlistError)

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise TimingError("boom")
