#!/usr/bin/env python3
"""Regenerate the golden files of the timing/optimizer harness.

Two families of goldens, one generator:

* **Sink goldens** (``tests/timing/golden/{c17,c432,c880,c1908}.json``):
  the full-SSTA sink statistics (mean/std/p50/p90/p99, bin count, op
  counts) on the default grid under the ``direct`` backend.  Locked by
  ``TestGoldenSinkStatistics``, which also asserts that level-batched
  and sequential propagation reproduce them identically.
* **Sizer goldens** (``tests/timing/golden/sizer_{c17,c432}.json``):
  the gate selections, final widths, and final objective (p99 sink
  delay) of the :class:`PrunedStatisticalSizer` and
  :class:`HeuristicStatisticalSizer` on the coarse test grid, asserted
  exact for every cache variant by ``TestSizerGoldenOutcomes``.

Either way a silently broken cache key, level-batch divergence, or any
change to the optimizer's decision-making fails loudly instead of
shifting results.  Run only when an *intentional* behavior change moves
the numbers:

    python scripts/make_sizer_goldens.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

GOLDEN_DIR = REPO_ROOT / "tests" / "timing" / "golden"

from repro.config import AnalysisConfig  # noqa: E402
from repro.core.heuristic_sizer import HeuristicStatisticalSizer  # noqa: E402
from repro.core.pruned_sizer import PrunedStatisticalSizer  # noqa: E402
from repro.dist.ops import OpCounter  # noqa: E402
from repro.netlist.benchmarks import load  # noqa: E402
from repro.timing.delay_model import DelayModel  # noqa: E402
from repro.timing.graph import TimingGraph  # noqa: E402
from repro.timing.ssta import run_ssta  # noqa: E402

#: Coarse grid (the test-suite FAST config) keeps each run sub-second;
#: the outcomes are just as binding on the optimizer logic.
CONFIG = dict(dt=8.0, delta_w=1.0)

#: (circuit, iterations) — c432 runs fewer iterations to bound test
#: time; each iteration still exercises hundreds of fronts.
CASES = {"c17": 6, "c432": 3}

#: Circuits whose full-SSTA sink statistics are locked on the default
#: grid (the two seed circuits plus the PR-4 additions).
SINK_CIRCUITS = ("c17", "c432", "c880", "c1908")

BEAM_WIDTH = 4


def sink_golden(circuit_name: str) -> dict:
    """Default-grid SSTA sink statistics under the reference backend.

    ``backend="direct"`` pins the generator to the reference kernel
    (``auto`` must reproduce it bitwise at default-grid sizes, which
    the golden tests then assert); level batching is the default mode
    and batched == sequential is separately enforced, so the recorded
    numbers are mode-independent.
    """
    cfg = AnalysisConfig(backend="direct")
    circuit = load(circuit_name)
    counter = OpCounter()
    result = run_ssta(
        TimingGraph(circuit), DelayModel(circuit, config=cfg),
        config=cfg, counter=counter,
    )
    sink = result.sink_pdf
    return {
        "circuit": circuit_name,
        "dt": cfg.dt,
        "generator_backend": "direct",
        "mean": sink.mean(),
        "std": sink.std(),
        "p50": sink.percentile(0.50),
        "p90": sink.percentile(0.90),
        "p99": sink.percentile(0.99),
        "n_bins": sink.n_bins,
        "convolutions": counter.convolutions,
        "max_ops": counter.max_ops,
    }


def outcome(sizer_cls, circuit_name: str, iterations: int, **kwargs) -> dict:
    cfg = AnalysisConfig(**CONFIG)
    circuit = load(circuit_name)
    result = sizer_cls(
        circuit, config=cfg, max_iterations=iterations, **kwargs
    ).run()
    return {
        "selected_gates": [list(s.all_gates) for s in result.steps],
        "sensitivities": [s.sensitivity for s in result.steps],
        "final_widths": circuit.widths(),
        "final_p99": result.final_objective,
        "initial_p99": result.initial_objective,
        "stop_reason": result.stop_reason,
    }


def main() -> int:
    for circuit_name in SINK_CIRCUITS:
        out = GOLDEN_DIR / f"{circuit_name}.json"
        out.write_text(json.dumps(sink_golden(circuit_name), indent=2) + "\n")
        print(f"wrote {out}")
    for circuit_name, iterations in CASES.items():
        payload = {
            "circuit": circuit_name,
            "dt": CONFIG["dt"],
            "delta_w": CONFIG["delta_w"],
            "max_iterations": iterations,
            "beam_width": BEAM_WIDTH,
            "optimizers": {
                "pruned-statistical": outcome(
                    PrunedStatisticalSizer, circuit_name, iterations
                ),
                "heuristic-statistical": outcome(
                    HeuristicStatisticalSizer,
                    circuit_name,
                    iterations,
                    beam_width=BEAM_WIDTH,
                ),
            },
        }
        out = GOLDEN_DIR / f"sizer_{circuit_name}.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
