#!/usr/bin/env python3
"""Regenerate the sizer-outcome golden files.

Writes ``tests/timing/golden/sizer_{c17,c432}.json``: the gate
selections, final widths, and final objective (p99 sink delay) of the
:class:`PrunedStatisticalSizer` and :class:`HeuristicStatisticalSizer`
on the coarse test grid.  ``tests/timing/test_golden.py`` asserts that
every future run — convolution cache on or off — reproduces these
outcomes exactly, so a silently broken cache key (or any change to the
optimizer's decision-making) fails loudly instead of shifting results.

Run only when an *intentional* behavior change moves the trajectory:

    python scripts/make_sizer_goldens.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

GOLDEN_DIR = REPO_ROOT / "tests" / "timing" / "golden"

from repro.config import AnalysisConfig  # noqa: E402
from repro.core.heuristic_sizer import HeuristicStatisticalSizer  # noqa: E402
from repro.core.pruned_sizer import PrunedStatisticalSizer  # noqa: E402
from repro.netlist.benchmarks import load  # noqa: E402

#: Coarse grid (the test-suite FAST config) keeps each run sub-second;
#: the outcomes are just as binding on the optimizer logic.
CONFIG = dict(dt=8.0, delta_w=1.0)

#: (circuit, iterations) — c432 runs fewer iterations to bound test
#: time; each iteration still exercises hundreds of fronts.
CASES = {"c17": 6, "c432": 3}

BEAM_WIDTH = 4


def outcome(sizer_cls, circuit_name: str, iterations: int, **kwargs) -> dict:
    cfg = AnalysisConfig(**CONFIG)
    circuit = load(circuit_name)
    result = sizer_cls(
        circuit, config=cfg, max_iterations=iterations, **kwargs
    ).run()
    return {
        "selected_gates": [list(s.all_gates) for s in result.steps],
        "sensitivities": [s.sensitivity for s in result.steps],
        "final_widths": circuit.widths(),
        "final_p99": result.final_objective,
        "initial_p99": result.initial_objective,
        "stop_reason": result.stop_reason,
    }


def main() -> int:
    for circuit_name, iterations in CASES.items():
        payload = {
            "circuit": circuit_name,
            "dt": CONFIG["dt"],
            "delta_w": CONFIG["delta_w"],
            "max_iterations": iterations,
            "beam_width": BEAM_WIDTH,
            "optimizers": {
                "pruned-statistical": outcome(
                    PrunedStatisticalSizer, circuit_name, iterations
                ),
                "heuristic-statistical": outcome(
                    HeuristicStatisticalSizer,
                    circuit_name,
                    iterations,
                    beam_width=BEAM_WIDTH,
                ),
            },
        }
        out = GOLDEN_DIR / f"sizer_{circuit_name}.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
