#!/usr/bin/env python3
"""Micro-benchmark of the repro.dist kernels — the SSTA hot path.

Measures convolve (under every backend: direct / fft / auto), stat_max
and stat_max_many throughput against bin count, locates the measured
direct-vs-FFT equal-size crossover, times a full ``run_ssta`` pass on
c432 per backend, and writes ``BENCH_dist.json`` next to the repo
root.  Every future optimization of the hot path should move these
numbers and nothing else.

``--check-drift`` additionally asserts that FFT-vs-direct sink
percentiles agree within tolerance (used by the CI benchmark smoke job
to catch backend regressions pre-merge); the process exits non-zero on
violation.

Run:  python scripts/bench_dist.py [--quick] [--check-drift]
                                   [--out BENCH_dist.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.config import AnalysisConfig  # noqa: E402
from repro.dist.backends import available_backends  # noqa: E402
from repro.dist.families import truncated_gaussian_pdf  # noqa: E402
from repro.dist.ops import convolve, stat_max, stat_max_many  # noqa: E402

#: Bin counts swept (sigma scales with the requested support width).
BIN_COUNTS = [32, 128, 512, 2048, 8192]
TRIM_EPS = 1e-9

#: FFT-vs-direct percentile agreement required by ``--check-drift``
#: (picoseconds, absolute, at every probed size and level).
DRIFT_TOL_PS = 1e-6


def _gaussian_with_bins(n_bins: int, center: float = 1000.0):
    """A truncated Gaussian whose support spans ~n_bins grid bins."""
    sigma = n_bins / 6.0  # +-3 sigma covers the requested width (dt=1)
    return truncated_gaussian_pdf(1.0, center, sigma)


def _time_op(fn, *, min_repeats: int = 5, min_seconds: float = 0.05) -> float:
    """Median seconds per call, adaptively repeated for stability."""
    fn()  # warm-up (cache cumulative sums and FFT transforms)
    times = []
    budget_start = time.perf_counter()
    while len(times) < min_repeats or time.perf_counter() - budget_start < min_seconds:
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
        if len(times) >= 200:
            break
    return float(np.median(times))


def _measured_crossover(lo: int = 64, hi: int = 4096):
    """Smallest swept equal-operand size where FFT beats direct, or
    ``None`` when FFT never wins within the sweep (recorded as-is so a
    missing crossover is never mistaken for a measured one)."""
    n = lo
    while n <= hi:
        a = _gaussian_with_bins(n, 1000.0)
        b = _gaussian_with_bins(n, 1200.0)
        t_direct = _time_op(lambda: convolve(a, b, backend="direct"),
                            min_seconds=0.02)
        t_fft = _time_op(lambda: convolve(a, b, backend="fft"),
                         min_seconds=0.02)
        if t_fft < t_direct:
            return a.n_bins
        n *= 2
    return None


def _bench_kernels(bin_counts) -> list:
    rows = []
    for n in bin_counts:
        a = _gaussian_with_bins(n, 1000.0)
        b = _gaussian_with_bins(n, 1200.0)
        fanin = [_gaussian_with_bins(n, 1000.0 + 40.0 * i) for i in range(4)]
        row = {"bins": a.n_bins}
        for backend in available_backends():
            t = _time_op(
                lambda: convolve(a, b, trim_eps=TRIM_EPS, backend=backend)
            )
            row[f"convolve_{backend}_us"] = round(t * 1e6, 3)
            row[f"convolve_{backend}_ops_per_s"] = round(1.0 / t, 1)
        t_max = _time_op(lambda: stat_max(a, b, trim_eps=TRIM_EPS))
        t_many = _time_op(lambda: stat_max_many(fanin, trim_eps=TRIM_EPS))
        row["stat_max_us"] = round(t_max * 1e6, 3)
        row["stat_max_many4_us"] = round(t_many * 1e6, 3)
        row["stat_max_ops_per_s"] = round(1.0 / t_max, 1)
        rows.append(row)
        print(
            f"bins={row['bins']:6d}  "
            f"convolve direct={row['convolve_direct_us']:9.1f} us  "
            f"fft={row['convolve_fft_us']:9.1f} us  "
            f"auto={row['convolve_auto_us']:9.1f} us  "
            f"stat_max={row['stat_max_us']:8.1f} us"
        )
    return rows


def _bench_ssta_c432() -> dict:
    """End-to-end run_ssta wall time on c432 per backend (fresh model
    each run so the delay-PDF cache does not leak across backends)."""
    from repro.netlist.benchmarks import load
    from repro.timing.delay_model import DelayModel
    from repro.timing.graph import TimingGraph
    from repro.timing.ssta import run_ssta

    out = {}
    for backend in available_backends():
        cfg = AnalysisConfig(backend=backend)
        circuit = load("c432")
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=cfg)

        def one_pass():
            return run_ssta(graph, model, config=cfg)

        t = _time_op(one_pass, min_repeats=3, min_seconds=0.2)
        out[backend] = {
            "run_ssta_ms": round(t * 1e3, 3),
            "p99_ps": round(one_pass().percentile(0.99), 6),
        }
        print(f"run_ssta c432 [{backend:6s}]  {t * 1e3:8.2f} ms  "
              f"p99={out[backend]['p99_ps']:.3f} ps")
    return out


def _check_drift(bin_counts) -> list:
    """FFT-vs-direct drift, kernel-level and through a full SSTA pass.

    Probes convolve percentiles at each swept size *and* the c17 sink
    percentiles end to end (cheap: milliseconds), so a regression that
    only manifests through the engine composition is still gated.
    Raises on breach.
    """
    from repro.netlist.benchmarks import load
    from repro.timing.delay_model import DelayModel
    from repro.timing.graph import TimingGraph
    from repro.timing.ssta import run_ssta

    failures = []
    report = []
    for n in bin_counts:
        a = _gaussian_with_bins(n, 1000.0)
        b = _gaussian_with_bins(n, 1200.0)
        d = convolve(a, b, trim_eps=TRIM_EPS, backend="direct")
        f = convolve(a, b, trim_eps=TRIM_EPS, backend="fft")
        worst = max(
            abs(d.percentile(p) - f.percentile(p))
            for p in (0.5, 0.9, 0.99)
        )
        tv = d.tv_distance(f)
        report.append(
            {"bins": a.n_bins, "max_percentile_drift_ps": worst, "tv": tv}
        )
        print(f"drift bins={a.n_bins:6d}  max|Δpercentile|={worst:.3e} ps  "
              f"tv={tv:.3e}")
        if worst > DRIFT_TOL_PS:
            failures.append((a.n_bins, worst))

    sinks = {}
    for backend in ("direct", "fft"):
        cfg = AnalysisConfig(backend=backend)
        circuit = load("c17")
        model = DelayModel(circuit, config=cfg)
        sinks[backend] = run_ssta(TimingGraph(circuit), model,
                                  config=cfg).sink_pdf
    sink_drift = max(
        abs(sinks["direct"].percentile(p) - sinks["fft"].percentile(p))
        for p in (0.5, 0.9, 0.99)
    )
    report.append({"circuit": "c17", "max_sink_drift_ps": sink_drift})
    print(f"drift c17 sink  max|Δpercentile|={sink_drift:.3e} ps")
    if sink_drift > DRIFT_TOL_PS:
        failures.append(("c17-sink", sink_drift))

    if failures:
        raise SystemExit(
            f"FFT-vs-direct percentile drift exceeds {DRIFT_TOL_PS} ps: "
            f"{failures}"
        )
    return report


def run(quick: bool = False, check_drift: bool = False) -> dict:
    bin_counts = BIN_COUNTS[:3] if quick else BIN_COUNTS
    rows = _bench_kernels(bin_counts)
    crossover = _measured_crossover(hi=1024 if quick else 4096)
    if crossover is None:
        print("direct/FFT equal-size crossover: not found within sweep")
    else:
        print(f"measured direct/FFT equal-size crossover: ~{crossover} bins")
    payload = {
        "benchmark": "repro.dist kernel throughput",
        "trim_eps": TRIM_EPS,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "backends": list(available_backends()),
        "measured_crossover_bins": crossover,
        "rows": rows,
    }
    if not quick:
        payload["run_ssta_c432"] = _bench_ssta_c432()
    if check_drift:
        payload["drift"] = _check_drift(bin_counts)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small bin counts only (CI smoke run)")
    parser.add_argument("--check-drift", action="store_true",
                        help="fail if FFT-vs-direct percentile drift "
                             f"exceeds {DRIFT_TOL_PS} ps")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_dist.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)
    payload = run(quick=args.quick, check_drift=args.check_drift)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
