#!/usr/bin/env python3
"""Micro-benchmark of the repro.dist kernels — the SSTA hot path.

Measures convolve / stat_max / stat_max_many throughput against bin
count and writes ``BENCH_dist.json`` next to the repo root, starting
the performance trajectory for the kernel layer: every future
optimization of the hot path (sparse grids, batched backends, FFT
convolution above a crossover) should move these numbers and nothing
else.

Run:  python scripts/bench_dist.py [--quick] [--out BENCH_dist.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.dist.families import truncated_gaussian_pdf  # noqa: E402
from repro.dist.ops import convolve, stat_max, stat_max_many  # noqa: E402

#: Bin counts swept (sigma scales with the requested support width).
BIN_COUNTS = [32, 128, 512, 2048, 8192]
TRIM_EPS = 1e-9


def _gaussian_with_bins(n_bins: int, center: float = 1000.0):
    """A truncated Gaussian whose support spans ~n_bins grid bins."""
    sigma = n_bins / 6.0  # +-3 sigma covers the requested width (dt=1)
    return truncated_gaussian_pdf(1.0, center, sigma)


def _time_op(fn, *, min_repeats: int = 5, min_seconds: float = 0.05) -> float:
    """Median seconds per call, adaptively repeated for stability."""
    fn()  # warm-up (cache the operands' cumulative sums)
    times = []
    budget_start = time.perf_counter()
    while len(times) < min_repeats or time.perf_counter() - budget_start < min_seconds:
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
        if len(times) >= 200:
            break
    return float(np.median(times))


def run(quick: bool = False) -> dict:
    bin_counts = BIN_COUNTS[:3] if quick else BIN_COUNTS
    rows = []
    for n in bin_counts:
        a = _gaussian_with_bins(n, 1000.0)
        b = _gaussian_with_bins(n, 1200.0)
        fanin = [_gaussian_with_bins(n, 1000.0 + 40.0 * i) for i in range(4)]
        t_conv = _time_op(lambda: convolve(a, b, trim_eps=TRIM_EPS))
        t_max = _time_op(lambda: stat_max(a, b, trim_eps=TRIM_EPS))
        t_many = _time_op(lambda: stat_max_many(fanin, trim_eps=TRIM_EPS))
        rows.append(
            {
                "bins": a.n_bins,
                "convolve_us": round(t_conv * 1e6, 3),
                "stat_max_us": round(t_max * 1e6, 3),
                "stat_max_many4_us": round(t_many * 1e6, 3),
                "convolve_ops_per_s": round(1.0 / t_conv, 1),
                "stat_max_ops_per_s": round(1.0 / t_max, 1),
            }
        )
        print(
            f"bins={a.n_bins:6d}  convolve={t_conv * 1e6:9.1f} us  "
            f"stat_max={t_max * 1e6:9.1f} us  "
            f"stat_max_many(4)={t_many * 1e6:9.1f} us"
        )
    return {
        "benchmark": "repro.dist kernel throughput",
        "trim_eps": TRIM_EPS,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small bin counts only (CI smoke run)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_dist.json"),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)
    payload = run(quick=args.quick)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
