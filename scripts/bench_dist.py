#!/usr/bin/env python3
"""Micro-benchmark of the repro.dist kernels — the SSTA hot path.

Measures convolve (under every registered backend, cold and through a
warm :class:`ConvolutionCache` hit), batched ``convolve_many`` against
the looped kernels, the compiled kernel tier against NumPy ``direct``
at sub-crossover sizes — scalar and batched miss path, plus the
re-measured compiled-vs-FFT crossover (the ``kernels.compiled``
section), stat_max and stat_max_many throughput against bin count,
locates the measured direct-vs-FFT equal-size crossover, times a full
``run_ssta`` pass on c432 per backend, runs the c432 sizers end-to-end cache-on vs
cache-off, compares level-batched against sequential propagation
(full SSTA per backend and the pruned-sizer cache-off miss path — the
``levels`` section), drives the analysis service under four concurrent
sessions sharing the process-wide cache (the ``service`` section:
aggregate hit rate vs isolated sessions, p50/p99 request latency, with
bitwise-vs-local and golden-file gates), probes overload behaviour
(the ``service.overload`` section: rejection latency at a provably
saturated admission queue with a p99 gate, no-thread-growth gate,
retry-client bitwise gate, and a 4-worker ``SO_REUSEPORT`` front run
with reconciled aggregate cache stats), walks the scaled-up netlist
ladder (the ``scale`` section: gates vs generation/SSTA wall-clock
and peak-RSS curves, each size point in its own subprocess so
``ru_maxrss`` is an honest per-size high-water mark, with the sparse
arrival-store footprint against its dense equivalent), and writes
``BENCH_dist.json`` next to the repo root.  Every future optimization of the hot path
should move these numbers and nothing else.

``--check-drift`` additionally asserts (used by the CI benchmark smoke
job to catch regressions pre-merge; the process exits non-zero on
violation):

* FFT-vs-direct sink percentiles agree within tolerance;
* the compiled tier's c17 sink sits within 1e-12 total variation of
  the direct sink (both compiled backends; trivially true degraded),
  and — when a provider resolved — the batched compiled miss path
  clears ``COMPILED_MIN_SPEEDUP`` over NumPy direct at the smallest
  swept sizes;
* cache-on vs cache-off sink percentiles are **exactly** equal per
  backend (the cache's bitwise promise, probed end to end);
* level-batched vs sequential sink distributions are **bitwise
  identical** per backend, cache on and off (the level scheduler's
  promise — any inequality at all fails the gate);
* the c432 sink under ``jobs=2`` (sharded-parallel execution) is
  **bitwise identical** to the serial sink and reproduces the golden
  percentiles, under **both** operand transports (the shared-memory
  arena, dispatch forced, and the pickle wire format) — the
  execution-plan layer's promise;
* the arena payload gate: with dispatch forced, shm shard payloads
  pickle to <10% of the pickle transport's bytes on c432 (index
  tuples, not mass vectors, cross the process boundary);
* the quick c17 sizer run serves at least ``--min-hit-rate`` of its
  kernel requests from the cache — a silently broken cache key fails
  the build instead of quietly recomputing everything;
* the scale ladder stays linear: doubling the gate count may cost at
  most ~2.8x wall-clock (generation and SSTA separately — a quadratic
  regression in either shows up here first), and the sparse-storage
  sink agrees with the dense run within 1e-12 total variation.

Run:  python scripts/bench_dist.py [--quick] [--check-drift]
                                   [--min-hit-rate R] [--out BENCH.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.config import AnalysisConfig  # noqa: E402
from repro.dist.backends import available_backends  # noqa: E402
from repro.dist.cache import ConvolutionCache  # noqa: E402
from repro.dist.families import truncated_gaussian_pdf  # noqa: E402
from repro.dist.ops import (  # noqa: E402
    convolve,
    convolve_many,
    stat_max,
    stat_max_many,
)

#: Bin counts swept (sigma scales with the requested support width).
BIN_COUNTS = [32, 128, 512, 2048, 8192]
TRIM_EPS = 1e-9

#: FFT-vs-direct percentile agreement required by ``--check-drift``
#: (picoseconds, absolute, at every probed size and level).
DRIFT_TOL_PS = 1e-6

#: Minimum cache hit rate the quick sizer benchmark must reach under
#: ``--check-drift`` (fraction of kernel requests served from the
#: memo; the c17 run measures ~0.55, so 0.3 flags a broken key while
#: tolerating workload drift).
DEFAULT_MIN_HIT_RATE = 0.3

#: Pairs per batch in the batched-vs-looped comparison.
BATCH_SIZE = 8

#: Sub-crossover supports probed by the compiled-tier section (odd
#: counts on purpose: real trimmed PDFs have odd-ish supports, and the
#: interesting regime is the small-operand miss path where per-result
#: dispatch used to dominate).
COMPILED_BIN_COUNTS = [17, 33, 65, 129, 513, 2049]
#: Pairs per compiled-tier batch — a wide level, the shape the fused
#: miss path exists for (BATCH_SIZE=8 stays the generic section's
#: fan-in shape).
COMPILED_BATCH = 64
#: Minimum kernel-level miss-path speedup ``--check-drift`` demands
#: from the compiled tier over the per-result NumPy dispatch sequence
#: it replaced, at the smallest swept sizes.
COMPILED_MIN_SPEEDUP = 5.0
COMPILED_SPEEDUP_GATE_BINS = (17, 33)
#: Re-measurement attempts before the speedup gate fails: perf gates
#: on shared 1-CPU runners ask "can the machine do it", so the best
#: of a few attempts is the honest reading of a noisy box.
COMPILED_GATE_ATTEMPTS = 3
#: compiled-vs-direct sink agreement budget (total variation) for the
#: end-to-end drift gate.
COMPILED_SINK_TV = 1e-12


def _gaussian_with_bins(n_bins: int, center: float = 1000.0):
    """A truncated Gaussian whose support spans ~n_bins grid bins."""
    sigma = n_bins / 6.0  # +-3 sigma covers the requested width (dt=1)
    return truncated_gaussian_pdf(1.0, center, sigma)


def _time_op(fn, *, min_repeats: int = 5, min_seconds: float = 0.05) -> float:
    """Median seconds per call, adaptively repeated for stability."""
    fn()  # warm-up (cache cumulative sums and FFT transforms)
    times = []
    budget_start = time.perf_counter()
    while len(times) < min_repeats or time.perf_counter() - budget_start < min_seconds:
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
        if len(times) >= 200:
            break
    return float(np.median(times))


def _measured_crossover(lo: int = 64, hi: int = 4096):
    """Smallest swept equal-operand size where FFT beats direct, or
    ``None`` when FFT never wins within the sweep (recorded as-is so a
    missing crossover is never mistaken for a measured one)."""
    n = lo
    while n <= hi:
        a = _gaussian_with_bins(n, 1000.0)
        b = _gaussian_with_bins(n, 1200.0)
        t_direct = _time_op(lambda: convolve(a, b, backend="direct"),
                            min_seconds=0.02)
        t_fft = _time_op(lambda: convolve(a, b, backend="fft"),
                         min_seconds=0.02)
        if t_fft < t_direct:
            return a.n_bins
        n *= 2
    return None


def _bench_kernels(bin_counts) -> list:
    rows = []
    for n in bin_counts:
        a = _gaussian_with_bins(n, 1000.0)
        b = _gaussian_with_bins(n, 1200.0)
        fanin = [_gaussian_with_bins(n, 1000.0 + 40.0 * i) for i in range(4)]
        row = {"bins": a.n_bins}
        for backend in available_backends():
            t = _time_op(
                lambda: convolve(a, b, trim_eps=TRIM_EPS, backend=backend)
            )
            row[f"convolve_{backend}_us"] = round(t * 1e6, 3)
            row[f"convolve_{backend}_ops_per_s"] = round(1.0 / t, 1)
        # Warm-hit path of the keyed result cache (cache-on row; the
        # cold cache-off numbers are the per-backend rows above).
        cache = ConvolutionCache()
        t_hit = _time_op(
            lambda: convolve(a, b, trim_eps=TRIM_EPS, cache=cache)
        )
        row["convolve_cached_hit_us"] = round(t_hit * 1e6, 3)
        t_max = _time_op(lambda: stat_max(a, b, trim_eps=TRIM_EPS))
        t_many = _time_op(lambda: stat_max_many(fanin, trim_eps=TRIM_EPS))
        row["stat_max_us"] = round(t_max * 1e6, 3)
        row["stat_max_many4_us"] = round(t_many * 1e6, 3)
        row["stat_max_ops_per_s"] = round(1.0 / t_max, 1)
        rows.append(row)
        print(
            f"bins={row['bins']:6d}  "
            f"convolve direct={row['convolve_direct_us']:9.1f} us  "
            f"fft={row['convolve_fft_us']:9.1f} us  "
            f"auto={row['convolve_auto_us']:9.1f} us  "
            f"cached-hit={row['convolve_cached_hit_us']:7.2f} us  "
            f"stat_max={row['stat_max_us']:8.1f} us"
        )
    return rows


def _bench_batched(bin_counts) -> list:
    """Batched ``convolve_many`` against a loop of ``convolve`` calls —
    ``BATCH_SIZE`` same-shape pairs, the SSTA fan-in shape."""
    rows = []
    for n in bin_counts:
        pairs = [
            (
                _gaussian_with_bins(n, 1000.0 + 7.0 * i),
                _gaussian_with_bins(n, 1200.0 + 11.0 * i),
            )
            for i in range(BATCH_SIZE)
        ]
        row = {"bins": pairs[0][0].n_bins, "batch": BATCH_SIZE}
        for backend in ("direct", "fft"):
            t_loop = _time_op(
                lambda: [
                    convolve(a, b, trim_eps=TRIM_EPS, backend=backend)
                    for a, b in pairs
                ]
            )
            t_batch = _time_op(
                lambda: convolve_many(
                    pairs, trim_eps=TRIM_EPS, backend=backend
                )
            )
            row[f"looped_{backend}_us"] = round(t_loop * 1e6, 3)
            row[f"batched_{backend}_us"] = round(t_batch * 1e6, 3)
            row[f"batched_{backend}_speedup"] = round(t_loop / t_batch, 3)
        rows.append(row)
        print(
            f"batch of {BATCH_SIZE} @ bins={row['bins']:6d}  "
            f"fft looped={row['looped_fft_us']:9.1f} us  "
            f"batched={row['batched_fft_us']:9.1f} us  "
            f"({row['batched_fft_speedup']:.2f}x)"
        )
    return rows


def _rand_pdf(rng, n: int, offset: int = 0):
    """An exactly-``n``-bin PDF of strictly positive random masses —
    the compiled-tier sweep wants exact sizes, not the ~n supports a
    truncated Gaussian trims to."""
    from repro.dist.pdf import DiscretePDF

    return DiscretePDF(2.0, offset, rng.random(n) + 1e-4)


def _bench_compiled(quick: bool) -> dict:
    """The compiled kernel tier against the NumPy ``direct`` kernels —
    the ``kernels.compiled`` section.

    Three comparisons per sub-crossover size, all on the cache-miss
    path over a ``COMPILED_BATCH``-wide level:

    * ``scalar`` — one ``convolve`` call per pair (one FFI round trip
      each; the per-call floor);
    * ``batched`` — the ``convolve_many`` miss path end to end,
      including the batch bookkeeping both backends share;
    * ``kernel`` — the per-result work the tier actually replaced: the
      NumPy dispatch sequence (``np.convolve`` + the ``_trusted`` trim
      construction) per pair, against one fused provider call for the
      whole batch.  This isolates the dispatch elimination from the
      shared ``convolve_many`` overhead and is what the drift gate
      measures.

    Also re-measures the compiled-vs-FFT equal-size crossover the
    ``compiled-auto`` cost model guards, recorded like
    ``measured_crossover_bins``.  On a degraded host (no numba, no C
    compiler) the section records the degradation, kernel rows are
    absent, and the scalar/batched ratios honestly sit near 1.0x —
    the fallback *is* the direct arithmetic.
    """
    from repro.dist import _compiled
    from repro.dist.backends import COMPILED_EQUAL_SIZE_CROSSOVER_BINS
    from repro.dist.pdf import DiscretePDF

    kind = _compiled.provider_kind()
    provider = _compiled.get_provider()
    out = {
        "provider": kind,
        "degraded_reason": None if kind else _compiled.fail_reason(),
        "batch": COMPILED_BATCH,
    }
    rng = np.random.default_rng(2005)
    rows = []
    for n in COMPILED_BIN_COUNTS[:4] if quick else COMPILED_BIN_COUNTS:
        pairs = [
            (_rand_pdf(rng, n), _rand_pdf(rng, n, offset=3))
            for _ in range(COMPILED_BATCH)
        ]
        a, b = pairs[0]
        row = {"bins": n}
        for backend in ("direct", "compiled"):
            t = _time_op(
                lambda: convolve(a, b, trim_eps=TRIM_EPS, backend=backend)
            )
            row[f"scalar_{backend}_us"] = round(t * 1e6, 3)
            t = _time_op(
                lambda: convolve_many(pairs, trim_eps=TRIM_EPS,
                                      backend=backend)
            )
            row[f"batched_{backend}_us"] = round(t * 1e6, 3)
        row["scalar_speedup"] = round(
            row["scalar_direct_us"] / row["scalar_compiled_us"], 3
        )
        row["batched_speedup"] = round(
            row["batched_direct_us"] / row["batched_compiled_us"], 3
        )
        if provider is not None:
            masses = [(p.masses, q.masses) for p, q in pairs]
            dts = [p.dt for p, _ in pairs]
            offs = [p.offset + q.offset for p, q in pairs]

            def numpy_kernel():
                trusted = DiscretePDF._trusted  # noqa: SLF001
                for (am, bm), dt, off in zip(masses, dts, offs):
                    raw = np.convolve(am, bm)
                    trusted(dt, off, raw).trimmed(TRIM_EPS)

            t_nk = _time_op(numpy_kernel)
            t_ck = _time_op(
                lambda: provider.conv_trim_many(
                    masses, dts, offs, TRIM_EPS, False
                )
            )
            row["kernel_direct_us"] = round(t_nk * 1e6, 3)
            row["kernel_compiled_us"] = round(t_ck * 1e6, 3)
            row["kernel_speedup"] = round(t_nk / t_ck, 3)
        rows.append(row)
        kern = (
            f"  kernel {row['kernel_speedup']:.2f}x"
            if "kernel_speedup" in row else ""
        )
        print(
            f"compiled bins={n:5d}  scalar "
            f"direct={row['scalar_direct_us']:8.2f} us "
            f"compiled={row['scalar_compiled_us']:8.2f} us "
            f"({row['scalar_speedup']:.2f}x)   batch-{COMPILED_BATCH} "
            f"direct={row['batched_direct_us']:9.1f} us "
            f"compiled={row['batched_compiled_us']:9.1f} us "
            f"({row['batched_speedup']:.2f}x){kern}"
        )
    out["rows"] = rows

    # compiled-vs-FFT equal-size crossover: smallest swept size where
    # FFT beats the compiled direct loop (None when FFT never wins in
    # the sweep) — the measurement behind the compiled-auto cost
    # model, next to its compile-time anchor.
    crossover = None
    n = 64
    while n <= (1024 if quick else 8192):
        a = _rand_pdf(rng, n)
        b = _rand_pdf(rng, n, offset=3)
        t_comp = _time_op(
            lambda: convolve(a, b, backend="compiled"), min_seconds=0.02
        )
        t_fft = _time_op(
            lambda: convolve(a, b, backend="fft"), min_seconds=0.02
        )
        if t_fft < t_comp:
            crossover = n
            break
        n *= 2
    out["measured_compiled_fft_crossover_bins"] = crossover
    out["crossover_anchor_bins"] = COMPILED_EQUAL_SIZE_CROSSOVER_BINS
    print(
        "measured compiled/FFT equal-size crossover: "
        + (f"~{crossover} bins" if crossover else "not found within sweep")
        + f" (compiled-auto anchor {COMPILED_EQUAL_SIZE_CROSSOVER_BINS})"
    )
    return out


def _sizer_case(sizer_cls, circuit_name: str, iterations: int, cache, **kw):
    from repro.netlist.benchmarks import load

    cfg = AnalysisConfig(cache=cache)
    circuit = load(circuit_name)
    t0 = time.perf_counter()
    result = sizer_cls(
        circuit, config=cfg, max_iterations=iterations, **kw
    ).run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "selected": [s.gate for s in result.steps],
        "final_objective": result.final_objective,
        "hit_rate": result.cache_hit_rate,
    }


def _bench_sizers(quick: bool) -> dict:
    """End-to-end optimizer wall time, cache-off vs cache-on.

    The cached run must select bitwise-identical gates and reach the
    identical final objective (also locked by the sizer-golden tests);
    the recorded speedups are the honest end-to-end numbers, with the
    per-warm-iteration gain visible in the brute-force row where the
    unpruned loop recomputes whole SSTAs the cache can serve.
    """
    from repro.core.brute_force_sizer import BruteForceStatisticalSizer
    from repro.core.pruned_sizer import PrunedStatisticalSizer

    cases = [("pruned_c17", PrunedStatisticalSizer, "c17", 6, {})]
    if not quick:
        cases = [
            ("pruned_c432", PrunedStatisticalSizer, "c432", 20, {}),
            ("brute_force_c432", BruteForceStatisticalSizer, "c432", 3, {}),
        ]
    out = {}
    for name, cls, circuit, iters, kw in cases:
        off = _sizer_case(cls, circuit, iters, None, **kw)
        on = _sizer_case(cls, circuit, iters, ConvolutionCache(1 << 17), **kw)
        identical = (
            off["selected"] == on["selected"]
            and off["final_objective"] == on["final_objective"]
        )
        out[name] = {
            "iterations": iters,
            "cache_off_s": round(off["wall_s"], 3),
            "cache_on_s": round(on["wall_s"], 3),
            "speedup": round(off["wall_s"] / on["wall_s"], 3),
            "cache_hit_rate": round(on["hit_rate"], 4),
            "identical_results": identical,
        }
        print(
            f"sizer {name:18s} off={off['wall_s']:7.2f}s  "
            f"on={on['wall_s']:7.2f}s  "
            f"({out[name]['speedup']:.2f}x, hit rate "
            f"{on['hit_rate']:.2f}, identical={identical})"
        )
        if not identical:
            raise SystemExit(
                f"cache-on selections diverged from cache-off in {name}"
            )
    return out


def _audit_payload(circuit_name: str) -> dict:
    """Per-level wire-payload accounting for one ``run_ssta`` pass at
    ``jobs=2`` under each transport, with dispatch *forced* (the shm
    cost gate zeroed) so every level crosses the process boundary:
    pickled shard bytes, shard and dispatch counts, and the shm
    reduction factor the arena buys over the pickle wire format."""
    from repro.exec import get_executor
    from repro.netlist.benchmarks import load
    from repro.timing.delay_model import DelayModel
    from repro.timing.graph import TimingGraph
    from repro.timing.ssta import run_ssta

    audit = {}
    for transport in ("shm", "pickle"):
        ex = get_executor(2, transport)
        saved = ex.min_dispatch_cost_us
        ex.min_dispatch_cost_us = 0.0
        ex.payload_audit = True
        ex.payload_bytes = ex.payload_shards = ex.dispatches = 0
        try:
            cfg = AnalysisConfig(jobs=2, transport=transport)
            circuit = load(circuit_name)
            model = DelayModel(circuit, config=cfg)
            run_ssta(TimingGraph(circuit), model, config=cfg)
            audit[transport] = {
                "payload_bytes": ex.payload_bytes,
                "shards": ex.payload_shards,
                "dispatched_levels": ex.dispatches,
                "bytes_per_level": round(
                    ex.payload_bytes / max(1, ex.dispatches), 1
                ),
            }
        finally:
            ex.payload_audit = False
            ex.min_dispatch_cost_us = saved
    shm_b = audit["shm"]["payload_bytes"]
    pkl_b = audit["pickle"]["payload_bytes"]
    audit["shm_reduction_x"] = round(pkl_b / max(1, shm_b), 2)
    print(f"payload {circuit_name}  shm={shm_b} B  pickle={pkl_b} B  "
          f"({audit['shm_reduction_x']:.1f}x smaller, "
          f"{audit['shm']['dispatched_levels']} dispatched levels)")
    return audit


def _bench_levels(quick: bool) -> dict:
    """Level-batched vs sequential propagation.

    Two views: a full ``run_ssta`` pass per backend (pure engine
    dispatch overhead), and the pruned sizer run **cache-off** — the
    miss path this PR targets, where every kernel request is computed
    and the per-node Python dispatch used to dominate.  Both modes must
    agree exactly (selections and objectives; bitwise sink equality is
    gated separately by ``--check-drift``).
    """
    from repro.core.pruned_sizer import PrunedStatisticalSizer
    from repro.netlist.benchmarks import load
    from repro.timing.delay_model import DelayModel
    from repro.timing.graph import TimingGraph
    from repro.timing.ssta import run_ssta

    out = {"run_ssta": {}, "sizer_miss_path": {}}
    for circuit_name in ["c17"] if quick else ["c432", "c880"]:
        per_backend = {}
        for backend in available_backends():
            row = {}
            for level_batch in (True, False):
                cfg = AnalysisConfig(backend=backend,
                                     level_batch=level_batch)
                circuit = load(circuit_name)
                graph = TimingGraph(circuit)
                model = DelayModel(circuit, config=cfg)
                t = _time_op(lambda: run_ssta(graph, model, config=cfg),
                             min_repeats=3, min_seconds=0.2)
                key = "batched_ms" if level_batch else "sequential_ms"
                row[key] = round(t * 1e3, 3)
            row["speedup"] = round(row["sequential_ms"] / row["batched_ms"],
                                   3)
            per_backend[backend] = row
            print(f"run_ssta {circuit_name} [{backend:6s}]  "
                  f"sequential={row['sequential_ms']:8.2f} ms  "
                  f"batched={row['batched_ms']:8.2f} ms  "
                  f"({row['speedup']:.2f}x)")
        out["run_ssta"][circuit_name] = per_backend
    # Sharded-parallel execution: full run_ssta per jobs count under
    # both operand transports.  The wall-clock numbers are honest
    # about this machine: with the default dispatch cost gate the shm
    # plan folds cheap default-grid levels inline (a whole ISCAS level
    # is well under the ~1 ms worker round trip), so jobs > 1 tracks
    # serial (~1.0x) instead of losing to IPC latency; the pickle rows
    # keep the ungated PR-5 behaviour for reference.  The payload rows
    # (dispatch *forced*) record what each level actually ships across
    # the process boundary — the multi-core projection: once per-level
    # kernel work exceeds the round trip (fine grids, wide levels),
    # speedup is bounded by level width and cores, not payload bytes,
    # because index tuples are ~20x smaller than pickled mass vectors.
    # Bitwise equality against jobs=1 is asserted here for every
    # (transport, jobs) plan and gated again in --check-drift.
    import os

    from repro.exec import shutdown_executors

    out["parallel"] = {
        "cpu_count": os.cpu_count(),
        "note": (
            "1-CPU container: the default dispatch cost gate folds "
            "default-grid levels inline, so shm jobs>1 tracks serial "
            "(~1.0x +/- timing noise) while the ungated pickle rows "
            "keep paying full IPC. Multi-core projection: the gate "
            "opens on fine-grid/wide levels (>~5 ms kernel work per "
            "level); with index-tuple payloads ~20x smaller than "
            "pickled vectors (payload rows below, dispatch forced), "
            "speedup there is bounded by level width and cores, not "
            "serialization."
        ),
    }
    for circuit_name in ["c17"] if quick else ["c432", "c880"]:
        row = {}
        cfg1 = AnalysisConfig(jobs=1)
        circuit = load(circuit_name)
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=cfg1)
        serial_sink = run_ssta(graph, model, config=cfg1).sink_pdf
        t = _time_op(lambda: run_ssta(graph, model, config=cfg1),
                     min_repeats=3, min_seconds=0.2)
        row["jobs1_ms"] = round(t * 1e3, 3)
        for transport in ("shm", "pickle"):
            trow = {}
            for jobs in (2, 4):
                cfg = AnalysisConfig(jobs=jobs, transport=transport)
                circuit = load(circuit_name)
                graph = TimingGraph(circuit)
                model = DelayModel(circuit, config=cfg)
                # Warm the pool (spawn cost is a one-time tax, not a
                # per-pass cost) before timing.
                sink = run_ssta(graph, model, config=cfg).sink_pdf
                if (sink.offset != serial_sink.offset
                        or not np.array_equal(sink.masses,
                                              serial_sink.masses)):
                    raise SystemExit(
                        f"parallel {transport} jobs={jobs} sink diverged "
                        f"from serial on {circuit_name}"
                    )
                t = _time_op(lambda: run_ssta(graph, model, config=cfg),
                             min_repeats=3, min_seconds=0.2)
                trow[f"jobs{jobs}_ms"] = round(t * 1e3, 3)
                trow[f"jobs{jobs}_speedup"] = round(
                    row["jobs1_ms"] / trow[f"jobs{jobs}_ms"], 3
                )
            row[transport] = trow
            print(f"parallel {circuit_name} [{transport:6s}]  "
                  f"jobs1={row['jobs1_ms']:8.2f} ms  "
                  f"jobs2={trow['jobs2_ms']:8.2f} ms "
                  f"({trow['jobs2_speedup']:.2f}x)  "
                  f"jobs4={trow['jobs4_ms']:8.2f} ms "
                  f"({trow['jobs4_speedup']:.2f}x)")
        row["payload"] = _audit_payload(circuit_name)
        out["parallel"][circuit_name] = row
    shutdown_executors()
    for circuit_name, iters in (
        [("c17", 6)] if quick else [("c432", 8), ("c880", 4)]
    ):
        row = {"iterations": iters}
        outcomes = {}
        for level_batch in (True, False):
            cfg = AnalysisConfig(level_batch=level_batch)
            circuit = load(circuit_name)
            t0 = time.perf_counter()
            result = PrunedStatisticalSizer(
                circuit, config=cfg, max_iterations=iters
            ).run()
            wall = time.perf_counter() - t0
            key = "batched_s" if level_batch else "sequential_s"
            row[key] = round(wall, 3)
            outcomes[level_batch] = (
                [s.all_gates for s in result.steps],
                result.final_objective,
            )
        if outcomes[True] != outcomes[False]:
            raise SystemExit(
                f"level-batched selections diverged from sequential in "
                f"pruned {circuit_name}"
            )
        row["speedup"] = round(row["sequential_s"] / row["batched_s"], 3)
        out["sizer_miss_path"][circuit_name] = row
        print(f"pruned miss-path {circuit_name}  "
              f"sequential={row['sequential_s']:7.2f}s  "
              f"batched={row['batched_s']:7.2f}s  ({row['speedup']:.2f}x)")
    return out


#: Concurrent service workload: four sessions, pairwise-overlapping
#: circuits so sharing the process-wide cache pays.
SERVICE_WORKLOADS = [
    ("c17", 1.0),
    ("c17", 1.0),
    ("c432", 0.25),
    ("c432", 0.25),
]
SERVICE_ITERATIONS = 3


def _bench_service(quick: bool) -> dict:
    """The analysis service under concurrent sessions.

    Runs ``SERVICE_WORKLOADS`` (analyze + optimize per session) twice:
    once isolated (each session against its own cold server — the
    no-sharing reference) and once concurrently against ONE server
    sharing the process-wide cache.  Records the aggregate kernel hit
    rate against the best isolated rate plus p50/p99 request latency,
    and **asserts** (SystemExit on breach, like the other bench gates):

    * every concurrent session's sink is bitwise identical to a serial
      local run, and its sizing trajectory matches exactly;
    * the c17 service sink reproduces the golden percentiles within
      ``DRIFT_TOL_PS``;
    * the aggregate hit rate exceeds the best isolated session's rate
      (sharing must pay, or the service has no reason to exist).
    """
    import threading

    from repro.config import DEFAULT_CONFIG
    from repro.core.pruned_sizer import PrunedStatisticalSizer
    from repro.netlist.benchmarks import load
    from repro.service import ServiceClient, ServiceState, start_server
    from repro.timing.delay_model import DelayModel
    from repro.timing.graph import TimingGraph
    from repro.timing.ssta import run_ssta

    def serve_one():
        state = ServiceState(config=DEFAULT_CONFIG, cache=1 << 17)
        server = start_server(state)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, thread

    def stop(server, thread):
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def run_workload(url, circuit, scale):
        client = ServiceClient(url)
        client.open_session()
        analysis = client.analyze(circuit, scale=scale)
        sizing = client.optimize(circuit, scale=scale,
                                 iterations=SERVICE_ITERATIONS)
        summary = client.close_session()
        return analysis, sizing, summary

    # Isolated reference: per-session cold caches, serial.
    isolated_rates = []
    for circuit, scale in SERVICE_WORKLOADS:
        server, thread = serve_one()
        try:
            _, _, summary = run_workload(server.url, circuit, scale)
            isolated_rates.append(summary["hit_rate"])
        finally:
            stop(server, thread)

    # Shared run: every session concurrent against one server.
    server, thread = serve_one()
    results = [None] * len(SERVICE_WORKLOADS)
    errors = []
    barrier = threading.Barrier(len(SERVICE_WORKLOADS))

    def worker(idx, circuit, scale):
        try:
            barrier.wait(timeout=60)
            results[idx] = run_workload(server.url, circuit, scale)
        except Exception as exc:
            errors.append((idx, repr(exc)))

    t0 = time.perf_counter()
    try:
        workers = [
            threading.Thread(target=worker, args=(i, c, s))
            for i, (c, s) in enumerate(SERVICE_WORKLOADS)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join(timeout=600)
        wall = time.perf_counter() - t0
        if errors:
            raise SystemExit(f"service sessions failed: {errors}")
        stats = ServiceClient(server.url).stats()
    finally:
        stop(server, thread)

    # Gate 1: bitwise equality with serial local runs, per session.
    cfg = DEFAULT_CONFIG.with_updates(cache=None, jobs=1)
    for (circuit, scale), (analysis, sizing, _) in zip(
        SERVICE_WORKLOADS, results
    ):
        fresh = load(circuit, scale=scale)
        local_sink = run_ssta(
            TimingGraph(fresh), DelayModel(fresh, config=cfg), config=cfg
        ).sink_pdf
        if (analysis.sink.offset != local_sink.offset
                or not np.array_equal(analysis.sink.masses,
                                      local_sink.masses)):
            raise SystemExit(
                f"service sink diverged from local serial run on "
                f"{circuit}@{scale}"
            )
        local = PrunedStatisticalSizer(
            load(circuit, scale=scale), config=cfg,
            max_iterations=SERVICE_ITERATIONS,
        ).run()
        remote = sizing.result
        if (
            [s.gate for s in remote.steps] != [s.gate for s in local.steps]
            or [s.objective_after for s in remote.steps]
            != [s.objective_after for s in local.steps]
            or remote.final_objective != local.final_objective
        ):
            raise SystemExit(
                f"service sizing trajectory diverged from local serial "
                f"run on {circuit}@{scale}"
            )

    # Gate 2: golden-file agreement on the c17 sink through the wire.
    golden = json.loads(
        (REPO_ROOT / "tests" / "timing" / "golden" / "c17.json").read_text()
    )
    c17_sink = results[0][0].sink
    golden_ok = all(
        abs(c17_sink.percentile(p) - golden[key]) <= DRIFT_TOL_PS
        for p, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))
    )
    if not golden_ok:
        raise SystemExit("service c17 sink diverged from golden file")

    # Gate 3: sharing pays.
    shared_hits = sum(s["kernel_hits"] for _, _, s in results)
    shared_requests = sum(s["kernel_requests"] for _, _, s in results)
    aggregate_rate = shared_hits / shared_requests
    if aggregate_rate <= max(isolated_rates):
        raise SystemExit(
            f"shared-cache aggregate hit rate {aggregate_rate:.3f} did "
            f"not beat the best isolated session {max(isolated_rates):.3f}"
        )

    latency = {
        endpoint: {
            "count": row["count"],
            "p50_ms": round(row["p50_ms"], 3),
            "p99_ms": round(row["p99_ms"], 3),
        }
        for endpoint, row in sorted(stats["requests"].items())
    }
    out = {
        "sessions": len(SERVICE_WORKLOADS),
        "workloads": [list(w) for w in SERVICE_WORKLOADS],
        "iterations": SERVICE_ITERATIONS,
        "wall_s": round(wall, 3),
        "aggregate_hit_rate": round(aggregate_rate, 4),
        "isolated_hit_rates": [round(r, 4) for r in isolated_rates],
        "best_isolated_hit_rate": round(max(isolated_rates), 4),
        "cache": {
            "entries": stats["cache"]["entries"],
            "hits": stats["cache"]["hits"],
            "misses": stats["cache"]["misses"],
            "hit_rate": round(stats["cache"]["hit_rate"], 4),
        },
        "latency": latency,
        "bitwise_vs_local": True,
        "golden_ok": golden_ok,
    }
    analyze_lat = latency.get("POST /analyze", {})
    print(
        f"service {len(SERVICE_WORKLOADS)} concurrent sessions  "
        f"wall={out['wall_s']:.2f}s  "
        f"aggregate hit rate={aggregate_rate:.3f} "
        f"(best isolated {max(isolated_rates):.3f})  "
        f"analyze p50={analyze_lat.get('p50_ms', 0):.1f} ms "
        f"p99={analyze_lat.get('p99_ms', 0):.1f} ms"
    )
    return out


#: Raw rejection probes fired at a provably saturated server; their
#: p99 wall time is the ``--check-drift`` overload gate.
OVERLOAD_PROBES = 60
#: p99 rejection-latency ceiling (ms).  Rejections come straight from
#: the accept loop — if this trips, rejected requests are waiting on
#: handler work, which is the failure mode bounded admission removes.
OVERLOAD_P99_MS = 50.0


def _bench_service_overload(quick: bool) -> dict:
    """Overload behaviour: saturation rejections + the worker front.

    Leg 1 (in-process, deterministic): a 1-thread/1-slot server whose
    handlers are wedged on an event — the queue is provably full —
    takes ``OVERLOAD_PROBES`` raw ``/analyze`` posts.  **Asserts** that
    every probe gets an immediate ``503`` + ``Retry-After``, that the
    p99 rejection latency stays under ``OVERLOAD_P99_MS`` (rejections
    must never queue behind the wedged work), that the server spawns
    no per-request threads, and that a retrying client rides the spike
    out to a bitwise-correct answer.

    Leg 2 (multi-process): a 4-worker ``SO_REUSEPORT`` front serves a
    mixed sessionless workload; **asserts** every answer is bitwise
    the serial local one regardless of serving worker, and records the
    reconciled aggregate cache stats.  Skipped (recorded as such) on
    hosts without working ``SO_REUSEPORT`` balancing.
    """
    import threading
    import urllib.error
    import urllib.request

    from repro.config import DEFAULT_CONFIG
    from repro.dist.cache import ConvolutionCache
    from repro.errors import ServiceOverloadedError
    from repro.netlist.benchmarks import load
    from repro.service import (
        ServiceClient,
        ServiceFrontend,
        ServiceState,
        WorkerSpec,
        reuseport_available,
        start_server,
    )
    from repro.service.frontend import merged_stats_file
    from repro.timing.delay_model import DelayModel
    from repro.timing.graph import TimingGraph
    from repro.timing.ssta import run_ssta

    cfg = DEFAULT_CONFIG.with_updates(cache=None, jobs=1)

    def local_sink(circuit, scale=1.0):
        fresh = load(circuit, scale=scale)
        return run_ssta(
            TimingGraph(fresh), DelayModel(fresh, config=cfg), config=cfg
        ).sink_pdf

    # ---- Leg 1: saturation rejections -------------------------------
    gate = threading.Event()
    state = ServiceState(config=DEFAULT_CONFIG, cache=1 << 17)
    real_analyze = state.analyze

    def wedged_analyze(*args, **kwargs):
        gate.wait(timeout=120)
        return real_analyze(*args, **kwargs)

    state.analyze = wedged_analyze
    server = start_server(
        state, handler_threads=1, queue_depth=1, retry_after_s=0.2
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    rejection_ms = []
    try:
        # Wedge the handler and fill the one queue slot.
        wedgers = [
            threading.Thread(
                target=lambda: ServiceClient(server.url).analyze("c17"),
                daemon=True,
            )
            for _ in range(2)
        ]
        for w in wedgers:
            w.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if server.overload_snapshot()["accepted"] >= 2:
                break
            time.sleep(0.01)

        threads_before = threading.active_count()
        body = json.dumps({"circuit": "c17"}).encode()
        for _ in range(OVERLOAD_PROBES):
            req = urllib.request.Request(
                server.url + "/analyze", data=body,
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            t0 = time.perf_counter()
            try:
                urllib.request.urlopen(req, timeout=10)
                raise SystemExit(
                    "saturated server admitted a probe past its bound"
                )
            except urllib.error.HTTPError as exc:
                elapsed_ms = (time.perf_counter() - t0) * 1e3
                if exc.code != 503 or not exc.headers.get("Retry-After"):
                    raise SystemExit(
                        f"saturated server answered {exc.code} without "
                        f"Retry-After instead of a 503 rejection"
                    )
                rejection_ms.append(elapsed_ms)
        threads_after = threading.active_count()
        if threads_after > threads_before:
            raise SystemExit(
                f"server grew threads under overload "
                f"({threads_before} -> {threads_after})"
            )

        # A retrying client survives the spike once it clears.
        threading.Timer(0.2, gate.set).start()
        rider = ServiceClient(
            server.url, max_retries=10, total_deadline_s=120.0
        )
        reply = rider.analyze("c17")
        if not np.array_equal(
            np.asarray(reply.sink.masses),
            np.asarray(local_sink("c17").masses),
        ):
            raise SystemExit(
                "retried answer diverged from the serial local run"
            )
        for w in wedgers:
            w.join(timeout=60)
        snapshot = server.overload_snapshot()
    finally:
        gate.set()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    rejection_ms.sort()
    p50 = rejection_ms[len(rejection_ms) // 2]
    p99 = rejection_ms[
        min(len(rejection_ms) - 1, int(round(0.99 * (len(rejection_ms) - 1))))
    ]
    if p99 >= OVERLOAD_P99_MS:
        raise SystemExit(
            f"rejection p99 {p99:.1f} ms breached the "
            f"{OVERLOAD_P99_MS:.0f} ms bound — rejections are queueing "
            f"behind handler work"
        )
    out = {
        "probes": OVERLOAD_PROBES,
        "rejected": snapshot["rejected"],
        "rejection_p50_ms": round(p50, 3),
        "rejection_p99_ms": round(p99, 3),
        "p99_bound_ms": OVERLOAD_P99_MS,
        "thread_growth": threads_after - threads_before,
        "retry_client_retries": rider.retries_performed,
        "retry_client_bitwise": True,
    }
    print(
        f"service overload: {len(rejection_ms)} rejections  "
        f"p50={p50:.2f} ms p99={p99:.2f} ms (bound {OVERLOAD_P99_MS:.0f})  "
        f"thread growth={out['thread_growth']}"
    )

    # ---- Leg 2: the 4-worker front ----------------------------------
    if not reuseport_available():
        out["frontend"] = {"skipped": "SO_REUSEPORT unavailable"}
        return out

    import tempfile

    workloads = [("c17", 1.0), ("c17", 0.8), ("c432", 0.25)]
    with tempfile.TemporaryDirectory() as tmp:
        base = str(Path(tmp) / "front.cache")
        spec = WorkerSpec(
            config=DEFAULT_CONFIG,
            cache_capacity=1 << 17,
            cache_file=base,
            flush_interval_s=None,
        )
        front = ServiceFrontend(
            spec, port=0, workers=4, reconcile_interval_s=3600.0
        )
        front.start()
        try:
            if not front.wait_until_ready(timeout_s=120):
                raise SystemExit("front workers never became ready")
            results = {}
            errors = []
            lock = threading.Lock()

            def hit(circuit, scale):
                try:
                    client = ServiceClient(
                        front.url, max_retries=5, total_deadline_s=120.0
                    )
                    rep = client.analyze(circuit, scale=scale)
                    with lock:
                        results[(circuit, scale)] = rep
                except Exception as exc:
                    errors.append(repr(exc))

            t0 = time.perf_counter()
            passes = 1 if quick else 2
            threads = [
                threading.Thread(target=hit, args=(c, s))
                for _ in range(passes)
                for c, s in workloads
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            front_wall = time.perf_counter() - t0
            if errors:
                raise SystemExit(f"front workload failed: {errors}")
            for circuit, scale in workloads:
                rep = results[(circuit, scale)]
                local = local_sink(circuit, scale)
                if (rep.sink.offset != local.offset
                        or not np.array_equal(
                            np.asarray(rep.sink.masses),
                            np.asarray(local.masses))):
                    raise SystemExit(
                        f"front answer diverged from serial local run "
                        f"on {circuit}@{scale}"
                    )
        finally:
            if not front.stop():
                raise SystemExit("front did not stop cleanly")
        reconciled = ConvolutionCache.load(base, capacity=1 << 17)
        merged = json.loads(Path(merged_stats_file(base)).read_text())
    out["frontend"] = {
        "workers": 4,
        "requests": len(threads),
        "wall_s": round(front_wall, 3),
        "bitwise_vs_local": True,
        "respawns": sum(front.respawns.values()),
        "reconciled_entries": len(reconciled),
        "aggregate_hits": merged["hits"],
        "aggregate_misses": merged["misses"],
        "aggregate_hit_rate": round(merged["hit_rate"], 4),
    }
    print(
        f"service front: 4 workers  {len(threads)} requests  "
        f"wall={front_wall:.2f}s  bitwise ok  "
        f"reconciled entries={len(reconciled)}  "
        f"aggregate hit rate={merged['hit_rate']:.3f}"
    )
    return out


#: Scale-up ladder, as factors of the c880 spec (383 gates): the full
#: run tops out at ~10^5 gates, the quick run at ~1.5 * 10^4.
SCALE_FACTORS = [27, 68, 137, 274]
SCALE_FACTORS_QUICK = [10, 20, 40]
#: Coarse grid for the large-netlist SSTA points (the storage scaling
#: is the point of the exercise at these node counts, not grid
#: resolution) and the per-store sparsification budget.
SCALE_DT = 16.0
SCALE_SPARSE_EPS = 1e-16
#: Doubling the gate count may cost at most 2^1.485 ~ 2.8x wall-clock
#: (measured ~2.0x-2.4x; the slack absorbs noisy CI runners).  The
#: ladder gate compares its endpoints, so the allowance compounds per
#: doubling: allowed = (gate ratio) ** 1.485.
SCALE_SUPERLINEAR_EXP = 1.485
#: Whole-analysis sparse-vs-dense budget at the golden sinks.
SCALE_TV_BUDGET = 1e-12


def _scale_point(factor: float) -> dict:
    """One ladder point — runs in a dedicated subprocess (see
    ``--scale-point``) so ``ru_maxrss``, a process-lifetime high-water
    mark, measures THIS size instead of the largest size run so far."""
    import resource

    from repro.dist.sparse import SparseDiscretePDF
    from repro.netlist.benchmarks import spec_for
    from repro.netlist.generate import generate_circuit
    from repro.timing.delay_model import DelayModel
    from repro.timing.graph import TimingGraph
    from repro.timing.ssta import run_ssta

    spec = spec_for("c880").scaled(factor)
    gen_s = float("inf")
    for _ in range(3):  # best-of-3: generation is seconds at 10^5 gates
        t0 = time.perf_counter()
        circuit = generate_circuit(spec)
        gen_s = min(gen_s, time.perf_counter() - t0)
    cfg = AnalysisConfig(dt=SCALE_DT, sparse_eps=SCALE_SPARSE_EPS)
    graph = TimingGraph(circuit)
    model = DelayModel(circuit, config=cfg)
    t0 = time.perf_counter()
    result = run_ssta(graph, model, config=cfg)
    ssta_s = time.perf_counter() - t0
    sparse_b = dense_b = 0
    for pdf in result.arrivals:
        if isinstance(pdf, SparseDiscretePDF):
            sparse_b += pdf.nbytes
            dense_b += 8 * pdf.n_bins
    maxrss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "factor": factor,
        "gates": circuit.n_gates,
        "pin_edges": circuit.n_pin_edges,
        "depth": circuit.depth(),
        "generate_s": round(gen_s, 4),
        "ssta_s": round(ssta_s, 4),
        "peak_rss_mb": round(maxrss_kb / 1024.0, 1),
        "arrival_store_sparse_mb": round(sparse_b / 1e6, 3),
        "arrival_store_dense_mb": round(dense_b / 1e6, 3),
        "sink_p99_ps": round(result.percentile(0.99), 3),
    }


def _bench_scale(quick: bool, check_drift: bool) -> dict:
    """The million-gate workload class: gates vs wall-clock and
    peak-RSS curves over the scaled-c880 ladder.

    Each size point forks a fresh interpreter (``--scale-point``) so
    its ``ru_maxrss`` is an honest per-size peak.  Under
    ``--check-drift`` two gates assert (SystemExit on breach, like the
    service gates): the ladder endpoints stay linear — doubling gates
    costs at most ~2.8x wall-clock for generation AND for the SSTA
    pass — and the sparse-storage sink on base c880 agrees with the
    dense run within ``SCALE_TV_BUDGET`` total variation.
    """
    import subprocess

    from repro.netlist.benchmarks import load
    from repro.timing.delay_model import DelayModel
    from repro.timing.graph import TimingGraph
    from repro.timing.ssta import run_ssta

    factors = SCALE_FACTORS_QUICK if quick else SCALE_FACTORS
    points = []
    for factor in factors:
        proc = subprocess.run(
            [sys.executable, str(Path(__file__).resolve()),
             "--scale-point", str(factor)],
            capture_output=True, text=True, timeout=600,
        )
        if proc.returncode != 0:
            raise SystemExit(
                f"scale point factor={factor} failed:\n{proc.stderr}"
            )
        point = json.loads(proc.stdout)
        points.append(point)
        print(
            f"scale x{factor:<4d} gates={point['gates']:7d}  "
            f"generate={point['generate_s']:7.2f}s  "
            f"ssta={point['ssta_s']:7.2f}s  "
            f"peak-rss={point['peak_rss_mb']:7.1f} MB  "
            f"store sparse={point['arrival_store_sparse_mb']:8.3f} MB "
            f"(dense {point['arrival_store_dense_mb']:.3f} MB)"
        )

    small, big = points[0], points[-1]
    gate_ratio = big["gates"] / small["gates"]
    allowed = gate_ratio ** SCALE_SUPERLINEAR_EXP
    gen_ratio = big["generate_s"] / max(small["generate_s"], 1e-9)
    ssta_ratio = big["ssta_s"] / max(small["ssta_s"], 1e-9)
    linear_ok = gen_ratio <= allowed and ssta_ratio <= allowed
    print(
        f"scale linearity: {gate_ratio:.1f}x gates cost "
        f"{gen_ratio:.2f}x generation / {ssta_ratio:.2f}x ssta "
        f"(allowed {allowed:.2f}x) -> {'ok' if linear_ok else 'FAIL'}"
    )

    # Sparse-vs-dense differential on the base circuit, in-process
    # (cheap) — the storage knob must not move the answer.
    sinks = {}
    for eps in (0.0, SCALE_SPARSE_EPS):
        cfg = AnalysisConfig(dt=SCALE_DT, sparse_eps=eps)
        circuit = load("c880")
        model = DelayModel(circuit, config=cfg)
        sinks[eps] = run_ssta(TimingGraph(circuit), model,
                              config=cfg).sink_pdf
    tv = sinks[0.0].tv_distance(sinks[SCALE_SPARSE_EPS])
    tv_ok = tv <= SCALE_TV_BUDGET
    print(f"scale sparse-vs-dense c880 sink tv={tv:.3e} "
          f"(budget {SCALE_TV_BUDGET:.0e}) -> {'ok' if tv_ok else 'FAIL'}")

    if check_drift:
        failures = []
        if not linear_ok:
            failures.append(
                ("scale-superlinear", round(max(gen_ratio, ssta_ratio), 3))
            )
        if not tv_ok:
            failures.append(("scale-sparse-tv", tv))
        if failures:
            raise SystemExit(f"scale drift gates failed: {failures}")

    return {
        "base_spec": "c880",
        "dt": SCALE_DT,
        "sparse_eps": SCALE_SPARSE_EPS,
        "points": points,
        "gate_ratio": round(gate_ratio, 2),
        "generate_time_ratio": round(gen_ratio, 2),
        "ssta_time_ratio": round(ssta_ratio, 2),
        "allowed_time_ratio": round(allowed, 2),
        "linear_ok": linear_ok,
        "sparse_vs_dense_sink_tv": tv,
        "tv_budget": SCALE_TV_BUDGET,
        "tv_ok": tv_ok,
    }


def _bench_ssta_c432() -> dict:
    """End-to-end run_ssta wall time on c432 per backend (fresh model
    each run so the delay-PDF cache does not leak across backends)."""
    from repro.netlist.benchmarks import load
    from repro.timing.delay_model import DelayModel
    from repro.timing.graph import TimingGraph
    from repro.timing.ssta import run_ssta

    out = {}
    for backend in available_backends():
        cfg = AnalysisConfig(backend=backend)
        circuit = load("c432")
        graph = TimingGraph(circuit)
        model = DelayModel(circuit, config=cfg)

        def one_pass():
            return run_ssta(graph, model, config=cfg)

        t = _time_op(one_pass, min_repeats=3, min_seconds=0.2)
        out[backend] = {
            "run_ssta_ms": round(t * 1e3, 3),
            "p99_ps": round(one_pass().percentile(0.99), 6),
        }
        print(f"run_ssta c432 [{backend:6s}]  {t * 1e3:8.2f} ms  "
              f"p99={out[backend]['p99_ps']:.3f} ps")
    return out


def _check_drift(bin_counts, min_hit_rate: float, compiled=None) -> list:
    """Numeric regression gates: FFT-vs-direct and cache-on/off drift,
    kernel-level and through a full SSTA pass, plus the minimum cache
    hit rate on the quick sizer benchmark.

    Probes convolve percentiles at each swept size *and* the c17 sink
    percentiles end to end (cheap: milliseconds), so a regression that
    only manifests through the engine composition is still gated.
    Cache-on/off sink percentiles must be *exactly* equal per backend —
    the cache promises bitwise transparency, so any drift at all means
    a broken key or replay.  Raises on breach.
    """
    from repro.netlist.benchmarks import load
    from repro.timing.delay_model import DelayModel
    from repro.timing.graph import TimingGraph
    from repro.timing.ssta import run_ssta

    failures = []
    report = []
    for n in bin_counts:
        a = _gaussian_with_bins(n, 1000.0)
        b = _gaussian_with_bins(n, 1200.0)
        d = convolve(a, b, trim_eps=TRIM_EPS, backend="direct")
        f = convolve(a, b, trim_eps=TRIM_EPS, backend="fft")
        worst = max(
            abs(d.percentile(p) - f.percentile(p))
            for p in (0.5, 0.9, 0.99)
        )
        tv = d.tv_distance(f)
        report.append(
            {"bins": a.n_bins, "max_percentile_drift_ps": worst, "tv": tv}
        )
        print(f"drift bins={a.n_bins:6d}  max|Δpercentile|={worst:.3e} ps  "
              f"tv={tv:.3e}")
        if worst > DRIFT_TOL_PS:
            failures.append((a.n_bins, worst))

    sinks = {}
    for backend in ("direct", "fft"):
        cfg = AnalysisConfig(backend=backend)
        circuit = load("c17")
        model = DelayModel(circuit, config=cfg)
        sinks[backend] = run_ssta(TimingGraph(circuit), model,
                                  config=cfg).sink_pdf
    sink_drift = max(
        abs(sinks["direct"].percentile(p) - sinks["fft"].percentile(p))
        for p in (0.5, 0.9, 0.99)
    )
    report.append({"circuit": "c17", "max_sink_drift_ps": sink_drift})
    print(f"drift c17 sink  max|Δpercentile|={sink_drift:.3e} ps")
    if sink_drift > DRIFT_TOL_PS:
        failures.append(("c17-sink", sink_drift))

    # Compiled tier, end to end: the c17 sink under each compiled
    # backend must sit within COMPILED_SINK_TV total variation of the
    # direct sink (degraded hosts pass trivially — the fallback IS the
    # direct arithmetic, bitwise).
    from repro.dist import _compiled

    for backend in ("compiled", "compiled-auto"):
        cfg = AnalysisConfig(backend=backend)
        circuit = load("c17")
        model = DelayModel(circuit, config=cfg)
        sink = run_ssta(TimingGraph(circuit), model, config=cfg).sink_pdf
        tv = sinks["direct"].tv_distance(sink)
        report.append({
            "circuit": "c17", "backend": backend,
            "compiled_vs_direct_sink_tv": tv,
        })
        print(f"drift c17 compiled/direct [{backend:13s}]  tv={tv:.3e}")
        if tv > COMPILED_SINK_TV:
            failures.append((f"c17-{backend}-sink-tv", tv))

    # Compiled miss-path speedup: the kernel rows at the smallest
    # swept sizes must clear COMPILED_MIN_SPEEDUP over the per-result
    # NumPy dispatch sequence.  Noisy shared runners get
    # COMPILED_GATE_ATTEMPTS fresh measurements (best-of: the gate
    # asks whether the machine can do it, not whether this instant
    # was quiet).  Skipped (recorded as such) on degraded hosts,
    # where there is no compiled code to measure.
    if compiled is None:
        compiled = _bench_compiled(quick=True)
    if compiled["provider"] is None:
        report.append({
            "compiled_speedup_gate": "skipped",
            "reason": compiled["degraded_reason"],
        })
        print(f"drift compiled speedup gate skipped: tier degraded "
              f"({compiled['degraded_reason']})")
    else:
        def gate_speedups(section):
            return {
                row["bins"]: row["kernel_speedup"]
                for row in section["rows"]
                if row["bins"] in COMPILED_SPEEDUP_GATE_BINS
                and "kernel_speedup" in row
            }

        best = gate_speedups(compiled)
        attempts = 1
        while (
            any(v < COMPILED_MIN_SPEEDUP for v in best.values())
            and attempts < COMPILED_GATE_ATTEMPTS
        ):
            attempts += 1
            print(f"drift compiled speedup below bound; re-measuring "
                  f"(attempt {attempts}/{COMPILED_GATE_ATTEMPTS})")
            for bins, v in gate_speedups(
                _bench_compiled(quick=True)
            ).items():
                best[bins] = max(best.get(bins, v), v)
        for bins, speedup in sorted(best.items()):
            report.append({
                "bins": bins,
                "compiled_kernel_speedup": speedup,
                "min_speedup": COMPILED_MIN_SPEEDUP,
                "attempts": attempts,
            })
            print(f"drift compiled kernel speedup @ {bins} bins: "
                  f"{speedup:.2f}x (min {COMPILED_MIN_SPEEDUP:.0f}x, "
                  f"best of {attempts})")
            if speedup < COMPILED_MIN_SPEEDUP:
                failures.append(
                    (f"compiled-speedup-{bins}bins", speedup)
                )

    # Cache-on vs cache-off: bitwise, per backend — zero drift allowed.
    for backend in available_backends():
        pair = {}
        for cache in (None, 4096):
            cfg = AnalysisConfig(backend=backend, cache=cache)
            circuit = load("c17")
            model = DelayModel(circuit, config=cfg)
            pair[cache] = run_ssta(TimingGraph(circuit), model,
                                   config=cfg).sink_pdf
        cache_drift = max(
            abs(pair[None].percentile(p) - pair[4096].percentile(p))
            for p in (0.5, 0.9, 0.99)
        )
        bitwise = (
            pair[None].offset == pair[4096].offset
            and np.array_equal(pair[None].masses, pair[4096].masses)
        )
        report.append({
            "circuit": "c17",
            "backend": backend,
            "cache_on_off_drift_ps": cache_drift,
            "cache_on_off_bitwise": bitwise,
        })
        print(f"drift c17 cache-on/off [{backend:6s}]  "
              f"max|Δpercentile|={cache_drift:.3e} ps  bitwise={bitwise}")
        if cache_drift != 0.0 or not bitwise:
            failures.append((f"c17-cache-{backend}", cache_drift))

    # Level-batched vs sequential: bitwise, per backend, cache on and
    # off — the level scheduler promises exact equivalence, so any sink
    # inequality at all is a failure.
    for backend in available_backends():
        for cache_capacity in (None, 4096):
            pair = {}
            for level_batch in (True, False):
                cfg = AnalysisConfig(backend=backend, cache=cache_capacity,
                                     level_batch=level_batch)
                circuit = load("c17")
                model = DelayModel(circuit, config=cfg)
                pair[level_batch] = run_ssta(TimingGraph(circuit), model,
                                             config=cfg).sink_pdf
            bitwise = (
                pair[True].offset == pair[False].offset
                and np.array_equal(pair[True].masses, pair[False].masses)
            )
            label = "on" if cache_capacity else "off"
            report.append({
                "circuit": "c17",
                "backend": backend,
                "cache": label,
                "level_batch_bitwise": bitwise,
            })
            print(f"drift c17 batched/sequential [{backend:6s} "
                  f"cache-{label:3s}]  bitwise={bitwise}")
            if not bitwise:
                failures.append(
                    (f"c17-level-batch-{backend}-cache-{label}", 1.0)
                )

    # Sharded-parallel vs serial: the c432 golden check under jobs=2
    # for BOTH operand transports (the shared-memory arena with its
    # cost gate forced open, and the pickle wire format) — each sink
    # must be bitwise the serial one AND reproduce the golden
    # percentiles recorded in tests/timing/golden/c432.json.  Any
    # inequality at all fails the gate (the execution plan promises
    # exact equivalence, not closeness).
    from repro.exec import get_executor, shutdown_executors

    golden = json.loads(
        (REPO_ROOT / "tests" / "timing" / "golden" / "c432.json").read_text()
    )
    cfg = AnalysisConfig(jobs=1)
    circuit = load("c432")
    model = DelayModel(circuit, config=cfg)
    serial_sink = run_ssta(TimingGraph(circuit), model, config=cfg).sink_pdf
    for transport in ("shm", "pickle"):
        ex = get_executor(2, transport)
        saved_gate = ex.min_dispatch_cost_us
        ex.min_dispatch_cost_us = 0.0
        try:
            cfg = AnalysisConfig(jobs=2, transport=transport)
            circuit = load("c432")
            model = DelayModel(circuit, config=cfg)
            sink = run_ssta(TimingGraph(circuit), model,
                            config=cfg).sink_pdf
        finally:
            ex.min_dispatch_cost_us = saved_gate
        bitwise = (
            serial_sink.offset == sink.offset
            and np.array_equal(serial_sink.masses, sink.masses)
        )
        golden_ok = all(
            abs(sink.percentile(p) - golden[key]) <= DRIFT_TOL_PS
            for p, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))
        )
        report.append({
            "circuit": "c432",
            "jobs": 2,
            "transport": transport,
            "parallel_serial_bitwise": bitwise,
            "parallel_matches_golden": golden_ok,
        })
        print(f"drift c432 parallel/serial [jobs=2 {transport:6s}]  "
              f"bitwise={bitwise}  golden={golden_ok}")
        if not bitwise:
            failures.append((f"c432-parallel-jobs2-{transport}-bitwise", 1.0))
        if not golden_ok:
            failures.append((f"c432-parallel-jobs2-{transport}-golden", 1.0))

    # Arena payload gate: with dispatch forced, the shm transport's
    # per-level shard payloads must pickle to <10% of the pickle
    # transport's bytes (measured ~18x smaller on c432; the gate
    # catches a regression to shipping vectors instead of refs).
    payload = _audit_payload("c432")
    report.append({"circuit": "c432", "payload": payload})
    if payload["shm"]["payload_bytes"] * 10 \
            > payload["pickle"]["payload_bytes"]:
        failures.append(
            ("c432-shm-payload-ratio", payload["shm_reduction_x"])
        )
    shutdown_executors()

    # Minimum hit rate on the quick sizer benchmark: a silently broken
    # cache key hits nothing and fails here.
    sizer = _bench_sizers(quick=True)["pruned_c17"]
    report.append({"sizer": "pruned_c17",
                   "cache_hit_rate": sizer["cache_hit_rate"],
                   "min_hit_rate": min_hit_rate})
    if sizer["cache_hit_rate"] < min_hit_rate:
        failures.append(("pruned-c17-hit-rate", sizer["cache_hit_rate"]))
    if not sizer["identical_results"]:
        failures.append(("pruned-c17-cache-divergence", 0.0))

    if failures:
        raise SystemExit(
            "kernel drift gates failed (FFT-vs-direct tolerance "
            f"{DRIFT_TOL_PS} ps, cache-on/off bitwise, min hit rate "
            f"{min_hit_rate}): {failures}"
        )
    return report


def run(
    quick: bool = False,
    check_drift: bool = False,
    min_hit_rate: float = DEFAULT_MIN_HIT_RATE,
) -> dict:
    bin_counts = BIN_COUNTS[:3] if quick else BIN_COUNTS
    rows = _bench_kernels(bin_counts)
    batched = _bench_batched(bin_counts)
    compiled = _bench_compiled(quick)
    levels = _bench_levels(quick)
    crossover = _measured_crossover(hi=1024 if quick else 4096)
    if crossover is None:
        print("direct/FFT equal-size crossover: not found within sweep")
    else:
        print(f"measured direct/FFT equal-size crossover: ~{crossover} bins")
    payload = {
        "benchmark": "repro.dist kernel throughput",
        "trim_eps": TRIM_EPS,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "backends": list(available_backends()),
        "measured_crossover_bins": crossover,
        "rows": rows,
        "batched_vs_looped": batched,
        "kernels": {"compiled": compiled},
        "levels": levels,
        "service": _bench_service(quick),
    }
    payload["service"]["overload"] = _bench_service_overload(quick)
    payload["scale"] = _bench_scale(quick, check_drift)
    if not quick:
        payload["run_ssta_c432"] = _bench_ssta_c432()
        payload["sizers"] = _bench_sizers(quick=False)
    if check_drift:
        payload["drift"] = _check_drift(bin_counts, min_hit_rate, compiled)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small bin counts only (CI smoke run)")
    parser.add_argument("--check-drift", action="store_true",
                        help="fail on FFT-vs-direct percentile drift > "
                             f"{DRIFT_TOL_PS} ps, any cache-on/off drift, "
                             "any batched-vs-sequential sink inequality "
                             "(exact, per backend, cache on/off), any "
                             "c432 jobs=2 parallel-vs-serial sink "
                             "inequality (shm and pickle transports), "
                             "a compiled sink off direct by more than "
                             "1e-12 TV or a compiled batched speedup "
                             f"under {COMPILED_MIN_SPEEDUP:.0f}x at the "
                             "smallest sizes (provider permitting), "
                             "an shm payload above 10%% of pickle's, "
                             "a quick-sizer cache hit rate below "
                             "--min-hit-rate, a superlinear scale "
                             "ladder, or a sparse-storage sink off the "
                             "dense run by more than 1e-12 TV")
    parser.add_argument("--min-hit-rate", type=float,
                        default=DEFAULT_MIN_HIT_RATE,
                        help="minimum cache hit rate the quick sizer "
                             "benchmark must reach under --check-drift")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_dist.json"),
                        help="output JSON path (default: repo root)")
    # Internal: run ONE scale-ladder point and print its JSON row —
    # _bench_scale forks one of these per size so ru_maxrss (a
    # process-lifetime high-water mark) is honest per point.
    parser.add_argument("--scale-point", type=float, default=None,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.scale_point is not None:
        print(json.dumps(_scale_point(args.scale_point)))
        return 0
    payload = run(quick=args.quick, check_drift=args.check_drift,
                  min_hit_rate=args.min_hit_rate)
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
