#!/usr/bin/env python3
"""Regenerate every table/figure and archive the rendered outputs.

Writes results/<artifact>.txt for Table 1, Table 2, Figures 1/2/10.
Used to populate EXPERIMENTS.md.  Accepts the same fast/full switch as
the benchmark harness (env REPRO_FULL=1).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

from repro.experiments import (
    fast_config,
    paper_config,
    run_figure1,
    run_figure2,
    run_figure10,
    run_table1,
    run_table2,
)

RESULTS = Path(__file__).resolve().parent.parent / "results"


def main() -> None:
    RESULTS.mkdir(exist_ok=True)
    full = os.environ.get("REPRO_FULL", "0") == "1"
    t1_cfg = paper_config() if full else fast_config(iterations=40)
    t2_cfg = paper_config() if full else fast_config(iterations=4)
    fig_cfg = paper_config() if full else fast_config(iterations=30)

    jobs = [
        ("table1", lambda: run_table1(t1_cfg)),
        ("table2", lambda: run_table2(t2_cfg)),
        ("figure1", lambda: run_figure1("c432", fig_cfg)),
        ("figure2", lambda: run_figure2("c432", fig_cfg)),
        ("figure10", lambda: run_figure10("c3540", fig_cfg)),
    ]
    for name, job in jobs:
        t0 = time.perf_counter()
        print(f"[{name}] running ...", flush=True)
        result = job()
        text = result.render()
        (RESULTS / f"{name}.txt").write_text(text + "\n")
        print(text, flush=True)
        print(f"[{name}] done in {time.perf_counter() - t0:.0f}s\n", flush=True)


if __name__ == "__main__":
    sys.exit(main())
