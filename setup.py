"""Setup shim for environments without the wheel package (offline
editable installs fall back to `setup.py develop`)."""

from setuptools import setup

setup()
