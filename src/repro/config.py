"""Global numeric configuration for the reproduction.

All timing quantities are expressed in **picoseconds** and all
distributions live on a uniform time grid with spacing ``dt``.  Keeping a
single grid spacing per analysis lets every operation (convolution,
statistical max, shifting) work on integer bin offsets, so no regridding
error accumulates as arrival times traverse deep circuits.

The paper (Section 4) models intra-die variation as a Gaussian with a
standard deviation equal to 10% of the nominal gate delay, truncated at
the 3-sigma points, and optimizes the 99-percentile point of the circuit
delay CDF.  Those defaults are captured here and may be overridden per
analysis through :class:`AnalysisConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Default grid spacing in picoseconds.  2 ps resolves a ~10% sigma on
#: gate delays of a few hundred ps with dozens of bins per distribution.
DEFAULT_DT_PS: float = 2.0

#: Total probability mass allowed to be trimmed off the tails of a
#: distribution after each operation (split between both tails).
DEFAULT_TAIL_EPS: float = 1e-9

#: The paper's optimization objective: the 99-percentile delay point.
DEFAULT_PERCENTILE: float = 0.99

#: Relative standard deviation of gate delay (sigma = 10% of nominal).
DEFAULT_SIGMA_FRACTION: float = 0.10

#: Gaussian truncation point in multiples of sigma.
DEFAULT_TRUNCATION_SIGMA: float = 3.0

#: Gate width increment used by the coordinate-descent sizers, as a
#: fraction of the minimum width (the paper sizes by a fixed ``dw``).
DEFAULT_DELTA_W: float = 0.25

#: Convolution-backend names an :class:`AnalysisConfig` may select.
#: ``direct`` is the O(n*m) ``np.convolve`` kernel (bit-for-bit the
#: historical behavior), ``fft`` the real-FFT product kernel, ``auto``
#: a size-based crossover between the two (see
#: :mod:`repro.dist.backends` for the calibrated cost model),
#: ``compiled`` the compiled direct-kernel tier (numba or a C library;
#: degrades to ``direct`` numerics when neither is available), and
#: ``compiled-auto`` the crossover with the compiled kernel on the
#: direct side.
KNOWN_BACKENDS: tuple = (
    "direct", "fft", "auto", "compiled", "compiled-auto"
)

#: Default convolution backend.  ``auto`` dispatches to ``direct`` for
#: every operand pair below the crossover — which covers the default
#: 2 ps grid entirely — so historical results are reproduced bitwise
#: while 8k-bin grids stop paying the O(n^2) wall.
DEFAULT_BACKEND: str = "auto"

#: Operand-transport names an :class:`AnalysisConfig` may select for
#: parallel execution (inert at ``jobs=1``).  ``shm`` ships shard
#: payloads as index tuples into a shared-memory operand arena
#: (:mod:`repro.exec.arena`) and is the default; ``pickle`` ships full
#: operand vectors per shard — the PR-5 wire format, kept as the
#: fallback for platforms without POSIX shared memory and as the
#: differential reference the shm transport is tested against.
KNOWN_TRANSPORTS: tuple = ("shm", "pickle")

#: Default operand transport for ``jobs > 1``.
DEFAULT_TRANSPORT: str = "shm"

#: Hard cap on the number of bins a single distribution may occupy; a
#: guard against pathological configurations (dt too small for the
#: circuit depth), not a tuning knob.
MAX_BINS: int = 1 << 21

# ----------------------------------------------------------------------
# Analysis-service capacity knobs (see repro.service).  Collected here
# with the numeric defaults so a deployment tunes every knob in one
# place; the service modules import them rather than re-hardcoding.
# ----------------------------------------------------------------------

#: Service worker processes behind one port (``repro-ssta serve
#: --workers``).  1 keeps the single-process server; N > 1 runs the
#: pre-fork front (:mod:`repro.service.frontend`).
DEFAULT_SERVICE_WORKERS: int = 1

#: Fixed handler threads per service worker process.  Kernel work is
#: GIL-serialized, so more threads only add queueing inside the
#: process; a small pool keeps /stats and cache hits responsive while
#: one heavy request computes.
DEFAULT_SERVICE_HANDLER_THREADS: int = 4

#: Bounded admission queue per worker: accepted-but-not-yet-handled
#: requests.  A request arriving with the queue full is rejected
#: immediately with 503 + ``Retry-After`` (never an unbounded thread
#: spawn) — overload changes *whether* a request is served, never
#: *what* it returns.
DEFAULT_SERVICE_QUEUE_DEPTH: int = 32

#: ``Retry-After`` seconds advertised on 503 rejections.
DEFAULT_SERVICE_RETRY_AFTER_S: float = 1.0

#: Seconds a graceful drain waits for in-flight handlers to finish
#: before the final snapshot flush (a wedged handler cannot pin
#: shutdown forever).
DEFAULT_SERVICE_DRAIN_TIMEOUT_S: float = 30.0


@dataclass(frozen=True)
class AnalysisConfig:
    """Bundle of numeric parameters shared by an analysis session.

    Instances are immutable; use :meth:`with_updates` to derive variants
    (e.g. a coarser grid for a quick optimization pass).

    ``cache`` enables the keyed convolution-result memo
    (:class:`repro.dist.cache.ConvolutionCache`): ``None`` disables
    caching (the default), an ``int`` creates a cache with that entry
    capacity, and an existing instance is used as-is (and *shared* by
    configs derived via :meth:`with_updates` — safe, because cache keys
    include the grid spacing, trim epsilon, and backend).  Hits return
    bit-identical results, so the knob changes cost, never answers.

    ``level_batch`` selects the execution mode of every engine that
    walks the timing graph: when true (the default) a whole topological
    level's fan-in convolutions go through one batched
    ``convolve_many`` dispatch and its MAX reductions through one
    grouped sweep (see :func:`repro.timing.ssta.compute_level_arrivals`)
    instead of per-node kernel calls.  Like the backend and cache
    knobs it changes cost, never answers: batched propagation is
    bitwise identical to the sequential per-node path — the invariant
    the level-batching differential suite and the CI drift gate
    enforce.  The sequential path is retained (``level_batch=False``)
    as the differential-testing reference.

    ``jobs`` selects the execution plan the level batches run under
    (see :mod:`repro.exec`): 1 (the default) executes kernel batches
    in-process; ``N > 1`` shards each batch across a persistent pool
    of ``N`` worker processes.  Parallel execution is the third knob
    in the cost-not-answers family: every shard's kernel output is
    bitwise identical to the in-process computation, per-shard op
    tallies sum to the sequential tally, and the result cache (which
    never leaves the coordinating process) sees the exact sequential
    request stream — enforced end to end by the parallel differential
    suite and the CI drift gate.  Level batching is a prerequisite:
    with ``level_batch=False`` there are no batches to shard and the
    knob is inert.

    ``transport`` selects how operands reach the worker processes when
    ``jobs > 1`` (inert otherwise): ``"shm"`` (the default) publishes
    mass vectors into a content-keyed shared-memory arena and ships
    shard payloads as index tuples; ``"pickle"`` ships the full
    vectors per shard.  Like every other execution knob it changes
    cost, never answers — both transports are locked bitwise to the
    serial plan by the arena differential suite and the CI drift gate.

    ``sparse_eps`` enables sparse-grid arrival storage
    (:class:`repro.dist.sparse.SparseDiscretePDF`): when positive, the
    SSTA engines store each propagated arrival in threshold-masked
    run-length form, dropping at most ``sparse_eps`` total mass per
    node, and the kernels densify operands on entry.  ``0.0`` (the
    default) keeps dense storage and is bitwise inert.  Unlike the
    execution knobs this one *does* perturb answers — by a total-
    variation budget that grows at most linearly in depth, kept under
    1e-12 at the golden sinks for the default 1e-16 working value (see
    ``repro.dist.sparse``); the ceiling below blocks budgets large
    enough to be visible at analysis precision.
    """

    dt: float = DEFAULT_DT_PS
    tail_eps: float = DEFAULT_TAIL_EPS
    percentile: float = DEFAULT_PERCENTILE
    sigma_fraction: float = DEFAULT_SIGMA_FRACTION
    truncation_sigma: float = DEFAULT_TRUNCATION_SIGMA
    delta_w: float = DEFAULT_DELTA_W
    backend: str = DEFAULT_BACKEND
    cache: object = None
    level_batch: bool = True
    jobs: int = 1
    transport: str = DEFAULT_TRANSPORT
    sparse_eps: float = 0.0

    def __post_init__(self) -> None:
        if self.dt <= 0.0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if not 0.0 <= self.tail_eps < 0.5:
            raise ValueError(f"tail_eps must be in [0, 0.5), got {self.tail_eps}")
        if not 0.0 < self.percentile < 1.0:
            raise ValueError(
                f"percentile must be in (0, 1), got {self.percentile}"
            )
        if self.sigma_fraction < 0.0:
            raise ValueError(
                f"sigma_fraction must be non-negative, got {self.sigma_fraction}"
            )
        if self.truncation_sigma <= 0.0:
            raise ValueError(
                f"truncation_sigma must be positive, got {self.truncation_sigma}"
            )
        if self.delta_w <= 0.0:
            raise ValueError(f"delta_w must be positive, got {self.delta_w}")
        if self.backend not in KNOWN_BACKENDS:
            # DistributionError, not ValueError: a typo'd backend name
            # is the same failure get_backend raises mid-analysis, and
            # callers (CLI, service) already translate ReproError into
            # their error surfaces.  Lazy import for the same
            # one-directional reason as the cache coercion below.
            from .errors import DistributionError

            raise DistributionError(
                f"unknown convolution backend {self.backend!r}; "
                f"available: {', '.join(KNOWN_BACKENDS)}"
            )
        if not isinstance(self.level_batch, bool):
            raise ValueError(
                f"level_batch must be a bool, got {self.level_batch!r}"
            )
        if (
            not isinstance(self.jobs, int)
            or isinstance(self.jobs, bool)
            or self.jobs < 1
        ):
            raise ValueError(
                f"jobs must be an int >= 1, got {self.jobs!r}"
            )
        if not 0.0 <= self.sparse_eps < 1e-3:
            raise ValueError(
                f"sparse_eps must be in [0, 1e-3), got {self.sparse_eps}"
            )
        if self.transport not in KNOWN_TRANSPORTS:
            raise ValueError(
                f"transport must be one of {KNOWN_TRANSPORTS}, "
                f"got {self.transport!r}"
            )
        if self.cache is not None:
            # Lazy import: repro.dist imports this module for the grid
            # constants, so the dependency must stay one-directional at
            # import time.  Coercion accepts an int capacity or a
            # ConvolutionCache instance and raises otherwise.
            from .dist.cache import ConvolutionCache

            try:
                coerced = ConvolutionCache.coerce(self.cache)
            except Exception as exc:
                raise ValueError(str(exc)) from exc
            object.__setattr__(self, "cache", coerced)

    def with_updates(self, **changes: object) -> "AnalysisConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


#: Shared default configuration.  Functions take an optional config and
#: fall back to this instance, so library users who do not care about
#: numerics never see the knob.
DEFAULT_CONFIG = AnalysisConfig()
