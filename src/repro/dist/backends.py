"""Pluggable convolution backends for the ADD kernel.

The paper's inner loop convolves discretized PDFs thousands of times
per sizing iteration.  ``np.convolve`` is O(n*m) — unbeatable for the
few-dozen-bin operands of the default 2 ps grid, but a wall past a few
thousand bins (BENCH_dist.json: 42k ops/s at 33 bins collapsing to
82 ops/s at 8193).  This module makes the kernel implementation a
*backend*: a small strategy object that turns two mass vectors into
their linear convolution, selected by name through
:class:`~repro.config.AnalysisConfig` and threaded by the engines
through every call site, so one knob switches the whole analysis.

Three backends ship:

* :class:`DirectBackend` — ``np.convolve``.  Exact to the last ulp and
  the reference every other backend is tested against.
* :class:`FFTBackend` — real-FFT pointwise product, O(N log N).  FFT
  round-off can produce tiny negative ringing and lose a few ulp of
  mass, which would violate the :class:`~repro.dist.pdf.DiscretePDF`
  contract (non-negative masses, total 1); the backend therefore clamps
  negatives to zero and rescales the result back to the operands' mass
  product before handing it over.
* :class:`AutoBackend` — per-call size dispatch between the two using a
  calibrated cost model.  Direct costs ~``k_d * n_a * n_b`` multiplies;
  FFT costs ~``k_f * N log2 N`` with ``N = n_a + n_b - 1``.  The
  measured ratio ``k_f / k_d`` on the benchmark machine is ~25
  (``scripts/bench_dist.py`` re-measures it), giving an equal-size
  crossover of ~512 bins while keeping delta-function and strongly
  asymmetric operands (where direct degenerates to O(N)) on the direct
  path.  Below the crossover ``auto`` *is* ``direct``, bit for bit —
  which is what lets it be the default without perturbing any
  reproducibility guarantee on ordinary grids.

Two more ship when the compiled tier (:mod:`repro.dist._compiled`) can
stand up a provider — numba ``@njit`` kernels or a C library built
with the system compiler — and degrade to the pure-NumPy numerics
above (with one warning) when it cannot:

* :class:`CompiledBackend` — the direct convolution, the fused
  normalize-and-trim construction step, and the grouped-MAX CDF sweep
  as compiled inner loops.  Raw convolutions sit in the same 1e-12-TV
  equivalence class as ``fft`` (sequential instead of pairwise
  reductions); the MAX sweep is **bitwise** the NumPy sweep and is
  verified before use.  Degraded, it *is* ``direct``, bit for bit.
* :class:`CompiledAutoBackend` — the ``auto`` cost model with the
  compiled kernel on the direct side, re-calibrated against the same
  FFT backend (``scripts/bench_dist.py`` records the measured
  compiled↔fft crossover next to the direct↔fft one).

Backends are deterministic and carry no *semantic* state: the same
operand pair always takes the same path and produces the same bits
(the FFT backend memoizes forward transforms of immutable mass
vectors, which changes when work happens, never its result), so
pruned-vs-brute-force bitwise equivalence holds under every backend —
both sizers resolve the same backend from the same config.
"""

from __future__ import annotations

import weakref
from typing import Sequence, Union

import numpy as np

from ..config import KNOWN_BACKENDS
from ..errors import DistributionError

try:  # Protocol is 3.8+; keep a soft fallback for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


__all__ = [
    "ConvolutionBackend",
    "DirectBackend",
    "FFTBackend",
    "AutoBackend",
    "CompiledBackend",
    "CompiledAutoBackend",
    "BackendLike",
    "get_backend",
    "available_backends",
    "is_registry_backend",
    "AUTO_COST_RATIO",
    "EQUAL_SIZE_CROSSOVER_BINS",
    "COMPILED_AUTO_COST_RATIO",
    "COMPILED_EQUAL_SIZE_CROSSOVER_BINS",
]

#: Calibrated ``k_f / k_d`` cost ratio of the auto dispatch (see the
#: module docstring); ``scripts/bench_dist.py`` reports the measured
#: equal-size crossover this ratio implies on the current machine.
AUTO_COST_RATIO: float = 25.0

#: Equal-size operand count at which the calibrated cost model flips
#: from direct to FFT (n * n ~ AUTO_COST_RATIO * 2n * log2(2n)).
#: Documentation/benchmark anchor, not used by the dispatch itself.
EQUAL_SIZE_CROSSOVER_BINS: int = 512


@runtime_checkable
class ConvolutionBackend(Protocol):
    """Strategy interface: linear convolution of two mass vectors.

    Implementations must be pure functions of their operands (no
    internal state), return a length ``n_a + n_b - 1`` non-negative
    vector whose total equals ``a.sum() * b.sum()`` up to round-off,
    and be deterministic — the reproducibility guarantees of the
    pruned sizer rest on repeated calls giving identical bits.
    """

    name: str

    def convolve_masses(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Linear convolution of ``a`` and ``b`` (1-D, non-negative)."""
        ...

    def convolve_many(self, pairs: Sequence) -> list:
        """Batched linear convolution of ``(a, b)`` operand pairs.

        Returns one output vector per pair, in order, each honoring
        the :meth:`convolve_masses` contract — **bitwise**: a batched
        row must equal the vector :meth:`convolve_masses` would return
        for the same pair, whatever the batch composition.  The result
        cache keys entries by operand content alone, so this is what
        keeps cached batched and singleton computations
        interchangeable.  Backends are free to amortize work across
        same-shape pairs under that constraint (the FFT backend stacks
        them into one 2-D transform, verifying per transform size that
        the platform batches row-bitwise); third-party backends may
        omit this
        method — the kernel layer falls back to a
        :meth:`convolve_masses` loop.  An empty batch returns ``[]``
        without performing any work (the level-batched engines dispatch
        whatever a level needs, which can be nothing once the result
        cache has resolved every pair).
        """
        ...


class DirectBackend:
    """O(n*m) ``np.convolve`` — the exact reference kernel."""

    name = "direct"

    def convolve_masses(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.convolve(a, b)

    def convolve_many(self, pairs: Sequence) -> list:
        """Loop fallback: per-pair results are bitwise identical to
        :meth:`convolve_masses`, whatever the batch composition."""
        return [np.convolve(a, b) for a, b in pairs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DirectBackend()"


def _next_fast_len(n: int) -> int:
    """Smallest 5-smooth (2^a 3^b 5^c) integer >= ``n``.

    numpy's pocketfft handles these sizes at full speed; padding to one
    avoids the large-prime slow path without depending on scipy.
    """
    if n <= 6:
        return n
    best = 1 << (n - 1).bit_length()  # next power of two always works
    p5 = 1
    while p5 < best:
        p35 = p5
        while p35 < best:
            x = p35
            while x < n:
                x *= 2
            if x < best:
                best = x
            p35 *= 3
        p5 *= 5
    return best


class FFTBackend:
    """O(N log N) real-FFT product with the PDF-contract repairs.

    The raw inverse transform carries round-off of order
    ``eps * N`` spread over the support: entries that should be zero
    come back as ~1e-17 values of either sign.  Negative entries are
    clamped (the contract requires non-negative masses) and the result
    is rescaled so its total equals ``a.sum() * b.sum()`` exactly as
    the direct kernel would preserve it — without the rescale, clamping
    would leak a few ulp of mass per convolution, which compounds over
    deep circuits.

    Forward transforms are memoized.  The SSTA inner loop convolves a
    small set of *reused* operands (every gate's delay PDF comes out of
    the :class:`~repro.timing.delay_model.DelayModel` cache; an arrival
    feeds every fan-out arc), and :class:`~repro.dist.pdf.DiscretePDF`
    mass vectors are immutable (read-only arrays), so their transforms
    can be cached safely.  Entries are keyed by array identity with a
    weak reference both to self-evict when the operand dies and to
    guard against ``id`` reuse; memoization changes which computation
    produces the bits, never the bits themselves (the same transform of
    the same array is bit-deterministic).
    """

    name = "fft"

    #: Skip the memo for transforms below this length — small FFTs cost
    #: less than the bookkeeping, and caching them would churn entries.
    MIN_CACHED_NFFT = 1024

    #: Entry cap counting every stored transform — one per (array,
    #: nfft) pair, so repeated pads of one long-lived operand are
    #: bounded too; the cache is cleared wholesale when full.  An nfft
    #: of 16384 holds ~128 KiB per entry, so the bound caps memory at
    #: a few MiB while realistic working sets stay far below it.
    MAX_CACHE_ENTRIES = 128

    def __init__(self) -> None:
        #: (id(array), nfft) -> (weakref to array, transform)
        self._rfft_cache: dict = {}

    def _rfft(self, arr: np.ndarray, nfft: int) -> np.ndarray:
        if nfft < self.MIN_CACHED_NFFT:
            return np.fft.rfft(arr, nfft)
        key = (id(arr), nfft)
        entry = self._rfft_cache.get(key)
        if entry is not None:
            ref, cached = entry
            if ref() is arr:
                return cached
            del self._rfft_cache[key]  # id was recycled by a dead array
        out = np.fft.rfft(arr, nfft)
        try:
            ref = weakref.ref(
                arr, lambda _r, key=key: self._rfft_cache.pop(key, None)
            )
        except TypeError:  # pragma: no cover - plain ndarrays are
            return out  # weakref-able; subclasses may not be
        if len(self._rfft_cache) >= self.MAX_CACHE_ENTRIES:
            self._rfft_cache.clear()
        self._rfft_cache[key] = (ref, out)
        return out

    def convolve_masses(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        n = a.size + b.size - 1
        nfft = _next_fast_len(n)
        out = np.fft.irfft(self._rfft(a, nfft) * self._rfft(b, nfft), nfft)[:n]
        np.maximum(out, 0.0, out=out)
        total = out.sum()
        if total <= 0.0:  # pragma: no cover - all-zero operands are
            return out  # rejected upstream by DiscretePDF
        out *= (a.sum() * b.sum()) / total
        return out

    #: Per-``nfft`` verification verdicts: is the platform's stacked
    #: 2-D transform row-bitwise with the 1-D path at this size?
    #: pocketfft processes rows independently, so on every NumPy build
    #: tested the answer is yes — but it is a build property, not an
    #: API guarantee, so it is *measured per transform size*, never
    #: assumed: the first batch at each ``nfft`` checks its own first
    #: row against :meth:`convolve_masses` (full path, including the
    #: clamp-and-rescale repairs).  A size that fails falls back to the
    #: (bitwise by construction) loop forever after, trading the
    #: transform amortization for the contract.
    _batch_nfft_bitwise: dict = {}

    def _batch_compute(self, rows_a, rows_b, n_a: int, n_b: int) -> np.ndarray:
        """The stacked transform: two ``(k, n)`` matrices through one
        batched ``rfft``/``irfft`` round trip, then the row-wise
        clamp-and-rescale contract repairs of :meth:`convolve_masses`."""
        n = n_a + n_b - 1
        nfft = _next_fast_len(n)
        stack_a = np.zeros((len(rows_a), n_a))
        stack_b = np.zeros((len(rows_b), n_b))
        for row, a in enumerate(rows_a):
            stack_a[row] = a
        for row, b in enumerate(rows_b):
            stack_b[row] = b
        prod = np.fft.rfft(stack_a, nfft, axis=1) * np.fft.rfft(
            stack_b, nfft, axis=1
        )
        res = np.fft.irfft(prod, nfft, axis=1)[:, :n]
        np.maximum(res, 0.0, out=res)
        totals = res.sum(axis=1)
        target = stack_a.sum(axis=1) * stack_b.sum(axis=1)
        ok = totals > 0.0  # all-zero rows are rejected upstream
        res[ok] *= (target[ok] / totals[ok])[:, None]
        return res

    def convolve_many(self, pairs: Sequence) -> list:
        """Batched convolution: same-shape pairs share one 2-D real-FFT.

        Pairs are grouped by operand shape ``(n_a, n_b)``; each group of
        two or more is stacked into one batched transform, amortizing
        the setup the SSTA inner loop pays per fan-in arc; singleton
        groups delegate to :meth:`convolve_masses` (and its
        forward-transform memo).

        Every row is **bitwise identical** to the corresponding
        :meth:`convolve_masses` call: the first batch at each transform
        size verifies its own first row against the singleton path and
        records the verdict per ``nfft`` (true on every NumPy tested —
        pocketfft transforms rows independently), falling back to the
        plain loop at any size where the platform disagrees.  That
        equivalence is what lets the result cache share entries between
        batched and singleton computations without breaking its
        bitwise-transparency contract.  Rows are copied out of the
        padded batch matrix so cached results never pin the full
        ``(k, nfft)`` storage.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        out: list = [None] * len(pairs)
        groups: dict = {}
        for i, (a, b) in enumerate(pairs):
            groups.setdefault((a.size, b.size), []).append(i)
        for (n_a, n_b), idxs in groups.items():
            if len(idxs) == 1:
                i = idxs[0]
                out[i] = self.convolve_masses(*pairs[i])
                continue
            nfft = _next_fast_len(n_a + n_b - 1)
            verdict = FFTBackend._batch_nfft_bitwise.get(nfft)
            if verdict is False:  # pragma: no cover - exotic FFT builds
                for i in idxs:
                    out[i] = self.convolve_masses(*pairs[i])
                continue
            res = self._batch_compute(
                [pairs[i][0] for i in idxs],
                [pairs[i][1] for i in idxs],
                n_a,
                n_b,
            )
            if verdict is None:
                first = self.convolve_masses(*pairs[idxs[0]])
                verdict = bool(np.array_equal(res[0], first))
                FFTBackend._batch_nfft_bitwise[nfft] = verdict
                if not verdict:  # pragma: no cover - exotic FFT builds
                    out[idxs[0]] = first
                    for i in idxs[1:]:
                        out[i] = self.convolve_masses(*pairs[i])
                    continue
            for row, i in enumerate(idxs):
                # An explicit copy, not ascontiguousarray: the sliced
                # row is already contiguous, and a view here would pin
                # the whole (k, nfft) batch matrix inside every
                # long-lived cache entry built from it.
                out[i] = res[row].copy()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FFTBackend(cached={len(self._rfft_cache)})"


#: Process-wide kernel instances shared by the registry and every
#: AutoBackend, so there is exactly one FFT transform memo.
_DIRECT = DirectBackend()
_FFT = FFTBackend()


class AutoBackend:
    """Size-based dispatch between :class:`DirectBackend` and
    :class:`FFTBackend` using the calibrated cost model.

    Parameters
    ----------
    cost_ratio:
        The machine's ``k_f / k_d`` — FFT butterfly cost per
        ``N log2 N`` over direct cost per multiply.  Larger values
        favor direct longer.
    """

    name = "auto"

    def __init__(self, cost_ratio: float = AUTO_COST_RATIO) -> None:
        if cost_ratio <= 0.0:
            raise DistributionError(
                f"cost_ratio must be positive, got {cost_ratio}"
            )
        self.cost_ratio = cost_ratio
        # Shared singletons: auto's large-operand path must hit the
        # same transform memo as explicit "fft" calls, not a second
        # cache holding duplicate transforms.
        self._direct = _DIRECT
        self._fft = _FFT

    def chooses(self, n_a: int, n_b: int) -> str:
        """Name of the kernel this operand pair dispatches to."""
        n_out = n_a + n_b - 1
        fft_cost = self.cost_ratio * n_out * np.log2(n_out + 1)
        return "direct" if n_a * n_b <= fft_cost else "fft"

    def convolve_masses(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.chooses(a.size, b.size) == "direct":
            return self._direct.convolve_masses(a, b)
        return self._fft.convolve_masses(a, b)

    def convolve_many(self, pairs: Sequence) -> list:
        """Partition the batch by the cost model: below-crossover pairs
        run the direct loop (bitwise the sequential path — the property
        the default config's reproducibility rests on), the rest go
        through the FFT backend's batched transform."""
        pairs = list(pairs)
        if not pairs:
            return []
        out: list = [None] * len(pairs)
        fft_idx: list = []
        for i, (a, b) in enumerate(pairs):
            if self.chooses(a.size, b.size) == "direct":
                out[i] = self._direct.convolve_masses(a, b)
            else:
                fft_idx.append(i)
        if fft_idx:
            batched = self._fft.convolve_many([pairs[i] for i in fft_idx])
            for i, res in zip(fft_idx, batched):
                out[i] = res
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AutoBackend(cost_ratio={self.cost_ratio:g})"


class CompiledBackend:
    """Compiled direct kernels behind the backend protocol.

    Delegates to the provider resolved by
    :mod:`repro.dist._compiled` — numba ``@njit`` kernels when the
    ``[compiled]`` extra is installed, else a C library built with the
    system compiler — and degrades to the pure-NumPy ``direct``
    numerics (bitwise: the same ``np.convolve``) with one warning when
    no provider can be stood up or ``REPRO_DISABLE_COMPILED`` is set.

    Beyond the protocol it exposes the *fused* hooks the kernel layer
    probes with ``getattr``: ``convolve_trimmed`` /
    ``convolve_many_trimmed`` collapse the convolve → normalize → trim
    construction into one compiled call (the cache-miss fast path),
    ``trim_raws`` / ``rebuild_trimmed`` apply the same compiled
    construction to raws computed elsewhere (executor shards, cache
    replays — keeping every path inside one arithmetic class), and
    ``grouped_max_raws`` runs the bitwise-verified grouped-MAX sweep.
    All hooks are gated by the ``fused_trim_active`` /
    ``max_sweep_active`` properties so callers never need to know
    whether the tier resolved.

    Provider resolution is lazy — importing this module never compiles
    anything; ``warm_up()`` forces it (pool workers call it at init so
    the first level never pays JIT/compile latency).
    """

    name = "compiled"

    @staticmethod
    def _provider():
        from . import _compiled

        p = _compiled.get_provider()
        if p is None:
            _compiled.warn_degraded_once()
        return p

    # -- the ConvolutionBackend protocol ------------------------------
    def convolve_masses(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        p = self._provider()
        if p is None:
            return np.convolve(a, b)
        return p.conv_one(a, b)

    def convolve_many(self, pairs: Sequence) -> list:
        pairs = list(pairs)
        if not pairs:
            return []
        p = self._provider()
        if p is None:
            return [np.convolve(a, b) for a, b in pairs]
        return p.conv_many(pairs)

    # -- fused construction hooks -------------------------------------
    @property
    def fused_trim_active(self) -> bool:
        """True when results can be *built* in compiled code.  False
        degrades every caller to the stock NumPy construction, which
        keeps the degraded backend bitwise ``direct``."""
        return self._provider() is not None

    def convolve_trimmed(self, a, b, dt, offset, trim_eps):
        """Fused miss path: ``(raw, DiscretePDF)`` in one call."""
        p = self._provider()
        if p is None:  # pragma: no cover - callers gate on the property
            from .pdf import DiscretePDF

            raw = np.convolve(a, b)
            return raw, DiscretePDF._trusted(  # noqa: SLF001
                dt, offset, raw.copy()
            ).trimmed(trim_eps)
        return p.conv_trim_one(a, b, dt, offset, trim_eps)

    def convolve_many_trimmed(self, pairs, dts, offsets, trim_eps,
                              want_raws: bool):
        """Batched fused miss path; raws come back only when the caller
        needs them (cache stores), results always."""
        p = self._provider()
        if p is None:  # pragma: no cover - callers gate on the property
            out = [
                self.convolve_trimmed(a, b, dt, off, trim_eps)
                for (a, b), dt, off in zip(pairs, dts, offsets)
            ]
            raws = [raw for raw, _ in out] if want_raws else None
            return raws, [res for _, res in out]
        return p.conv_trim_many(pairs, dts, offsets, trim_eps, want_raws)

    def trim_raws(self, raws, dts, offsets, trim_eps) -> list:
        """Compiled construction of results from precomputed raws —
        bitwise the fused path's results for the same raw bits."""
        p = self._provider()
        if p is None:  # pragma: no cover - callers gate on the property
            from .pdf import DiscretePDF

            return [
                DiscretePDF._trusted(  # noqa: SLF001
                    dt, off, np.array(raw)
                ).trimmed(trim_eps)
                for raw, dt, off in zip(raws, dts, offsets)
            ]
        return p.trim_many(raws, dts, offsets, trim_eps)[1]

    def rebuild_trimmed(self, dt, offset, raw, trim_eps):
        """Cache-replay construction (translated anchors): same
        compiled trim as a fresh compute, so replayed and computed
        entries carry identical bits."""
        p = self._provider()
        if p is None:  # pragma: no cover - callers gate on the property
            from .pdf import DiscretePDF

            return DiscretePDF(dt, offset, raw).trimmed(trim_eps)
        return p.trim_one(dt, offset, raw, trim_eps)

    # -- grouped MAX --------------------------------------------------
    @property
    def max_sweep_active(self) -> bool:
        """True when the compiled sweep passed its bitwise self-check;
        False falls back to the NumPy sweep (identical bits either
        way — that is the precondition, not a tolerance)."""
        p = self._provider()
        return p is not None and p.max_ok

    def grouped_max_raws(self, groups) -> list:
        """``(lo, masses)`` per group, bitwise ``_max_masses``."""
        p = self._provider()
        if p is None or not p.max_ok:  # pragma: no cover - gated
            from .ops import _max_masses

            return [_max_masses(g) for g in groups]
        return p.max_sweep(groups)

    # -- lifecycle ----------------------------------------------------
    def warm_up(self):
        """Force provider resolution (C compile / numba JIT) now.
        Returns the provider kind (``"numba"``/``"cext"``) or ``None``
        when degraded — pool workers call this at init.  Deliberately
        does *not* emit the degraded warning: workers warm every
        registry backend whether or not the analysis selected this
        one; the warning belongs to actual degraded use."""
        from . import _compiled

        p = _compiled.get_provider()
        return None if p is None else p.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from ._compiled import provider_kind

        return f"CompiledBackend(provider={provider_kind()!r})"


#: Calibrated ``k_f / k_d`` for the compiled-auto dispatch.  The
#: compiled direct kernel runs ~2x the NumPy direct throughput at
#: sub-crossover sizes, pushing the equal-size crossover vs the same
#: FFT backend out accordingly; ``scripts/bench_dist.py`` re-measures
#: the crossover this implies and records it next to the direct one.
COMPILED_AUTO_COST_RATIO: float = 50.0

#: Equal-size operand count where the compiled-auto cost model flips
#: to FFT (documentation/benchmark anchor, like
#: :data:`EQUAL_SIZE_CROSSOVER_BINS`).
COMPILED_EQUAL_SIZE_CROSSOVER_BINS: int = 1024


class CompiledAutoBackend:
    """The :class:`AutoBackend` cost model with the compiled kernel on
    the direct side.

    Convolutions dispatch between :class:`CompiledBackend` and the
    shared :class:`FFTBackend` singleton (same transform memo as
    explicit ``fft``) under a re-calibrated cost ratio; *construction*
    (trim, cache replay, grouped MAX) always goes through the compiled
    provider regardless of which engine produced the raw, so the whole
    backend stays in one arithmetic class.  Degraded it is the stock
    auto dispatch: NumPy direct below the crossover, FFT above.
    """

    name = "compiled-auto"

    def __init__(self, cost_ratio: float = COMPILED_AUTO_COST_RATIO) -> None:
        if cost_ratio <= 0.0:
            raise DistributionError(
                f"cost_ratio must be positive, got {cost_ratio}"
            )
        self.cost_ratio = cost_ratio
        self._compiled = _COMPILED
        self._fft = _FFT

    def chooses(self, n_a: int, n_b: int) -> str:
        """``"compiled"`` or ``"fft"`` for this operand pair."""
        n_out = n_a + n_b - 1
        fft_cost = self.cost_ratio * n_out * np.log2(n_out + 1)
        return "compiled" if n_a * n_b <= fft_cost else "fft"

    def convolve_masses(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.chooses(a.size, b.size) == "compiled":
            return self._compiled.convolve_masses(a, b)
        return self._fft.convolve_masses(a, b)

    def convolve_many(self, pairs: Sequence) -> list:
        pairs = list(pairs)
        if not pairs:
            return []
        out: list = [None] * len(pairs)
        comp_idx: list = []
        fft_idx: list = []
        for i, (a, b) in enumerate(pairs):
            if self.chooses(a.size, b.size) == "compiled":
                comp_idx.append(i)
            else:
                fft_idx.append(i)
        if comp_idx:
            batched = self._compiled.convolve_many(
                [pairs[i] for i in comp_idx]
            )
            for i, res in zip(comp_idx, batched):
                out[i] = res
        if fft_idx:
            batched = self._fft.convolve_many([pairs[i] for i in fft_idx])
            for i, res in zip(fft_idx, batched):
                out[i] = res
        return out

    # -- fused construction: always the compiled trim -----------------
    @property
    def fused_trim_active(self) -> bool:
        return self._compiled.fused_trim_active

    def convolve_trimmed(self, a, b, dt, offset, trim_eps):
        if self.chooses(a.size, b.size) == "compiled":
            return self._compiled.convolve_trimmed(
                a, b, dt, offset, trim_eps
            )
        raw = self._fft.convolve_masses(a, b)
        return raw, self._compiled.rebuild_trimmed(dt, offset, raw, trim_eps)

    def convolve_many_trimmed(self, pairs, dts, offsets, trim_eps,
                              want_raws: bool):
        pairs = list(pairs)
        if not pairs:
            return ([] if want_raws else None), []
        comp_idx: list = []
        fft_idx: list = []
        for i, (a, b) in enumerate(pairs):
            if self.chooses(a.size, b.size) == "compiled":
                comp_idx.append(i)
            else:
                fft_idx.append(i)
        raws: list = [None] * len(pairs)
        results: list = [None] * len(pairs)
        if comp_idx:
            c_raws, c_res = self._compiled.convolve_many_trimmed(
                [pairs[i] for i in comp_idx],
                [dts[i] for i in comp_idx],
                [offsets[i] for i in comp_idx],
                trim_eps,
                want_raws,
            )
            for j, i in enumerate(comp_idx):
                results[i] = c_res[j]
                if want_raws:
                    raws[i] = c_raws[j]
        if fft_idx:
            f_raws = self._fft.convolve_many([pairs[i] for i in fft_idx])
            f_res = self._compiled.trim_raws(
                f_raws,
                [dts[i] for i in fft_idx],
                [offsets[i] for i in fft_idx],
                trim_eps,
            )
            for j, i in enumerate(fft_idx):
                results[i] = f_res[j]
                if want_raws:
                    raws[i] = f_raws[j]
        return (raws if want_raws else None), results

    def trim_raws(self, raws, dts, offsets, trim_eps) -> list:
        return self._compiled.trim_raws(raws, dts, offsets, trim_eps)

    def rebuild_trimmed(self, dt, offset, raw, trim_eps):
        return self._compiled.rebuild_trimmed(dt, offset, raw, trim_eps)

    # -- grouped MAX / lifecycle: the compiled backend's --------------
    @property
    def max_sweep_active(self) -> bool:
        return self._compiled.max_sweep_active

    def grouped_max_raws(self, groups) -> list:
        return self._compiled.grouped_max_raws(groups)

    def warm_up(self):
        return self._compiled.warm_up()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledAutoBackend(cost_ratio={self.cost_ratio:g})"


#: Shared compiled singleton — compiled-auto routes its direct-side
#: calls (and all construction) through the same instance.
_COMPILED = CompiledBackend()

#: Shared singletons — resolution never allocates, and "auto" routes
#: its FFT-path calls through the same memo as "fft".
_REGISTRY = {
    "direct": _DIRECT,
    "fft": _FFT,
    "auto": AutoBackend(),
    "compiled": _COMPILED,
    "compiled-auto": CompiledAutoBackend(),
}

assert set(_REGISTRY) == set(KNOWN_BACKENDS), (
    "repro.config.KNOWN_BACKENDS and the backend registry disagree"
)

#: What the kernel entry points accept: a registry name or any object
#: honoring the :class:`ConvolutionBackend` protocol.
BackendLike = Union[str, ConvolutionBackend]


def available_backends() -> tuple:
    """Names resolvable by :func:`get_backend`, in registry order."""
    return tuple(_REGISTRY)


def is_registry_backend(kernel) -> bool:
    """True when ``kernel`` is one of the registry singletons — the
    only case where its *name* uniquely identifies the implementation
    in another process or a later run.  Both the parallel executor
    (shipping kernels to workers by name) and the cache snapshots
    (persisting entries under a backend name) gate on this: a custom
    instance aliasing a registry name must never be resolved by name
    into the registry kernel's bits."""
    name = getattr(kernel, "name", None)
    if not isinstance(name, str):
        return False
    return _REGISTRY.get(name) is kernel


def get_backend(spec: BackendLike) -> ConvolutionBackend:
    """Resolve a backend name (or pass a backend instance through).

    Raises :class:`~repro.errors.DistributionError` for unknown names
    or objects that do not implement the protocol, so a typo'd config
    fails loudly at the first kernel call rather than mid-analysis.
    """
    if isinstance(spec, str):
        backend = _REGISTRY.get(spec)
        if backend is None:
            raise DistributionError(
                f"unknown convolution backend {spec!r}; "
                f"available: {', '.join(_REGISTRY)}"
            )
        return backend
    if callable(getattr(spec, "convolve_masses", None)):
        return spec
    raise DistributionError(
        f"{spec!r} is neither a backend name nor a ConvolutionBackend"
    )
