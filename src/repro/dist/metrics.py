"""CDF comparison functionals used by the pruning machinery.

* :func:`max_percentile_gap` — the paper's perturbation measure
  ``delta = max_p [T(A, p) - T(A', p)]``, the largest horizontal gap
  between two CDFs.  Theorems 1-4 bound how this quantity propagates
  through convolution and statistical max, making it the sound pruning
  bound of the accelerated sizer.
* :func:`stochastically_le` — first-order stochastic dominance
  (``A <= B`` when ``F_A(t) >= F_B(t)`` everywhere), the invariant the
  MAX operation must satisfy against each of its operands.

Both evaluate the *same* piecewise-linear CDF interpolant the
:class:`~repro.dist.pdf.DiscretePDF` queries use, and both evaluate it
only at knots — the difference of two piecewise-linear functions
attains its extrema at knots of either operand, so the computed values
are exact, not sampled approximations.
"""

from __future__ import annotations

import numpy as np

from ..errors import GridMismatchError
from .pdf import DiscretePDF

__all__ = ["max_percentile_gap", "stochastically_le"]

#: Vertical (probability-mass) evidence required before a positive
#: horizontal gap is believed.  Cumulative-sum rounding noise is
#: ~1e-14; genuine CDF differences that matter to any percentile
#: objective carry orders of magnitude more mass.  Without this
#: deadband, float noise landing on a near-flat tail segment (slope
#: ~ trim_eps / dt) is amplified into spurious positive gaps that
#: violate the Theorem 1-3 non-expansiveness the pruned sizer relies on.
_VERTICAL_NOISE_FLOOR = 1e-11


def _check_grids(a: DiscretePDF, b: DiscretePDF) -> None:
    if a.dt != b.dt:
        raise GridMismatchError(
            f"cannot compare distributions with dt={a.dt} and dt={b.dt}"
        )


def max_percentile_gap(a: DiscretePDF, b: DiscretePDF) -> float:
    """``max_p [T(a, p) - T(b, p)]`` over all probability levels.

    Positive when ``b`` is (somewhere) horizontally earlier than ``a``
    — i.e. the perturbation improved that part of the CDF; may be
    negative when ``b`` is everywhere later.  Exact for the engine's
    piecewise-linear CDFs: the gap is evaluated at every knot level of
    both operands (including the ``p -> 0`` limit of the leading ramp),
    where the difference of two piecewise-linear inverses attains its
    extrema.

    A positive gap at a level is only believed when backed by more
    vertical CDF advantage than :data:`_VERTICAL_NOISE_FLOOR` — see the
    constant's comment for why horizontal reading of float noise must
    be suppressed.
    """
    _check_grids(a, b)
    xa, fa = a._knots  # noqa: SLF001 - intra-package fast path
    xb, fb = b._knots  # noqa: SLF001
    levels = np.concatenate([fa, fb])
    qa = a._inverse(levels)  # noqa: SLF001 - inf-semantics inverse
    qb = b._inverse(levels)  # noqa: SLF001
    gaps = qa - qb
    # Vertical evidence for each level: how far a's CDF at b's inverse
    # point sits below the level itself.  Noise-scale margins cannot
    # support a positive horizontal gap.
    margin = levels - np.interp(qb, xa, fa, left=0.0, right=1.0)
    gaps = np.where(margin > _VERTICAL_NOISE_FLOOR, gaps, np.minimum(gaps, 0.0))
    return float(np.max(gaps))


def stochastically_le(
    a: DiscretePDF, b: DiscretePDF, *, tol: float = 1e-9
) -> bool:
    """True when ``a`` is stochastically no later than ``b``.

    First-order dominance: ``F_a(t) >= F_b(t) - tol`` for every ``t``
    (checked exactly at the CDF knots of both operands; the default
    tolerance absorbs tail-trimming renormalization noise).
    """
    _check_grids(a, b)
    if tol < 0.0:
        raise ValueError(f"tol must be >= 0, got {tol}")
    xa, _fa = a._knots  # noqa: SLF001
    xb, _fb = b._knots  # noqa: SLF001
    ts = np.concatenate([xa, xb])
    return bool(np.all(a.cdf_at(ts) >= b.cdf_at(ts) - tol))
