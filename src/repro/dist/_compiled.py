"""Compiled providers for the ``compiled`` backend tier.

The :class:`~repro.dist.backends.CompiledBackend` family delegates its
inner loops to a *provider* resolved here: numba ``@njit`` kernels when
numba is importable (the ``[compiled]`` install extra), otherwise a
tiny C library compiled on first use with the system C compiler and
loaded through cffi (or ctypes when cffi is absent).  When neither
provider can be stood up — no numba, no compiler — ``get_provider()``
returns ``None`` and the compiled backends degrade to the pure-NumPy
``direct`` numerics with a single warning, so selecting ``compiled``
is always safe.

Three kernel families are provided, all operating on packed flat
buffers (operands concatenated, ``int64`` offset/length arrays) so a
whole level batch costs one foreign call:

* **convolve** — scatter-form direct convolution, scalar and batched;
* **trim** — the fused normalize-and-trim construction step: a mirror
  of ``DiscretePDF._trusted(...).trimmed(trim_eps)`` whose reductions
  run sequentially in compiled code.  This is where the cache-miss
  speedup lives: the stock path pays ~10 µs of per-result NumPy
  dispatch (sum, divide, cumsum, searchsorted) per pair, the fused
  path pays one compiled call per batch.
* **max sweep** — the padded-CDF product + adjacent difference of the
  grouped statistical MAX.  Unlike the convolve/trim family this one
  must be **bitwise identical** to the NumPy sweep (MAX cache keys
  carry no backend component), which it is by construction: the same
  multiplications and subtractions in the same order, with
  ``-ffp-contract=off`` pinning the C build.  A self-check verifies it
  and disables the sweep (never the provider) on any mismatch.

Equivalence classes: the convolve/trim family is a *tolerance* class
like the FFT backend — within 1e-12 total variation of ``direct`` but
not bitwise (sequential instead of pairwise reductions) — while the
max sweep is bitwise.  Within the compiled class itself everything is
deterministic and batch-invariant: scalar, batched, and worker-sharded
paths run the exact same compiled code per item.

``REPRO_DISABLE_COMPILED=1`` disables provider resolution entirely
(the kill switch); ``REPRO_COMPILED_CACHE`` overrides where the C
library is built (default ``~/.cache/repro/compiled``).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..config import MAX_BINS
from ..errors import DistributionError
from .pdf import DiscretePDF

__all__ = [
    "get_provider",
    "provider_kind",
    "reset_provider_cache",
    "DISABLE_ENV",
    "CACHE_DIR_ENV",
]

#: Kill switch: set to a non-empty value (other than ``0``) to disable
#: the compiled tier entirely; the compiled backends then run the
#: pure-NumPy direct numerics.
DISABLE_ENV = "REPRO_DISABLE_COMPILED"

#: Where the C provider caches its compiled shared library.
CACHE_DIR_ENV = "REPRO_COMPILED_CACHE"

# ----------------------------------------------------------------------
# C source.  The trim kernel mirrors DiscretePDF._trusted(...).trimmed:
# normalize by the total, cut the largest prefix/suffix whose
# cumulative normalized mass stays <= trim_eps/2, lump the dropped mass
# onto the boundary bins, renormalize the kept vector (skipped when
# nothing was cut, exactly like the stock path returning self).  The
# reductions are sequential — this module's own arithmetic class — so
# results agree with the stock path to ~n ulp (well inside 1e-12 TV)
# but are not bitwise.  The max sweep, by contrast, performs the exact
# operation sequence of np.prod(grid, axis=0) + the spelled-out diff,
# so it *is* bitwise (and is verified before use).
# ----------------------------------------------------------------------

_C_SOURCE = r"""
#include <math.h>
#include <string.h>

#define EXPORT __attribute__((visibility("default")))

static void conv_axpy(const double *a, long long na,
                      const double *b, long long nb, double *out)
{
    long long i, j;
    if (na < nb) {
        const double *tp = a; a = b; b = tp;
        long long tn = na; na = nb; nb = tn;
    }
    /* Scatter form with the shorter operand outermost: each output
       element accumulates its terms in ascending j, one rounding per
       term, independent of SIMD width. */
    for (j = 0; j < nb; ++j) {
        const double bj = b[j];
        double *o = out + j;
        for (i = 0; i < na; ++i)
            o[i] += a[i] * bj;
    }
}

/* Mirror of DiscretePDF._trusted(dt, off, raw).trimmed(trim_eps).
   Writes the kept (normalized) vector into `kept`, the cut index into
   *plo, and returns the kept length (< 0 on a non-positive total). */
static long long trim_one(const double *raw, long long n, double half,
                          double *kept, long long *plo)
{
    double total = 0.0, acc, tacc, lead, tlump;
    long long j, lo, hidrop, hi, klen;

    for (j = 0; j < n; ++j) total += raw[j];
    if (!(total > 0.0) || isinf(total)) return -1;

    /* Largest prefix of the normalized cdf with cumulative <= half
       (the cdf is non-decreasing, so the first excess ends the scan). */
    acc = 0.0; lead = 0.0; lo = 0;
    for (j = 0; j < n; ++j) {
        acc += raw[j] / total;
        if (acc <= half) { lo = j + 1; lead = acc; } else break;
    }
    /* Symmetric largest suffix, accumulated right-to-left. */
    tacc = 0.0; tlump = 0.0; hidrop = 0;
    for (j = n - 1; j >= 0; --j) {
        tacc += raw[j] / total;
        if (tacc <= half) { hidrop = n - j; tlump = tacc; } else break;
    }
    hi = n - hidrop;

    if (lo >= hi) {
        /* Degenerate request: keep the first-argmax bin and lump the
           full prefix/suffix sums onto it. */
        long long am = 0;
        double best = raw[0] / total, v;
        for (j = 1; j < n; ++j) {
            v = raw[j] / total;
            if (v > best) { best = v; am = j; }
        }
        lo = am; hi = am + 1;
        lead = 0.0;
        for (j = 0; j < lo; ++j) lead += raw[j] / total;
        tlump = 0.0;
        for (j = n - 1; j >= hi; --j) tlump += raw[j] / total;
    }

    if (lo == 0 && hi == n) {
        /* Nothing dropped: the trusted normalization is the result
           (no second renormalization, mirroring trimmed() returning
           self). */
        for (j = 0; j < n; ++j) kept[j] = raw[j] / total;
        *plo = 0;
        return n;
    }

    klen = hi - lo;
    for (j = 0; j < klen; ++j) kept[j] = raw[lo + j] / total;
    if (lo > 0) kept[0] += lead;
    if (hi < n) kept[klen - 1] += tlump;

    /* The _trusted renormalization of the kept vector. */
    acc = 0.0;
    for (j = 0; j < klen; ++j) acc += kept[j];
    if (!(acc > 0.0)) return -1;
    if (acc != 1.0)
        for (j = 0; j < klen; ++j) kept[j] /= acc;
    *plo = lo;
    return klen;
}

EXPORT long long repro_conv_batch(
    const double *A, const long long *aoff, const long long *alen,
    const double *B, const long long *boff, const long long *blen,
    double *OUT, const long long *ooff, long long k)
{
    long long i;
    for (i = 0; i < k; ++i) {
        long long na = alen[i], nb = blen[i];
        double *out = OUT + ooff[i];
        memset(out, 0, (size_t)(na + nb - 1) * sizeof(double));
        conv_axpy(A + aoff[i], na, B + boff[i], nb, out);
    }
    return 0;
}

EXPORT long long repro_conv_trim_batch(
    const double *A, const long long *aoff, const long long *alen,
    const double *B, const long long *boff, const long long *blen,
    double *OUT, const long long *ooff, double half,
    double *KEPT, long long *klo, long long *klen, long long k)
{
    long long i, r;
    for (i = 0; i < k; ++i) {
        long long na = alen[i], nb = blen[i];
        long long n = na + nb - 1;
        double *out = OUT + ooff[i];
        memset(out, 0, (size_t)n * sizeof(double));
        conv_axpy(A + aoff[i], na, B + boff[i], nb, out);
        r = trim_one(out, n, half, KEPT + ooff[i], klo + i);
        if (r < 0) return -(i + 1);
        klen[i] = r;
    }
    return 0;
}

EXPORT long long repro_trim_batch(
    const double *RAW, const long long *roff, const long long *rlen,
    double half, double *KEPT, long long *klo, long long *klen,
    long long k)
{
    long long i, r;
    for (i = 0; i < k; ++i) {
        r = trim_one(RAW + roff[i], rlen[i], half, KEPT + roff[i],
                     klo + i);
        if (r < 0) return -(i + 1);
        klen[i] = r;
    }
    return 0;
}

EXPORT long long repro_conv_trim_one(
    const double *a, long long na, const double *b, long long nb,
    double *out, double half, double *kept, long long *klo)
{
    long long n = na + nb - 1;
    memset(out, 0, (size_t)n * sizeof(double));
    conv_axpy(a, na, b, nb, out);
    return trim_one(out, n, half, kept, klo);
}

EXPORT long long repro_max_sweep(
    const double *CDF, const long long *cdfoff, const long long *cdflen,
    const long long *rstart,
    const long long *grow0, const long long *gk,
    const long long *gwidth, const long long *gooff,
    double *OUT, long long ngroups)
{
    long long g, r, w;
    for (g = 0; g < ngroups; ++g) {
        long long W = gwidth[g], r0 = grow0[g], k = gk[g];
        double *out = OUT + gooff[g];
        {
            const double *cdf = CDF + cdfoff[r0];
            long long s = rstart[r0], n = cdflen[r0];
            for (w = 0; w < W; ++w)
                out[w] = (w < s) ? 0.0 : (w < s + n ? cdf[w - s] : 1.0);
        }
        for (r = 1; r < k; ++r) {
            const double *cdf = CDF + cdfoff[r0 + r];
            long long s = rstart[r0 + r], n = cdflen[r0 + r];
            for (w = 0; w < W; ++w)
                out[w] *= (w < s) ? 0.0 : (w < s + n ? cdf[w - s] : 1.0);
        }
        for (w = W - 1; w >= 1; --w) out[w] = out[w] - out[w - 1];
    }
    return 0;
}
"""

#: Flags pin the arithmetic: no FMA contraction, no reassociation
#: (C forbids it below -ffast-math), so the max sweep's operation
#: sequence matches NumPy's on every conforming build.  SIMD width is
#: free to vary — each output element still accumulates its own terms
#: in the same order — so ``-march=native`` (tried first, with a
#: portable fallback) only changes speed, never bits, within one host's
#: cached build.
_C_FLAGS_BASE = (
    "-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-math-errno"
)
_C_FLAG_SETS = (
    _C_FLAGS_BASE + ("-march=native",),
    _C_FLAGS_BASE,
)

_ENTRY_POINTS = {
    "repro_conv_batch": 9,
    "repro_conv_trim_batch": 13,
    "repro_trim_batch": 8,
    "repro_conv_trim_one": 8,
    "repro_max_sweep": 10,
}

_CDEF = """
long long repro_conv_batch(const double *, const long long *, const long long *,
    const double *, const long long *, const long long *,
    double *, const long long *, long long);
long long repro_conv_trim_batch(const double *, const long long *, const long long *,
    const double *, const long long *, const long long *,
    double *, const long long *, double,
    double *, long long *, long long *, long long);
long long repro_trim_batch(const double *, const long long *, const long long *,
    double, double *, long long *, long long *, long long);
long long repro_conv_trim_one(const double *, long long, const double *, long long,
    double *, double, double *, long long *);
long long repro_max_sweep(const double *, const long long *, const long long *,
    const long long *, const long long *, const long long *,
    const long long *, const long long *, double *, long long);
"""


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "repro" / "compiled"


def _compile_library() -> Path:
    """Compile the C source into a content-addressed shared library,
    reusing a previous build when the source and flags are unchanged
    (worker processes and later sessions skip straight to dlopen).
    ``-march=native`` is attempted first and dropped for compilers
    that reject it."""
    cc = (
        os.environ.get("CC")
        or shutil.which("cc")
        or shutil.which("gcc")
        or shutil.which("clang")
    )
    if cc is None:
        raise RuntimeError("no C compiler found")
    cache = _cache_dir()
    last_exc: Optional[BaseException] = None
    for flags in _C_FLAG_SETS:
        digest = hashlib.sha256(
            ("\x00".join((_C_SOURCE,) + flags)).encode()
        ).hexdigest()[:16]
        so_path = cache / f"repro_kernels-{digest}.so"
        if so_path.exists():
            return so_path
        cache.mkdir(parents=True, exist_ok=True)
        c_path = cache / f"repro_kernels-{digest}.c"
        c_path.write_text(_C_SOURCE)
        with tempfile.NamedTemporaryFile(
            dir=cache, suffix=".so", delete=False
        ) as tmp:
            tmp_path = Path(tmp.name)
        try:
            subprocess.run(
                [cc, *flags, "-o", str(tmp_path), str(c_path)],
                check=True,
                capture_output=True,
                timeout=120,
            )
            # Atomic publish: concurrent builders race benignly.
            os.replace(tmp_path, so_path)
            return so_path
        except BaseException as exc:
            tmp_path.unlink(missing_ok=True)
            last_exc = exc
    raise RuntimeError(f"C compilation failed: {last_exc}")


def _pack(arrs: Sequence[np.ndarray]):
    """Concatenate 1-D float64 vectors; returns (flat, offsets, lengths)."""
    lens = np.fromiter(
        (a.size for a in arrs), dtype=np.int64, count=len(arrs)
    )
    offs = np.zeros(lens.size + 1, dtype=np.int64)
    np.cumsum(lens, out=offs[1:])
    return np.concatenate(arrs) if arrs else np.empty(0), offs, lens


def _build_result(
    dt: float, offset: int, kept: np.ndarray, trim_eps: float
) -> DiscretePDF:
    """Wrap a provider-normalized kept vector without re-reducing it.

    The compiled trim already normalized ``kept`` (its own sequential
    arithmetic — the compiled class's analog of ``_trusted``'s
    division), so construction only stamps the fields and the trim
    idempotence memo, exactly as ``trimmed()`` does on its output.
    Callers pass an already read-only buffer (or view of one) and a
    plain-int offset; fields go straight into the instance dict — the
    frozen-dataclass ``__setattr__`` guard is for users, and this
    constructor is the compiled twin of ``_trusted``'s
    ``object.__setattr__`` sequence.
    """
    out = object.__new__(DiscretePDF)
    out.__dict__.update(
        dt=dt, offset=offset, masses=kept, _trim_level=trim_eps
    )
    return out


def _check_bins(n: int) -> None:
    if n > MAX_BINS:
        raise DistributionError(
            f"distribution spans {n} bins, exceeding MAX_BINS="
            f"{MAX_BINS}; dt is too small for this analysis"
        )


class _CProvider:
    """C shared-library provider (cffi preferred, ctypes fallback)."""

    kind = "cext"

    def __init__(self) -> None:
        so_path = _compile_library()
        self._impl = self._load_cffi(so_path) or self._load_ctypes(so_path)
        if self._impl is None:
            raise RuntimeError("could not load compiled library")
        self.max_ok = True

    # -- loading -------------------------------------------------------
    @staticmethod
    def _load_cffi(so_path: Path):
        try:
            import cffi
        except ImportError:  # pragma: no cover - cffi is ubiquitous
            return None
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        lib = ffi.dlopen(str(so_path))

        def dbl(arr):
            return ffi.from_buffer("double[]", arr, require_writable=False)

        def wdbl(arr):
            return ffi.from_buffer("double[]", arr)

        def i64(arr):
            return ffi.from_buffer(
                "long long[]", arr, require_writable=False
            )

        def wi64(arr):
            return ffi.from_buffer("long long[]", arr)

        return {
            "lib": lib, "dbl": dbl, "wdbl": wdbl, "i64": i64, "wi64": wi64
        }

    @staticmethod
    def _load_ctypes(so_path: Path):  # pragma: no cover - cffi fallback
        import ctypes

        lib = ctypes.CDLL(str(so_path))
        for name, argc in _ENTRY_POINTS.items():
            fn = getattr(lib, name)
            fn.restype = ctypes.c_longlong
        dptr = ctypes.POINTER(ctypes.c_double)
        iptr = ctypes.POINTER(ctypes.c_longlong)

        def dbl(arr):
            return arr.ctypes.data_as(dptr)

        def i64(arr):
            return arr.ctypes.data_as(iptr)

        return {"lib": lib, "dbl": dbl, "wdbl": dbl, "i64": i64,
                "wi64": i64, "ctypes": True}

    def _call(self, name, *args):
        impl = self._impl
        fn = getattr(impl["lib"], name)
        if impl.get("ctypes"):  # pragma: no cover - cffi fallback
            import ctypes

            coerced = [
                ctypes.c_longlong(a) if isinstance(a, int)
                else ctypes.c_double(a) if isinstance(a, float)
                else a
                for a in args
            ]
            return int(fn(*coerced))
        return int(fn(*args))

    # -- convolve ------------------------------------------------------
    def conv_one(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        impl = self._impl
        n = a.size + b.size - 1
        out = np.empty(n)
        # Routed through the fused entry (one code path); the trim
        # writes into scratch and is discarded, the conv output is the
        # contract.
        rc = self._call(
            "repro_conv_trim_one",
            impl["dbl"](a), a.size, impl["dbl"](b), b.size,
            impl["wdbl"](out), 0.0, impl["wdbl"](np.empty(n)),
            impl["wi64"](np.empty(1, dtype=np.int64)),
        )
        if rc < 0:
            raise DistributionError("total probability mass must be positive")
        return out

    def conv_many(self, pairs: Sequence) -> list:
        if not pairs:
            return []
        impl = self._impl
        A, aoff, alen = _pack([p[0] for p in pairs])
        B, boff, blen = _pack([p[1] for p in pairs])
        olen = alen + blen - 1
        ooff = np.zeros(olen.size + 1, dtype=np.int64)
        np.cumsum(olen, out=ooff[1:])
        OUT = np.empty(int(ooff[-1]))
        rc = self._call(
            "repro_conv_batch",
            impl["dbl"](A), impl["i64"](aoff), impl["i64"](alen),
            impl["dbl"](B), impl["i64"](boff), impl["i64"](blen),
            impl["wdbl"](OUT), impl["i64"](ooff), len(pairs),
        )
        if rc != 0:  # pragma: no cover - conv_batch cannot fail
            raise DistributionError("compiled convolution failed")
        # Owned copies: callers (cache stores, worker result shipping)
        # must not pin the whole batch buffer through one row.
        return [
            OUT[ooff[i]:ooff[i + 1]].copy() for i in range(len(pairs))
        ]

    # -- fused convolve + trim ----------------------------------------
    def conv_trim_one(
        self, a: np.ndarray, b: np.ndarray, dt: float, offset: int,
        trim_eps: float,
    ):
        impl = self._impl
        n = a.size + b.size - 1
        _check_bins(n)
        raw = np.empty(n)
        kept_buf = np.empty(n)
        klo = np.empty(1, dtype=np.int64)
        klen = self._call(
            "repro_conv_trim_one",
            impl["dbl"](a), a.size, impl["dbl"](b), b.size,
            impl["wdbl"](raw), trim_eps / 2.0,
            impl["wdbl"](kept_buf), impl["wi64"](klo),
        )
        if klen < 0:
            raise DistributionError("total probability mass must be positive")
        kept_buf.flags.writeable = False
        result = _build_result(
            dt, int(offset) + int(klo[0]), kept_buf[:klen], trim_eps
        )
        return raw, result

    def conv_trim_many(
        self, pairs: Sequence, dts, offsets, trim_eps: float,
        want_raws: bool,
    ):
        if not pairs:
            return [], []
        impl = self._impl
        A, aoff, alen = _pack([p[0] for p in pairs])
        B, boff, blen = _pack([p[1] for p in pairs])
        olen = alen + blen - 1
        _check_bins(int(olen.max()))
        ooff = np.zeros(olen.size + 1, dtype=np.int64)
        np.cumsum(olen, out=ooff[1:])
        OUT = np.empty(int(ooff[-1]))
        KEPT = np.empty(int(ooff[-1]))
        klo = np.empty(len(pairs), dtype=np.int64)
        klen = np.empty(len(pairs), dtype=np.int64)
        rc = self._call(
            "repro_conv_trim_batch",
            impl["dbl"](A), impl["i64"](aoff), impl["i64"](alen),
            impl["dbl"](B), impl["i64"](boff), impl["i64"](blen),
            impl["wdbl"](OUT), impl["i64"](ooff), trim_eps / 2.0,
            impl["wdbl"](KEPT), impl["wi64"](klo), impl["wi64"](klen),
            len(pairs),
        )
        if rc != 0:
            raise DistributionError("total probability mass must be positive")
        # Results are read-only views into the batch's kept buffer:
        # nothing else ever writes it, and the pinned overhead is
        # bounded by one raw-sized buffer per batch.  Raws (cache
        # stores, worker shipping) are copied out — long-lived entries
        # must not pin the batch.
        KEPT.flags.writeable = False
        results = []
        raws = [] if want_raws else None
        # Hot loop: this is the per-result cost the tier exists to
        # shrink, so the _build_result body is inlined (no call, one
        # dict rebind) — same fields, same semantics.
        new = object.__new__
        cls = DiscretePDF
        append = results.append
        for o, kl, lo, dt, off in zip(
            ooff.tolist(), klen.tolist(), klo.tolist(), dts, offsets
        ):
            out = new(cls)
            out.__dict__.update(
                dt=dt, offset=off + lo,
                masses=KEPT[o:o + kl], _trim_level=trim_eps,
            )
            append(out)
        if want_raws:
            for o, ol in zip(ooff.tolist(), olen.tolist()):
                raws.append(OUT[o:o + ol].copy())
        return raws, results

    # -- trim of precomputed raws -------------------------------------
    def trim_one(
        self, dt: float, offset: int, raw: np.ndarray, trim_eps: float
    ) -> DiscretePDF:
        raws, results = self.trim_many(
            [raw], [dt], [offset], trim_eps
        )
        return results[0]

    def trim_many(self, raws: Sequence, dts, offsets, trim_eps: float):
        if not raws:
            return None, []
        impl = self._impl
        RAW, roff, rlen = _pack(list(raws))
        _check_bins(int(rlen.max()))
        KEPT = np.empty(RAW.size)
        klo = np.empty(len(raws), dtype=np.int64)
        klen = np.empty(len(raws), dtype=np.int64)
        rc = self._call(
            "repro_trim_batch",
            impl["dbl"](RAW), impl["i64"](roff), impl["i64"](rlen),
            trim_eps / 2.0, impl["wdbl"](KEPT), impl["wi64"](klo),
            impl["wi64"](klen), len(raws),
        )
        if rc != 0:
            raise DistributionError("total probability mass must be positive")
        KEPT.flags.writeable = False
        results = []
        # Same inlined construction as conv_trim_many's hot loop.
        new = object.__new__
        cls = DiscretePDF
        append = results.append
        for o, kl, lo, dt, off in zip(
            roff.tolist(), klen.tolist(), klo.tolist(), dts, offsets
        ):
            out = new(cls)
            out.__dict__.update(
                dt=dt, offset=off + lo,
                masses=KEPT[o:o + kl], _trim_level=trim_eps,
            )
            append(out)
        return None, results

    # -- grouped MAX sweep --------------------------------------------
    def max_sweep(self, groups: Sequence) -> list:
        """``(lo, masses)`` per operand group — bitwise the NumPy
        ``_max_masses`` sweep (same multiplies, same order)."""
        impl = self._impl
        cdfs = []
        rstart = []
        grow0 = np.empty(len(groups), dtype=np.int64)
        gk = np.empty(len(groups), dtype=np.int64)
        gwidth = np.empty(len(groups), dtype=np.int64)
        gooff = np.zeros(len(groups) + 1, dtype=np.int64)
        los = []
        for g, pdfs in enumerate(groups):
            lo = min(p.offset for p in pdfs)
            width = max(p.offset + p.masses.size for p in pdfs) - lo
            los.append(lo)
            grow0[g] = len(cdfs)
            gk[g] = len(pdfs)
            gwidth[g] = width
            gooff[g + 1] = gooff[g] + width
            for p in pdfs:
                cdfs.append(p._unit_cdf)  # noqa: SLF001
                rstart.append(p.offset - lo)
        CDF, cdfoff, cdflen = _pack(cdfs)
        rstart_arr = np.asarray(rstart, dtype=np.int64)
        OUT = np.empty(int(gooff[-1]))
        rc = self._call(
            "repro_max_sweep",
            impl["dbl"](CDF), impl["i64"](cdfoff), impl["i64"](cdflen),
            impl["i64"](rstart_arr), impl["i64"](grow0), impl["i64"](gk),
            impl["i64"](gwidth), impl["i64"](gooff), impl["wdbl"](OUT),
            len(groups),
        )
        if rc != 0:  # pragma: no cover - sweep cannot fail
            raise DistributionError("compiled max sweep failed")
        return [
            (los[g], OUT[gooff[g]:gooff[g + 1]].copy())
            for g in range(len(groups))
        ]


class _NumbaProvider:
    """numba ``@njit(cache=True)`` provider — same packed layout and
    loop structure as the C provider, so the self-check exercises the
    identical contract."""

    kind = "numba"

    def __init__(self) -> None:
        from . import _compiled_numba as nb

        self._nb = nb
        self.max_ok = True
        # Trigger JIT compilation now (pool warm-up calls land here);
        # numba's on-disk cache makes repeats cheap.
        a = np.asarray([0.25, 0.5, 0.25])
        self.conv_trim_one(a, a, 1.0, 0, 1e-9)
        self.max_sweep([(
            DiscretePDF(1.0, 0, a),
            DiscretePDF(1.0, 1, a),
        )])

    def conv_one(self, a, b):
        out = np.zeros(a.size + b.size - 1)
        self._nb.conv_into(a, b, out)
        return out

    def conv_many(self, pairs):
        return [self.conv_one(a, b) for a, b in pairs]

    def conv_trim_one(self, a, b, dt, offset, trim_eps):
        n = a.size + b.size - 1
        _check_bins(n)
        raw = np.zeros(n)
        self._nb.conv_into(a, b, raw)
        return raw, self.trim_one(dt, offset, raw, trim_eps)

    def conv_trim_many(self, pairs, dts, offsets, trim_eps, want_raws):
        raws, results = [], []
        for i, (a, b) in enumerate(pairs):
            raw, res = self.conv_trim_one(
                a, b, dts[i], offsets[i], trim_eps
            )
            raws.append(raw)
            results.append(res)
        return (raws if want_raws else None), results

    def trim_one(self, dt, offset, raw, trim_eps):
        _check_bins(raw.size)
        kept_buf = np.empty(raw.size)
        lo, klen = self._nb.trim_into(raw, trim_eps / 2.0, kept_buf)
        if klen < 0:
            raise DistributionError("total probability mass must be positive")
        kept_buf.flags.writeable = False
        return _build_result(
            dt, int(offset) + int(lo), kept_buf[:klen], trim_eps
        )

    def trim_many(self, raws, dts, offsets, trim_eps):
        return None, [
            self.trim_one(dts[i], offsets[i], raw, trim_eps)
            for i, raw in enumerate(raws)
        ]

    def max_sweep(self, groups):
        out = []
        for pdfs in groups:
            lo = min(p.offset for p in pdfs)
            width = max(p.offset + p.masses.size for p in pdfs) - lo
            CDF, cdfoff, cdflen = _pack(
                [p._unit_cdf for p in pdfs]  # noqa: SLF001
            )
            rstart = np.asarray(
                [p.offset - lo for p in pdfs], dtype=np.int64
            )
            masses = np.empty(width)
            self._nb.max_sweep_into(
                CDF, cdfoff, cdflen, rstart, width, masses
            )
            out.append((lo, masses))
        return out


# ----------------------------------------------------------------------
# Self-check: every provider proves its contract before first use.
# Convolve/trim differentials run against the stock NumPy path at the
# 1e-12-TV class boundary; the max sweep must be bitwise.  Conv/trim
# failure rejects the provider outright; a max-sweep mismatch only
# disables the sweep (the provider stays useful for ADD).
# ----------------------------------------------------------------------


def _tv(a: np.ndarray, b: np.ndarray) -> float:
    n = max(a.size, b.size)
    pa = np.zeros(n)
    pa[: a.size] = a
    pb = np.zeros(n)
    pb[: b.size] = b
    return 0.5 * float(np.abs(pa - pb).sum())


def _self_check(provider) -> None:
    rng = np.random.default_rng(20260808)
    cases = []
    for n_a, n_b in ((1, 1), (3, 7), (17, 17), (33, 129), (64, 64)):
        a = rng.random(n_a) + 1e-4
        b = rng.random(n_b) + 1e-4
        cases.append((a / a.sum(), b / b.sum()))
    for trim_eps in (0.0, 1e-9, 1e-3, 0.9):
        dts, offs = [1.0] * len(cases), [3] * len(cases)
        raws, results = provider.conv_trim_many(
            cases, dts, offs, trim_eps, True
        )
        raws2, results2 = provider.conv_trim_many(
            cases, dts, offs, trim_eps, True
        )
        for (a, b), raw, raw2, res, res2 in zip(
            cases, raws, raws2, results, results2
        ):
            ref_raw = np.convolve(a, b)
            if _tv(raw, ref_raw) > 1e-13 or not np.array_equal(raw, raw2):
                raise RuntimeError("compiled convolve failed self-check")
            ref = DiscretePDF._trusted(  # noqa: SLF001
                1.0, 3, ref_raw.copy()
            ).trimmed(trim_eps)
            # Generic masses sit nowhere near the eps/2 threshold, so
            # the compiled cut lands on the stock bin and the kept
            # vectors differ only in reduction round-off.
            if (
                res.offset != ref.offset
                or res.masses.size != ref.masses.size
                or _tv(res.masses, ref.masses) > 1e-12
            ):
                raise RuntimeError("compiled trim failed self-check")
            if (
                res2.offset != res.offset
                or not np.array_equal(res.masses, res2.masses)
            ):
                raise RuntimeError("compiled trim is not deterministic")
            # Scalar path must agree bitwise with the batched path.
            raw_s, res_s = provider.conv_trim_one(a, b, 1.0, 3, trim_eps)
            if not np.array_equal(raw_s, raw) or not np.array_equal(
                res_s.masses, res.masses
            ):
                raise RuntimeError("compiled scalar/batch paths disagree")
            # trim-of-raw must agree bitwise with fused conv+trim.
            re_res = provider.trim_one(1.0, 3, raw, trim_eps)
            if re_res.offset != res.offset or not np.array_equal(
                re_res.masses, res.masses
            ):
                raise RuntimeError("compiled trim replay disagrees")
    # Max sweep: bitwise or disabled.
    from .ops import _max_masses

    groups = []
    for k in (2, 3, 5):
        pdfs = []
        for i in range(k):
            m = rng.random(int(rng.integers(3, 40))) + 1e-4
            pdfs.append(DiscretePDF(2.0, int(rng.integers(-5, 6)), m))
        groups.append(tuple(pdfs))
    try:
        swept = provider.max_sweep(groups)
        for pdfs, (lo, masses) in zip(groups, swept):
            ref_lo, ref = _max_masses(pdfs)
            if lo != ref_lo or not np.array_equal(masses, ref):
                raise RuntimeError("not bitwise")
    except Exception:
        provider.max_ok = False


_lock = threading.Lock()
_resolved = False
_provider = None
_fail_reason: Optional[str] = None


def get_provider():
    """The process-wide compiled provider, or ``None`` when the tier
    is unavailable (kill switch set, numba absent *and* no compiler,
    or a provider failed its self-check)."""
    global _resolved, _provider, _fail_reason
    if _resolved:
        return _provider
    with _lock:
        if _resolved:
            return _provider
        provider = None
        reason = None
        if os.environ.get(DISABLE_ENV, "0") not in ("", "0"):
            reason = f"{DISABLE_ENV} is set"
        else:
            try:
                import numba  # noqa: F401

                provider = _NumbaProvider()
            except Exception as exc:
                numba_reason = f"numba unavailable ({exc.__class__.__name__})"
                try:
                    provider = _CProvider()
                except Exception as c_exc:
                    reason = (
                        f"{numba_reason}; C build failed "
                        f"({c_exc.__class__.__name__}: {c_exc})"
                    )
            if provider is not None:
                try:
                    _self_check(provider)
                except Exception as exc:
                    provider = None
                    reason = f"self-check failed ({exc})"
        _provider = provider
        _fail_reason = reason
        _resolved = True
    return _provider


def provider_kind() -> Optional[str]:
    """``"numba"``, ``"cext"``, or ``None`` (resolving if needed)."""
    p = get_provider()
    return None if p is None else p.kind


def fail_reason() -> Optional[str]:
    get_provider()
    return _fail_reason


def reset_provider_cache() -> None:
    """Forget the resolved provider (tests toggle the kill switch and
    patch the numba import; the next use re-resolves)."""
    global _resolved, _provider, _fail_reason
    with _lock:
        _resolved = False
        _provider = None
        _fail_reason = None


_warned = False


def warn_degraded_once() -> None:
    """One warning per process the first time a compiled backend runs
    degraded (pure-NumPy direct numerics)."""
    global _warned
    if _warned:
        return
    _warned = True
    warnings.warn(
        "compiled kernel tier unavailable "
        f"({fail_reason() or 'unknown reason'}); the 'compiled' backends "
        "fall back to the pure-NumPy direct kernels "
        "(install the [compiled] extra for the numba tier)",
        RuntimeWarning,
        stacklevel=3,
    )
