"""Keyed result cache for the ADD/MAX kernels (the optimizer memo).

The sizing loop re-evaluates sensitivity by re-running SSTA
perturbation fronts, and across candidate gates and optimizer
iterations the *same* (arrival, delay-PDF) convolutions are recomputed
thousands of times: every front re-convolves the unperturbed arcs of
each node it touches with exactly the operands the base SSTA already
used, and consecutive iterations re-time a circuit in which only one
gate's cone changed.  :class:`ConvolutionCache` memoizes those results
at the :func:`~repro.dist.ops.convolve` / ``stat_max_many`` level —
the analogue, one layer up, of the FFT backend's forward-transform
memo.

Design constraints, in order:

1. **Bitwise transparency.**  A cache hit must return exactly the bits
   a fresh computation would produce.  Entries therefore store the
   *raw* kernel output (the un-normalized convolved mass vector):
   every downstream step — :class:`~repro.dist.pdf.DiscretePDF`
   normalization and tail trimming — is a pure function of that vector
   alone, so replaying it from the cache is bit-identical no matter
   which operand *offsets* the hit arrives with.  When the offsets
   match the original computation the stored (immutable) result object
   is returned outright, which is the O(1) fast path the sizer loop
   actually takes.
2. **Content keys, not identity keys.**  Keys are fingerprints of the
   operand mass vectors (plus ``dt``, relative offsets for MAX, the
   trim epsilon, and the backend), so re-created but equal operands
   hit, and a resized gate's new delay PDF — new masses, new
   fingerprint — can never alias a stale entry.  Fingerprints are
   SHA-1 digests of the immutable mass bytes, memoized per array
   object so repeated lookups of long-lived operands cost O(1).
3. **Bounded memory.**  The cache is an LRU over a fixed number of
   entries (:data:`DEFAULT_CACHE_CAPACITY` by default); eviction churn
   at tiny capacities is exercised by the property suite.

The cache is *enabled per analysis* through
``AnalysisConfig(cache=...)`` (see :mod:`repro.config`) and threaded
by every engine the same way the backend knob is.  It carries no
thread-safety machinery — like the rest of the package it assumes one
analysis per thread.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import DistributionError
from .pdf import DiscretePDF

__all__ = ["ConvolutionCache", "CacheStats", "DEFAULT_CACHE_CAPACITY"]

#: Default entry bound.  A c432 sizing iteration's working set is
#: ~25k entries (one per distinct kernel request across the base SSTA
#: and every perturbation front), and an undersized cache *thrashes* —
#: each iteration evicts what the next would have hit.  32k entries
#: hold the paper suite's working sets with room to spare while
#: bounding memory at tens of MiB of ~100-bin float64 vectors.
DEFAULT_CACHE_CAPACITY: int = 32768

#: Process-wide fingerprint memo: ``id(masses) -> (weakref, digest)``.
#: Mass vectors are immutable read-only arrays, so a digest computed
#: once is valid for the array's lifetime; the weak reference both
#: self-evicts when the array dies and guards against ``id`` reuse.
_FP_MEMO: dict = {}


def _fingerprint(arr: np.ndarray) -> bytes:
    """Content digest of an immutable mass vector, memoized by identity."""
    key = id(arr)
    entry = _FP_MEMO.get(key)
    if entry is not None:
        ref, digest = entry
        if ref() is arr:
            return digest
        del _FP_MEMO[key]  # id recycled by a dead array
    digest = hashlib.sha1(arr.tobytes()).digest()
    try:
        ref = weakref.ref(arr, lambda _r, key=key: _FP_MEMO.pop(key, None))
    except TypeError:  # pragma: no cover - plain ndarrays are weakref-able
        return digest
    _FP_MEMO[key] = (ref, digest)
    return digest


def _pdf_fingerprint(pdf: DiscretePDF) -> bytes:
    """Fingerprint of a distribution's mass vector, cached on the
    (immutable) instance.  Key construction runs several times per
    kernel request, so the per-instance slot skips even the memo-dict
    probe; the array-level memo still deduplicates shifted twins that
    share one mass vector."""
    d = pdf.__dict__
    fp = d.get("_fp")
    if fp is None:
        fp = _fingerprint(pdf.masses)
        d["_fp"] = fp
    return fp


@dataclass
class CacheStats:
    """Lifetime hit/miss/eviction tallies of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        """Total lookups served (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """hits / requests (0.0 before any lookup)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def reset(self) -> None:
        """Zero all tallies (the entries themselves are untouched)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def merge(self, other: "CacheStats") -> None:
        """Fold another stats record into this one — the aggregation
        helper for reporting across several caches or runs (e.g.
        summing per-circuit warm-start snapshots).  Pure integer
        addition, so merging any number of records in any order yields
        the same aggregate (pinned by the merge-semantics suite).
        Note the sharded-parallel executor does *not* need this:
        the cache never leaves the coordinating process, so its stats
        are single-writer by design."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions


class _Entry:
    """One memoized kernel result.

    ``raw`` is the kernel's un-normalized output vector; ``result`` the
    finished (normalized, trimmed) :class:`DiscretePDF` as computed at
    ``anchor`` (the operand-offset sum for ADD, the minimum operand
    offset for MAX); ``backend`` the resolved backend object the entry
    was computed under, verified identically on hit so two distinct
    backend instances sharing a name can never serve each other's bits.
    """

    __slots__ = ("raw", "result", "anchor", "backend")

    def __init__(self, raw, result, anchor, backend) -> None:
        self.raw = raw
        self.result = result
        self.anchor = anchor
        self.backend = backend


class ConvolutionCache:
    """Size-bounded LRU memo over convolve / independence-MAX results.

    Parameters
    ----------
    capacity:
        Maximum number of stored results (>= 1).  The least recently
        used entry is evicted when the bound is reached.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool):
            raise DistributionError(
                f"cache capacity must be an int, got {capacity!r}"
            )
        if capacity < 1:
            raise DistributionError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict" = OrderedDict()

    # ------------------------------------------------------------------
    # Coercion (the AnalysisConfig.cache knob)
    # ------------------------------------------------------------------
    @classmethod
    def coerce(cls, spec) -> Optional["ConvolutionCache"]:
        """Resolve the config knob: None (off), an int capacity, or an
        existing instance (shared between derived configs)."""
        if spec is None:
            return None
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, int) and not isinstance(spec, bool):
            return cls(capacity=spec)
        raise DistributionError(
            "cache must be None, an int capacity, or a ConvolutionCache; "
            f"got {spec!r}"
        )

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    # The key builders are public API: batched callers (``convolve_many``,
    # ``stat_max_groups``, the level scheduler) build each request's key
    # once, probe with it, deduplicate identical requests within one
    # batch against it, and store under it — a key is never derived
    # twice for one request.

    @staticmethod
    def convolve_key(
        a: DiscretePDF, b: DiscretePDF, trim_eps: float, backend
    ) -> tuple:
        """Cache key of ``convolve(a, b)`` under the given trim epsilon
        and (resolved) backend."""
        # Offsets are deliberately absent: the raw convolved masses
        # depend only on the operand mass vectors, so one entry serves
        # every translated occurrence of the same operand pair.
        return (
            "conv",
            a.dt,
            trim_eps,
            getattr(backend, "name", type(backend).__name__),
            _pdf_fingerprint(a),
            _pdf_fingerprint(b),
        )

    @staticmethod
    def max_key(pdfs: Sequence[DiscretePDF], trim_eps: float) -> tuple:
        """Cache key of ``stat_max_many(pdfs)`` at the given trim
        epsilon."""
        # The MAX product depends on the *relative* operand alignment,
        # so offsets enter the key relative to the leftmost operand;
        # the absolute anchor is replayed from the hit context.  The
        # MAX numerics are backend-invariant, so no backend component.
        lo = min(p.offset for p in pdfs)
        return (
            "max",
            pdfs[0].dt,
            trim_eps,
            tuple((p.offset - lo, _pdf_fingerprint(p)) for p in pdfs),
        )

    # ------------------------------------------------------------------
    # LRU plumbing
    # ------------------------------------------------------------------
    def _get(self, key: tuple) -> Optional[_Entry]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def _put(self, key: tuple, entry: _Entry) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = entry
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = entry

    def _replay(
        self, entry: _Entry, anchor: int, dt: float, trim_eps: float
    ) -> DiscretePDF:
        """Return the stored result, re-anchored if the operands arrive
        at different offsets.  Normalization and trimming are pure
        functions of the raw vector, so the replay is bit-identical to
        a fresh computation at the new anchor."""
        if anchor == entry.anchor:
            return entry.result
        return DiscretePDF(dt, anchor, entry.raw).trimmed(trim_eps)

    # ------------------------------------------------------------------
    # ADD (convolution)
    # ------------------------------------------------------------------
    def lookup_convolve(
        self,
        a: DiscretePDF,
        b: DiscretePDF,
        trim_eps: float,
        backend,
        *,
        key: Optional[tuple] = None,
    ) -> Optional[DiscretePDF]:
        """Memoized ``convolve(a, b)`` result, or None on a miss.
        ``key`` accepts a precomputed :meth:`convolve_key` (the batched
        callers build it once per request)."""
        if key is None:
            key = self.convolve_key(a, b, trim_eps, backend)
        entry = self._get(key)
        if entry is None:
            return None
        if entry.backend is not backend:
            # A distinct backend instance sharing the stored one's name:
            # count it as the miss it is and let the caller recompute.
            self.stats.hits -= 1
            self.stats.misses += 1
            return None
        return self._replay(entry, a.offset + b.offset, a.dt, trim_eps)

    def store_convolve(
        self,
        a: DiscretePDF,
        b: DiscretePDF,
        trim_eps: float,
        backend,
        raw: np.ndarray,
        result: DiscretePDF,
        *,
        key: Optional[tuple] = None,
    ) -> None:
        """Insert a freshly computed convolution (``raw`` is the kernel
        output before normalization/trimming)."""
        raw = np.asarray(raw)
        raw.flags.writeable = False
        if key is None:
            key = self.convolve_key(a, b, trim_eps, backend)
        self._put(key, _Entry(raw, result, a.offset + b.offset, backend))

    # ------------------------------------------------------------------
    # MAX (independence statistical maximum)
    # ------------------------------------------------------------------
    def lookup_max(
        self,
        pdfs: Sequence[DiscretePDF],
        trim_eps: float,
        *,
        key: Optional[tuple] = None,
    ) -> Optional[DiscretePDF]:
        """Memoized ``stat_max_many(pdfs)`` result, or None on a miss.
        ``key`` accepts a precomputed :meth:`max_key`."""
        if key is None:
            key = self.max_key(pdfs, trim_eps)
        entry = self._get(key)
        if entry is None:
            return None
        anchor = min(p.offset for p in pdfs)
        return self._replay(entry, anchor, pdfs[0].dt, trim_eps)

    def store_max(
        self,
        pdfs: Sequence[DiscretePDF],
        trim_eps: float,
        raw: np.ndarray,
        result: DiscretePDF,
        *,
        key: Optional[tuple] = None,
    ) -> None:
        raw = np.asarray(raw)
        raw.flags.writeable = False
        if key is None:
            key = self.max_key(pdfs, trim_eps)
        self._put(key, _Entry(raw, result, min(p.offset for p in pdfs), None))

    # ------------------------------------------------------------------
    # Whole-node arrival memo (the engines' coarse-grained fast path)
    # ------------------------------------------------------------------
    # A timing node's arrival is a pure function of its fan-in operand
    # contents *and absolute offsets*: memoizing at node granularity
    # lets a perturbation front that re-visits a node with unchanged
    # inputs (the dominant case across candidate fronts and optimizer
    # iterations) skip the whole convolve-batch + MAX pipeline for one
    # dict probe.  Keys use absolute offsets, so a hit returns the
    # exact stored object a fresh computation would reproduce bitwise;
    # a translated recurrence simply misses into the per-op caches.

    def lookup_node(self, key: tuple, backend) -> Optional[DiscretePDF]:
        """Memoized whole-node arrival for a key built by
        :meth:`node_key`, or None.  Like the convolve lookup, the
        resolved backend object is verified identically — two distinct
        instances sharing a name (e.g. ``AutoBackend``s with different
        cost ratios) must never serve each other's bits."""
        entry = self._get(("node",) + key)
        if entry is None:
            return None
        if entry.backend is not backend:
            self.stats.hits -= 1
            self.stats.misses += 1
            return None
        return entry.result

    def store_node(self, key: tuple, result: DiscretePDF, backend) -> None:
        self._put(("node",) + key, _Entry(None, result, 0, backend))

    @staticmethod
    def node_key(parts, trim_eps: float, backend) -> tuple:
        """Node-memo key from ``(arrival, delay-or-None)`` fan-in parts
        (absolute offsets; delay ``None`` marks a virtual arc)."""
        return (
            trim_eps,
            getattr(backend, "name", type(backend).__name__),
            tuple(
                (
                    arr.dt,
                    arr.offset,
                    _pdf_fingerprint(arr),
                    None if d is None else d.offset,
                    None if d is None else _pdf_fingerprint(d),
                )
                for arr, d in parts
            ),
        )

    # ------------------------------------------------------------------
    # Percentile-gap memo (the Theorem-4 delta evaluations)
    # ------------------------------------------------------------------
    # ``max_percentile_gap(base, perturbed)`` costs as much as the
    # kernel work it measures; with result objects shared through this
    # cache the same (base, perturbed) pair recurs across fronts and
    # iterations.  Keys again carry absolute offsets so a hit is the
    # bit-exact value a fresh evaluation would produce — the pruning
    # heap ordering (and hence the bitwise-selection guarantee) cannot
    # be perturbed by an ulp-shifted translated evaluation.

    @staticmethod
    def _gap_key(a: DiscretePDF, b: DiscretePDF) -> tuple:
        return (
            "gap",
            a.dt,
            a.offset,
            _pdf_fingerprint(a),
            b.offset,
            _pdf_fingerprint(b),
        )

    def lookup_gap(self, a: DiscretePDF, b: DiscretePDF) -> Optional[float]:
        entry = self._get(self._gap_key(a, b))
        if entry is None:
            return None
        return entry.result

    def store_gap(self, a: DiscretePDF, b: DiscretePDF, gap: float) -> None:
        self._put(self._gap_key(a, b), _Entry(None, gap, 0, None))

    # ------------------------------------------------------------------
    # Persistence (cross-run warm starts)
    # ------------------------------------------------------------------
    # Keys are content fingerprints (SHA-1 of mass bytes) plus grid,
    # epsilon, offset, and backend-*name* components — nothing
    # process-specific — so entries are valid in any process that
    # resolves the same registry kernels.  Snapshots ride the same
    # memo-stripped serialization the parallel IPC layer uses
    # (``DiscretePDF.__getstate__``): an entry is its key, its raw
    # kernel output, its finished result, its anchor, and its backend
    # name.  Only registry-kernel entries are saved — a non-registry
    # backend instance cannot be identified by name alone, and writing
    # it under its name could alias a different implementation's
    # entries on load.

    #: Snapshot format version (bump on any layout change).
    SNAPSHOT_FORMAT: int = 1

    def save(self, path) -> int:
        """Write every (registry-kernel) entry to ``path`` in LRU
        order, returning the number of entries written.  Loading the
        file into a fresh cache (:meth:`load`) reproduces the entries
        and their recency order; statistics are not persisted."""
        from .backends import is_registry_backend

        entries = []
        for key, entry in self._entries.items():
            backend = entry.backend
            if backend is None:
                name = None
            elif is_registry_backend(backend):
                name = backend.name
            else:
                continue
            entries.append((key, entry.raw, entry.result, entry.anchor, name))
        payload = {
            "format": self.SNAPSHOT_FORMAT,
            "capacity": self.capacity,
            "entries": entries,
        }
        # Atomic replace: a crash or full disk mid-dump must not
        # destroy the previous good snapshot (warm starts depend on
        # it surviving every run that reads it).
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(entries)

    @classmethod
    def load(cls, path, *, capacity: Optional[int] = None) -> "ConvolutionCache":
        """Rebuild a cache from a :meth:`save` snapshot.

        ``capacity`` overrides the recorded bound (the oldest entries
        are dropped if the snapshot exceeds it).  Backend names are
        resolved against the current registry, so hits served from
        loaded entries pass the same identity check fresh entries do.
        Snapshots are trusted input (they are pickles): load only
        files you wrote.
        """
        from .backends import get_backend

        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (
            pickle.UnpicklingError, EOFError, AttributeError, ImportError,
        ) as exc:
            # ImportError covers foreign pickles referencing modules
            # this build does not have (including snapshots written by
            # a version that has since moved a class).
            raise DistributionError(
                f"corrupt cache snapshot {path!r}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise DistributionError(
                f"corrupt cache snapshot {path!r}: not a snapshot payload"
            )
        fmt = payload.get("format")
        if fmt != cls.SNAPSHOT_FORMAT:
            raise DistributionError(
                f"unsupported cache snapshot format {fmt!r} "
                f"(expected {cls.SNAPSHOT_FORMAT})"
            )
        try:
            cache = cls(
                capacity if capacity is not None else payload["capacity"]
            )
            for key, raw, result, anchor, name in payload["entries"]:
                if raw is not None:
                    raw.flags.writeable = False
                backend = None if name is None else get_backend(name)
                cache._entries[key] = _Entry(raw, result, anchor, backend)
        except DistributionError:
            raise
        except (KeyError, ValueError, TypeError, AttributeError) as exc:
            # A payload that unpickled but has the wrong shape (hand
            # edit, partial write that still parses) is corruption too.
            raise DistributionError(
                f"corrupt cache snapshot {path!r}: {exc}"
            ) from exc
        while len(cache._entries) > cache.capacity:
            cache._entries.popitem(last=False)
        return cache

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (stats are kept; see ``stats.reset()``)."""
        self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return (
            f"ConvolutionCache(entries={len(self._entries)}/"
            f"{self.capacity}, hits={s.hits}, misses={s.misses}, "
            f"evictions={s.evictions})"
        )
