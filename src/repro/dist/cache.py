"""Keyed result cache for the ADD/MAX kernels (the optimizer memo).

The sizing loop re-evaluates sensitivity by re-running SSTA
perturbation fronts, and across candidate gates and optimizer
iterations the *same* (arrival, delay-PDF) convolutions are recomputed
thousands of times: every front re-convolves the unperturbed arcs of
each node it touches with exactly the operands the base SSTA already
used, and consecutive iterations re-time a circuit in which only one
gate's cone changed.  :class:`ConvolutionCache` memoizes those results
at the :func:`~repro.dist.ops.convolve` / ``stat_max_many`` level —
the analogue, one layer up, of the FFT backend's forward-transform
memo.

Design constraints, in order:

1. **Bitwise transparency.**  A cache hit must return exactly the bits
   a fresh computation would produce.  Entries therefore store the
   *raw* kernel output (the un-normalized convolved mass vector):
   every downstream step — :class:`~repro.dist.pdf.DiscretePDF`
   normalization and tail trimming — is a pure function of that vector
   alone, so replaying it from the cache is bit-identical no matter
   which operand *offsets* the hit arrives with.  When the offsets
   match the original computation the stored (immutable) result object
   is returned outright, which is the O(1) fast path the sizer loop
   actually takes.
2. **Content keys, not identity keys.**  Keys are fingerprints of the
   operand mass vectors (plus ``dt``, relative offsets for MAX, the
   trim epsilon, and the backend), so re-created but equal operands
   hit, and a resized gate's new delay PDF — new masses, new
   fingerprint — can never alias a stale entry.  Fingerprints are
   SHA-1 digests of the immutable mass bytes, memoized per array
   object so repeated lookups of long-lived operands cost O(1).
3. **Bounded memory.**  The cache is an LRU over a fixed number of
   entries (:data:`DEFAULT_CACHE_CAPACITY` by default); eviction churn
   at tiny capacities is exercised by the property suite.

The cache is *enabled per analysis* through
``AnalysisConfig(cache=...)`` (see :mod:`repro.config`) and threaded
by every engine the same way the backend knob is.

**Thread safety.**  One instance may be shared by any number of
threads (the analysis service holds a single process-wide cache under
a :class:`~socketserver.ThreadingMixIn` server).  Every public
operation — lookup, store, save, clear, byte-budget eviction — runs
under one internal mutex, so the LRU order, the entry map, the byte
accounting, and the :class:`CacheStats` tallies are updated
atomically per operation; a lookup and the store that follows its
miss are deliberately *not* one atomic unit (two threads may race to
compute the same entry — the second store replaces the first with a
bitwise-identical result, so values never depend on the interleaving,
only the hit/miss split does).  The lock is never held while kernel
work runs: the cache does no computation of its own.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import DistributionError
from .pdf import DiscretePDF

__all__ = ["ConvolutionCache", "CacheStats", "DEFAULT_CACHE_CAPACITY"]

#: Default entry bound.  A c432 sizing iteration's working set is
#: ~25k entries (one per distinct kernel request across the base SSTA
#: and every perturbation front), and an undersized cache *thrashes* —
#: each iteration evicts what the next would have hit.  32k entries
#: hold the paper suite's working sets with room to spare while
#: bounding memory at tens of MiB of ~100-bin float64 vectors.
DEFAULT_CACHE_CAPACITY: int = 32768

#: Process-wide fingerprint memo: ``id(masses) -> (weakref, digest)``.
#: Mass vectors are immutable read-only arrays, so a digest computed
#: once is valid for the array's lifetime; the weak reference both
#: self-evicts when the array dies and guards against ``id`` reuse.
#: Unlocked by design: individual dict probes/inserts are atomic under
#: the GIL, and a race between two threads fingerprinting the same
#: array merely computes the same digest twice — ``pop`` (never
#: ``del``) removes stale ids so a concurrent weakref callback cannot
#: raise.
_FP_MEMO: dict = {}

#: Monotonic sequence for snapshot temp-file names: combined with pid
#: and thread id it makes every :meth:`ConvolutionCache.save` writer's
#: temp path unique, so concurrent flushes can never interleave bytes
#: in one temp file (each rename is then atomic per writer).
_SAVE_SEQ = itertools.count()


def _fingerprint(arr: np.ndarray) -> bytes:
    """Content digest of an immutable mass vector, memoized by identity."""
    key = id(arr)
    entry = _FP_MEMO.get(key)
    if entry is not None:
        ref, digest = entry
        if ref() is arr:
            return digest
        _FP_MEMO.pop(key, None)  # id recycled by a dead array
    digest = hashlib.sha1(arr.tobytes()).digest()
    try:
        ref = weakref.ref(arr, lambda _r, key=key: _FP_MEMO.pop(key, None))
    except TypeError:  # pragma: no cover - plain ndarrays are weakref-able
        return digest
    _FP_MEMO[key] = (ref, digest)
    return digest


#: Public name for the content digest: the shared-memory operand
#: arena (:mod:`repro.exec.arena`) keys published vectors by exactly
#: the digest the cache keys results by, so "same content" means the
#: same thing on both sides of the process boundary.
content_fingerprint = _fingerprint


def _pdf_fingerprint(pdf: DiscretePDF) -> bytes:
    """Fingerprint of a distribution's mass vector, cached on the
    (immutable) instance.  Key construction runs several times per
    kernel request, so the per-instance slot skips even the memo-dict
    probe; the array-level memo still deduplicates shifted twins that
    share one mass vector."""
    d = pdf.__dict__
    fp = d.get("_fp")
    if fp is None:
        fp = _fingerprint(pdf.masses)
        d["_fp"] = fp
    return fp


@dataclass
class CacheStats:
    """Lifetime hit/miss/eviction tallies of one cache instance.

    Thread-safe: every mutation (:meth:`record`, :meth:`reset`,
    :meth:`merge`) runs under an internal lock, and multi-field reads
    go through :meth:`snapshot` for a consistent view.  Bare ``+=`` on
    the fields is not atomic in CPython — concurrent writers must use
    :meth:`record` (the owning :class:`ConvolutionCache` does, under
    its own operation lock as well), which is what makes the final
    tallies equal the merged per-thread deltas in the threaded stress
    suite.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "_lock", threading.Lock())

    # The lock is an implementation detail: it must not participate in
    # dataclass equality/repr and cannot ride a pickle.
    def __getstate__(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__["_lock"] = threading.Lock()

    @property
    def requests(self) -> int:
        """Total lookups served (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """hits / requests (0.0 before any lookup)."""
        hits, misses, _ = self.snapshot()
        if hits + misses == 0:
            return 0.0
        return hits / (hits + misses)

    def record(
        self, *, hits: int = 0, misses: int = 0, evictions: int = 0
    ) -> None:
        """Atomically add deltas to the tallies (the only mutation path
        that is safe under concurrent writers)."""
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.evictions += evictions

    def snapshot(self) -> tuple:
        """Consistent ``(hits, misses, evictions)`` triple — reading
        the fields one by one can interleave with a concurrent
        :meth:`record`."""
        with self._lock:
            return (self.hits, self.misses, self.evictions)

    def reset(self) -> None:
        """Zero all tallies (the entries themselves are untouched)."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def merge(self, other: "CacheStats") -> None:
        """Fold another stats record into this one — the aggregation
        helper for reporting across several caches or runs (e.g.
        summing per-circuit warm-start snapshots).  Pure integer
        addition, so merging any number of records in any order yields
        the same aggregate (pinned by the merge-semantics suite).
        Note the sharded-parallel executor does *not* need this:
        the cache never leaves the coordinating process, so its stats
        are single-writer by design."""
        hits, misses, evictions = other.snapshot()
        self.record(hits=hits, misses=misses, evictions=evictions)


class _Entry:
    """One memoized kernel result.

    ``raw`` is the kernel's un-normalized output vector; ``result`` the
    finished (normalized, trimmed) :class:`DiscretePDF` as computed at
    ``anchor`` (the operand-offset sum for ADD, the minimum operand
    offset for MAX); ``backend`` the resolved backend object the entry
    was computed under, verified identically on hit so two distinct
    backend instances sharing a name can never serve each other's bits.
    """

    __slots__ = ("raw", "result", "anchor", "backend")

    def __init__(self, raw, result, anchor, backend) -> None:
        self.raw = raw
        self.result = result
        self.anchor = anchor
        self.backend = backend


#: Coarse per-entry bookkeeping overhead (key tuple, OrderedDict slot,
#: object headers) used by the byte accounting.  The dominant term is
#: the mass vectors, which are measured exactly; this constant only
#: keeps many-small-entry caches from reading as free.
_ENTRY_OVERHEAD_BYTES = 256


def _entry_nbytes(entry: _Entry) -> int:
    """Approximate resident size of one entry in bytes."""
    n = _ENTRY_OVERHEAD_BYTES
    if entry.raw is not None:
        n += entry.raw.nbytes
    if isinstance(entry.result, DiscretePDF):
        n += entry.result.masses.nbytes
    return n


class ConvolutionCache:
    """Size-bounded LRU memo over convolve / independence-MAX results.

    Parameters
    ----------
    capacity:
        Maximum number of stored results (>= 1).  The least recently
        used entry is evicted when the bound is reached.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool):
            raise DistributionError(
                f"cache capacity must be an int, got {capacity!r}"
            )
        if capacity < 1:
            raise DistributionError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict" = OrderedDict()
        # Operation mutex: every public lookup/store/save/evict runs
        # under it (see the module docstring's thread-safety contract).
        # A plain (non-reentrant) Lock — internal helpers never call
        # back into public methods while holding it.
        self._lock = threading.Lock()
        self._bytes = 0

    # The lock cannot ride a pickle; everything else can.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Coercion (the AnalysisConfig.cache knob)
    # ------------------------------------------------------------------
    @classmethod
    def coerce(cls, spec) -> Optional["ConvolutionCache"]:
        """Resolve the config knob: None (off), an int capacity, or an
        existing instance (shared between derived configs)."""
        if spec is None:
            return None
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, int) and not isinstance(spec, bool):
            return cls(capacity=spec)
        raise DistributionError(
            "cache must be None, an int capacity, or a ConvolutionCache; "
            f"got {spec!r}"
        )

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    # The key builders are public API: batched callers (``convolve_many``,
    # ``stat_max_groups``, the level scheduler) build each request's key
    # once, probe with it, deduplicate identical requests within one
    # batch against it, and store under it — a key is never derived
    # twice for one request.

    @staticmethod
    def convolve_key(
        a: DiscretePDF, b: DiscretePDF, trim_eps: float, backend
    ) -> tuple:
        """Cache key of ``convolve(a, b)`` under the given trim epsilon
        and (resolved) backend."""
        # Offsets are deliberately absent: the raw convolved masses
        # depend only on the operand mass vectors, so one entry serves
        # every translated occurrence of the same operand pair.
        return (
            "conv",
            a.dt,
            trim_eps,
            getattr(backend, "name", type(backend).__name__),
            _pdf_fingerprint(a),
            _pdf_fingerprint(b),
        )

    @staticmethod
    def max_key(pdfs: Sequence[DiscretePDF], trim_eps: float) -> tuple:
        """Cache key of ``stat_max_many(pdfs)`` at the given trim
        epsilon."""
        # The MAX product depends on the *relative* operand alignment,
        # so offsets enter the key relative to the leftmost operand;
        # the absolute anchor is replayed from the hit context.  The
        # MAX numerics are backend-invariant, so no backend component.
        lo = min(p.offset for p in pdfs)
        return (
            "max",
            pdfs[0].dt,
            trim_eps,
            tuple((p.offset - lo, _pdf_fingerprint(p)) for p in pdfs),
        )

    # ------------------------------------------------------------------
    # LRU plumbing
    # ------------------------------------------------------------------
    def _get(self, key: tuple) -> Optional[_Entry]:
        # Caller holds self._lock.
        entry = self._entries.get(key)
        if entry is None:
            self.stats.record(misses=1)
            return None
        self._entries.move_to_end(key)
        self.stats.record(hits=1)
        return entry

    def _put(self, key: tuple, entry: _Entry) -> None:
        # Caller holds self._lock.
        old = self._entries.get(key)
        if old is not None:
            self._entries.move_to_end(key)
            self._entries[key] = entry
            self._bytes += _entry_nbytes(entry) - _entry_nbytes(old)
            return
        while len(self._entries) >= self.capacity:
            _k, evicted = self._entries.popitem(last=False)
            self._bytes -= _entry_nbytes(evicted)
            self.stats.record(evictions=1)
        self._entries[key] = entry
        self._bytes += _entry_nbytes(entry)

    def _replay(
        self, entry: _Entry, anchor: int, dt: float, trim_eps: float
    ) -> DiscretePDF:
        """Return the stored result, re-anchored if the operands arrive
        at different offsets.  Normalization and trimming are pure
        functions of the raw vector, so the replay is bit-identical to
        a fresh computation at the new anchor — *within the arithmetic
        class of the entry's backend*: a backend that builds results in
        compiled code (``fused_trim_active``) rebuilds the translated
        hit through its own ``rebuild_trimmed``, so replayed and
        freshly computed entries carry identical bits there too.  MAX
        entries store ``backend=None`` and always take the stock path
        (their construction is backend-invariant by contract)."""
        if anchor == entry.anchor:
            return entry.result
        rebuild = getattr(entry.backend, "rebuild_trimmed", None)
        if rebuild is not None and getattr(
            entry.backend, "fused_trim_active", False
        ):
            return rebuild(dt, anchor, entry.raw, trim_eps)
        return DiscretePDF(dt, anchor, entry.raw).trimmed(trim_eps)

    # ------------------------------------------------------------------
    # ADD (convolution)
    # ------------------------------------------------------------------
    def lookup_convolve(
        self,
        a: DiscretePDF,
        b: DiscretePDF,
        trim_eps: float,
        backend,
        *,
        key: Optional[tuple] = None,
    ) -> Optional[DiscretePDF]:
        """Memoized ``convolve(a, b)`` result, or None on a miss.
        ``key`` accepts a precomputed :meth:`convolve_key` (the batched
        callers build it once per request)."""
        if key is None:
            key = self.convolve_key(a, b, trim_eps, backend)
        with self._lock:
            entry = self._get(key)
            if entry is None:
                return None
            if entry.backend is not backend:
                # A distinct backend instance sharing the stored one's
                # name: count it as the miss it is and let the caller
                # recompute.
                self.stats.record(hits=-1, misses=1)
                return None
        # Replay outside the lock: entries are immutable, and the
        # re-anchor path constructs a fresh DiscretePDF.
        return self._replay(entry, a.offset + b.offset, a.dt, trim_eps)

    def store_convolve(
        self,
        a: DiscretePDF,
        b: DiscretePDF,
        trim_eps: float,
        backend,
        raw: np.ndarray,
        result: DiscretePDF,
        *,
        key: Optional[tuple] = None,
    ) -> None:
        """Insert a freshly computed convolution (``raw`` is the kernel
        output before normalization/trimming)."""
        raw = np.asarray(raw)
        raw.flags.writeable = False
        if key is None:
            key = self.convolve_key(a, b, trim_eps, backend)
        with self._lock:
            self._put(key, _Entry(raw, result, a.offset + b.offset, backend))

    # ------------------------------------------------------------------
    # MAX (independence statistical maximum)
    # ------------------------------------------------------------------
    def lookup_max(
        self,
        pdfs: Sequence[DiscretePDF],
        trim_eps: float,
        *,
        key: Optional[tuple] = None,
    ) -> Optional[DiscretePDF]:
        """Memoized ``stat_max_many(pdfs)`` result, or None on a miss.
        ``key`` accepts a precomputed :meth:`max_key`."""
        if key is None:
            key = self.max_key(pdfs, trim_eps)
        with self._lock:
            entry = self._get(key)
        if entry is None:
            return None
        anchor = min(p.offset for p in pdfs)
        return self._replay(entry, anchor, pdfs[0].dt, trim_eps)

    def store_max(
        self,
        pdfs: Sequence[DiscretePDF],
        trim_eps: float,
        raw: np.ndarray,
        result: DiscretePDF,
        *,
        key: Optional[tuple] = None,
    ) -> None:
        raw = np.asarray(raw)
        raw.flags.writeable = False
        if key is None:
            key = self.max_key(pdfs, trim_eps)
        anchor = min(p.offset for p in pdfs)
        with self._lock:
            self._put(key, _Entry(raw, result, anchor, None))

    # ------------------------------------------------------------------
    # Whole-node arrival memo (the engines' coarse-grained fast path)
    # ------------------------------------------------------------------
    # A timing node's arrival is a pure function of its fan-in operand
    # contents *and absolute offsets*: memoizing at node granularity
    # lets a perturbation front that re-visits a node with unchanged
    # inputs (the dominant case across candidate fronts and optimizer
    # iterations) skip the whole convolve-batch + MAX pipeline for one
    # dict probe.  Keys use absolute offsets, so a hit returns the
    # exact stored object a fresh computation would reproduce bitwise;
    # a translated recurrence simply misses into the per-op caches.

    def lookup_node(self, key: tuple, backend) -> Optional[DiscretePDF]:
        """Memoized whole-node arrival for a key built by
        :meth:`node_key`, or None.  Like the convolve lookup, the
        resolved backend object is verified identically — two distinct
        instances sharing a name (e.g. ``AutoBackend``s with different
        cost ratios) must never serve each other's bits."""
        with self._lock:
            entry = self._get(("node",) + key)
            if entry is None:
                return None
            if entry.backend is not backend:
                self.stats.record(hits=-1, misses=1)
                return None
            return entry.result

    def store_node(self, key: tuple, result: DiscretePDF, backend) -> None:
        with self._lock:
            self._put(("node",) + key, _Entry(None, result, 0, backend))

    @staticmethod
    def node_key(parts, trim_eps: float, backend) -> tuple:
        """Node-memo key from ``(arrival, delay-or-None)`` fan-in parts
        (absolute offsets; delay ``None`` marks a virtual arc)."""
        return (
            trim_eps,
            getattr(backend, "name", type(backend).__name__),
            tuple(
                (
                    arr.dt,
                    arr.offset,
                    _pdf_fingerprint(arr),
                    None if d is None else d.offset,
                    None if d is None else _pdf_fingerprint(d),
                )
                for arr, d in parts
            ),
        )

    # ------------------------------------------------------------------
    # Percentile-gap memo (the Theorem-4 delta evaluations)
    # ------------------------------------------------------------------
    # ``max_percentile_gap(base, perturbed)`` costs as much as the
    # kernel work it measures; with result objects shared through this
    # cache the same (base, perturbed) pair recurs across fronts and
    # iterations.  Keys again carry absolute offsets so a hit is the
    # bit-exact value a fresh evaluation would produce — the pruning
    # heap ordering (and hence the bitwise-selection guarantee) cannot
    # be perturbed by an ulp-shifted translated evaluation.

    @staticmethod
    def _gap_key(a: DiscretePDF, b: DiscretePDF) -> tuple:
        return (
            "gap",
            a.dt,
            a.offset,
            _pdf_fingerprint(a),
            b.offset,
            _pdf_fingerprint(b),
        )

    def lookup_gap(self, a: DiscretePDF, b: DiscretePDF) -> Optional[float]:
        key = self._gap_key(a, b)
        with self._lock:
            entry = self._get(key)
            if entry is None:
                return None
            return entry.result

    def store_gap(self, a: DiscretePDF, b: DiscretePDF, gap: float) -> None:
        key = self._gap_key(a, b)
        with self._lock:
            self._put(key, _Entry(None, gap, 0, None))

    # ------------------------------------------------------------------
    # Persistence (cross-run warm starts)
    # ------------------------------------------------------------------
    # Keys are content fingerprints (SHA-1 of mass bytes) plus grid,
    # epsilon, offset, and backend-*name* components — nothing
    # process-specific — so entries are valid in any process that
    # resolves the same registry kernels.  Snapshots ride the same
    # memo-stripped serialization the parallel IPC layer uses
    # (``DiscretePDF.__getstate__``): an entry is its key, its raw
    # kernel output, its finished result, its anchor, and its backend
    # name.  Only registry-kernel entries are saved — a non-registry
    # backend instance cannot be identified by name alone, and writing
    # it under its name could alias a different implementation's
    # entries on load.

    #: Snapshot format version (bump on any layout change).
    SNAPSHOT_FORMAT: int = 1

    def save(self, path) -> int:
        """Write every (registry-kernel) entry to ``path`` in LRU
        order, returning the number of entries written.  Loading the
        file into a fresh cache (:meth:`load`) reproduces the entries
        and their recency order; statistics are not persisted."""
        from .backends import is_registry_backend

        entries = []
        # Snapshot the LRU order under the lock (cheap walk); the
        # pickle dump below runs unlocked on the gathered immutable
        # entry fields, so a long flush never stalls concurrent
        # lookups for the disk write's duration.
        with self._lock:
            items = list(self._entries.items())
        for key, entry in items:
            backend = entry.backend
            if backend is None:
                name = None
            elif is_registry_backend(backend):
                name = backend.name
            else:
                continue
            entries.append((key, entry.raw, entry.result, entry.anchor, name))
        payload = {
            "format": self.SNAPSHOT_FORMAT,
            "capacity": self.capacity,
            "entries": entries,
        }
        # Atomic replace: a crash or full disk mid-dump must not
        # destroy the previous good snapshot (warm starts depend on
        # it surviving every run that reads it).  The temp name is
        # unique per *writer*, not per process: a pid-only suffix let
        # the SIGTERM-drain flush and the periodic flusher thread (or
        # any two unsynchronized threads) interleave writes into one
        # temp file and rename garbage over the good snapshot.
        path = os.fspath(path)
        tmp = (
            f"{path}.tmp.{os.getpid()}.{threading.get_native_id()}"
            f".{next(_SAVE_SEQ)}"
        )
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(entries)

    @classmethod
    def merge_snapshots(
        cls,
        paths: Sequence,
        out_path,
        *,
        capacity: int = DEFAULT_CACHE_CAPACITY,
    ) -> int:
        """Fold several snapshot files into one (the multi-worker
        service front's reconciliation step: per-worker snapshots merge
        into the shared warm-start file a restarted worker seeds from).

        ``paths`` are loaded in order; entries are content-keyed, so a
        key appearing in several snapshots carries a bitwise-identical
        result everywhere and later occurrences simply refresh its
        recency.  Missing and corrupt inputs are skipped — a worker
        that crashed mid-write must not poison the union of its
        healthy peers.  Returns the number of entries written (0 when
        no input contributed; no file is written then).
        """
        merged = cls(capacity)
        contributed = False
        for path in paths:
            try:
                loaded = cls.load(path, capacity=capacity)
            except (OSError, DistributionError):
                continue
            contributed = True
            for key, entry in loaded._entries.items():
                merged._entries[key] = entry
                merged._entries.move_to_end(key)
        while len(merged._entries) > merged.capacity:
            merged._entries.popitem(last=False)
        if not contributed:
            return 0
        merged._bytes = sum(
            _entry_nbytes(e) for e in merged._entries.values()
        )
        return merged.save(out_path)

    @classmethod
    def load(cls, path, *, capacity: Optional[int] = None) -> "ConvolutionCache":
        """Rebuild a cache from a :meth:`save` snapshot.

        ``capacity`` overrides the recorded bound (the oldest entries
        are dropped if the snapshot exceeds it).  Backend names are
        resolved against the current registry, so hits served from
        loaded entries pass the same identity check fresh entries do.
        Snapshots are trusted input (they are pickles): load only
        files you wrote.
        """
        from .backends import get_backend

        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (
            pickle.UnpicklingError, EOFError, AttributeError, ImportError,
        ) as exc:
            # ImportError covers foreign pickles referencing modules
            # this build does not have (including snapshots written by
            # a version that has since moved a class).
            raise DistributionError(
                f"corrupt cache snapshot {path!r}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise DistributionError(
                f"corrupt cache snapshot {path!r}: not a snapshot payload"
            )
        fmt = payload.get("format")
        if fmt != cls.SNAPSHOT_FORMAT:
            raise DistributionError(
                f"unsupported cache snapshot format {fmt!r} "
                f"(expected {cls.SNAPSHOT_FORMAT})"
            )
        try:
            cache = cls(
                capacity if capacity is not None else payload["capacity"]
            )
            for key, raw, result, anchor, name in payload["entries"]:
                if raw is not None:
                    raw.flags.writeable = False
                backend = None if name is None else get_backend(name)
                cache._entries[key] = _Entry(raw, result, anchor, backend)
        except DistributionError:
            raise
        except (KeyError, ValueError, TypeError, AttributeError) as exc:
            # A payload that unpickled but has the wrong shape (hand
            # edit, partial write that still parses) is corruption too.
            raise DistributionError(
                f"corrupt cache snapshot {path!r}: {exc}"
            ) from exc
        while len(cache._entries) > cache.capacity:
            cache._entries.popitem(last=False)
        cache._bytes = sum(
            _entry_nbytes(e) for e in cache._entries.values()
        )
        return cache

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def approx_bytes(self) -> int:
        """Approximate resident size of the stored entries (exact for
        the mass vectors, a fixed per-entry constant for bookkeeping)
        — the quantity the service's memory budget is enforced
        against."""
        with self._lock:
            return self._bytes

    def evict_to_bytes(self, budget_bytes: int) -> int:
        """Evict LRU entries until :attr:`approx_bytes` fits within
        ``budget_bytes`` (which may be 0 to drop everything), returning
        the number of entries evicted.  The eviction tally counts them
        like capacity evictions."""
        if budget_bytes < 0:
            raise DistributionError(
                f"byte budget must be >= 0, got {budget_bytes}"
            )
        evicted = 0
        with self._lock:
            while self._entries and self._bytes > budget_bytes:
                _k, entry = self._entries.popitem(last=False)
                self._bytes -= _entry_nbytes(entry)
                evicted += 1
            if evicted:
                self.stats.record(evictions=evicted)
        return evicted

    def content_arrays(self) -> list:
        """Distinct result mass vectors currently resident, one per
        content digest.  This is what a warm start publishes into the
        shared-memory operand arena: cached results become the next
        levels' operands, so pre-publishing them means a warm parallel
        run ships index tuples from its very first level instead of
        re-pickling the snapshot's vectors into every worker."""
        with self._lock:
            entries = list(self._entries.values())
        seen: dict = {}
        for entry in entries:
            if isinstance(entry.result, DiscretePDF):
                arr = entry.result.masses
                seen.setdefault(_fingerprint(arr), arr)
        return list(seen.values())

    def clear(self) -> None:
        """Drop every entry (stats are kept; see ``stats.reset()``)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return (
            f"ConvolutionCache(entries={len(self._entries)}/"
            f"{self.capacity}, hits={s.hits}, misses={s.misses}, "
            f"evictions={s.evictions})"
        )
