"""Distribution kernels: the numeric primitive of the whole reproduction.

Every analysis in this package ultimately manipulates one object: an
arrival-time probability distribution discretized on a **uniform time
grid**.  This subpackage owns that object and the closed set of
operations the paper's algorithms need:

* :mod:`~repro.dist.pdf` — :class:`DiscretePDF`, the immutable value
  type (grid spacing ``dt``, integer bin ``offset``, normalized mass
  vector);
* :mod:`~repro.dist.ops` — the propagation kernels: :func:`convolve` /
  :func:`convolve_many` (the ADD operation, single and batched),
  :func:`stat_max` / :func:`stat_max_many` / :func:`stat_max_groups`
  (the independence MAX of
  Agarwal et al. [3]), and :class:`OpCounter`, the transparent
  work-statistics instrument behind Table 2 (cache hits tallied
  distinctly from computed operations);
* :mod:`~repro.dist.cache` — :class:`ConvolutionCache`, the keyed,
  size-bounded, bitwise-transparent result memo over the ADD/MAX
  kernels, enabled per analysis through ``AnalysisConfig(cache=...)``;
* :mod:`~repro.dist.families` — the paper's Section-4 variation model:
  truncated Gaussians (sigma = 10% of nominal, cut at 3 sigma), both
  discretized and sampled;
* :mod:`~repro.dist.metrics` — CDF comparison functionals: the maximum
  horizontal percentile gap (the Theorem-4 perturbation bound) and
  stochastic dominance.

Grid contract
-------------
A :class:`DiscretePDF` with spacing ``dt``, offset ``k0``, and masses
``m[0..n)`` places probability mass ``m[i]`` at time ``(k0 + i) * dt``.
All binary operations require identical ``dt`` (no regridding, ever —
that is what keeps deep propagation error-free) and work on integer
bin offsets.  Masses are always normalized to total 1; every operation
renormalizes after optional tail trimming (``trim_eps`` total mass,
split between the two tails) and bin counts are capped at
:data:`repro.config.MAX_BINS`.

For continuous queries (CDF evaluation, percentiles) the distribution
is interpreted as a **piecewise-linear CDF**: the cumulative mass
through bin ``i`` is attained at that bin's time, interpolating
linearly between grid points (and ramping from zero over the bin below
the support).  Both directions — :meth:`DiscretePDF.cdf_at` and
:meth:`DiscretePDF.percentile` — use the same interpolant, so they are
mutual inverses to machine precision; the pruning bound in
:mod:`~repro.dist.metrics` evaluates the exact maximum of the same
interpolants.

The convolution *implementation* is pluggable on top of this contract:
:mod:`~repro.dist.backends` defines the
:class:`~repro.dist.backends.ConvolutionBackend` strategy with
``direct`` (O(n*m) reference), ``fft`` (O(N log N) real-FFT product),
and ``auto`` (calibrated size crossover) implementations, selected per
analysis through :class:`repro.config.AnalysisConfig` and per call
through every kernel's ``backend`` argument.  Further backends (sparse
grids, batched arrays) slot in the same way by honoring the contract:
identical-``dt`` closure, mass-1 normalization, and the
piecewise-linear query semantics.
"""

from .backends import (
    AutoBackend,
    ConvolutionBackend,
    DirectBackend,
    FFTBackend,
    available_backends,
    get_backend,
)
from .cache import CacheStats, ConvolutionCache
from .families import sample_truncated_gaussian, truncated_gaussian_pdf
from .metrics import max_percentile_gap, stochastically_le
from .ops import (
    OpCounter,
    convolve,
    convolve_many,
    stat_max,
    stat_max_groups,
    stat_max_many,
)
from .pdf import DiscretePDF
from .sparse import SparseDiscretePDF, as_dense, sparsify

__all__ = [
    "DiscretePDF",
    "SparseDiscretePDF",
    "sparsify",
    "as_dense",
    "OpCounter",
    "ConvolutionBackend",
    "ConvolutionCache",
    "CacheStats",
    "DirectBackend",
    "FFTBackend",
    "AutoBackend",
    "available_backends",
    "get_backend",
    "convolve",
    "convolve_many",
    "stat_max",
    "stat_max_many",
    "stat_max_groups",
    "truncated_gaussian_pdf",
    "sample_truncated_gaussian",
    "max_percentile_gap",
    "stochastically_le",
]
