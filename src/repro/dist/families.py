"""The paper's variation model: truncated Gaussian gate delays.

Section 4: each gate delay is Gaussian around its nominal value with a
standard deviation of 10% of the nominal, truncated at the 3-sigma
points (delays outside the cut are physically excluded, and the
remaining mass is renormalized — so the effective standard deviation
shrinks to ~0.98658 sigma at a 3-sigma cut).

Two views of the same law live here: :func:`truncated_gaussian_pdf`
discretizes it onto the analysis grid for SSTA propagation, and
:func:`sample_truncated_gaussian` draws from it for the Monte Carlo
reference — the validation in Figure 10 compares exactly these two.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import DEFAULT_TRUNCATION_SIGMA
from ..errors import DistributionError
from .pdf import DiscretePDF

__all__ = ["truncated_gaussian_pdf", "sample_truncated_gaussian"]

try:  # SciPy's vectorized normal CDF when available
    from scipy.special import ndtr as _ndtr
except ImportError:  # pragma: no cover - exercised only without scipy
    _SQRT2 = math.sqrt(2.0)

    def _ndtr(x: np.ndarray) -> np.ndarray:
        erf = np.frompyfunc(math.erf, 1, 1)
        return 0.5 * (1.0 + erf(np.asarray(x) / _SQRT2).astype(np.float64))


def truncated_gaussian_pdf(
    dt: float,
    mean: float,
    sigma: float,
    *,
    truncation: float = DEFAULT_TRUNCATION_SIGMA,
    trim_eps: float = 0.0,
) -> DiscretePDF:
    """Discretize N(mean, sigma^2) truncated at ``mean ± truncation*sigma``.

    Each grid bin receives the exact Gaussian mass of its cell
    ``[(k - 1/2) dt, (k + 1/2) dt)`` intersected with the truncation
    window; renormalization to mass 1 happens in the
    :class:`DiscretePDF` constructor, which is precisely the truncated
    law.  ``sigma == 0`` degenerates to a point mass on the nearest
    grid bin.
    """
    if sigma < 0.0:
        raise DistributionError(f"sigma must be non-negative, got {sigma}")
    if truncation <= 0.0:
        raise DistributionError(f"truncation must be positive, got {truncation}")
    if sigma == 0.0:
        return DiscretePDF.delta(dt, mean)
    lo_t = mean - truncation * sigma
    hi_t = mean + truncation * sigma
    k_lo = int(round(lo_t / dt))
    k_hi = int(round(hi_t / dt))
    edges = (np.arange(k_lo, k_hi + 2) - 0.5) * dt
    np.clip(edges, lo_t, hi_t, out=edges)
    cdf = _ndtr((edges - mean) / sigma)
    masses = np.diff(cdf)
    return DiscretePDF(dt, k_lo, masses).trimmed(trim_eps)


def sample_truncated_gaussian(
    rng: np.random.Generator,
    mean: float,
    sigma: float,
    n: int,
    *,
    truncation: float = DEFAULT_TRUNCATION_SIGMA,
) -> np.ndarray:
    """Draw ``n`` samples of the same truncated law by rejection.

    At a 3-sigma cut ~99.7% of proposals are accepted, so the resample
    loop terminates almost immediately; it is deterministic given the
    generator state, which keeps Monte Carlo runs seed-reproducible.
    """
    if sigma < 0.0:
        raise DistributionError(f"sigma must be non-negative, got {sigma}")
    if truncation <= 0.0:
        raise DistributionError(f"truncation must be positive, got {truncation}")
    if n < 0:
        raise DistributionError(f"sample count must be >= 0, got {n}")
    if sigma == 0.0:
        return np.full(n, float(mean))
    lo = mean - truncation * sigma
    hi = mean + truncation * sigma
    out = rng.normal(mean, sigma, n)
    bad = (out < lo) | (out > hi)
    while np.any(bad):
        k = int(bad.sum())
        out[bad] = rng.normal(mean, sigma, k)
        bad = (out < lo) | (out > hi)
    return out
