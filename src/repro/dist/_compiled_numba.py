"""numba ``@njit`` kernels for the compiled backend tier.

Imported only when numba itself imports (see
:mod:`repro.dist._compiled`); loop structure and arithmetic mirror the
C provider exactly — sequential reductions, scatter-form convolution,
the padded-CDF product in ascending row order — so both providers sit
in the same equivalence class and pass the same self-check.
``cache=True`` persists the compiled machine code across processes
(pool workers and CI runs reuse it instead of re-JITting).
"""

from __future__ import annotations

import numpy as np
from numba import njit

__all__ = ["conv_into", "trim_into", "max_sweep_into"]


@njit(cache=True)
def conv_into(a, b, out):
    """Scatter-form direct convolution into a zeroed ``out`` buffer."""
    na = a.size
    nb = b.size
    if na < nb:
        a, b = b, a
        na, nb = nb, na
    for j in range(nb):
        bj = b[j]
        for i in range(na):
            out[i + j] += a[i] * bj


@njit(cache=True)
def trim_into(raw, half, kept):
    """Normalize-and-trim mirror of ``_trusted(...).trimmed()``.

    Writes the kept (normalized) vector into ``kept`` and returns
    ``(lo, klen)``; ``klen < 0`` flags a non-positive total.
    """
    n = raw.size
    total = 0.0
    for j in range(n):
        total += raw[j]
    if not (total > 0.0) or np.isinf(total):
        return 0, -1

    acc = 0.0
    lead = 0.0
    lo = 0
    for j in range(n):
        acc += raw[j] / total
        if acc <= half:
            lo = j + 1
            lead = acc
        else:
            break
    tacc = 0.0
    tlump = 0.0
    hidrop = 0
    for j in range(n - 1, -1, -1):
        tacc += raw[j] / total
        if tacc <= half:
            hidrop = n - j
            tlump = tacc
        else:
            break
    hi = n - hidrop

    if lo >= hi:
        am = 0
        best = raw[0] / total
        for j in range(1, n):
            v = raw[j] / total
            if v > best:
                best = v
                am = j
        lo = am
        hi = am + 1
        lead = 0.0
        for j in range(lo):
            lead += raw[j] / total
        tlump = 0.0
        for j in range(n - 1, hi - 1, -1):
            tlump += raw[j] / total

    if lo == 0 and hi == n:
        for j in range(n):
            kept[j] = raw[j] / total
        return 0, n

    klen = hi - lo
    for j in range(klen):
        kept[j] = raw[lo + j] / total
    if lo > 0:
        kept[0] += lead
    if hi < n:
        kept[klen - 1] += tlump
    ktotal = 0.0
    for j in range(klen):
        ktotal += kept[j]
    if not (ktotal > 0.0):
        return 0, -1
    if ktotal != 1.0:
        for j in range(klen):
            kept[j] /= ktotal
    return lo, klen


@njit(cache=True)
def max_sweep_into(CDF, cdfoff, cdflen, rstart, width, out):
    """Padded-CDF product + adjacent difference for one operand group,
    bitwise the NumPy ``_max_masses`` sweep."""
    k = cdflen.size
    s = rstart[0]
    n = cdflen[0]
    o = cdfoff[0]
    for w in range(width):
        if w < s:
            out[w] = 0.0
        elif w < s + n:
            out[w] = CDF[o + w - s]
        else:
            out[w] = 1.0
    for r in range(1, k):
        s = rstart[r]
        n = cdflen[r]
        o = cdfoff[r]
        for w in range(width):
            if w < s:
                v = 0.0
            elif w < s + n:
                v = CDF[o + w - s]
            else:
                v = 1.0
            out[w] *= v
    for w in range(width - 1, 0, -1):
        out[w] = out[w] - out[w - 1]
