"""Vectorized propagation kernels: ADD (convolution) and MAX.

These two operations are the paper's entire numeric inner loop: a gate
arc adds its delay to the fan-in arrival by discrete **convolution**,
and converging arrivals merge through the **independence statistical
maximum** ``F_max(t) = F_a(t) * F_b(t)`` — the upper-bound max of
Agarwal et al. DAC'03 [3].  Both are pure NumPy (no per-bin Python
loops) and both are pure functions of their operands, which is what
lets the perturbation fronts and the incremental updater reproduce a
full SSTA **bitwise**.

:class:`OpCounter` instruments the kernels transparently: every kernel
takes an optional ``counter`` and tallies one unit per pairwise
operation, giving the raw work statistics behind Table 2 without the
call sites doing any accounting of their own.  Tallies count
*statistical* operations, so they are invariant under the convolution
backend choice — a pairwise ADD is one convolution whether the direct
or the FFT kernel computed it.

The convolution implementation itself is pluggable (see
:mod:`~repro.dist.backends`): every kernel takes a ``backend`` — a
registry name or a :class:`~repro.dist.backends.ConvolutionBackend` —
defaulting to ``auto``, which is bit-identical to the historical
direct kernel below the crossover.  The MAX kernels accept the same
argument for call-site uniformity (engines thread one backend choice
through every operation); the independence max is a CDF product, not a
convolution, so its numerics are backend-invariant by construction.

Two orthogonal accelerations ride on top of that contract:

* every kernel takes an optional ``cache`` — a
  :class:`~repro.dist.cache.ConvolutionCache` memoizing results keyed
  by operand content, backend, and trim epsilon.  Hits return bits
  identical to a fresh computation and are tallied on the counter as
  *hits*, never as computed operations;
* :func:`convolve_many` batches a node's fan-in ADDs through the
  backend's ``convolve_many`` entry point, stacking same-shape operand
  pairs into one 2-D transform (FFT path) or an equivalent loop
  (direct path, bitwise identical to sequential calls);
* :func:`stat_max_groups` batches many independent MAX reductions —
  a whole topological level's worth — into stacked CDF products over
  same-shape groups, each group bitwise identical to its own
  :func:`stat_max_many` call.

Batched entry points replicate the *sequential request stream* when a
cache is attached: requests are resolved against the cache in order,
duplicate requests within one batch are served from the entry their
first occurrence stores (computed once, tallied as hits — exactly what
a sequential loop would do), and an empty or fully cached batch never
invokes the backend at all.  This is what keeps kernel tallies and
cache statistics invariant between the level-batched and per-node
execution modes of the timing engines whenever the cache holds its
working set (an eviction-thrashing cache may hit and miss differently
between the orders, but every value stays bitwise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import DistributionError, GridMismatchError
from .backends import BackendLike, get_backend
from .cache import ConvolutionCache
from .pdf import DiscretePDF
from .sparse import as_dense

__all__ = [
    "OpCounter",
    "convolve",
    "convolve_many",
    "convolve_batch_raws",
    "max_batch_raws",
    "stat_max",
    "stat_max_many",
    "stat_max_groups",
]


@dataclass
class OpCounter:
    """Tally of statistical operations performed through the kernels.

    One *convolution* is one pairwise ADD; one *max op* is one pairwise
    independence MAX (an n-way merge counts n - 1).  Counters are
    additive: thread one instance through an analysis to attribute all
    of its work, or keep separate instances and :meth:`merge` them.

    Cache hits are tallied **distinctly**: a request served from a
    :class:`~repro.dist.cache.ConvolutionCache` increments
    :attr:`convolve_cache_hits` / :attr:`max_cache_hits` and leaves the
    mult/add tallies untouched — :attr:`convolutions` and
    :attr:`max_ops` count only the operations actually computed, so
    cached work is visible without inflating the Table-2 statistics.
    The invariant the tests pin: *computed + hits* equals the cache-off
    tally of the same request sequence.
    """

    convolutions: int = 0
    max_ops: int = 0
    convolve_cache_hits: int = 0
    max_cache_hits: int = 0

    @property
    def total_ops(self) -> int:
        """Convolutions plus max reductions actually *computed*
        (cache hits excluded)."""
        return self.convolutions + self.max_ops

    @property
    def cache_hits(self) -> int:
        """Requests served from the result cache (ADD plus MAX)."""
        return self.convolve_cache_hits + self.max_cache_hits

    @property
    def total_requests(self) -> int:
        """Statistical operations *requested*: computed plus cached.
        Invariant under the cache knob (and the backend choice)."""
        return self.total_ops + self.cache_hits

    @property
    def cache_hit_rate(self) -> float:
        """cache_hits / total_requests (0.0 before any request)."""
        if self.total_requests == 0:
            return 0.0
        return self.cache_hits / self.total_requests

    def merge(self, other: "OpCounter") -> None:
        """Fold another counter's tallies into this one (cache-hit
        fields included — hits must survive aggregation distinctly,
        never be folded into the computed-op tallies)."""
        self.convolutions += other.convolutions
        self.max_ops += other.max_ops
        self.convolve_cache_hits += other.convolve_cache_hits
        self.max_cache_hits += other.max_cache_hits

    def reset(self) -> None:
        """Zero every tally."""
        self.convolutions = 0
        self.max_ops = 0
        self.convolve_cache_hits = 0
        self.max_cache_hits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpCounter(convolutions={self.convolutions}, "
            f"max_ops={self.max_ops}, "
            f"convolve_cache_hits={self.convolve_cache_hits}, "
            f"max_cache_hits={self.max_cache_hits})"
        )


def _require_same_grid(pdfs: Sequence[DiscretePDF]) -> float:
    dt = pdfs[0].dt
    for p in pdfs[1:]:
        if p.dt != dt:
            raise GridMismatchError(
                f"cannot combine distributions with dt={dt} and dt={p.dt}; "
                "regrid explicitly before mixing analyses"
            )
    return dt


def convolve(
    a: DiscretePDF,
    b: DiscretePDF,
    *,
    trim_eps: float = 0.0,
    counter: Optional[OpCounter] = None,
    backend: BackendLike = "auto",
    cache: Optional[ConvolutionCache] = None,
) -> DiscretePDF:
    """Distribution of the sum of two independent arrivals (ADD).

    Offsets add, so no regridding happens: the result lives on the same
    ``dt`` grid at offset ``a.offset + b.offset``.  ``trim_eps`` total
    tail mass is trimmed afterwards (split between the tails).
    ``backend`` selects the convolution kernel (default ``auto``);
    ``cache`` memoizes results keyed by operand content — hits are
    bit-identical to fresh computations and tallied separately on the
    counter (they are not computed work).

    Sparse (:class:`~repro.dist.sparse.SparseDiscretePDF`) operands are
    densified on entry — here as in every public kernel entry point —
    so caches, counters, and backends only ever see dense vectors.
    """
    a = as_dense(a)
    b = as_dense(b)
    dt = _require_same_grid((a, b))
    kernel = get_backend(backend)
    if cache is not None:
        hit = cache.lookup_convolve(a, b, trim_eps, kernel)
        if hit is not None:
            if counter is not None:
                counter.convolve_cache_hits += 1
            return hit
    if getattr(kernel, "fused_trim_active", False):
        # Compiled-tier miss path: convolution, normalization, and
        # trimming collapse into one fused kernel call that returns
        # both the raw vector (for the cache) and the built result.
        raw, result = kernel.convolve_trimmed(
            a.masses, b.masses, dt, a.offset + b.offset, trim_eps
        )
        if counter is not None:
            counter.convolutions += 1
        if cache is not None:
            cache.store_convolve(a, b, trim_eps, kernel, raw, result)
        return result
    masses = kernel.convolve_masses(a.masses, b.masses)
    if counter is not None:
        counter.convolutions += 1
    # Trusted construction: backend outputs are fresh, finite,
    # non-negative vectors (the ConvolutionBackend contract).
    result = DiscretePDF._trusted(dt, a.offset + b.offset, masses).trimmed(
        trim_eps
    )
    if cache is not None:
        cache.store_convolve(a, b, trim_eps, kernel, masses, result)
    return result


def convolve_batch_raws(kernel, mass_pairs: Sequence) -> list:
    """Raw kernel outputs for a batch of ``(a_masses, b_masses)``
    operand pairs — the shardable ADD work unit of the execution layer.

    A pure function of the operand vectors: no cache, no counter, no
    trimming — exactly the compute step :func:`convolve_many` performs
    after cache resolution, factored out so an
    :class:`~repro.exec.Executor` can run it in a worker process.  Each
    output is **bitwise** the vector ``kernel.convolve_masses`` would
    return for its pair, whatever the batch composition (the
    ``ConvolutionBackend.convolve_many`` contract), which is why any
    contiguous sharding of a batch reproduces the unsharded batch bit
    for bit.  Backends without the batched entry point fall back to a
    ``convolve_masses`` loop.
    """
    batched = getattr(kernel, "convolve_many", None)
    if callable(batched):
        return batched(mass_pairs)
    return [kernel.convolve_masses(a, b) for a, b in mass_pairs]


def convolve_many(
    pairs: Sequence,
    *,
    trim_eps: float = 0.0,
    counter: Optional[OpCounter] = None,
    backend: BackendLike = "auto",
    cache: Optional[ConvolutionCache] = None,
    executor=None,
) -> list:
    """Batched ADD: one :func:`convolve` result per ``(a, b)`` pair.

    The SSTA inner loop convolves every fan-in arrival with its arc's
    delay PDF before one MAX reduction; this entry point hands all of a
    node's pairs to the backend at once so same-shape operands share
    one stacked transform (see ``ConvolutionBackend.convolve_many``).
    Cached pairs are resolved first and never re-enter the batch.

    Equivalence contract with the looped path: **bitwise identical per
    pair regardless of batch composition**, for every shipped backend —
    ``direct`` by construction, ``fft`` via per-transform-size
    verification (the first batch at each ``nfft`` checks a row against
    the singleton path and falls back to the loop at any size where the
    platform's stacked transform is not row-bitwise; see
    ``FFTBackend.convolve_many``).  This is load-bearing for the result
    cache, which shares entries between batched and singleton
    computations.  Backends without a ``convolve_many`` method fall
    back to a ``convolve_masses`` loop.

    With a cache attached the *tallies* match the looped path too:
    duplicate pairs within one batch are computed once and the repeats
    served from the just-stored entry (counted as hits), exactly as a
    sequential loop's later calls would hit the earlier call's entry.
    A batch that is empty — or whose every pair resolves from the
    cache — never touches the backend.

    ``executor`` (an :class:`~repro.exec.Executor`) takes over the raw
    compute step for the cache-resolved batch — the serial executor
    runs :func:`convolve_batch_raws` in-process, the process executor
    shards it across workers.  Cache resolution, dedupe, result
    construction, and stores always stay in the calling process, so
    the cache request stream is independent of the executor choice;
    ``None`` keeps the historical inline path.
    """
    pairs = [(as_dense(a), as_dense(b)) for a, b in pairs]
    if not pairs:
        return []
    kernel = get_backend(backend)
    results: list = [None] * len(pairs)
    todo: list = []
    keys: list = [None] * len(pairs)
    dups: list = []
    seen: set = set()
    for i, (a, b) in enumerate(pairs):
        _require_same_grid((a, b))
        if cache is not None:
            key = cache.convolve_key(a, b, trim_eps, kernel)
            keys[i] = key
            if key in seen:
                # Same request again within this batch: a sequential
                # loop would hit the first occurrence's stored entry —
                # resolve it after the stores below (probing now would
                # register a spurious miss the sequential stream never
                # sees).
                dups.append(i)
                continue
            hit = cache.lookup_convolve(a, b, trim_eps, kernel, key=key)
            if hit is not None:
                if counter is not None:
                    counter.convolve_cache_hits += 1
                results[i] = hit
                continue
            seen.add(key)
        todo.append(i)
    if todo:
        batch = [(pairs[i][0].masses, pairs[i][1].masses) for i in todo]
        # Compiled-tier backends build results in the same fused kernel
        # call that computes them (inline) or from the executor-shipped
        # raws (trim_raws) — bitwise the fused path, since the trim is
        # a pure function of the raw bits.  Stock backends keep the
        # historical _trusted construction.
        fused = getattr(kernel, "fused_trim_active", False)
        built = None
        if fused:
            todo_dts = [pairs[i][0].dt for i in todo]
            todo_offs = [
                pairs[i][0].offset + pairs[i][1].offset for i in todo
            ]
        if executor is not None:
            raws = executor.run_convolve_batch(kernel, batch, counter=counter)
            if fused:
                built = kernel.trim_raws(raws, todo_dts, todo_offs, trim_eps)
        elif fused:
            # Raws are materialized only when the cache needs them.
            raws, built = kernel.convolve_many_trimmed(
                batch, todo_dts, todo_offs, trim_eps, cache is not None
            )
            if counter is not None:
                counter.convolutions += len(todo)
        else:
            # Inline twin of SerialExecutor.run_convolve_batch, kept so
            # repro.dist never imports repro.exec; the executor suite
            # pins the two (and the per-shard worker tally) equal.
            raws = convolve_batch_raws(kernel, batch)
            if counter is not None:
                counter.convolutions += len(todo)
        for j, i in enumerate(todo):
            a, b = pairs[i]
            if built is not None:
                res = built[j]
            else:
                res = DiscretePDF._trusted(
                    a.dt, a.offset + b.offset, raws[j]
                ).trimmed(trim_eps)
            if cache is not None:
                cache.store_convolve(a, b, trim_eps, kernel, raws[j], res,
                                     key=keys[i])
            results[i] = res
    for i in dups:
        a, b = pairs[i]
        hit = cache.lookup_convolve(a, b, trim_eps, kernel, key=keys[i])
        if hit is None:
            # The representative's entry was already evicted (tiny
            # capacity churn) — recompute, as the sequential loop would
            # (through the fused path for compiled-tier backends, so
            # the rebuilt entry carries the same bits the batch did).
            if getattr(kernel, "fused_trim_active", False):
                raw, hit = kernel.convolve_trimmed(
                    a.masses, b.masses, a.dt, a.offset + b.offset,
                    trim_eps,
                )
                if counter is not None:
                    counter.convolutions += 1
            else:
                raw = kernel.convolve_masses(a.masses, b.masses)
                if counter is not None:
                    counter.convolutions += 1
                hit = DiscretePDF._trusted(
                    a.dt, a.offset + b.offset, raw
                ).trimmed(trim_eps)
            cache.store_convolve(a, b, trim_eps, kernel, raw, hit,
                                 key=keys[i])
        elif counter is not None:
            counter.convolve_cache_hits += 1
        results[i] = hit
    return results


def _padded_cdfs(pdfs: Sequence[DiscretePDF]) -> tuple:
    """Stack every operand's CDF onto the union bin range.

    Returns ``(lo_offset, matrix)`` where row i holds operand i's CDF
    sampled at each union bin: 0 below its support, its cumulative
    masses within, and exactly 1 above.

    Each row is renormalized by its own final cumulative: tail trimming
    and cumulative-sum round-off leave ``cs[-1]`` a few ulp shy of 1,
    and carrying that deficit rightwards deflates the CDF product —
    each mass-deficient operand drags the merged CDF down (never up),
    biasing every MAX percentile late by up to ``k`` operands' combined
    deficit.  Dividing by ``cs[-1]`` pins every row's plateau at
    exactly 1.0 while preserving monotonicity (masses are non-negative,
    so the cumulative never exceeds its final value).
    """
    lo = min(p.offset for p in pdfs)
    hi = max(p.offset + p.n_bins for p in pdfs)
    width = hi - lo
    grid = np.empty((len(pdfs), width))
    for i, p in enumerate(pdfs):
        start = p.offset - lo
        n = p.masses.size
        # Cached per instance: the renormalizing division happens once
        # per distribution, not once per MAX it participates in.
        grid[i, :start] = 0.0
        grid[i, start : start + n] = p._unit_cdf  # noqa: SLF001
        grid[i, start + n :] = 1.0
    return lo, grid


def _max_masses(pdfs: Sequence[DiscretePDF]) -> tuple:
    """``(lo_offset, raw mass vector)`` of the independence MAX —
    the numeric kernel shared by the per-call and grouped paths."""
    lo, grid = _padded_cdfs(pdfs)
    cdf = np.prod(grid, axis=0)
    # Adjacent difference, spelled out: bitwise np.diff(cdf, prepend=0)
    # without the wrapper's concatenate/broadcast machinery (this runs
    # once per MAX reduction).
    masses = np.empty_like(cdf)
    masses[0] = cdf[0]
    np.subtract(cdf[1:], cdf[:-1], out=masses[1:])
    return lo, masses


def _independence_max(
    pdfs: Sequence[DiscretePDF],
    trim_eps: float,
    counter: Optional[OpCounter],
    backend: BackendLike,
    cache: Optional[ConvolutionCache] = None,
) -> DiscretePDF:
    # Validate eagerly; the max numerics are backend-invariant, but a
    # backend with a verified-bitwise compiled sweep may run them.
    kernel = get_backend(backend)
    pdfs = [as_dense(p) for p in pdfs]
    dt = _require_same_grid(pdfs)
    if cache is not None:
        hit = cache.lookup_max(pdfs, trim_eps)
        if hit is not None:
            if counter is not None:
                counter.max_cache_hits += len(pdfs) - 1
            return hit
    if getattr(kernel, "max_sweep_active", False):
        lo, masses = kernel.grouped_max_raws([pdfs])[0]
    else:
        lo, masses = _max_masses(pdfs)
    if counter is not None:
        counter.max_ops += len(pdfs) - 1
    result = DiscretePDF(dt, lo, masses).trimmed(trim_eps)
    if cache is not None:
        cache.store_max(pdfs, trim_eps, masses, result)
    return result


#: Per-fan-in-count verdicts: is the platform's stacked ``(g, k, W)``
#: CDF product bitwise identical, row for row, to the per-group
#: ``(k, W)`` product?  The reduction order over the ``k`` operand rows
#: depends only on ``k`` and the row-major layout — identical in both
#: shapes on every NumPy tested — but it is a build property, not an
#: API guarantee, so it is measured (first grouped batch at each ``k``
#: verifies its first group against :func:`_max_masses`), never
#: assumed; a ``k`` that fails falls back to the per-group loop
#: forever after.  Mirrors ``FFTBackend._batch_nfft_bitwise``.
_GROUPED_MAX_BITWISE: dict = {}


def _grouped_max_masses(groups: list) -> list:
    """``_max_masses`` for several same-shape operand groups through
    one stacked CDF product.

    Every group must hold ``k`` operands spanning a ``width``-bin union
    range (the caller partitions by that shape).  Returns one
    ``(lo, masses)`` per group, bitwise identical to per-group
    :func:`_max_masses` calls — enforced by the first-group check
    behind :data:`_GROUPED_MAX_BITWISE`.
    """
    k = len(groups[0][1])
    verdict = _GROUPED_MAX_BITWISE.get(k)
    if verdict is False:  # pragma: no cover - exotic reduce builds
        return [_max_masses(pdfs) for _lo, pdfs, _w in groups]
    width = groups[0][2]
    grid = np.empty((len(groups), k, width))
    for gi, (lo, pdfs, _w) in enumerate(groups):
        for ki, p in enumerate(pdfs):
            start = p.offset - lo
            n = p.masses.size
            row = grid[gi, ki]
            row[:start] = 0.0
            row[start : start + n] = p._unit_cdf  # noqa: SLF001
            row[start + n :] = 1.0
    cdf = np.prod(grid, axis=1)
    masses = np.empty_like(cdf)
    masses[:, 0] = cdf[:, 0]
    np.subtract(cdf[:, 1:], cdf[:, :-1], out=masses[:, 1:])
    if verdict is None:
        _lo0, ref = _max_masses(groups[0][1])
        verdict = bool(np.array_equal(masses[0], ref))
        _GROUPED_MAX_BITWISE[k] = verdict
        if not verdict:  # pragma: no cover - exotic reduce builds
            return [_max_masses(pdfs) for _lo, pdfs, _w in groups]
    # Rows are copied out of the batch matrix so long-lived results
    # (and cache entries built from them) never pin the full stack.
    return [(lo, masses[gi].copy()) for gi, (lo, _p, _w) in enumerate(groups)]


def max_batch_raws(groups: Sequence, kernel=None) -> list:
    """``(lo_offset, raw mass vector)`` of the independence MAX for
    every operand group — the shardable MAX work unit of the execution
    layer.

    A pure function of the groups' operand contents and alignments: no
    cache, no counter, no trimming — exactly the compute step
    :func:`stat_max_groups` performs after cache resolution, factored
    out so an :class:`~repro.exec.Executor` can run it in a worker
    process.  Groups are partitioned by exact (operand count, union
    width); same-shape runs stack into one CDF product, each group
    bitwise its own :func:`_max_masses` call (the
    :data:`_GROUPED_MAX_BITWISE` guard), so any contiguous sharding of
    a batch reproduces the unsharded batch bit for bit.  Results come
    back in input order.

    ``kernel`` (a resolved backend, optional) may take over the sweep:
    a backend whose ``max_sweep_active`` property is true runs the
    whole batch through its compiled grouped sweep — **bitwise** the
    NumPy path (the property only goes true after the provider's
    self-check proves it on this host), so the two implementations are
    interchangeable per group and need no shape partition.
    """
    if kernel is not None and getattr(kernel, "max_sweep_active", False):
        return kernel.grouped_max_raws(groups)
    n = len(groups)
    out: list = [None] * n
    shapes: dict = {}
    spans: dict = {}
    for i, pdfs in enumerate(groups):
        lo = min(p.offset for p in pdfs)
        width = max(p.offset + p.n_bins for p in pdfs) - lo
        spans[i] = (lo, width)
        shapes.setdefault((len(pdfs), width), []).append(i)
    for (_k, _width), idxs in shapes.items():
        if len(idxs) == 1:
            i = idxs[0]
            out[i] = _max_masses(groups[i])
        else:
            stacked = _grouped_max_masses(
                [(spans[i][0], groups[i], spans[i][1]) for i in idxs]
            )
            for i, lo_masses in zip(idxs, stacked):
                out[i] = lo_masses
    return out


def stat_max(
    a: DiscretePDF,
    b: DiscretePDF,
    *,
    trim_eps: float = 0.0,
    counter: Optional[OpCounter] = None,
    backend: BackendLike = "auto",
    cache: Optional[ConvolutionCache] = None,
) -> DiscretePDF:
    """Independence statistical maximum (MAX) of two arrivals.

    ``F_max = F_a * F_b`` bin by bin on the union grid — exact under
    the engine's global independence assumption, an upper bound on the
    true circuit-delay CDF in the presence of reconvergence [3].
    ``backend`` is validated for call-site uniformity; the max numerics
    are backend-invariant.  ``cache`` memoizes the product keyed by the
    operands' contents and relative alignment.
    """
    return _independence_max((a, b), trim_eps, counter, backend, cache)


def stat_max_many(
    pdfs: Sequence[DiscretePDF],
    *,
    trim_eps: float = 0.0,
    counter: Optional[OpCounter] = None,
    backend: BackendLike = "auto",
    cache: Optional[ConvolutionCache] = None,
) -> DiscretePDF:
    """Independence MAX of any number of arrivals in one vectorized
    reduction (one CDF product over the stacked union grid).

    A single operand passes through untouched apart from trimming —
    convolution results already trimmed at the same ``trim_eps`` come
    back identically, preserving bitwise reproducibility (and skipping
    the cache: trimming is cheaper than a lookup).  ``backend`` is
    validated for call-site uniformity; the max numerics are
    backend-invariant.
    """
    if len(pdfs) == 0:
        raise DistributionError("stat_max_many needs at least one distribution")
    if len(pdfs) == 1:
        get_backend(backend)
        return as_dense(pdfs[0]).trimmed(trim_eps)
    return _independence_max(pdfs, trim_eps, counter, backend, cache)


def stat_max_groups(
    groups: Sequence,
    *,
    trim_eps: float = 0.0,
    counter: Optional[OpCounter] = None,
    backend: BackendLike = "auto",
    cache: Optional[ConvolutionCache] = None,
    executor=None,
) -> list:
    """Batched MAX: one :func:`stat_max_many` result per operand group.

    The level-batched engines merge every node of a topological level
    in one call; groups sharing a shape (operand count, union width)
    stack into a single CDF product (see :func:`_grouped_max_masses`),
    amortizing the per-reduction dispatch the per-node path pays.

    Equivalence contract, mirroring :func:`convolve_many`: every group's
    result is **bitwise identical** to its own ``stat_max_many`` call,
    whatever the batch composition, and with a cache attached the
    request stream matches a sequential loop — groups resolve against
    the cache in order, duplicate groups within one batch compute once
    and replay as hits, and single-operand groups pass through trimming
    without touching cache or counter (exactly as ``stat_max_many``
    does).  An empty batch is a no-op.

    ``executor`` mirrors :func:`convolve_many`: it takes over the raw
    compute step (:func:`max_batch_raws`) for the cache-resolved
    groups, while cache resolution, dedupe, result construction, and
    stores stay in the calling process.
    """
    groups = [[as_dense(p) for p in g] for g in groups]
    if not groups:
        return []
    # Validate once; the max numerics are backend-invariant, but the
    # kernel is threaded into the compute step so a verified-bitwise
    # compiled sweep can run it (inline or in the workers).
    kernel = get_backend(backend)
    results: list = [None] * len(groups)
    todo: list = []
    keys: list = [None] * len(groups)
    dups: list = []
    seen: set = set()
    for i, pdfs in enumerate(groups):
        if len(pdfs) == 0:
            raise DistributionError(
                "stat_max_groups needs at least one distribution per group"
            )
        _require_same_grid(pdfs)
        if len(pdfs) == 1:
            results[i] = pdfs[0].trimmed(trim_eps)
            continue
        if cache is not None:
            key = cache.max_key(pdfs, trim_eps)
            keys[i] = key
            if key in seen:
                # Resolved after the stores below, mirroring the hit a
                # sequential loop's later call would see.
                dups.append(i)
                continue
            hit = cache.lookup_max(pdfs, trim_eps, key=key)
            if hit is not None:
                if counter is not None:
                    counter.max_cache_hits += len(pdfs) - 1
                results[i] = hit
                continue
            seen.add(key)
        todo.append(i)
    if todo:
        # The raw compute (shape partition + stacked CDF products)
        # lives in max_batch_raws; the executor may shard it across
        # workers — either way every group's output is bitwise its own
        # _max_masses call, so commit order below stays sequential.
        todo_groups = [groups[i] for i in todo]
        if executor is not None:
            computed = executor.run_max_batch(
                todo_groups, counter=counter, kernel=kernel
            )
        else:
            # Inline twin of SerialExecutor.run_max_batch (see
            # convolve_many for why the duplication is deliberate).
            computed = max_batch_raws(todo_groups, kernel=kernel)
            if counter is not None:
                counter.max_ops += sum(len(g) - 1 for g in todo_groups)
        for i, (lo, masses) in zip(todo, computed):
            # original order: store order matches sequential
            pdfs = groups[i]
            result = DiscretePDF(pdfs[0].dt, lo, masses).trimmed(trim_eps)
            if cache is not None:
                cache.store_max(pdfs, trim_eps, masses, result, key=keys[i])
            results[i] = result
    for i in dups:
        pdfs = groups[i]
        hit = cache.lookup_max(pdfs, trim_eps, key=keys[i])
        if hit is None:
            # Representative entry already evicted (tiny capacity):
            # recompute, as a sequential loop would at this point.
            lo, masses = _max_masses(pdfs)
            if counter is not None:
                counter.max_ops += len(pdfs) - 1
            hit = DiscretePDF(pdfs[0].dt, lo, masses).trimmed(trim_eps)
            cache.store_max(pdfs, trim_eps, masses, hit, key=keys[i])
        elif counter is not None:
            counter.max_cache_hits += len(pdfs) - 1
        results[i] = hit
    return results
