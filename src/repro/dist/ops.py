"""Vectorized propagation kernels: ADD (convolution) and MAX.

These two operations are the paper's entire numeric inner loop: a gate
arc adds its delay to the fan-in arrival by discrete **convolution**,
and converging arrivals merge through the **independence statistical
maximum** ``F_max(t) = F_a(t) * F_b(t)`` — the upper-bound max of
Agarwal et al. DAC'03 [3].  Both are pure NumPy (no per-bin Python
loops) and both are pure functions of their operands, which is what
lets the perturbation fronts and the incremental updater reproduce a
full SSTA **bitwise**.

:class:`OpCounter` instruments the kernels transparently: every kernel
takes an optional ``counter`` and tallies one unit per pairwise
operation, giving the raw work statistics behind Table 2 without the
call sites doing any accounting of their own.  Tallies count
*statistical* operations, so they are invariant under the convolution
backend choice — a pairwise ADD is one convolution whether the direct
or the FFT kernel computed it.

The convolution implementation itself is pluggable (see
:mod:`~repro.dist.backends`): every kernel takes a ``backend`` — a
registry name or a :class:`~repro.dist.backends.ConvolutionBackend` —
defaulting to ``auto``, which is bit-identical to the historical
direct kernel below the crossover.  The MAX kernels accept the same
argument for call-site uniformity (engines thread one backend choice
through every operation); the independence max is a CDF product, not a
convolution, so its numerics are backend-invariant by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import DistributionError, GridMismatchError
from .backends import BackendLike, get_backend
from .pdf import DiscretePDF

__all__ = ["OpCounter", "convolve", "stat_max", "stat_max_many"]


@dataclass
class OpCounter:
    """Tally of statistical operations performed through the kernels.

    One *convolution* is one pairwise ADD; one *max op* is one pairwise
    independence MAX (an n-way merge counts n - 1).  Counters are
    additive: thread one instance through an analysis to attribute all
    of its work, or keep separate instances and :meth:`merge` them.
    """

    convolutions: int = 0
    max_ops: int = 0

    @property
    def total_ops(self) -> int:
        """Convolutions plus max reductions."""
        return self.convolutions + self.max_ops

    def merge(self, other: "OpCounter") -> None:
        """Fold another counter's tallies into this one."""
        self.convolutions += other.convolutions
        self.max_ops += other.max_ops

    def reset(self) -> None:
        """Zero both tallies."""
        self.convolutions = 0
        self.max_ops = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpCounter(convolutions={self.convolutions}, "
            f"max_ops={self.max_ops})"
        )


def _require_same_grid(pdfs: Sequence[DiscretePDF]) -> float:
    dt = pdfs[0].dt
    for p in pdfs[1:]:
        if p.dt != dt:
            raise GridMismatchError(
                f"cannot combine distributions with dt={dt} and dt={p.dt}; "
                "regrid explicitly before mixing analyses"
            )
    return dt


def convolve(
    a: DiscretePDF,
    b: DiscretePDF,
    *,
    trim_eps: float = 0.0,
    counter: Optional[OpCounter] = None,
    backend: BackendLike = "auto",
) -> DiscretePDF:
    """Distribution of the sum of two independent arrivals (ADD).

    Offsets add, so no regridding happens: the result lives on the same
    ``dt`` grid at offset ``a.offset + b.offset``.  ``trim_eps`` total
    tail mass is trimmed afterwards (split between the tails).
    ``backend`` selects the convolution kernel (default ``auto``).
    """
    dt = _require_same_grid((a, b))
    masses = get_backend(backend).convolve_masses(a.masses, b.masses)
    if counter is not None:
        counter.convolutions += 1
    return DiscretePDF(dt, a.offset + b.offset, masses).trimmed(trim_eps)


def _padded_cdfs(pdfs: Sequence[DiscretePDF]) -> tuple:
    """Stack every operand's CDF onto the union bin range.

    Returns ``(lo_offset, matrix)`` where row i holds operand i's CDF
    sampled at each union bin: 0 below its support, its cumulative
    masses within, and exactly 1 above.

    Each row is renormalized by its own final cumulative: tail trimming
    and cumulative-sum round-off leave ``cs[-1]`` a few ulp shy of 1,
    and carrying that deficit rightwards deflates the CDF product —
    each mass-deficient operand drags the merged CDF down (never up),
    biasing every MAX percentile late by up to ``k`` operands' combined
    deficit.  Dividing by ``cs[-1]`` pins every row's plateau at
    exactly 1.0 while preserving monotonicity (masses are non-negative,
    so the cumulative never exceeds its final value).
    """
    lo = min(p.offset for p in pdfs)
    hi = max(p.offset + p.n_bins for p in pdfs)
    width = hi - lo
    grid = np.empty((len(pdfs), width))
    for i, p in enumerate(pdfs):
        start = p.offset - lo
        cs = p._cdf  # noqa: SLF001 - cached cumulative, shared with queries
        if cs[-1] != 1.0:
            cs = cs / cs[-1]
        grid[i, :start] = 0.0
        grid[i, start : start + p.n_bins] = cs
        grid[i, start + p.n_bins :] = 1.0
    return lo, grid


def _independence_max(
    pdfs: Sequence[DiscretePDF],
    trim_eps: float,
    counter: Optional[OpCounter],
    backend: BackendLike,
) -> DiscretePDF:
    get_backend(backend)  # validate eagerly; the max itself is backend-free
    dt = _require_same_grid(pdfs)
    lo, grid = _padded_cdfs(pdfs)
    cdf = np.prod(grid, axis=0)
    masses = np.diff(cdf, prepend=0.0)
    if counter is not None:
        counter.max_ops += len(pdfs) - 1
    return DiscretePDF(dt, lo, masses).trimmed(trim_eps)


def stat_max(
    a: DiscretePDF,
    b: DiscretePDF,
    *,
    trim_eps: float = 0.0,
    counter: Optional[OpCounter] = None,
    backend: BackendLike = "auto",
) -> DiscretePDF:
    """Independence statistical maximum (MAX) of two arrivals.

    ``F_max = F_a * F_b`` bin by bin on the union grid — exact under
    the engine's global independence assumption, an upper bound on the
    true circuit-delay CDF in the presence of reconvergence [3].
    ``backend`` is validated for call-site uniformity; the max numerics
    are backend-invariant.
    """
    return _independence_max((a, b), trim_eps, counter, backend)


def stat_max_many(
    pdfs: Sequence[DiscretePDF],
    *,
    trim_eps: float = 0.0,
    counter: Optional[OpCounter] = None,
    backend: BackendLike = "auto",
) -> DiscretePDF:
    """Independence MAX of any number of arrivals in one vectorized
    reduction (one CDF product over the stacked union grid).

    A single operand passes through untouched apart from trimming —
    convolution results already trimmed at the same ``trim_eps`` come
    back identically, preserving bitwise reproducibility.  ``backend``
    is validated for call-site uniformity; the max numerics are
    backend-invariant.
    """
    if len(pdfs) == 0:
        raise DistributionError("stat_max_many needs at least one distribution")
    if len(pdfs) == 1:
        get_backend(backend)
        return pdfs[0].trimmed(trim_eps)
    return _independence_max(pdfs, trim_eps, counter, backend)
