"""Sparse-grid storage for wide-support arrival distributions.

At 10^5-10^6 nodes the SSTA arrival store is the memory wall: every
node pins a dense float64 mass vector whose width grows with depth and
sigma, yet in wide-sigma scenarios almost all interior bins carry
negligible mass.  :class:`SparseDiscretePDF` is the storage-side fix —
a threshold-masked, run-length-encoded snapshot of a
:class:`~repro.dist.pdf.DiscretePDF` that keeps only the bins carrying
real mass (plus the two boundary bins, which pin the support and
offset arithmetic).

It is a *storage* representation, by composition rather than
subclassing: the propagation kernels in :mod:`~repro.dist.ops` accept
sparse operands and densify them on entry (:func:`as_dense`), compute
densely, and the engines re-sparsify what they store.  That keeps the
kernel/cache/backends contract untouched — one numeric path, no sparse
arithmetic to re-verify — while the resident set shrinks to the
occupied bins.

Accuracy contract: for ``eps > 0``, :func:`sparsify` drops at most
``eps`` total mass (per-bin threshold ``eps / n_bins``), and the
renormalized round-trip satisfies
``tv_distance(dense, sparse.to_dense()) <= eps + r`` where ``r`` is
the machine-precision renormalization term (~1e-16: re-dividing by the
kept total rounds every bin once).  Total-variation
distance is subadditive under both propagation kernels (ADD convolves
the error kernel; the MAX CDF product is a monotone contraction), so a
per-store budget of ``eps`` grows at most linearly along the deepest
path — the Hypothesis differentials in ``tests/dist/test_sparse.py``
and the golden-sink gates pin a whole-analysis budget of 1e-12 at the
defaults.  ``eps = 0`` drops only exactly-zero bins and round-trips
bit for bit.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import DistributionError
from .pdf import DiscretePDF

__all__ = ["SparseDiscretePDF", "sparsify", "as_dense"]

PDFLike = Union[DiscretePDF, "SparseDiscretePDF"]


class SparseDiscretePDF:
    """Run-length-encoded, threshold-masked view of a dense PDF.

    Stores the kept bins of a :class:`DiscretePDF` as contiguous runs:
    ``values[pos : pos + lengths[r]]`` are the masses of the run
    starting at bin ``starts[r]``.  Unimodal arrival PDFs mask to a
    single central run plus the boundary bins, so the overhead over the
    raw kept masses is a few integers.

    Instances are immutable and cheap to hold: no dense buffer, no
    cached queries.  Analysis-side reads go through :meth:`to_dense`
    (or the :func:`as_dense` helper), which rebuilds the dense vector
    deterministically — the same bits every call.
    """

    __slots__ = (
        "dt", "offset", "n_bins", "starts", "lengths", "values", "_dropped"
    )

    def __init__(
        self,
        dt: float,
        offset: int,
        n_bins: int,
        starts: np.ndarray,
        lengths: np.ndarray,
        values: np.ndarray,
        dropped: bool = False,
    ) -> None:
        self.dt = dt
        self.offset = int(offset)
        self.n_bins = int(n_bins)
        self.starts = starts
        self.lengths = lengths
        self.values = values
        self._dropped = bool(dropped)

    # ------------------------------------------------------------------
    # Construction / round-trip
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, pdf: DiscretePDF, eps: float = 0.0) -> "SparseDiscretePDF":
        """Mask and encode ``pdf``, dropping at most ``eps`` total mass.

        Bins with mass at or below ``eps / n_bins`` are dropped, except
        the first and last bin, which always survive so the sparse form
        preserves ``offset``/``n_bins``/``support`` exactly.  With
        ``eps = 0`` only exactly-zero interior bins are dropped and
        :meth:`to_dense` round-trips bitwise.
        """
        if eps < 0.0 or not np.isfinite(eps):
            raise DistributionError(
                f"sparsification budget must be finite and >= 0, got {eps}"
            )
        masses = pdf.masses
        n = masses.size
        keep = masses > (eps / n)
        # Boundary bins pin the support and the offset arithmetic.
        keep[0] = True
        keep[n - 1] = True
        idx = np.flatnonzero(keep)
        # Contiguous index stretches become runs.
        cuts = np.flatnonzero(np.diff(idx) > 1) + 1
        run_bounds = np.concatenate(([0], cuts, [idx.size]))
        starts = idx[run_bounds[:-1]].astype(np.int64)
        lengths = (run_bounds[1:] - run_bounds[:-1]).astype(np.int64)
        values = masses[keep].copy()
        values.flags.writeable = False
        starts.flags.writeable = False
        lengths.flags.writeable = False
        # Masking exact zeros loses nothing; only then can the round
        # trip skip renormalization and reproduce the source bitwise
        # (re-dividing an already-normalized vector whose float sum is
        # not exactly 1.0 would perturb the bits).
        dropped = bool(np.any(~keep & (masses != 0.0)))
        return cls(pdf.dt, pdf.offset, n, starts, lengths, values, dropped)

    def to_dense(self) -> DiscretePDF:
        """Deterministic dense reconstruction (renormalized only when
        masking actually dropped mass).  Pure function of the stored
        runs: repeated calls return bit-identical distributions."""
        dense = np.zeros(self.n_bins, dtype=np.float64)
        pos = 0
        for start, length in zip(self.starts.tolist(), self.lengths.tolist()):
            dense[start : start + length] = self.values[pos : pos + length]
            pos += length
        if self._dropped:
            return DiscretePDF._trusted(self.dt, self.offset, dense)
        # Lossless encoding: the scattered vector is bit-identical to
        # the source masses, which were already normalized exactly once
        # on their original construction — hand them over untouched.
        dense.flags.writeable = False
        return DiscretePDF._from_view(self.dt, self.offset, dense)

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    @property
    def kept_bins(self) -> int:
        """Number of bins that survived masking."""
        return self.values.size

    @property
    def dropped_mass(self) -> float:
        """Total mass removed by masking (renormalized away on
        densify)."""
        return max(0.0, 1.0 - float(self.values.sum()))

    @property
    def nbytes(self) -> int:
        """Resident bytes of the encoded form (the dense equivalent is
        ``8 * n_bins``)."""
        return self.values.nbytes + self.starts.nbytes + self.lengths.nbytes

    # ------------------------------------------------------------------
    # Query API — delegates to the dense reconstruction (no memo, so
    # holding many sparse arrivals keeps the memory win).
    # ------------------------------------------------------------------
    @property
    def support(self) -> tuple:
        return (self.offset * self.dt, (self.offset + self.n_bins - 1) * self.dt)

    def mean(self) -> float:
        return self.to_dense().mean()

    def var(self) -> float:
        return self.to_dense().var()

    def std(self) -> float:
        return self.to_dense().std()

    def cdf_at(self, t):
        return self.to_dense().cdf_at(t)

    def percentile(self, p: float) -> float:
        return self.to_dense().percentile(p)

    def percentiles(self, levels) -> np.ndarray:
        return self.to_dense().percentiles(levels)

    def tv_distance(self, other: PDFLike) -> float:
        return self.to_dense().tv_distance(as_dense(other))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparseDiscretePDF(dt={self.dt}, offset={self.offset}, "
            f"bins={self.kept_bins}/{self.n_bins} in "
            f"{self.starts.size} runs)"
        )


def sparsify(pdf: PDFLike, eps: float) -> SparseDiscretePDF:
    """Sparse form of ``pdf`` at budget ``eps`` (idempotent: an already
    sparse operand passes through unchanged)."""
    if isinstance(pdf, SparseDiscretePDF):
        return pdf
    return SparseDiscretePDF.from_dense(pdf, eps)


def as_dense(pdf: PDFLike) -> DiscretePDF:
    """Dense form of ``pdf`` — the kernels' operand normalization.  A
    dense operand passes through untouched (zero overhead on the
    default path)."""
    if isinstance(pdf, SparseDiscretePDF):
        return pdf.to_dense()
    return pdf
