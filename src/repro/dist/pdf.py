"""The immutable discretized-PDF value type.

A :class:`DiscretePDF` is a probability distribution over a uniform
time grid: mass ``masses[i]`` sits at time ``(offset + i) * dt``.
Instances are immutable (frozen dataclass over a read-only NumPy
array), so they can be shared freely between the SSTA arrival store,
the delay-PDF cache, and any number of perturbation fronts without
defensive copies — the property the optimizer's exactness guarantees
lean on.

Continuous queries (:meth:`~DiscretePDF.cdf_at`,
:meth:`~DiscretePDF.percentile`) interpret the distribution through a
piecewise-linear CDF whose knots are the grid times; see the package
docstring for the full grid contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence, Union

import numpy as np

from ..config import MAX_BINS
from ..errors import DistributionError, GridMismatchError

__all__ = ["DiscretePDF"]

ArrayLike = Union[Sequence[float], np.ndarray]


@dataclass(frozen=True, eq=False)
class DiscretePDF:
    """Probability masses on an integer-offset uniform time grid.

    Parameters
    ----------
    dt:
        Grid spacing in picoseconds (> 0).
    offset:
        Integer index of the first bin; bin ``i`` lives at time
        ``(offset + i) * dt``.
    masses:
        Non-negative masses with a positive total; normalized to sum
        to 1 on construction.
    """

    dt: float
    offset: int
    masses: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.dt <= 0.0 or not np.isfinite(self.dt):
            raise DistributionError(f"dt must be positive and finite, got {self.dt}")
        masses = np.asarray(self.masses, dtype=np.float64)
        if masses.ndim != 1 or masses.size == 0:
            raise DistributionError("masses must be a non-empty 1-D array")
        if masses.size > MAX_BINS:
            raise DistributionError(
                f"distribution spans {masses.size} bins, exceeding MAX_BINS="
                f"{MAX_BINS}; dt is too small for this analysis"
            )
        # min() propagates NaN (NaN >= 0 is False) and sum() turns any
        # +inf into an infinite total, so two cheap reductions cover the
        # finite-and-non-negative contract without a temporary bool
        # array — this constructor sits on the convolution hot path.
        if not float(masses.min()) >= 0.0:
            raise DistributionError("masses must be finite and non-negative")
        total = float(masses.sum())
        if not np.isfinite(total):
            raise DistributionError("masses must be finite and non-negative")
        if total <= 0.0:
            raise DistributionError("total probability mass must be positive")
        if total != 1.0:
            masses = masses / total
        masses = masses.copy() if masses is self.masses else masses
        masses.flags.writeable = False
        object.__setattr__(self, "offset", int(self.offset))
        object.__setattr__(self, "masses", masses)

    # ------------------------------------------------------------------
    # Serialization (pickle / IPC)
    # ------------------------------------------------------------------
    # Instances accumulate per-instance memos in ``__dict__`` — the
    # cached CDF/knot arrays, the ``_unit_cdf`` row, ``_ramp_floor``,
    # the trim-level marker, and the cache-key fingerprint.  All of
    # them are pure deterministic functions of ``(dt, offset, masses)``
    # and every consumer rebuilds them on demand, so pickling ships
    # only the defining triple: payloads stay compact (the parallel
    # executor serializes whole level shards of these), and a
    # round-trip is bitwise — same grid, same offset, same mass bytes.

    def __getstate__(self) -> tuple:
        return (self.dt, self.offset, self.masses)

    def __setstate__(self, state: tuple) -> None:
        dt, offset, masses = state
        masses.flags.writeable = False
        object.__setattr__(self, "dt", dt)
        object.__setattr__(self, "offset", offset)
        object.__setattr__(self, "masses", masses)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def _trusted(cls, dt: float, offset: int, masses: np.ndarray) -> "DiscretePDF":
        """Kernel-internal fast constructor.

        Callers guarantee what ``__post_init__`` would otherwise check:
        ``masses`` is a fresh (exclusively owned) 1-D float64 array of
        finite, non-negative values with a positive total, and ``dt``
        is positive.  The normalization arithmetic is bitwise the
        public path's (one ``sum``, one division when the total is not
        exactly 1), so trusted and validated construction of the same
        vector yield identical distributions — only the validation
        reductions and the defensive copy are skipped.  This sits on
        the convolution/trim hot path where those checks dominate the
        per-result cost.
        """
        if masses.size > MAX_BINS:
            raise DistributionError(
                f"distribution spans {masses.size} bins, exceeding MAX_BINS="
                f"{MAX_BINS}; dt is too small for this analysis"
            )
        total = float(masses.sum())
        if not total > 0.0:  # also traps NaN totals from misuse
            raise DistributionError("total probability mass must be positive")
        if total != 1.0:
            masses = masses / total
        masses.flags.writeable = False
        self = object.__new__(cls)
        object.__setattr__(self, "dt", dt)
        object.__setattr__(self, "offset", int(offset))
        object.__setattr__(self, "masses", masses)
        return self

    @classmethod
    def _from_view(
        cls, dt: float, offset: int, masses: np.ndarray
    ) -> "DiscretePDF":
        """Zero-copy constructor over an externally owned buffer.

        The shared-memory transport reconstructs operand PDFs in
        worker processes directly over arena segments: ``masses`` is a
        read-only float64 view of bytes that *are* the coordinator
        instance's mass vector, so no validation, normalization, or
        copy may run — this is bit for bit the ``__setstate__`` path a
        pickled instance takes, minus the pickle.  Callers guarantee
        the view is 1-D float64, already marked non-writeable, and
        outlived by its backing mapping.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "dt", dt)
        object.__setattr__(self, "offset", int(offset))
        object.__setattr__(self, "masses", masses)
        return self

    @classmethod
    def delta(cls, dt: float, time: float) -> "DiscretePDF":
        """Point mass at the grid bin nearest ``time``."""
        if dt <= 0.0:
            raise DistributionError(f"dt must be positive, got {dt}")
        return cls(dt, int(round(time / dt)), np.ones(1))

    @classmethod
    def from_samples(cls, dt: float, samples: ArrayLike) -> "DiscretePDF":
        """Histogram samples onto the grid (nearest-bin assignment)."""
        if dt <= 0.0:
            raise DistributionError(f"dt must be positive, got {dt}")
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            raise DistributionError("cannot build a distribution from 0 samples")
        if not np.all(np.isfinite(arr)):
            raise DistributionError("samples must be finite")
        idx = np.rint(arr / dt).astype(np.int64)
        offset = int(idx.min())
        span = int(idx.max()) - offset + 1
        if span > MAX_BINS:
            raise DistributionError(
                f"samples span {span} bins, exceeding MAX_BINS={MAX_BINS}; "
                "dt is too small for this sample range"
            )
        masses = np.bincount(idx - offset).astype(np.float64)
        return cls(dt, offset, masses)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        """Number of grid bins carrying the distribution."""
        return self.masses.size

    @property
    def times(self) -> np.ndarray:
        """Bin times in picoseconds, ``(offset + i) * dt``."""
        return (self.offset + np.arange(self.masses.size)) * self.dt

    @property
    def is_point_mass(self) -> bool:
        """True when the whole mass sits in a single bin."""
        return self.masses.size == 1

    @property
    def support(self) -> tuple:
        """(first bin time, last bin time) in picoseconds."""
        return (
            self.offset * self.dt,
            (self.offset + self.masses.size - 1) * self.dt,
        )

    def shifted_bins(self, bins: int) -> "DiscretePDF":
        """Same masses translated by an integer number of grid bins."""
        if bins == 0:
            return self
        return DiscretePDF(self.dt, self.offset + int(bins), self.masses)

    def shifted(self, time: float) -> "DiscretePDF":
        """Translate by ``time`` ps, rounded to the nearest whole bin."""
        return self.shifted_bins(int(round(time / self.dt)))

    # ------------------------------------------------------------------
    # Moments
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Expected value (ps)."""
        return float(np.dot(self.masses, self.times))

    def var(self) -> float:
        """Variance (ps^2)."""
        centered = self.times - self.mean()
        return float(np.dot(self.masses, centered * centered))

    def std(self) -> float:
        """Standard deviation (ps)."""
        return float(np.sqrt(self.var()))

    # ------------------------------------------------------------------
    # CDF / percentiles (piecewise-linear interpolant)
    # ------------------------------------------------------------------
    @cached_property
    def _cdf(self) -> np.ndarray:
        cdf = np.cumsum(self.masses)
        cdf.flags.writeable = False
        return cdf

    @cached_property
    def _unit_cdf(self) -> np.ndarray:
        """Cumulative masses with the final value pinned at exactly 1.

        The renormalized row the MAX kernel stacks onto the union grid
        (see ``repro.dist.ops._padded_cdfs`` for why the pin matters).
        Memoized per instance: result-cache sharing makes the same
        arrival feed many MAX reductions, and the division is bitwise
        deterministic, so computing it once changes nothing but cost.
        """
        cs = self._cdf
        if cs[-1] != 1.0:
            cs = cs / cs[-1]
            cs.flags.writeable = False
        return cs

    @cached_property
    def _knots(self) -> tuple:
        """(times, cumulative) knot arrays of the piecewise-linear CDF.

        A leading knot one bin below the support anchors the ramp at
        probability 0; the final knot is pinned to exactly 1.0 so
        queries beyond the support are exact.
        """
        xp = np.empty(self.masses.size + 1)
        xp[0] = (self.offset - 1) * self.dt
        xp[1:] = self.times
        fp = np.empty(self.masses.size + 1)
        fp[0] = 0.0
        # Clip cumulative-sum overshoot (rounding can push interior
        # values past 1) so fp stays monotone once the end is pinned.
        np.minimum(self._cdf, 1.0, out=fp[1:])
        fp[-1] = 1.0
        xp.flags.writeable = False
        fp.flags.writeable = False
        return xp, fp

    @cached_property
    def _ramp_floor(self) -> int:
        """Index of the first strictly-positive CDF knot (the clamp
        floor of :meth:`_inverse`); cached because the pruning bound
        evaluates inverses twice per perturbed node."""
        return int(self._knots[1].searchsorted(0.0, side="right"))

    def cdf(self) -> np.ndarray:
        """Cumulative mass through each bin (aligned with :attr:`times`)."""
        return self._cdf.copy()

    def cdf_at(self, t) -> Union[float, np.ndarray]:
        """P(X <= t): 0 below the support, exactly 1 at or beyond its end."""
        xp, fp = self._knots
        out = np.interp(t, xp, fp, left=0.0, right=1.0)
        if np.ndim(t) == 0:
            return float(out)
        return out

    def _inverse(self, ps: np.ndarray) -> np.ndarray:
        """Inverse CDF with inf-semantics: ``T(p) = inf{t : F(t) >= p}``.

        ``np.interp`` resolves duplicated knot levels (CDF plateaus from
        zero-mass bins) to the plateau's *right* edge; the paper's
        ``T(A, p)`` is the left edge, so the segment is located
        explicitly.  Accepts ``0 <= p <= 1`` (``p == 0`` maps to the
        ``p -> 0+`` limit, used by the gap metric's ramp level).
        """
        xp, fp = self._knots
        idx = fp.searchsorted(ps, side="left")
        # Clamp onto the first strictly-positive knot so p == 0 (and any
        # leading zero-mass plateau) lands on a segment with positive
        # rise; for p > 0 this is a no-op, leaving fp[idx-1] < p <=
        # fp[idx] with a positive denominator.  (Array methods rather
        # than np.* wrappers: this runs per pruning-bound evaluation.)
        idx = idx.clip(self._ramp_floor, fp.size - 1)
        lo = idx - 1
        frac = (ps - fp[lo]) / (fp[idx] - fp[lo])
        return xp[lo] + frac * (xp[idx] - xp[lo])

    def percentile(self, p: float) -> float:
        """Smallest time whose CDF reaches ``p`` (the paper's ``T(A, p)``)."""
        if not 0.0 < p <= 1.0:
            raise DistributionError(f"percentile level must be in (0, 1], got {p}")
        return float(self._inverse(np.asarray([p]))[0])

    def percentiles(self, levels: ArrayLike) -> np.ndarray:
        """Vectorized :meth:`percentile` over an array of levels."""
        ps = np.asarray(levels, dtype=np.float64)
        if ps.size and (ps.min() <= 0.0 or ps.max() > 1.0):
            raise DistributionError("percentile levels must be in (0, 1]")
        return self._inverse(ps)

    # ------------------------------------------------------------------
    # Tail trimming
    # ------------------------------------------------------------------
    def trimmed(self, trim_eps: float = 0.0) -> "DiscretePDF":
        """Collapse tail bins carrying at most ``trim_eps / 2`` mass per
        side onto the new boundary bins (exact-zero boundary bins are
        always stripped).

        The trim is **mass-preserving**: the removed tail mass is lumped
        onto the first/last kept bin rather than renormalized away, so
        interior masses are bitwise unchanged.  This keeps stochastic-
        dominance relations intact through trimming — a global rescale
        would shift every percentile by ~``trim_eps * support`` and leak
        noise into the Theorem-4 pruning bound.  Returns ``self`` when
        nothing is dropped, so repeated trimming is idempotent.
        """
        if trim_eps < 0.0:
            raise DistributionError(f"trim_eps must be >= 0, got {trim_eps}")
        # Idempotence memo: once trimmed at eps, every boundary bin
        # carries more than eps/2 lumped mass, so a repeat trim at the
        # same or a smaller eps provably drops nothing — skip the tail
        # probes entirely.  (Stored out-of-band on the instance dict;
        # the dataclass fields stay immutable.)
        level = self.__dict__.get("_trim_level")
        if level is not None and trim_eps <= level:
            return self
        half = trim_eps / 2.0
        n = self.masses.size
        # Fast path: at realistic trim_eps the cut lands within a few
        # bins of each boundary, so probing a block avoids two full
        # cumulative sums (the dominant cost of trimming large
        # distributions).  A cumulative sum's leading entries are
        # independent of the array tail, so when both probe blocks
        # already exceed ``half`` the cut indices and lumped masses are
        # bit-identical to the full computation below.
        block = 64
        masses = self.masses
        if n >= 2 * block:
            prefix = masses[:block].cumsum()
            tail_block = masses[n - block :][::-1].cumsum()
            if prefix[-1] > half and tail_block[-1] > half:
                lo = int(prefix.searchsorted(half, side="right"))
                hi_drop = int(tail_block.searchsorted(half, side="right"))
                hi = n - hi_drop
                if lo == 0 and hi == n:
                    self.__dict__["_trim_level"] = trim_eps
                    return self
                kept = masses[lo:hi].copy()
                if lo > 0:
                    kept[0] += prefix[lo - 1]
                if hi < n:
                    kept[-1] += tail_block[hi_drop - 1]
                out = DiscretePDF._trusted(self.dt, self.offset + lo, kept)
                out.__dict__["_trim_level"] = trim_eps
                return out
        cdf = self._cdf
        # Largest prefix with cumulative mass <= half, and symmetrically
        # the largest suffix; always keep at least one bin.
        lo = int(cdf.searchsorted(half, side="right"))
        tail = masses[::-1].cumsum()
        hi_drop = int(tail.searchsorted(half, side="right"))
        hi = n - hi_drop
        if lo >= hi:  # degenerate request: keep the heaviest single bin
            keep = int(np.argmax(masses))
            lo, hi = keep, keep + 1
        if lo == 0 and hi == n:
            self.__dict__["_trim_level"] = trim_eps
            return self
        kept = masses[lo:hi].copy()
        if lo > 0:
            kept[0] += cdf[lo - 1]
        if hi < n:
            kept[-1] += tail[n - hi - 1]
        out = DiscretePDF._trusted(self.dt, self.offset + lo, kept)
        out.__dict__["_trim_level"] = trim_eps
        return out

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def tv_distance(self, other: "DiscretePDF") -> float:
        """Total-variation distance ``0.5 * sum |a_i - b_i|`` on the
        union grid.

        The canonical "same distribution?" metric of the cross-backend
        harness: 0 for identical mass vectors, 1 for disjoint supports,
        and an upper bound on the absolute CDF difference at every
        time, so a TV tolerance bounds percentile drift too.  Requires
        matching ``dt`` (a :class:`~repro.errors.GridMismatchError`
        otherwise — distributions on different grids are incomparable).
        """
        if self.dt != other.dt:
            raise GridMismatchError(
                f"cannot compare distributions with dt={self.dt} and "
                f"dt={other.dt}"
            )
        lo = min(self.offset, other.offset)
        hi = max(self.offset + self.n_bins, other.offset + other.n_bins)
        diff = np.zeros(hi - lo)
        diff[self.offset - lo : self.offset - lo + self.n_bins] = self.masses
        diff[
            other.offset - lo : other.offset - lo + other.n_bins
        ] -= other.masses
        return float(0.5 * np.abs(diff).sum())

    def allclose(
        self, other: "DiscretePDF", *, atol: float = 1e-9, rtol: float = 0.0
    ) -> bool:
        """Mass-wise closeness on the union grid (``atol=0`` demands
        exact equality of the aligned mass vectors)."""
        if self.dt != other.dt:
            return False
        lo = min(self.offset, other.offset)
        hi = max(self.offset + self.n_bins, other.offset + other.n_bins)
        a = np.zeros(hi - lo)
        b = np.zeros(hi - lo)
        a[self.offset - lo : self.offset - lo + self.n_bins] = self.masses
        b[other.offset - lo : other.offset - lo + other.n_bins] = other.masses
        return bool(np.all(np.abs(a - b) <= atol + rtol * np.abs(b)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lo, hi = self.support
        return (
            f"DiscretePDF(dt={self.dt:g}, bins={self.n_bins}, "
            f"support=[{lo:g}, {hi:g}] ps, mean={self.mean():.4g})"
        )
