"""Vectorized Monte Carlo timing analysis.

The paper validates its SSTA bound — and the optimization carried out
on that bound — against Monte Carlo simulation (Section 4, Figure 10:
"there is a very small difference between the bounds and Monte Carlo
results", < 1% at the 99-percentile).  This engine reproduces that
validation: it samples every gate's delay from the *same* truncated
Gaussian law the SSTA discretizes, re-times the whole circuit per
sample with a vectorized longest-path pass, and reports empirical
percentiles of the sink delay.

Because one physical gate's delay is sampled *once per die* (all its
pin arcs and all reconvergent paths through it see the same value), the
Monte Carlo result captures the reconvergence correlations the SSTA
max deliberately ignores — making it the "exact" reference the bound
is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..config import AnalysisConfig, DEFAULT_CONFIG
from ..dist.backends import get_backend
from ..dist.families import sample_truncated_gaussian
from ..dist.pdf import DiscretePDF
from ..errors import TimingError
from .delay_model import DelayModel
from .graph import TimingGraph

__all__ = ["MonteCarloResult", "run_monte_carlo"]


@dataclass
class MonteCarloResult:
    """Sink-delay samples plus convenience statistics."""

    samples: np.ndarray
    n_samples: int

    def percentile(self, p: float) -> float:
        """Empirical p-quantile (ps) of the circuit delay."""
        if not 0.0 < p <= 1.0:
            raise TimingError(f"percentile level must be in (0, 1], got {p}")
        return float(np.quantile(self.samples, p))

    def mean(self) -> float:
        """Sample mean (ps)."""
        return float(self.samples.mean())

    def std(self) -> float:
        """Sample standard deviation (ps)."""
        return float(self.samples.std())

    def to_pdf(self, dt: float) -> DiscretePDF:
        """Histogram the samples onto a grid for CDF-level comparisons
        against the propagated SSTA bound."""
        return DiscretePDF.from_samples(dt, self.samples)

    def percentile_stderr(self, p: float) -> float:
        """Approximate standard error of the p-quantile estimate via the
        binomial variance and a local density estimate — used by
        validation tests to set tolerances honestly."""
        n = self.samples.size
        q = self.percentile(p)
        h = max(self.samples.std() * 0.1, 1e-9)
        density = np.mean(np.abs(self.samples - q) < h) / (2.0 * h)
        if density <= 0.0:
            return float("inf")
        return float(np.sqrt(p * (1.0 - p) / n) / density)


def run_monte_carlo(
    graph: TimingGraph,
    model: DelayModel,
    *,
    n_samples: int = 5000,
    seed: int = 0,
    chunk: int = 2048,
    config: Optional[AnalysisConfig] = None,
) -> MonteCarloResult:
    """Sample circuit delays under per-gate truncated-Gaussian variation.

    Samples are processed in chunks: per chunk, each gate gets a delay
    vector, then one vectorized topological pass computes every net's
    arrival vector (``np.maximum`` across fan-ins).  Memory is
    O(nets * chunk).
    """
    cfg = config if config is not None else model.config
    # Monte Carlo samples max/plus directly, so its numerics are
    # backend-invariant; the backend is still resolved so that a bad
    # config fails identically across every engine.
    get_backend(cfg.backend)
    if n_samples < 1:
        raise TimingError("n_samples must be >= 1")
    rng = np.random.default_rng(seed)
    circuit = graph.circuit
    topo_gates = circuit.topo_gates()
    nominal: Dict[str, float] = {g.output: model.nominal_delay(g) for g in topo_gates}

    sink_samples = np.empty(n_samples)
    done = 0
    while done < n_samples:
        m = min(chunk, n_samples - done)
        arrivals: Dict[str, np.ndarray] = {
            net: np.zeros(m) for net in circuit.inputs
        }
        for gate in topo_gates:
            nom = nominal[gate.output]
            delay = sample_truncated_gaussian(
                rng,
                nom,
                cfg.sigma_fraction * nom,
                m,
                truncation=cfg.truncation_sigma,
            )
            acc = arrivals[gate.inputs[0]]
            if gate.n_inputs > 1:
                acc = acc.copy()
                for net in gate.inputs[1:]:
                    np.maximum(acc, arrivals[net], out=acc)
            arrivals[gate.output] = acc + delay
        sink = arrivals[circuit.outputs[0]]
        if len(circuit.outputs) > 1:
            sink = sink.copy()
            for net in circuit.outputs[1:]:
                np.maximum(sink, arrivals[net], out=sink)
        sink_samples[done : done + m] = sink
        done += m
    return MonteCarloResult(samples=sink_samples, n_samples=n_samples)
