"""Timing substrate: timing graph, EQ-1 delay model, deterministic STA,
block-based SSTA (bound CDFs), Monte Carlo validation, and path-level
"wall" analysis."""

from .delay_model import DelayModel
from .graph import TimingEdge, TimingGraph
from .monte_carlo import MonteCarloResult, run_monte_carlo
from .paths import (
    PathHistogram,
    TimingPath,
    k_longest_paths,
    path_delay_histogram,
    wall_metric,
)
from .corners import Corner, CornerAnalysis, run_corners, standard_corners
from .criticality import (
    BackwardSSTAResult,
    CriticalityRow,
    criticality_report,
    node_criticality,
    run_backward_ssta,
)
from .correlation import (
    GridPlacement,
    QuadTreeCorrelation,
    run_monte_carlo_correlated,
)
from .incremental import update_ssta_after_resize
from .sta import STAResult, run_sta
from .yield_analysis import (
    YieldComparison,
    delay_at_yield,
    timing_yield,
    yield_curve,
    yield_gain,
)
from .ssta import (
    SSTAResult,
    compute_level_arrivals,
    compute_node_arrival,
    node_fanin_parts,
    run_ssta,
)

__all__ = [
    "TimingGraph",
    "TimingEdge",
    "DelayModel",
    "STAResult",
    "run_sta",
    "SSTAResult",
    "run_ssta",
    "compute_node_arrival",
    "compute_level_arrivals",
    "node_fanin_parts",
    "MonteCarloResult",
    "run_monte_carlo",
    "PathHistogram",
    "TimingPath",
    "path_delay_histogram",
    "k_longest_paths",
    "wall_metric",
    "update_ssta_after_resize",
    "GridPlacement",
    "QuadTreeCorrelation",
    "run_monte_carlo_correlated",
    "BackwardSSTAResult",
    "run_backward_ssta",
    "node_criticality",
    "criticality_report",
    "CriticalityRow",
    "Corner",
    "CornerAnalysis",
    "run_corners",
    "standard_corners",
    "timing_yield",
    "delay_at_yield",
    "yield_curve",
    "yield_gain",
    "YieldComparison",
]
