"""Incremental SSTA: exact arrival updates after a sizing commit.

The paper's outer loop re-runs a full SSTA at the top of every sizing
iteration (Figure 6, step 2).  That is wasteful: committing one gate's
width change perturbs only the gates whose delays changed (the gate and
its fan-in drivers) and their downstream cone.  This module updates an
existing :class:`~repro.timing.ssta.SSTAResult` *in place of* a full
rerun by re-propagating exactly that cone — the same level-ordered
sweep a perturbation front performs, but committing the results.

The update is **exact**: it uses the same kernel and delay-PDF cache as
:func:`~repro.timing.ssta.run_ssta`, and it recomputes a node only
while its result can still change; downstream nodes whose recomputed
arrival is bitwise identical to the stored one cut the wave off.
``tests/timing/test_incremental.py`` asserts bitwise equality against
full reruns; the optimizers expose it behind an ``incremental_ssta``
flag (off by default to follow the paper's pseudocode literally).
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Set

import numpy as np

from ..dist.backends import get_backend
from ..dist.ops import OpCounter
from ..dist.pdf import DiscretePDF
from ..dist.sparse import as_dense, sparsify
from ..exec import get_executor
from ..netlist.circuit import Gate
from .delay_model import DelayModel
from .graph import TimingGraph
from .ssta import (
    SSTAResult,
    compute_level_arrivals,
    compute_node_arrival,
    node_fanin_parts,
)

__all__ = ["update_ssta_after_resize"]


def _identical(a: DiscretePDF, b) -> bool:
    # ``b`` comes from the arrival store, which may hold sparse forms
    # (``sparse_eps > 0``); the wave cutoff compares dense values, the
    # representation the kernels computed in.
    b = as_dense(b)
    return (
        a.offset == b.offset
        and a.n_bins == b.n_bins
        and np.array_equal(a.masses, b.masses)
    )


def update_ssta_after_resize(
    result: SSTAResult,
    model: DelayModel,
    resized_gates: Iterable[Gate],
    *,
    counter: Optional[OpCounter] = None,
) -> int:
    """Refresh ``result.arrivals`` after the given gates were resized.

    The gates must already carry their *new* widths.  Every arrival
    whose value can have changed is recomputed in level order; the
    number of recomputed nodes is returned (the work metric the
    ablation benchmark reports).

    The update wave starts at the output nets of all delay-affected
    gates (each resized gate plus its fan-in drivers, mirroring
    ``gates_affected_by_resize``) and follows fan-out edges, stopping
    wherever the recomputed arrival is bitwise unchanged.
    """
    graph: TimingGraph = result.graph
    cfg = model.config
    # Same backend and result-cache resolution as the full pass — the
    # bitwise-equality wave cutoff only works if both computed through
    # the same kernel (cache hits are bitwise by construction, so the
    # cache can only make the cutoff cheaper, never wrong).
    kernel = get_backend(cfg.backend)
    cache = cfg.cache
    executor = (
        get_executor(cfg.jobs, cfg.transport) if cfg.level_batch else None
    )
    arrivals = result.arrivals
    # Keep the store representation the full pass chose.
    if cfg.sparse_eps > 0.0:
        store = lambda pdf: sparsify(pdf, cfg.sparse_eps)  # noqa: E731
    else:
        store = lambda pdf: pdf  # noqa: E731

    seeds: Set[int] = set()
    for gate in resized_gates:
        for g in model.gates_affected_by_resize(gate):
            seeds.add(graph.gate_output_node(g))

    # Level-ordered worklist (a node may be enqueued once).  Under
    # ``config.level_batch`` every queued node of the current level is
    # popped and recomputed through one batched scheduler call — nodes
    # of one level are mutually independent, and fan-out pushes only
    # target higher levels, so the wave front *is* a level batch.
    heap: List = [(graph.level(n), n) for n in seeds]
    heapq.heapify(heap)
    queued: Set[int] = set(seeds)
    recomputed = 0
    get_arrival = arrivals.__getitem__

    while heap:
        lvl, node = heapq.heappop(heap)
        queued.discard(node)
        batch = [node]
        if cfg.level_batch:
            while heap and heap[0][0] == lvl:
                _lvl, nxt = heapq.heappop(heap)
                queued.discard(nxt)
                batch.append(nxt)
            parts_list = [
                node_fanin_parts(graph, n, get_arrival, model.delay_pdf)
                for n in batch
            ]
            news = compute_level_arrivals(
                parts_list,
                trim_eps=cfg.tail_eps,
                counter=counter,
                backend=kernel,
                cache=cache,
                executor=executor,
            )
        else:
            news = [
                compute_node_arrival(
                    graph,
                    n,
                    get_arrival,
                    model.delay_pdf,
                    trim_eps=cfg.tail_eps,
                    counter=counter,
                    backend=kernel,
                    cache=cache,
                )
                for n in batch
            ]
        for n, new_pdf in zip(batch, news):
            recomputed += 1
            if _identical(new_pdf, arrivals[n]):
                continue  # wave dies here
            arrivals[n] = store(new_pdf)
            for edge in graph.fanout_edges(n):
                if edge.dst not in queued:
                    queued.add(edge.dst)
                    heapq.heappush(heap, (graph.level(edge.dst), edge.dst))
    return recomputed
