"""Spatially correlated intra-die variation (extension module).

The paper deliberately excludes spatial correlation from its SSTA and
optimizer ("similar to previous optimization methods [8,9], our
optimization approach does not model such correlations at this time,
although the proposed methods form a basis from which such correlations
can be incorporated") and cites Chang & Sapatnekar [5] for the standard
treatment.  This module supplies that missing physical effect on the
*Monte Carlo* side so the reproduction can quantify what ignoring
correlations costs:

* :class:`GridPlacement` — a deterministic, locality-preserving layout
  of the netlist onto a unit die: gates are placed column-by-column by
  topological level and row-by-row within a level, which is how
  synthesized datapaths actually floorplan to first order.
* :class:`QuadTreeCorrelation` — the classic hierarchical model [5]:
  the die is recursively quartered for ``levels`` levels; each region
  at each level carries an independent Gaussian; a gate's delay
  deviation is the weighted sum of the variables of the regions that
  contain it plus an independent residual.  Two gates share more terms
  the closer they sit, giving a distance-decaying correlation while
  every gate's marginal remains Gaussian with the configured sigma.
* :func:`run_monte_carlo_correlated` — the MC engine under this model
  (same vectorized topological sweep as the independent engine).

With ``rho = 0`` the model degenerates to the paper's independent one
(the tests pin this), so comparisons isolate the correlation effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import AnalysisConfig
from ..errors import TimingError
from ..netlist.circuit import Circuit, Gate
from .delay_model import DelayModel
from .graph import TimingGraph
from .monte_carlo import MonteCarloResult

__all__ = [
    "GridPlacement",
    "QuadTreeCorrelation",
    "run_monte_carlo_correlated",
]


@dataclass
class GridPlacement:
    """Deterministic placement of gates on the unit square.

    ``x`` is the gate's topological level scaled to [0, 1] (signal flow
    left to right); ``y`` spreads the gates of each level evenly.
    Crude, but it preserves the property correlation models need:
    logically adjacent gates are physically adjacent.
    """

    positions: Dict[str, Tuple[float, float]]

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "GridPlacement":
        levels = circuit.levels()
        depth = max(1, circuit.depth())
        by_level: Dict[int, List[str]] = {}
        for gate in circuit.topo_gates():
            by_level.setdefault(levels[gate.output], []).append(gate.output)
        positions: Dict[str, Tuple[float, float]] = {}
        for level, names in by_level.items():
            x = level / depth
            n = len(names)
            for i, name in enumerate(names):
                positions[name] = (min(x, 1.0 - 1e-9), (i + 0.5) / n)
        return cls(positions=positions)

    def position_of(self, gate_name: str) -> Tuple[float, float]:
        """(x, y) of a gate on the unit die."""
        try:
            return self.positions[gate_name]
        except KeyError:
            raise TimingError(f"gate {gate_name!r} has no placement") from None

    def distance(self, a: str, b: str) -> float:
        """Euclidean distance between two gates."""
        xa, ya = self.position_of(a)
        xb, yb = self.position_of(b)
        return math.hypot(xa - xb, ya - yb)


@dataclass
class QuadTreeCorrelation:
    """Hierarchical (quad-tree) spatial correlation model [5].

    Parameters
    ----------
    levels:
        Hierarchy depth; level ``k`` partitions the die into ``4**k``
        regions.  3 levels resolve correlations down to 1/8 of the die.
    rho:
        Fraction of the total delay *variance* that is spatially
        correlated (shared across the hierarchy); ``1 - rho`` remains
        gate-independent.  0 reproduces the paper's independent model.
    """

    levels: int = 3
    rho: float = 0.5

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise TimingError(f"levels must be >= 1, got {self.levels}")
        if not 0.0 <= self.rho <= 1.0:
            raise TimingError(f"rho must be in [0, 1], got {self.rho}")

    def region_index(self, x: float, y: float, level: int) -> int:
        """Index of the level-``level`` region containing (x, y)."""
        n = 1 << level  # regions per axis at this level
        cx = min(int(x * n), n - 1)
        cy = min(int(y * n), n - 1)
        return cy * n + cx

    def _weights(self) -> np.ndarray:
        """Per-level std weights: equal variance share per level, so
        that the shared variance sums to ``rho``."""
        share = self.rho / self.levels
        return np.full(self.levels, math.sqrt(share))

    def correlation_between(
        self, placement: GridPlacement, a: str, b: str
    ) -> float:
        """Model correlation coefficient between two gates' delay
        deviations (delays normalized to unit sigma)."""
        if a == b:
            return 1.0
        xa, ya = placement.position_of(a)
        xb, yb = placement.position_of(b)
        share = self.rho / self.levels
        total = 0.0
        for level in range(1, self.levels + 1):
            if self.region_index(xa, ya, level) == self.region_index(xb, yb, level):
                total += share
        return total

    def sample_deviations(
        self,
        rng: np.random.Generator,
        placement: GridPlacement,
        gate_names: List[str],
        n_samples: int,
    ) -> np.ndarray:
        """Unit-variance correlated deviations, shape (gates, samples).

        Each gate's deviation is ``sum_k w_k * Z_region_k(gate) +
        sqrt(1 - rho) * Z_gate`` with all ``Z`` standard normal.
        """
        weights = self._weights()
        out = np.zeros((len(gate_names), n_samples))
        for level in range(1, self.levels + 1):
            n_regions = (1 << level) ** 2
            region_z = rng.standard_normal((n_regions, n_samples))
            idx = np.array(
                [
                    self.region_index(*placement.position_of(name), level)
                    for name in gate_names
                ]
            )
            out += weights[level - 1] * region_z[idx]
        residual = math.sqrt(max(0.0, 1.0 - self.rho))
        out += residual * rng.standard_normal((len(gate_names), n_samples))
        return out


def run_monte_carlo_correlated(
    graph: TimingGraph,
    model: DelayModel,
    correlation: QuadTreeCorrelation,
    *,
    placement: Optional[GridPlacement] = None,
    n_samples: int = 5000,
    seed: int = 0,
    chunk: int = 2048,
    config: Optional[AnalysisConfig] = None,
) -> MonteCarloResult:
    """Monte Carlo timing under spatially correlated gate variation.

    Per-gate marginals match the independent engine (Gaussian with
    ``sigma = sigma_fraction * nominal``, clipped at the truncation
    point), so any shift of the resulting circuit-delay statistics is
    attributable to correlation alone.
    """
    cfg = config if config is not None else model.config
    if n_samples < 1:
        raise TimingError("n_samples must be >= 1")
    circuit = graph.circuit
    place = placement if placement is not None else GridPlacement.from_circuit(circuit)
    rng = np.random.default_rng(seed)
    topo_gates = circuit.topo_gates()
    names = [g.output for g in topo_gates]
    nominal = np.array([model.nominal_delay(g) for g in topo_gates])
    sigma = cfg.sigma_fraction * nominal
    cut = cfg.truncation_sigma

    sink_samples = np.empty(n_samples)
    done = 0
    while done < n_samples:
        m = min(chunk, n_samples - done)
        z = correlation.sample_deviations(rng, place, names, m)
        np.clip(z, -cut, cut, out=z)
        delays = nominal[:, None] + sigma[:, None] * z
        arrivals: Dict[str, np.ndarray] = {
            net: np.zeros(m) for net in circuit.inputs
        }
        for gi, gate in enumerate(topo_gates):
            acc = arrivals[gate.inputs[0]]
            if gate.n_inputs > 1:
                acc = acc.copy()
                for net in gate.inputs[1:]:
                    np.maximum(acc, arrivals[net], out=acc)
            arrivals[gate.output] = acc + delays[gi]
        sink = arrivals[circuit.outputs[0]]
        if len(circuit.outputs) > 1:
            sink = sink.copy()
            for net in circuit.outputs[1:]:
                np.maximum(sink, arrivals[net], out=sink)
        sink_samples[done : done + m] = sink
        done += m
    return MonteCarloResult(samples=sink_samples, n_samples=n_samples)
