"""Block-based statistical static timing analysis.

Exactly the analysis the paper builds on: discretized arrival-time PDFs
are propagated from the source in one topological pass; edge delays are
added by **convolution** and converging arrivals are merged with the
independence-assuming **statistical maximum**, which yields the upper
bound on the exact circuit-delay CDF of Agarwal et al. DAC'03 [3]
(tight in practice — validated against Monte Carlo in the Figure 10
experiment).

The per-node kernel :func:`compute_node_arrival` is shared with the
perturbation-front machinery of the optimizer (`repro.core.
perturbation`): a perturbed propagation is the same kernel with some
arrivals/delay-PDFs overridden, which guarantees the pruned sizer and
the brute-force sizer see bit-identical statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..config import AnalysisConfig, DEFAULT_CONFIG
from ..dist.backends import BackendLike, get_backend
from ..dist.cache import ConvolutionCache
from ..dist.ops import OpCounter, convolve_many, stat_max_many
from ..dist.pdf import DiscretePDF
from ..errors import TimingError
from ..netlist.circuit import Gate
from .delay_model import DelayModel
from .graph import TimingGraph

__all__ = ["SSTAResult", "run_ssta", "compute_node_arrival"]


def compute_node_arrival(
    graph: TimingGraph,
    node: int,
    get_arrival: Callable[[int], DiscretePDF],
    get_delay_pdf: Callable[[Gate], DiscretePDF],
    *,
    trim_eps: float,
    counter: Optional[OpCounter] = None,
    backend: BackendLike = "auto",
    cache: Optional[ConvolutionCache] = None,
) -> DiscretePDF:
    """Arrival PDF at ``node`` given fan-in arrivals and edge delays.

    Virtual (source/sink) arcs add zero delay; gate arcs convolve the
    fan-in arrival with the gate's pin-to-pin delay PDF; multiple arcs
    merge through the independence max.  All of a node's gate arcs go
    through one batched :func:`~repro.dist.ops.convolve_many` call, so
    same-shape operand pairs share a stacked transform and cached pairs
    skip computation entirely.  ``backend`` selects the convolution
    kernel and ``cache`` the result memo for every arc — callers (full
    SSTA, incremental updates, perturbation fronts) must pass the same
    choices to stay bitwise interchangeable.
    """
    fanin = graph.fanin_edges(node)
    if not fanin:
        raise TimingError(f"node {node} has no fan-in")
    kernel = get_backend(backend)
    # Contribution order must match the edge order exactly: the MAX CDF
    # product multiplies rows in sequence, so reordering would change
    # round-off (and break bitwise reproducibility claims).
    contribs: List[Optional[DiscretePDF]] = [None] * len(fanin)
    pairs = []
    pair_slots = []
    for i, edge in enumerate(fanin):
        src_pdf = get_arrival(edge.src)
        if edge.gate is None:
            contribs[i] = src_pdf
        else:
            pairs.append((src_pdf, get_delay_pdf(edge.gate)))
            pair_slots.append(i)
    node_key = None
    if cache is not None:
        # Whole-node fast path: the arrival is a pure function of the
        # fan-in operands, so an unchanged node (the dominant case for
        # perturbation fronts re-visiting base territory and for the
        # per-iteration SSTA refresh) resolves in one probe.  The hits
        # stand in for every kernel request the node would have made.
        parts = []
        pair_it = iter(pairs)
        for i, edge in enumerate(fanin):
            if edge.gate is None:
                parts.append((contribs[i], None))
            else:
                parts.append(next(pair_it))
        node_key = cache.node_key(parts, trim_eps, kernel)
        hit = cache.lookup_node(node_key, kernel)
        if hit is not None:
            if counter is not None:
                counter.convolve_cache_hits += len(pairs)
                counter.max_cache_hits += len(fanin) - 1
            return hit
    if pairs:
        for i, res in zip(
            pair_slots,
            convolve_many(pairs, trim_eps=trim_eps, counter=counter,
                          backend=kernel, cache=cache),
        ):
            contribs[i] = res
    # The per-op MAX cache still gets a look after a node-memo miss:
    # usually the changed fan-in means it misses too, but an evicted
    # node entry (the kinds share one LRU) or a translated recurrence
    # can still be served here, and hits are bitwise either way.
    result = stat_max_many(
        contribs, trim_eps=trim_eps, counter=counter, backend=kernel,
        cache=cache,
    )
    if node_key is not None:
        cache.store_node(node_key, result, kernel)
    return result


@dataclass
class SSTAResult:
    """Arrival-time PDFs from one full SSTA pass.

    ``arrivals[node]`` is the (upper-bound) arrival CDF at each timing
    graph node; ``arrivals[graph.sink]`` is the circuit-delay
    distribution the optimization objective is defined on.
    """

    graph: TimingGraph
    arrivals: List[DiscretePDF]
    counter: OpCounter = field(default_factory=OpCounter)

    @property
    def sink_pdf(self) -> DiscretePDF:
        """Circuit-delay distribution (bound CDF of [3])."""
        return self.arrivals[self.graph.sink]

    def percentile(self, p: float) -> float:
        """``T(A_nf, p)`` — the paper's objective at level ``p``."""
        return self.sink_pdf.percentile(p)

    def arrival_of_net(self, net: str) -> DiscretePDF:
        """Arrival PDF at a named circuit net."""
        return self.arrivals[self.graph.node_of_net(net)]

    def mean_delay(self) -> float:
        """Mean circuit delay (ps)."""
        return self.sink_pdf.mean()

    def std_delay(self) -> float:
        """Circuit-delay standard deviation (ps)."""
        return self.sink_pdf.std()


def run_ssta(
    graph: TimingGraph,
    model: DelayModel,
    *,
    config: Optional[AnalysisConfig] = None,
    counter: Optional[OpCounter] = None,
) -> SSTAResult:
    """One full block-based SSTA pass over the circuit.

    Runtime is linear in circuit size (one convolution per gate arc and
    one max reduction per multi-fan-in node), the property that makes
    the brute-force sensitivity loop O(N*E) per sizing iteration and
    motivates the paper's pruning algorithm.
    """
    cfg = config if config is not None else model.config
    own_counter = counter if counter is not None else OpCounter()
    kernel = get_backend(cfg.backend)
    arrivals: List[Optional[DiscretePDF]] = [None] * graph.n_nodes
    arrivals[graph.source] = DiscretePDF.delta(cfg.dt, 0.0)
    get_arrival = arrivals.__getitem__
    for node in graph.topo_nodes():
        if node == graph.source:
            continue
        arrivals[node] = compute_node_arrival(
            graph,
            node,
            get_arrival,  # type: ignore[arg-type]
            model.delay_pdf,
            trim_eps=cfg.tail_eps,
            counter=own_counter,
            backend=kernel,
            cache=cfg.cache,
        )
    return SSTAResult(graph=graph, arrivals=arrivals, counter=own_counter)  # type: ignore[arg-type]
