"""Block-based statistical static timing analysis.

Exactly the analysis the paper builds on: discretized arrival-time PDFs
are propagated from the source in one topological pass; edge delays are
added by **convolution** and converging arrivals are merged with the
independence-assuming **statistical maximum**, which yields the upper
bound on the exact circuit-delay CDF of Agarwal et al. DAC'03 [3]
(tight in practice — validated against Monte Carlo in the Figure 10
experiment).

Two execution modes share one numeric contract:

* the **sequential** per-node kernel :func:`compute_node_arrival`, the
  paper-literal reference path retained for differential testing;
* the **level-batched** scheduler :func:`compute_level_arrivals` (the
  default, ``AnalysisConfig(level_batch=True)``): all fan-in ADD pairs
  of a topological level go through one
  :func:`~repro.dist.ops.convolve_many` dispatch and all of its MAX
  reductions through one :func:`~repro.dist.ops.stat_max_groups`
  sweep, cutting the per-node Python dispatch that dominates the
  miss-path cost of the sizing loop.

Both modes are **bitwise interchangeable**: the same arrival mass
vectors and offsets on every backend, cache on or off.  The accounting
matches too — identical :class:`~repro.dist.ops.OpCounter` tallies and
cache request stream — whenever the cache holds its working set; a
*thrashing* cache (capacity below the level's request count) may
evict entries between the orders' differently-interleaved stores, so
hit/miss patterns can then legitimately differ while the values stay
bitwise.  Nodes of one topological level never depend on each other
(every timing arc crosses levels), so batching a level reorders only
independent work; the level-batching differential suite and the CI
drift gate enforce the equivalence end to end.

The kernels are shared with the perturbation-front machinery of the
optimizer (`repro.core.perturbation`): a perturbed propagation is the
same computation with some arrivals/delay-PDFs overridden, which
guarantees the pruned sizer and the brute-force sizer see bit-identical
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import AnalysisConfig, DEFAULT_CONFIG
from ..dist.backends import BackendLike, get_backend
from ..dist.cache import ConvolutionCache
from ..dist.ops import OpCounter, convolve_many, stat_max_groups, stat_max_many
from ..dist.pdf import DiscretePDF
from ..dist.sparse import as_dense, sparsify
from ..errors import TimingError
from ..exec import get_executor
from ..netlist.circuit import Gate
from .delay_model import DelayModel
from .graph import TimingGraph

__all__ = [
    "SSTAResult",
    "run_ssta",
    "compute_node_arrival",
    "compute_level_arrivals",
    "node_fanin_parts",
]

#: One node's merge inputs: ``(arrival, delay-or-None)`` per incoming
#: arc, in edge order.  ``None`` marks a zero-delay virtual arc whose
#: arrival enters the MAX directly; a gate arc convolves first.
NodeParts = List[Tuple[DiscretePDF, Optional[DiscretePDF]]]


def node_fanin_parts(
    graph: TimingGraph,
    node: int,
    get_arrival: Callable[[int], DiscretePDF],
    get_delay_pdf: Callable[[Gate], DiscretePDF],
) -> NodeParts:
    """Gather a node's fan-in operands in edge order.

    The contribution order must match the edge order exactly: the MAX
    CDF product multiplies rows in sequence, so reordering would change
    round-off (and break bitwise reproducibility claims).

    Arrivals held in sparse form (``AnalysisConfig.sparse_eps > 0``
    storage) are densified here, so node memo keys and kernels always
    operate on dense vectors.
    """
    fanin = graph.fanin_edges(node)
    if not fanin:
        raise TimingError(f"node {node} has no fan-in")
    parts: NodeParts = []
    for edge in fanin:
        src_pdf = as_dense(get_arrival(edge.src))
        if edge.gate is None:
            parts.append((src_pdf, None))
        else:
            parts.append((src_pdf, get_delay_pdf(edge.gate)))
    return parts


def _node_hit_tally(counter: Optional[OpCounter], parts: NodeParts) -> None:
    """Tally a whole-node memo hit: it stands in for every kernel
    request the node would have made (one ADD per gate arc, an n-way
    MAX merge)."""
    if counter is not None:
        counter.convolve_cache_hits += sum(
            1 for _pdf, delay in parts if delay is not None
        )
        counter.max_cache_hits += len(parts) - 1


def _merge_parts(
    parts: NodeParts,
    trim_eps: float,
    counter: Optional[OpCounter],
    kernel,
    cache: Optional[ConvolutionCache],
    node_key: Optional[tuple],
) -> DiscretePDF:
    """Sequential ADD-then-MAX merge of one node's parts (the kernel
    body shared with :func:`compute_node_arrival`'s historical code)."""
    contribs: List[Optional[DiscretePDF]] = [None] * len(parts)
    pairs = []
    pair_slots = []
    for i, (pdf, delay) in enumerate(parts):
        if delay is None:
            contribs[i] = pdf
        else:
            pairs.append((pdf, delay))
            pair_slots.append(i)
    if pairs:
        for i, res in zip(
            pair_slots,
            convolve_many(pairs, trim_eps=trim_eps, counter=counter,
                          backend=kernel, cache=cache),
        ):
            contribs[i] = res
    # The per-op MAX cache still gets a look after a node-memo miss:
    # usually the changed fan-in means it misses too, but an evicted
    # node entry (the kinds share one LRU) or a translated recurrence
    # can still be served here, and hits are bitwise either way.
    result = stat_max_many(
        contribs, trim_eps=trim_eps, counter=counter, backend=kernel,
        cache=cache,
    )
    if node_key is not None:
        cache.store_node(node_key, result, kernel)
    return result


def compute_node_arrival(
    graph: TimingGraph,
    node: int,
    get_arrival: Callable[[int], DiscretePDF],
    get_delay_pdf: Callable[[Gate], DiscretePDF],
    *,
    trim_eps: float,
    counter: Optional[OpCounter] = None,
    backend: BackendLike = "auto",
    cache: Optional[ConvolutionCache] = None,
) -> DiscretePDF:
    """Arrival PDF at ``node`` given fan-in arrivals and edge delays.

    Virtual (source/sink) arcs add zero delay; gate arcs convolve the
    fan-in arrival with the gate's pin-to-pin delay PDF; multiple arcs
    merge through the independence max.  All of a node's gate arcs go
    through one batched :func:`~repro.dist.ops.convolve_many` call, so
    same-shape operand pairs share a stacked transform and cached pairs
    skip computation entirely.  ``backend`` selects the convolution
    kernel and ``cache`` the result memo for every arc — callers (full
    SSTA, incremental updates, perturbation fronts) must pass the same
    choices to stay bitwise interchangeable.

    This is the sequential reference kernel; the level-batched
    scheduler (:func:`compute_level_arrivals`) reproduces a loop of
    these calls bitwise.
    """
    kernel = get_backend(backend)
    parts = node_fanin_parts(graph, node, get_arrival, get_delay_pdf)
    node_key = None
    if cache is not None:
        # Whole-node fast path: the arrival is a pure function of the
        # fan-in operands, so an unchanged node (the dominant case for
        # perturbation fronts re-visiting base territory and for the
        # per-iteration SSTA refresh) resolves in one probe.  The hits
        # stand in for every kernel request the node would have made.
        node_key = cache.node_key(parts, trim_eps, kernel)
        hit = cache.lookup_node(node_key, kernel)
        if hit is not None:
            _node_hit_tally(counter, parts)
            return hit
    return _merge_parts(parts, trim_eps, counter, kernel, cache, node_key)


def compute_level_arrivals(
    parts_list: Sequence[NodeParts],
    *,
    trim_eps: float,
    counter: Optional[OpCounter] = None,
    backend: BackendLike = "auto",
    cache: Optional[ConvolutionCache] = None,
    node_memo: bool = True,
    executor=None,
) -> List[DiscretePDF]:
    """The level scheduler: merged arrivals for a whole topological
    level of mutually independent nodes, one per parts list.

    Instead of dispatching kernels node by node, the scheduler

    1. probes the whole-node memo for every node (``node_memo=True``;
       nodes whose fan-in is unchanged resolve in one probe each, and
       a node repeating an earlier node's key within the level resolves
       from the entry that node stores — as it would sequentially);
    2. gathers every remaining gate-arc ADD of the level into **one**
       :func:`~repro.dist.ops.convolve_many` dispatch (cache hits are
       filtered out of the batch inside, misses inserted after);
    3. merges every node's contributions through **one**
       :func:`~repro.dist.ops.stat_max_groups` sweep.

    The result is bitwise identical to looping
    :func:`compute_node_arrival` over the same parts lists in order —
    and so are the counter tallies and the cache request stream as long
    as the cache holds its working set (a thrashing cache may evict
    between the orders' differently-interleaved stores, legitimately
    shifting hit/miss patterns while the values stay bitwise; both
    regimes are pinned by the differential suite, per backend and cache
    configuration).  A level with nothing left to compute (empty, or
    every node/pair served from the cache) never touches the backend.

    ``node_memo=False`` reproduces a caller that skips the whole-node
    memo (the backward pass does; its sequential reference never
    consulted it).

    ``executor`` (an :class:`~repro.exec.Executor`, resolved by the
    engines from ``AnalysisConfig.jobs``) decides *where* the two raw
    kernel dispatches run — in-process, or sharded by node range
    across a worker pool.  All planning (memo probes, dedupe, cache
    resolution and stores) stays in the calling process either way, so
    the executor choice changes wall-clock cost, never values,
    tallies, or the cache request stream.
    """
    n = len(parts_list)
    results: List[Optional[DiscretePDF]] = [None] * n
    kernel = get_backend(backend)
    node_keys: List[Optional[tuple]] = [None] * n
    todo: List[int] = []
    dups: List[int] = []
    if cache is not None and node_memo:
        seen: set = set()
        for i, parts in enumerate(parts_list):
            key = cache.node_key(parts, trim_eps, kernel)
            node_keys[i] = key
            if key in seen:
                # Identical node computed earlier in this level: its
                # store below serves this one, exactly as a sequential
                # walk's later node-memo probe would hit (probing now
                # would register a miss the sequential stream never
                # sees).
                dups.append(i)
                continue
            hit = cache.lookup_node(key, kernel)
            if hit is not None:
                _node_hit_tally(counter, parts)
                results[i] = hit
                continue
            seen.add(key)
            todo.append(i)
    else:
        todo = list(range(n))

    # One batched ADD dispatch for the whole level.
    pairs = []
    pair_slots: List[Tuple[int, int]] = []
    contribs_by_node: Dict[int, List[Optional[DiscretePDF]]] = {}
    for i in todo:
        parts = parts_list[i]
        contribs: List[Optional[DiscretePDF]] = [None] * len(parts)
        for slot, (pdf, delay) in enumerate(parts):
            if delay is None:
                contribs[slot] = pdf
            else:
                pairs.append((pdf, delay))
                pair_slots.append((i, slot))
        contribs_by_node[i] = contribs
    if pairs:
        for (i, slot), res in zip(
            pair_slots,
            convolve_many(pairs, trim_eps=trim_eps, counter=counter,
                          backend=kernel, cache=cache, executor=executor),
        ):
            contribs_by_node[i][slot] = res

    # One batched MAX sweep for the whole level.
    if todo:
        for i, res in zip(
            todo,
            stat_max_groups(
                [contribs_by_node[i] for i in todo],
                trim_eps=trim_eps, counter=counter, backend=kernel,
                cache=cache, executor=executor,
            ),
        ):
            results[i] = res
            if node_keys[i] is not None:
                cache.store_node(node_keys[i], res, kernel)

    # Intra-level node duplicates replay through the now-warm memo.
    for i in dups:
        parts = parts_list[i]
        hit = cache.lookup_node(node_keys[i], kernel)
        if hit is None:
            # Entry already evicted (tiny capacity churn): recompute
            # sequentially, as the per-node walk would at this point.
            hit = _merge_parts(
                parts, trim_eps, counter, kernel, cache, node_keys[i]
            )
        else:
            _node_hit_tally(counter, parts)
        results[i] = hit
    return results  # type: ignore[return-value]


@dataclass
class SSTAResult:
    """Arrival-time PDFs from one full SSTA pass.

    ``arrivals[node]`` is the (upper-bound) arrival CDF at each timing
    graph node; ``arrivals[graph.sink]`` is the circuit-delay
    distribution the optimization objective is defined on.
    """

    graph: TimingGraph
    arrivals: List[DiscretePDF]
    counter: OpCounter = field(default_factory=OpCounter)

    @property
    def sink_pdf(self) -> DiscretePDF:
        """Circuit-delay distribution (bound CDF of [3]).  Densified on
        read when the analysis ran with sparse arrival storage."""
        return as_dense(self.arrivals[self.graph.sink])

    def percentile(self, p: float) -> float:
        """``T(A_nf, p)`` — the paper's objective at level ``p``."""
        return self.sink_pdf.percentile(p)

    def arrival_of_net(self, net: str) -> DiscretePDF:
        """Arrival PDF at a named circuit net (densified on read)."""
        return as_dense(self.arrivals[self.graph.node_of_net(net)])

    def mean_delay(self) -> float:
        """Mean circuit delay (ps)."""
        return self.sink_pdf.mean()

    def std_delay(self) -> float:
        """Circuit-delay standard deviation (ps)."""
        return self.sink_pdf.std()


def run_ssta(
    graph: TimingGraph,
    model: DelayModel,
    *,
    config: Optional[AnalysisConfig] = None,
    counter: Optional[OpCounter] = None,
) -> SSTAResult:
    """One full block-based SSTA pass over the circuit.

    Runtime is linear in circuit size (one convolution per gate arc and
    one max reduction per multi-fan-in node), the property that makes
    the brute-force sensitivity loop O(N*E) per sizing iteration and
    motivates the paper's pruning algorithm.  With
    ``config.level_batch`` (the default) each topological level runs
    through the batched scheduler, under the execution plan resolved
    from ``config.jobs`` (in-process for 1, a sharded worker pool for
    more — bitwise identical either way); the sequential per-node walk
    is bitwise identical and retained for differential testing.
    """
    cfg = config if config is not None else model.config
    own_counter = counter if counter is not None else OpCounter()
    kernel = get_backend(cfg.backend)
    # With sparse_eps > 0 each propagated arrival is stored in
    # threshold-masked sparse form — the per-node memory wall at the
    # million-gate scale — and densified on read by node_fanin_parts /
    # the result accessors.  0.0 stores the kernel outputs untouched.
    if cfg.sparse_eps > 0.0:
        store = lambda pdf: sparsify(pdf, cfg.sparse_eps)  # noqa: E731
    else:
        store = lambda pdf: pdf  # noqa: E731
    arrivals: List[Optional[DiscretePDF]] = [None] * graph.n_nodes
    arrivals[graph.source] = DiscretePDF.delta(cfg.dt, 0.0)
    get_arrival = arrivals.__getitem__
    if cfg.level_batch:
        executor = get_executor(cfg.jobs, cfg.transport)
        # Level 0 holds exactly the source; every other level's nodes
        # are mutually independent (arcs always cross levels).
        for level in range(1, graph.max_level + 1):
            nodes = graph.nodes_at_level(level)
            if not nodes:
                continue
            parts_list = [
                node_fanin_parts(graph, node, get_arrival, model.delay_pdf)
                for node in nodes
            ]
            for node, pdf in zip(
                nodes,
                compute_level_arrivals(
                    parts_list,
                    trim_eps=cfg.tail_eps,
                    counter=own_counter,
                    backend=kernel,
                    cache=cfg.cache,
                    executor=executor,
                ),
            ):
                arrivals[node] = store(pdf)
    else:
        for node in graph.topo_nodes():
            if node == graph.source:
                continue
            arrivals[node] = store(compute_node_arrival(
                graph,
                node,
                get_arrival,  # type: ignore[arg-type]
                model.delay_pdf,
                trim_eps=cfg.tail_eps,
                counter=own_counter,
                backend=kernel,
                cache=cfg.cache,
            ))
    return SSTAResult(graph=graph, arrivals=arrivals, counter=own_counter)  # type: ignore[arg-type]
