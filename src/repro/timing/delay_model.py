"""Gate delay evaluation: EQ 1 plus the statistical model.

The nominal pin-to-pin delay follows the paper's EQ 1,

    De = Dint + K * Cload / Ccell,

with ``Ccell = w * cell_cap`` so up-sizing speeds the gate, and
``Cload`` the sum of the fan-out pins' input capacitances (each scaling
with *its* gate's width), per-fan-out wire capacitance, and the fixed
primary-output load.  The statistical delay is a truncated Gaussian
around the nominal with ``sigma = sigma_fraction * nominal`` cut at
``truncation_sigma`` (Section 4: 10% and 3-sigma).

:class:`DelayModel` evaluates everything *live* from current gate
widths, with a memoized PDF cache keyed by (cell, width, load) — during
sizing, thousands of gates share identical operating points, so the
cache removes most discretization work.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..config import AnalysisConfig, DEFAULT_CONFIG
from ..dist.families import truncated_gaussian_pdf
from ..dist.pdf import DiscretePDF
from ..errors import TimingError
from ..library.library import CellLibrary, default_library
from ..netlist.circuit import Circuit, Gate

__all__ = ["DelayModel"]


class DelayModel:
    """Computes nominal delays, sigmas, and delay PDFs for a circuit."""

    def __init__(
        self,
        circuit: Circuit,
        library: Optional[CellLibrary] = None,
        config: AnalysisConfig = DEFAULT_CONFIG,
    ) -> None:
        self.circuit = circuit
        self.library = library if library is not None else default_library()
        self.config = config
        self._output_set = set(circuit.outputs)
        self._pdf_cache: Dict[Tuple[str, float, float], DiscretePDF] = {}

    # ------------------------------------------------------------------
    # Electrical model
    # ------------------------------------------------------------------
    def load_cap(self, net: str) -> float:
        """Total capacitance (fF) loading ``net``: fan-out input pins at
        their current widths, wire capacitance per fan-out, and the
        primary-output load when the net leaves the block."""
        total = 0.0
        fanouts = self.circuit.fanouts(net)
        for gate, _pin in fanouts:
            total += gate.cell.input_cap_at(gate.width)
        total += self.library.wire_cap_per_fanout * len(fanouts)
        if net in self._output_set:
            total += self.library.primary_output_cap
        return total

    def nominal_delay(self, gate: Gate) -> float:
        """EQ 1 evaluated at the gate's current width and live load."""
        return gate.cell.delay(gate.width, self.load_cap(gate.output))

    def sigma(self, gate: Gate) -> float:
        """Standard deviation of the gate delay (ps)."""
        return self.config.sigma_fraction * self.nominal_delay(gate)

    def delay_pdf(self, gate: Gate) -> DiscretePDF:
        """Discretized truncated-Gaussian pin-to-pin delay distribution
        at the gate's current operating point."""
        nominal = self.nominal_delay(gate)
        key = (gate.cell.name, round(gate.width, 9), round(nominal, 6))
        pdf = self._pdf_cache.get(key)
        if pdf is None:
            pdf = truncated_gaussian_pdf(
                self.config.dt,
                nominal,
                self.config.sigma_fraction * nominal,
                truncation=self.config.truncation_sigma,
                trim_eps=self.config.tail_eps,
            )
            self._pdf_cache[key] = pdf
        return pdf

    # ------------------------------------------------------------------
    # Sizing support
    # ------------------------------------------------------------------
    def gates_affected_by_resize(self, gate: Gate) -> Set[Gate]:
        """Gates whose delay changes when ``gate`` is resized: the gate
        itself (its drive changes) and the drivers of its input nets
        (their loads change).  This is exactly the set the paper's
        ``Initialize`` perturbs (Figure 7, step 1)."""
        affected: Set[Gate] = {gate}
        for net in gate.inputs:
            if self.circuit.has_gate(net):
                affected.add(self.circuit.gate(net))
        return affected

    def nominal_delays(self) -> Dict[str, float]:
        """Snapshot of every gate's nominal delay keyed by gate name."""
        return {g.output: self.nominal_delay(g) for g in self.circuit.gates()}

    def cache_info(self) -> Tuple[int, int]:
        """(entries, bins) held by the PDF cache — used by runtime
        experiments to report memory-side effects."""
        entries = len(self._pdf_cache)
        bins = sum(p.n_bins for p in self._pdf_cache.values())
        return entries, bins

    def clear_cache(self) -> None:
        """Drop all memoized PDFs (e.g. after a config change)."""
        self._pdf_cache.clear()
