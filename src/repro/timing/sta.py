"""Deterministic static timing analysis.

The paper's baseline optimizer is a deterministic coordinate descent
driven by classic STA: longest-path arrival times, required times,
slacks, and the critical path (the only gates a deterministic sizer
needs to consider, Section 3.1).  This module provides that substrate
over the :class:`~repro.timing.graph.TimingGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TimingError
from ..netlist.circuit import Gate
from .delay_model import DelayModel
from .graph import TimingEdge, TimingGraph

__all__ = ["STAResult", "run_sta"]

_NEG_INF = float("-inf")


@dataclass
class STAResult:
    """Arrival/required/slack data from one deterministic STA run.

    Node indexing follows the timing graph; ``arrival[sink]`` is the
    circuit delay.  Slack is relative to the circuit delay itself, so
    critical nodes have slack 0.
    """

    graph: TimingGraph
    arrival: List[float]
    required: List[float]
    critical_edges: List[TimingEdge]

    @property
    def circuit_delay(self) -> float:
        """Longest-path delay (ps) at the sink."""
        return self.arrival[self.graph.sink]

    def slack(self, node: int) -> float:
        """Required minus arrival at a node (ps)."""
        return self.required[node] - self.arrival[node]

    @property
    def critical_path_nets(self) -> List[str]:
        """Net names along the critical path, source side first."""
        nets = []
        for edge in self.critical_edges:
            net = self.graph.net_of_node(edge.dst)
            if net is not None:
                nets.append(net)
        return nets

    @property
    def critical_path_gates(self) -> List[Gate]:
        """Gate instances along the critical path."""
        return [e.gate for e in self.critical_edges if e.gate is not None]

    def critical_gates_within(self, slack_margin: float) -> List[Gate]:
        """All gates whose output slack is within ``slack_margin`` ps of
        critical — the candidate set a deterministic sizer scans."""
        out = []
        for gate in self.graph.circuit.gates():
            node = self.graph.gate_output_node(gate)
            if self.slack(node) <= slack_margin + 1e-12:
                out.append(gate)
        return out


def _edge_delay(edge: TimingEdge, delays: Dict[str, float]) -> float:
    if edge.gate is None:
        return 0.0
    return delays[edge.gate.output]


def run_sta(
    graph: TimingGraph,
    model: Optional[DelayModel] = None,
    *,
    delays: Optional[Dict[str, float]] = None,
) -> STAResult:
    """Longest-path STA over the timing graph.

    Either a :class:`DelayModel` (delays evaluated live at current
    widths) or a prebuilt ``delays`` map (gate name -> ps) must be
    provided; the map form is what the Monte Carlo engine uses to
    re-time one sample.
    """
    if delays is None:
        if model is None:
            raise TimingError("run_sta needs a DelayModel or a delays map")
        delays = model.nominal_delays()

    n = graph.n_nodes
    arrival = [_NEG_INF] * n
    best_in: List[Optional[TimingEdge]] = [None] * n
    arrival[graph.source] = 0.0
    for node in graph.topo_nodes():
        if node == graph.source:
            continue
        best = _NEG_INF
        best_edge: Optional[TimingEdge] = None
        for edge in graph.fanin_edges(node):
            cand = arrival[edge.src] + _edge_delay(edge, delays)
            if cand > best:
                best = cand
                best_edge = edge
        arrival[node] = best
        best_in[node] = best_edge

    circuit_delay = arrival[graph.sink]
    required = [float("inf")] * n
    required[graph.sink] = circuit_delay
    for node in reversed(graph.topo_nodes()):
        if node == graph.sink:
            continue
        req = required[node]
        for edge in graph.fanout_edges(node):
            cand = required[edge.dst] - _edge_delay(edge, delays)
            if cand < req:
                req = cand
        required[node] = req

    critical: List[TimingEdge] = []
    node = graph.sink
    while node != graph.source:
        edge = best_in[node]
        if edge is None:
            raise TimingError(f"no fan-in while tracing critical path at node {node}")
        critical.append(edge)
        node = edge.src
    critical.reverse()
    return STAResult(graph=graph, arrival=arrival, required=required,
                     critical_edges=critical)
