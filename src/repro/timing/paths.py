"""Path-level analysis: the "wall of criticality" instrumentation.

Figure 1 of the paper argues the whole case for statistical
optimization: a deterministic sizer balances path delays into a "wall"
of near-critical paths (Figure 1a, sc.2), and a wall is exactly what
maximizes the statistical circuit delay for a given deterministic
delay.  To reproduce that figure we need the *distribution of path
delays* in a circuit — which for ISCAS-scale netlists (path counts
beyond 10^15) cannot be enumerated.

:func:`path_delay_histogram` instead counts paths *by delay bin* with a
dynamic program over the DAG: the histogram of path delays arriving at
a node is the sum of its fan-in histograms, each shifted by the arc
delay.  Counts are floats (they overflow 64-bit integers on the larger
benchmarks, which is fine for a histogram).  Exact k-longest-path
enumeration is also provided for reporting and tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TimingError
from .delay_model import DelayModel
from .graph import TimingEdge, TimingGraph

__all__ = [
    "PathHistogram",
    "path_delay_histogram",
    "k_longest_paths",
    "wall_metric",
    "TimingPath",
]


@dataclass
class PathHistogram:
    """Counts of source-to-sink paths binned by total path delay."""

    bin_width: float
    offset: int
    counts: np.ndarray

    @property
    def delays(self) -> np.ndarray:
        """Bin-center delays (ps)."""
        return (np.arange(self.counts.size) + self.offset) * self.bin_width

    @property
    def total_paths(self) -> float:
        """Total number of source-to-sink paths."""
        return float(self.counts.sum())

    @property
    def max_delay(self) -> float:
        """Delay of the slowest (binned) path."""
        nz = np.nonzero(self.counts)[0]
        return float((self.offset + nz[-1]) * self.bin_width)

    def paths_within(self, margin_fraction: float) -> float:
        """Number of paths with delay >= (1 - margin) * max delay —
        the near-critical population forming the wall."""
        if not 0.0 <= margin_fraction < 1.0:
            raise TimingError(
                f"margin_fraction must be in [0, 1), got {margin_fraction}"
            )
        threshold = (1.0 - margin_fraction) * self.max_delay
        mask = self.delays >= threshold - 1e-9
        return float(self.counts[mask].sum())


def path_delay_histogram(
    graph: TimingGraph,
    model: Optional[DelayModel] = None,
    *,
    delays: Optional[Dict[str, float]] = None,
    bin_width: float = 10.0,
) -> PathHistogram:
    """Histogram of all source-to-sink path delays (nominal).

    ``delays`` overrides the live delay model when provided (gate name
    -> ps); path counts use float accumulation.
    """
    if delays is None:
        if model is None:
            raise TimingError("path_delay_histogram needs a model or delays map")
        delays = model.nominal_delays()
    if bin_width <= 0.0:
        raise TimingError(f"bin_width must be positive, got {bin_width}")

    hists: List[Optional[Tuple[int, np.ndarray]]] = [None] * graph.n_nodes
    hists[graph.source] = (0, np.array([1.0]))
    for node in graph.topo_nodes():
        if node == graph.source:
            continue
        parts: List[Tuple[int, np.ndarray]] = []
        for edge in graph.fanin_edges(node):
            src = hists[edge.src]
            if src is None:
                raise TimingError(f"fan-in {edge.src} not yet processed")
            d = 0.0 if edge.gate is None else delays[edge.gate.output]
            shift = int(round(d / bin_width))
            parts.append((src[0] + shift, src[1]))
        lo = min(off for off, _ in parts)
        hi = max(off + arr.size for off, arr in parts)
        acc = np.zeros(hi - lo)
        for off, arr in parts:
            acc[off - lo : off - lo + arr.size] += arr
        hists[node] = (lo, acc)
    off, counts = hists[graph.sink]  # type: ignore[misc]
    return PathHistogram(bin_width=bin_width, offset=off, counts=counts)


def wall_metric(hist: PathHistogram, *, margin_fraction: float = 0.1) -> float:
    """Fraction of all paths within ``margin_fraction`` of the maximum
    delay.  Deterministic optimization drives this up (the wall);
    statistical optimization keeps it lower at equal area."""
    total = hist.total_paths
    if total <= 0.0:
        return 0.0
    return hist.paths_within(margin_fraction) / total


@dataclass
class TimingPath:
    """One explicit source-to-sink path with its nominal delay."""

    delay: float
    edges: Tuple[TimingEdge, ...]

    @property
    def nets(self) -> List[str]:
        """Nets traversed, source side first (virtual nodes skipped)."""
        graph_nets = []
        for edge in self.edges:
            if edge.gate is not None:
                graph_nets.append(edge.gate.output)
        return graph_nets


def k_longest_paths(
    graph: TimingGraph,
    model: Optional[DelayModel] = None,
    *,
    delays: Optional[Dict[str, float]] = None,
    k: int = 10,
) -> List[TimingPath]:
    """The ``k`` longest source-to-sink paths, slowest first.

    Standard DAG algorithm: each node keeps its top-``k`` arrival
    candidates ``(delay, fan-in edge, rank within the fan-in node)``;
    paths are reconstructed by walking candidates backward.
    """
    if k < 1:
        raise TimingError(f"k must be >= 1, got {k}")
    if delays is None:
        if model is None:
            raise TimingError("k_longest_paths needs a model or delays map")
        delays = model.nominal_delays()

    # top[node] = list of (delay, edge, src_rank), sorted descending.
    top: List[List[Tuple[float, Optional[TimingEdge], int]]] = [
        [] for _ in range(graph.n_nodes)
    ]
    top[graph.source] = [(0.0, None, 0)]
    for node in graph.topo_nodes():
        if node == graph.source:
            continue
        candidates: List[Tuple[float, Optional[TimingEdge], int]] = []
        for edge in graph.fanin_edges(node):
            d = 0.0 if edge.gate is None else delays[edge.gate.output]
            for rank, (src_delay, _e, _r) in enumerate(top[edge.src]):
                candidates.append((src_delay + d, edge, rank))
        candidates.sort(key=lambda c: -c[0])
        top[node] = candidates[:k]

    paths: List[TimingPath] = []
    for delay, edge, rank in top[graph.sink]:
        edges_rev: List[TimingEdge] = []
        node = graph.sink
        cur_edge, cur_rank = edge, rank
        while cur_edge is not None:
            edges_rev.append(cur_edge)
            node = cur_edge.src
            _d, cur_edge, cur_rank = top[node][cur_rank]
        paths.append(TimingPath(delay=delay, edges=tuple(reversed(edges_rev))))
    return paths
