"""Corner-based timing analysis — the paper's "traditional approach".

Section 1: "Traditionally, process variation has been addressed in STA
using corner-based analysis where all gates are assumed to operate at a
worst-, typical- or best-case condition and within-die variability is
not modeled.  However, in the nanometer regime, within-die variation
has become a substantial portion of the overall variability and
corner-based STA suffers from significant inaccuracy."

This module implements that baseline so the inaccuracy can be
*measured* rather than asserted: every gate's delay is derated by a
single global factor per corner (perfectly correlated variation), and
the corner delays are compared against SSTA/Monte Carlo.

The two canonical failure modes both reproduce on the benchmarks:

* the **worst corner is pessimistic** — independent intra-die variation
  averages out along a path, so the all-gates-slow assumption overshoots
  the true 99-percentile delay, leaving performance on the table;
* the **typical corner is optimistic** — the statistical max across
  many near-critical paths pushes the real distribution past the
  all-nominal delay, so signing off at "typical" under-margins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..config import AnalysisConfig
from ..errors import TimingError
from .delay_model import DelayModel
from .graph import TimingGraph
from .sta import STAResult, run_sta

__all__ = ["Corner", "CornerAnalysis", "run_corners", "standard_corners"]


@dataclass(frozen=True)
class Corner:
    """One process corner: a global derating of every gate delay.

    ``derate`` multiplies each nominal delay (1.0 = typical).  The
    conventional worst/best corners sit at the truncation extreme of
    the per-gate distribution — with the paper's model (sigma = 10%,
    cut at 3 sigma) that is 1.3 and 0.7.
    """

    name: str
    derate: float

    def __post_init__(self) -> None:
        if self.derate <= 0.0:
            raise TimingError(f"corner {self.name!r}: derate must be positive")


def standard_corners(config: Optional[AnalysisConfig] = None) -> List[Corner]:
    """Best/typical/worst corners matched to the statistical model:
    the extremes are the truncation points of the per-gate law."""
    cfg = config if config is not None else AnalysisConfig()
    swing = cfg.sigma_fraction * cfg.truncation_sigma
    return [
        Corner("best", 1.0 - swing),
        Corner("typical", 1.0),
        Corner("worst", 1.0 + swing),
    ]


@dataclass
class CornerAnalysis:
    """Longest-path delays per corner, with comparison helpers."""

    delays: Dict[str, float]
    corners: List[Corner]

    def delay_at(self, corner_name: str) -> float:
        """Circuit delay (ps) at a named corner."""
        try:
            return self.delays[corner_name]
        except KeyError:
            raise TimingError(
                f"unknown corner {corner_name!r}; have {sorted(self.delays)}"
            ) from None

    @property
    def spread(self) -> float:
        """Worst minus best corner delay (ps)."""
        return max(self.delays.values()) - min(self.delays.values())

    def pessimism_vs(self, statistical_delay: float,
                     *, corner_name: str = "worst") -> float:
        """Relative margin of a corner over a statistical delay metric:
        positive = the corner over-margins (pessimism), negative = it
        under-margins (optimism)."""
        if statistical_delay <= 0.0:
            raise TimingError("statistical delay must be positive")
        return (self.delay_at(corner_name) - statistical_delay) / statistical_delay


def run_corners(
    graph: TimingGraph,
    model: DelayModel,
    *,
    corners: Optional[List[Corner]] = None,
) -> CornerAnalysis:
    """Deterministic STA at each corner (global derate per corner)."""
    chosen = corners if corners is not None else standard_corners(model.config)
    if not chosen:
        raise TimingError("need at least one corner")
    nominal = model.nominal_delays()
    delays: Dict[str, float] = {}
    for corner in chosen:
        derated = {name: d * corner.derate for name, d in nominal.items()}
        delays[corner.name] = run_sta(graph, delays=derated).circuit_delay
    return CornerAnalysis(delays=delays, corners=list(chosen))
