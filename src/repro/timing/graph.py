"""Timing graph (Definition 1 of the paper).

A timing graph ``G = {N, E, ns, nf}`` is a DAG with exactly one source
and one sink.  Nodes correspond to *nets* of the circuit plus the two
virtual terminals; edges correspond to gate input-pin to output arcs,
plus zero-delay arcs from the source to every primary input and from
every primary output to the sink.

The graph is an indexed, immutable view over a :class:`~repro.netlist.
circuit.Circuit`: node ids are dense integers (source = 0, sink = last),
and per-node fan-in/fan-out edge lists, the topological order, and the
levelization are precomputed once.  Gate *widths* may keep changing
underneath (edges hold live references to their gates); only structural
circuit edits invalidate a graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TimingError
from ..netlist.circuit import Circuit, Gate

__all__ = ["TimingEdge", "TimingGraph"]


class TimingEdge:
    """One directed timing arc.

    ``gate`` is the cell instance whose pin-to-pin delay the arc
    carries, or ``None`` for the zero-delay source/sink arcs.  ``pin``
    is the input-pin index of the arc within its gate.
    """

    __slots__ = ("index", "src", "dst", "gate", "pin")

    def __init__(
        self, index: int, src: int, dst: int, gate: Optional[Gate], pin: int
    ) -> None:
        self.index = index
        self.src = src
        self.dst = dst
        self.gate = gate
        self.pin = pin

    @property
    def is_virtual(self) -> bool:
        """True for the zero-delay source/sink arcs."""
        return self.gate is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = self.gate.name if self.gate is not None else "virtual"
        return f"TimingEdge(#{self.index} {self.src}->{self.dst} via {tag})"


class TimingGraph:
    """Indexed single-source/single-sink timing DAG over a circuit."""

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        nets = list(circuit.inputs) + [g.output for g in circuit.topo_gates()]
        self._net_node: Dict[str, int] = {net: i + 1 for i, net in enumerate(nets)}
        self._node_net: List[Optional[str]] = [None] + nets + [None]
        self.source: int = 0
        self.sink: int = len(nets) + 1
        self.n_nodes: int = len(nets) + 2

        self.edges: List[TimingEdge] = []
        self._fanin: List[List[TimingEdge]] = [[] for _ in range(self.n_nodes)]
        self._fanout: List[List[TimingEdge]] = [[] for _ in range(self.n_nodes)]

        def add_edge(src: int, dst: int, gate: Optional[Gate], pin: int) -> None:
            edge = TimingEdge(len(self.edges), src, dst, gate, pin)
            self.edges.append(edge)
            self._fanin[dst].append(edge)
            self._fanout[src].append(edge)

        for net in circuit.inputs:
            add_edge(self.source, self._net_node[net], None, 0)
        for gate in circuit.topo_gates():
            dst = self._net_node[gate.output]
            for pin, net in enumerate(gate.inputs):
                add_edge(self._net_node[net], dst, gate, pin)
        for net in circuit.outputs:
            add_edge(self._net_node[net], self.sink, None, 0)

        # Levelization: source 0, primary inputs 1, each net one past its
        # deepest fan-in, sink one past everything.
        circuit_levels = circuit.levels()
        self._levels: List[int] = [0] * self.n_nodes
        for net, lvl in circuit_levels.items():
            self._levels[self._net_node[net]] = lvl + 1
        self._levels[self.sink] = max(self._levels) + 1
        self.max_level: int = self._levels[self.sink]

        # Topological order: source, nets (already topologically sorted
        # by construction), sink.
        self._topo: List[int] = (
            [self.source] + [self._net_node[n] for n in nets] + [self.sink]
        )

        self._nodes_by_level: List[List[int]] = [
            [] for _ in range(self.max_level + 1)
        ]
        for node in range(self.n_nodes):
            self._nodes_by_level[self._levels[node]].append(node)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Total arc count including virtual source/sink arcs."""
        return len(self.edges)

    def node_of_net(self, net: str) -> int:
        """Node id of a circuit net."""
        try:
            return self._net_node[net]
        except KeyError:
            raise TimingError(f"net {net!r} is not in the timing graph") from None

    def net_of_node(self, node: int) -> Optional[str]:
        """Net name of a node (``None`` for source/sink)."""
        return self._node_net[node]

    def fanin_edges(self, node: int) -> List[TimingEdge]:
        """Arcs terminating at ``node``."""
        return self._fanin[node]

    def fanout_edges(self, node: int) -> List[TimingEdge]:
        """Arcs departing ``node``."""
        return self._fanout[node]

    def level(self, node: int) -> int:
        """Topological level (source 0, primary inputs 1, sink last)."""
        return self._levels[node]

    def nodes_at_level(self, level: int) -> List[int]:
        """All nodes at a given level."""
        return self._nodes_by_level[level]

    def topo_nodes(self) -> List[int]:
        """All nodes in topological order (source first, sink last)."""
        return self._topo

    def gate_output_node(self, gate: Gate) -> int:
        """Node id of the net a gate drives."""
        return self._net_node[gate.output]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimingGraph({self.circuit.name!r}: {self.n_nodes} nodes, "
            f"{self.n_edges} edges, {self.max_level + 1} levels)"
        )
