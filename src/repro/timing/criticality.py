"""Backward SSTA and statistical criticality (analysis extension).

Deterministic sizers only look at the critical path; the paper's point
is that *statistically* there is no single critical path — "the circuit
delay PDF is a combination of all the path delay PDFs" (Section 3.1).
This module quantifies that statement per gate:

* :func:`run_backward_ssta` — the mirror image of the forward pass: the
  **delay-to-sink** distribution ``B_i`` of every node, computed by
  propagating PDFs backward through the same convolution/independence-
  max operations (so it is an upper bound of the same kind as [3]).
* :func:`node_criticality` — for each node, the probability that a path
  through it is the longest one, approximated under the engine's global
  independence assumption as the probability that ``A_i + B_i`` (its
  through-delay) reaches the circuit's delay:
  ``P(A_i + B_i >= T(p*))`` with ``T(p*)`` the objective percentile of
  the sink distribution.
* :func:`criticality_report` — ranked table used by examples/tests.

Statistical criticality explains both headline results: after
deterministic optimization *many* gates carry high criticality (the
wall); the statistical sizer's best gate is reliably among the most
critical, which is why the ``Smx`` bound ranking finds it early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..config import AnalysisConfig
from ..dist.backends import BackendLike, get_backend
from ..dist.cache import ConvolutionCache
from ..dist.ops import OpCounter, convolve, convolve_many, stat_max_many
from ..dist.pdf import DiscretePDF
from ..dist.sparse import as_dense, sparsify
from ..errors import TimingError
from ..exec import get_executor
from .delay_model import DelayModel
from .graph import TimingGraph
from .ssta import SSTAResult, compute_level_arrivals

__all__ = [
    "BackwardSSTAResult",
    "run_backward_ssta",
    "node_criticality",
    "criticality_report",
    "CriticalityRow",
]


@dataclass
class BackwardSSTAResult:
    """Delay-to-sink PDFs from one backward pass.

    ``to_sink[node]`` is the distribution of the longest remaining
    delay from ``node`` to the sink (zero at the sink itself).
    ``backend`` and ``cache`` record the convolution backend and result
    cache the pass ran under, so downstream criticality queries default
    to the same kernel and memo instead of silently mixing them within
    one analysis.
    """

    graph: TimingGraph
    to_sink: List[DiscretePDF]
    counter: OpCounter
    backend: BackendLike = "auto"
    cache: Optional[ConvolutionCache] = None

    def to_sink_of_net(self, net: str) -> DiscretePDF:
        """Delay-to-sink PDF at a named net (densified on read when the
        pass ran with sparse storage)."""
        return as_dense(self.to_sink[self.graph.node_of_net(net)])


def _node_fanout_parts(graph, model, to_sink, node):
    """A node's fan-out operands ``(to-sink PDF, delay-or-None)`` in
    edge order — the backward mirror of
    :func:`~repro.timing.ssta.node_fanin_parts`."""
    fanout = graph.fanout_edges(node)
    if not fanout:
        raise TimingError(f"node {node} has no fan-out (not a sink)")
    parts = []
    for edge in fanout:
        dst_pdf = to_sink[edge.dst]
        assert dst_pdf is not None
        dst_pdf = as_dense(dst_pdf)
        if edge.gate is None:
            parts.append((dst_pdf, None))
        else:
            parts.append((dst_pdf, model.delay_pdf(edge.gate)))
    return parts


def run_backward_ssta(
    graph: TimingGraph,
    model: DelayModel,
    *,
    config: Optional[AnalysisConfig] = None,
    counter: Optional[OpCounter] = None,
) -> BackwardSSTAResult:
    """Propagate delay-to-sink PDFs from the sink toward the source.

    Mirrors :func:`~repro.timing.ssta.run_ssta`: an outgoing arc adds
    the arc's gate delay by convolution, and multiple fan-out arcs
    merge through the independence max (upper bound).  Under
    ``config.level_batch`` (the default) each topological level — whose
    nodes are mutually independent in the backward direction too —
    runs through the batched level scheduler, bitwise identical to the
    sequential walk (which never consulted the whole-node memo, hence
    ``node_memo=False``).
    """
    cfg = config if config is not None else model.config
    own = counter if counter is not None else OpCounter()
    kernel = get_backend(cfg.backend)
    cache = cfg.cache
    # Mirrors run_ssta's sparse arrival storage for the backward store.
    if cfg.sparse_eps > 0.0:
        store = lambda pdf: sparsify(pdf, cfg.sparse_eps)  # noqa: E731
    else:
        store = lambda pdf: pdf  # noqa: E731
    to_sink: List[Optional[DiscretePDF]] = [None] * graph.n_nodes
    to_sink[graph.sink] = DiscretePDF.delta(cfg.dt, 0.0)
    if cfg.level_batch:
        executor = get_executor(cfg.jobs, cfg.transport)
        # Sink alone occupies the top level; walk the rest downward,
        # visiting nodes within a level in the sequential (reversed
        # topological) order so the cache request stream matches.
        for level in range(graph.max_level - 1, -1, -1):
            nodes = list(reversed(graph.nodes_at_level(level)))
            if not nodes:
                continue
            parts_list = [
                _node_fanout_parts(graph, model, to_sink, node)
                for node in nodes
            ]
            for node, pdf in zip(
                nodes,
                compute_level_arrivals(
                    parts_list,
                    trim_eps=cfg.tail_eps,
                    counter=own,
                    backend=kernel,
                    cache=cache,
                    node_memo=False,
                    executor=executor,
                ),
            ):
                to_sink[node] = store(pdf)
    else:
        for node in reversed(graph.topo_nodes()):
            if node == graph.sink:
                continue
            # Mirror of compute_node_arrival: slot order follows the
            # edge order, gate arcs batch through one convolve_many
            # call.
            parts = _node_fanout_parts(graph, model, to_sink, node)
            contribs: List[Optional[DiscretePDF]] = [None] * len(parts)
            pairs = []
            pair_slots = []
            for i, (pdf, delay) in enumerate(parts):
                if delay is None:
                    contribs[i] = pdf
                else:
                    pairs.append((pdf, delay))
                    pair_slots.append(i)
            if pairs:
                for i, res in zip(
                    pair_slots,
                    convolve_many(pairs, trim_eps=cfg.tail_eps, counter=own,
                                  backend=kernel, cache=cache),
                ):
                    contribs[i] = res
            to_sink[node] = store(stat_max_many(
                contribs, trim_eps=cfg.tail_eps, counter=own, backend=kernel,
                cache=cache,
            ))
    return BackwardSSTAResult(
        graph=graph, to_sink=to_sink, counter=own, backend=kernel,  # type: ignore[arg-type]
        cache=cache,
    )


def node_criticality(
    forward: SSTAResult,
    backward: BackwardSSTAResult,
    net: str,
    *,
    percentile: float = 0.99,
    backend: Optional[BackendLike] = None,
) -> float:
    """P(through-delay of ``net`` >= the circuit's p-percentile delay).

    The through-delay ``A_i + B_i`` treats arrival and delay-to-sink as
    independent (consistent with the engine's global assumption), so
    the value is a *bound-flavored* criticality: 1.0 means paths through
    the net essentially set the circuit delay; near 0 means the net is
    statistically irrelevant.  Relative ranking is what the analysis
    consumers use.  ``backend`` defaults to the kernel the backward
    pass ran under (and the query reuses its result cache), keeping one
    backend and memo choice threaded through the whole analysis.
    """
    graph = forward.graph
    node = graph.node_of_net(net)
    kernel = backward.backend if backend is None else backend
    through = convolve(
        forward.arrivals[node], backward.to_sink[node], backend=kernel,
        cache=backward.cache,
    )
    target = forward.sink_pdf.percentile(percentile)
    return 1.0 - through.cdf_at(target)


@dataclass
class CriticalityRow:
    """One net's statistical criticality."""

    net: str
    criticality: float
    arrival_mean: float
    to_sink_mean: float


def criticality_report(
    forward: SSTAResult,
    backward: BackwardSSTAResult,
    *,
    percentile: float = 0.99,
    top_k: int = 20,
    backend: Optional[BackendLike] = None,
) -> List[CriticalityRow]:
    """The ``top_k`` most critical gate-output nets, ranked."""
    if top_k < 1:
        raise TimingError(f"top_k must be >= 1, got {top_k}")
    graph = forward.graph
    rows: List[CriticalityRow] = []
    for gate in graph.circuit.topo_gates():
        net = gate.output
        rows.append(
            CriticalityRow(
                net=net,
                criticality=node_criticality(
                    forward, backward, net,
                    percentile=percentile, backend=backend,
                ),
                arrival_mean=forward.arrival_of_net(net).mean(),
                to_sink_mean=backward.to_sink_of_net(net).mean(),
            )
        )
    rows.sort(key=lambda r: (-r.criticality, r.net))
    return rows[:top_k]
