"""Parametric timing-yield analysis.

Section 1 of the paper: "From the CDF of the circuit delay, the user is
then able to obtain the percentage of fabricated dies which meets a
certain delay requirement, or conversely, the expected performance for
a particular yield."  This module provides exactly those two queries
plus the derived reporting the examples and experiments use:

* :func:`timing_yield` — fraction of dies meeting a delay target;
* :func:`delay_at_yield` — the delay achievable at a given yield
  (the inverse query; the paper's objective is ``delay_at_yield(0.99)``);
* :func:`yield_curve` — the whole trade-off as arrays;
* :func:`yield_gain` — yield improvement of one solution over another
  across a target range (how Table 1's delay improvements translate to
  sold dies).

All functions accept either a propagated SSTA distribution
(:class:`~repro.dist.pdf.DiscretePDF`) or a Monte Carlo result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..dist.pdf import DiscretePDF
from ..errors import TimingError
from .monte_carlo import MonteCarloResult

__all__ = [
    "timing_yield",
    "delay_at_yield",
    "yield_curve",
    "YieldComparison",
    "yield_gain",
]

DelayDistribution = Union[DiscretePDF, MonteCarloResult]


def _as_cdf_eval(dist: DelayDistribution):
    if isinstance(dist, DiscretePDF):
        return dist.cdf_at
    if isinstance(dist, MonteCarloResult):
        samples = np.sort(dist.samples)

        def empirical(t: float) -> float:
            return float(np.searchsorted(samples, t, side="right")) / samples.size

        return empirical
    raise TimingError(f"unsupported distribution type: {type(dist).__name__}")


def timing_yield(dist: DelayDistribution, target_delay: float) -> float:
    """Fraction of dies with circuit delay <= ``target_delay`` (ps)."""
    if target_delay < 0.0:
        raise TimingError(f"target delay must be >= 0, got {target_delay}")
    return _as_cdf_eval(dist)(target_delay)


def delay_at_yield(dist: DelayDistribution, yield_fraction: float) -> float:
    """Smallest delay target (ps) met by ``yield_fraction`` of dies."""
    if not 0.0 < yield_fraction <= 1.0:
        raise TimingError(
            f"yield fraction must be in (0, 1], got {yield_fraction}"
        )
    if isinstance(dist, DiscretePDF):
        return dist.percentile(yield_fraction)
    if isinstance(dist, MonteCarloResult):
        return dist.percentile(yield_fraction)
    raise TimingError(f"unsupported distribution type: {type(dist).__name__}")


def yield_curve(
    dist: DelayDistribution, *, n_points: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """(delay targets, yields) across the distribution's support."""
    if n_points < 2:
        raise TimingError("n_points must be >= 2")
    lo = delay_at_yield(dist, 0.001)
    hi = delay_at_yield(dist, 1.0)
    targets = np.linspace(lo, hi, n_points)
    cdf = _as_cdf_eval(dist)
    return targets, np.array([cdf(t) for t in targets])


@dataclass
class YieldComparison:
    """Yield of two delay distributions over a shared target range."""

    targets: np.ndarray
    yield_a: np.ndarray
    yield_b: np.ndarray

    @property
    def max_gain(self) -> float:
        """Largest yield advantage of B over A at any single target."""
        return float(np.max(self.yield_b - self.yield_a))

    @property
    def mean_gain(self) -> float:
        """Average yield advantage of B over A across the range."""
        return float(np.mean(self.yield_b - self.yield_a))


def yield_gain(
    dist_a: DelayDistribution,
    dist_b: DelayDistribution,
    *,
    n_points: int = 50,
) -> YieldComparison:
    """Yield-vs-target comparison of two circuit solutions.

    The target range spans both distributions, so the comparison covers
    every economically interesting operating point.
    """
    lo = min(delay_at_yield(dist_a, 0.001), delay_at_yield(dist_b, 0.001))
    hi = max(delay_at_yield(dist_a, 1.0), delay_at_yield(dist_b, 1.0))
    targets = np.linspace(lo, hi, n_points)
    cdf_a = _as_cdf_eval(dist_a)
    cdf_b = _as_cdf_eval(dist_b)
    return YieldComparison(
        targets=targets,
        yield_a=np.array([cdf_a(t) for t in targets]),
        yield_b=np.array([cdf_b(t) for t in targets]),
    )
