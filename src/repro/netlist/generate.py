"""Seeded synthetic generator for ISCAS'85-like benchmark circuits.

The paper evaluates on *synthesized* ISCAS'85 netlists mapped onto a
commercial 180nm library — artifacts we cannot redistribute.  The
sizing and pruning algorithms, however, consume only the circuit's
*structure*: node/edge counts, logic depth, fan-in mix, fan-out
distribution and reconvergent fan-out.  This module generates seeded
random combinational DAGs that match those statistics circuit-by-
circuit (see :mod:`repro.netlist.benchmarks` for the calibrated specs),
which preserves every behaviour the experiments measure:

* node and edge counts are matched **exactly** to Table 1, column 2;
* logic depth is matched to the real benchmark's depth;
* fan-in is a mix of 1/2/3/4-input cells chosen to hit the edge count;
* every internal net fans out to at least one consumer, and multi-
  fan-out nets create the reconvergence that makes the statistical-max
  upper bound (and thus the pruning theory) non-trivial.

Generation is deterministic per ``(spec, seed)`` and runs in
O((nodes + edges) * log width): the wiring loop selects pins through
per-level Fenwick order-statistics pools (:class:`_LevelPool`) that
draw the *same element with the same RNG stream* as the historical
``[n for n in prev if n in unconsumed]`` list rescans, without their
O(width^2)-per-level cost.  The paper-suite circuits are therefore
byte-identical to the pre-rewrite generator — pinned by the
structure-fingerprint regression in ``tests/netlist/golden/``.

One deliberate exception to stream preservation: when rewiring unused
primary inputs would cost more than :data:`_ABSORB_SHUFFLE_BUDGET`
RNG-shuffle steps (never the case for any paper-suite spec — their
worst product is ~180k), :func:`_absorb_unused_inputs` switches from
the historical shuffle-per-PI protocol to a single-shuffle cursor scan.
Synthetic scale-class circuits have no golden baseline to preserve and
the historical protocol is O(unused_PIs x gates) — a quadratic wall at
10^5+ gates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import NetlistError
from ..library.library import CellLibrary, default_library
from .circuit import Circuit

__all__ = ["CircuitSpec", "generate_circuit", "MAX_SCALED_GATES"]

#: Largest gate count :meth:`CircuitSpec.scaled` will produce.  The
#: generator itself is near-linear, but downstream analyses (graph
#: build, per-node PDFs) have been validated up to the 10^6-node class;
#: beyond this the spec is refused loudly rather than silently
#: producing a workload nothing has been sized for.
MAX_SCALED_GATES: int = 4_000_000


@dataclass(frozen=True)
class CircuitSpec:
    """Target statistics for one synthetic benchmark.

    ``n_nets = n_inputs + n_gates`` is the paper's node count and
    ``n_pin_edges`` its edge count; both are hit exactly.  ``depth`` is
    the number of logic levels (hit exactly as long as
    ``n_gates >= depth``).  ``n_outputs`` is a soft target: nets left
    without consumers always become primary outputs, then the list is
    topped up with deep, already-consumed nets.
    """

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    n_pin_edges: int
    depth: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise NetlistError(f"{self.name}: need at least one input")
        if self.n_gates < 1:
            raise NetlistError(f"{self.name}: need at least one gate")
        if self.depth < 1 or self.depth > self.n_gates:
            raise NetlistError(
                f"{self.name}: depth {self.depth} must be in [1, n_gates]"
            )
        if self.n_outputs < 1:
            raise NetlistError(f"{self.name}: need at least one output")
        lo = self.n_gates  # every gate has >= 1 pin
        hi = self.max_fanin * self.n_gates
        if not lo <= self.n_pin_edges <= hi:
            raise NetlistError(
                f"{self.name}: n_pin_edges {self.n_pin_edges} outside "
                f"[{lo}, {hi}] for {self.n_gates} gates with "
                f"{self.n_inputs} inputs (a level-1 gate cannot have more "
                f"distinct pins than there are primary inputs)"
            )

    @property
    def max_fanin(self) -> int:
        """Largest per-gate pin count the generator may assign: the
        library tops out at 4 pins, and a gate can never have more
        distinct inputs than the shallowest level offers."""
        return min(4, self.n_inputs)

    @property
    def n_nets(self) -> int:
        """Paper's node count (primary inputs + gate outputs)."""
        return self.n_inputs + self.n_gates

    def scaled(self, factor: float, *, name: Optional[str] = None) -> "CircuitSpec":
        """A proportionally smaller **or larger** variant of this spec.

        Down-scaling (``factor < 1``) runs paper-shaped workloads at
        laptop-friendly sizes; up-scaling (``factor`` of 10^2-10^3)
        opens the synthetic large-netlist class the scale benchmarks
        exercise.  Either way the fan-in mix (edges per gate) is
        preserved and every derived quantity is clamped into the
        validated envelope:

        * ``depth`` grows with sqrt(factor) — levels stay wide, which
          is what keeps level-batched propagation efficient — and is
          capped at ``n_gates``;
        * per-gate fan-in is capped at ``min(4, n_inputs)`` (the
          library's widest cell);
        * ``n_pin_edges`` is clamped into ``[n_gates, cap * n_gates]``;
        * gate counts beyond :data:`MAX_SCALED_GATES` are refused
          loudly — the envelope downstream analyses are validated for.

        The resulting spec re-runs full :class:`CircuitSpec` validation,
        so a scaled spec is valid by construction or raises.
        """
        if factor <= 0.0:
            raise NetlistError(f"scale factor must be positive, got {factor}")
        n_gates = max(2, round(self.n_gates * factor))
        if n_gates > MAX_SCALED_GATES:
            raise NetlistError(
                f"{self.name}: scale factor {factor:g} would produce "
                f"{n_gates} gates, beyond the validated cap of "
                f"{MAX_SCALED_GATES} (MAX_SCALED_GATES)"
            )
        depth = max(1, min(n_gates, round(self.depth * factor ** 0.5)))
        edges_per_gate = self.n_pin_edges / self.n_gates
        n_inputs = max(2, round(self.n_inputs * factor))
        cap = min(4, n_inputs)
        n_pin_edges = min(cap * n_gates, max(n_gates, round(n_gates * edges_per_gate)))
        return CircuitSpec(
            name=name or f"{self.name}_s{factor:g}",
            n_inputs=n_inputs,
            n_outputs=max(1, round(self.n_outputs * factor)),
            n_gates=n_gates,
            n_pin_edges=n_pin_edges,
            depth=depth,
            seed=self.seed,
        )


def _fanin_counts(spec: CircuitSpec, rng: random.Random) -> List[int]:
    """Per-gate pin counts summing exactly to ``spec.n_pin_edges``.

    Start from all-2-input and convert gates up (to 3, then 4 pins) or
    down (to 1 pin) until the target is met; conversions are spread
    randomly so no level is systematically wide or narrow.
    """
    counts = [min(2, spec.max_fanin)] * spec.n_gates
    deficit = spec.n_pin_edges - sum(counts)
    order = list(range(spec.n_gates))
    rng.shuffle(order)
    idx = 0
    while deficit > 0:
        g = order[idx % len(order)]
        if counts[g] < spec.max_fanin:
            counts[g] += 1
            deficit -= 1
        idx += 1
    idx = 0
    while deficit < 0:
        g = order[idx % len(order)]
        if counts[g] > 1:
            counts[g] -= 1
            deficit += 1
        idx += 1
    return counts


_ONE_INPUT_CELLS = ["NOT", "NOT", "NOT", "BUF"]
_TWO_INPUT_CELLS = ["NAND", "NAND", "NAND", "NOR", "NOR", "AND", "OR", "XOR"]
_WIDE_CELLS = ["NAND", "NOR", "AND", "OR"]


def _pick_function(n_pins: int, rng: random.Random) -> str:
    """Choose a logic function for a gate with ``n_pins`` inputs,
    weighted toward the NAND-dominated mix of the real benchmarks."""
    if n_pins == 1:
        return rng.choice(_ONE_INPUT_CELLS)
    if n_pins == 2:
        return rng.choice(_TWO_INPUT_CELLS)
    return rng.choice(_WIDE_CELLS)


def _gates_per_level(spec: CircuitSpec, rng: random.Random) -> List[int]:
    """Distribute gates across ``depth`` levels, at least one per level,
    with a mid-heavy profile like the real benchmarks (cones widen then
    converge toward the outputs)."""
    depth = spec.depth
    remaining = spec.n_gates - depth
    counts = [1] * depth
    if remaining > 0 and depth > 1:
        # Triangular weights peaking at ~1/3 of the depth, floored so
        # deep levels always keep a share.
        peak = max(1.0, depth / 3.0)
        weights = [max(0.25, 1.0 + peak - abs((lv + 1) - peak) / 2.0)
                   for lv in range(depth)]
        total = sum(weights)
        allocated = 0
        for lv in range(depth):
            share = int(remaining * weights[lv] / total)
            counts[lv] += share
            allocated += share
        for _ in range(remaining - allocated):
            counts[rng.randrange(depth)] += 1
    elif remaining > 0:
        counts[0] += remaining
    return counts


class _LevelPool:
    """Order-statistics view of one level's not-yet-consumed nets.

    A Fenwick (binary indexed) tree over the level's net positions.
    ``kth(k)`` returns the k-th unconsumed net *in level order* —
    exactly the element ``[n for n in level if n in unconsumed][k]``
    selects — at O(log width) instead of the rescan's O(width), which
    is what takes the wiring loop from O(width^2) per level to
    O(width log width).  ``rng.choice(filtered_list)`` and
    ``pool.kth(rng.randrange(pool.live))`` consume identical RNG state
    (both reduce to ``_randbelow(len)``), so the rewrite preserves the
    historical draw stream bit for bit.
    """

    __slots__ = ("nets", "_alive", "_tree", "_span", "live")

    def __init__(self, capacity: int) -> None:
        span = 1
        while span < capacity:
            span <<= 1
        self._span = span
        self._tree = [0] * (span + 1)
        self.nets: List[str] = []
        self._alive: List[bool] = []
        self.live = 0

    def add(self, net: str) -> int:
        """Append an unconsumed net; returns its level position."""
        i = len(self.nets)
        self.nets.append(net)
        self._alive.append(True)
        self.live += 1
        tree = self._tree
        j = i + 1
        while j <= self._span:
            tree[j] += 1
            j += j & -j
        return i

    def consume(self, pos: int) -> None:
        """Mark the net at level position ``pos`` consumed (idempotent)."""
        if not self._alive[pos]:
            return
        self._alive[pos] = False
        self.live -= 1
        tree = self._tree
        j = pos + 1
        while j <= self._span:
            tree[j] -= 1
            j += j & -j

    def kth(self, k: int) -> str:
        """The k-th (0-based) unconsumed net in level order."""
        pos = 0
        rem = k + 1
        span = self._span
        tree = self._tree
        half = span
        while half:
            nxt = pos + half
            if nxt <= span and tree[nxt] < rem:
                rem -= tree[nxt]
                pos = nxt
            half >>= 1
        return self.nets[pos]


def _fallback_pick(
    rng: random.Random,
    flat_nets: List[str],
    flat_pos: Dict[str, int],
    chosen: List[str],
) -> Optional[str]:
    """The guard-path draw: ``rng.choice`` over every earlier-level net
    not already chosen, without materializing the O(total-nets)
    candidate list the historical comprehension built per draw.

    Every chosen net lives in a completed level, so the candidate count
    is exactly ``len(flat_nets) - len(chosen)``; the drawn index is
    mapped onto the flat creation-order list (the comprehension's
    iteration order) by skipping the chosen nets' positions.  Returns
    ``None`` when no candidate exists.
    """
    total = len(flat_nets) - len(chosen)
    if total <= 0:
        return None
    idx = rng.randrange(total)
    for p in sorted(flat_pos[n] for n in chosen):
        if p <= idx:
            idx += 1
        else:
            break
    return flat_nets[idx]


def generate_circuit(
    spec: CircuitSpec,
    *,
    library: Optional[CellLibrary] = None,
) -> Circuit:
    """Generate a validated circuit matching ``spec``.

    The wiring strategy guarantees levels and exact edge counts:

    * each gate's *first* input comes from the previous level (this
      pins the gate's level), preferring nets that nothing consumes yet;
    * the remaining inputs are drawn from any earlier level with a
      geometric bias toward recent levels (local structure) and the
      same prefer-unconsumed rule (keeps dangling nets — and therefore
      the primary output count — under control while creating multi-
      fan-out nets and reconvergence).

    The pin-edge count is exact at every scale: a gate that cannot be
    wired to its planned pin count (impossible for any spec that passes
    :class:`CircuitSpec` validation — it would require fewer reachable
    nets than the per-gate fan-in cap allows) raises
    :class:`~repro.errors.NetlistError` loudly instead of silently
    shrinking, and the final circuit is checked against
    ``spec.n_pin_edges`` before validation.
    """
    lib = library if library is not None else default_library()
    rng = random.Random(spec.seed ^ 0x5EED)
    circuit = Circuit(spec.name)

    level_nets: List[List[str]] = [[]]
    pools: List[_LevelPool] = [_LevelPool(spec.n_inputs)]
    # net -> (level pool, position) for O(log width) consumption.
    home: Dict[str, tuple] = {}
    for i in range(spec.n_inputs):
        net = f"I{i}"
        circuit.add_input(net)
        level_nets[0].append(net)
        home[net] = (pools[0], pools[0].add(net))

    fanins = _fanin_counts(spec, rng)
    per_level = _gates_per_level(spec, rng)
    unconsumed: set = set(level_nets[0])
    # Flat creation-order view of all completed levels' nets, for the
    # guard-path fallback (the order the historical
    # ``[n for lv in level_nets for n in lv]`` comprehension walked).
    flat_nets: List[str] = list(level_nets[0])
    flat_pos: Dict[str, int] = {n: i for i, n in enumerate(flat_nets)}
    gate_idx = 0

    for level in range(1, spec.depth + 1):
        current: List[str] = []
        current_pool = _LevelPool(per_level[level - 1])
        prev = level_nets[level - 1]
        prev_pool = pools[level - 1]
        for _ in range(per_level[level - 1]):
            n_pins = fanins[gate_idx]
            chosen: List[str] = []
            chosen_set: set = set()
            # Pin 0: previous level, preferring unconsumed nets.
            k = prev_pool.live
            if k:
                first = prev_pool.kth(rng.randrange(k))
            else:
                first = prev[rng.randrange(len(prev))]
            chosen.append(first)
            chosen_set.add(first)
            # Remaining pins: earlier levels, biased toward recent ones.
            guard = 0
            while len(chosen) < n_pins:
                guard += 1
                if guard > 200:  # rejection sampling ran dry of luck
                    net = _fallback_pick(rng, flat_nets, flat_pos, chosen)
                    if net is None:
                        break
                    chosen.append(net)
                    chosen_set.add(net)
                    continue
                src_level = level - 1
                while src_level > 0 and rng.random() < 0.45:
                    src_level -= 1
                src_pool = pools[src_level]
                live = src_pool.live
                if live and rng.random() < 0.7:
                    net = src_pool.kth(rng.randrange(live))
                else:
                    nets_at = level_nets[src_level]
                    net = nets_at[rng.randrange(len(nets_at))]
                if net not in chosen_set:
                    chosen.append(net)
                    chosen_set.add(net)
            if len(chosen) != n_pins:
                # Unreachable for validated specs (every level offers at
                # least max_fanin distinct earlier nets); raising keeps
                # n_pin_edges exact at every scale instead of silently
                # shrinking the gate and drifting the edge count.
                raise NetlistError(
                    f"{spec.name}: gate {gate_idx} at level {level} could "
                    f"only reach {len(chosen)} of {n_pins} distinct input "
                    f"nets; the spec's pin-edge count cannot be met exactly"
                )
            cell = lib.find(_pick_function(n_pins, rng), n_pins)
            out_net = f"N{spec.n_inputs + gate_idx}"
            circuit.add_gate(cell, chosen, out_net)
            unconsumed.difference_update(chosen)
            for net in chosen:
                pool, pos = home[net]
                pool.consume(pos)
            unconsumed.add(out_net)
            home[out_net] = (current_pool, current_pool.add(out_net))
            current.append(out_net)
            gate_idx += 1
        level_nets.append(current)
        pools.append(current_pool)
        for n in current:
            flat_pos[n] = len(flat_nets)
            flat_nets.append(n)

    _absorb_unused_inputs(circuit, unconsumed, rng)
    _assign_outputs(circuit, spec, level_nets, unconsumed, rng)
    if circuit.n_pin_edges != spec.n_pin_edges:
        raise NetlistError(  # pragma: no cover - defensive exactness net
            f"{spec.name}: generated {circuit.n_pin_edges} pin edges, "
            f"spec demands exactly {spec.n_pin_edges}"
        )
    circuit.validate()
    return circuit


#: Largest ``unused_PIs x gates`` product for which
#: :func:`_absorb_unused_inputs` keeps the historical shuffle-per-PI
#: protocol (and therefore the historical RNG stream).  Every
#: paper-suite spec sits far below this (worst: c7552 at ~180k); the
#: scale class switches to the single-shuffle cursor scan.
_ABSORB_SHUFFLE_BUDGET: int = 1_000_000


def _find_swap_pin(gate, is_input, fanout_counts) -> int:
    """First swappable pin of ``gate`` (shared by both absorb paths):
    not pin 0 (which pins the gate's level), not reading another PI,
    and whose current net keeps a consumer after the swap.  -1 if none.
    """
    for pin in range(1, len(gate.inputs)):
        net = gate.inputs[pin]
        if is_input(net):
            continue  # keep other PIs connected
        if fanout_counts.get(net, 0) < 2:
            continue  # would dangle the replaced net
        return pin
    return -1


def _absorb_unused_inputs(circuit: Circuit, unconsumed: set, rng: random.Random) -> None:
    """Rewire so every primary input has a consumer.

    An unused PI replaces one pin of a gate whose current net has other
    consumers; a PI is level 0, so the swap can never create a cycle or
    raise a gate's level past its consumers.

    Fan-out counts are maintained incrementally across pin swaps (one
    O(edges) build, O(1) per swap) instead of the historical
    ``_dirty()`` + full fanout-map rebuild per unused PI, and the
    circuit's topology caches are invalidated once at the end.
    """
    unused_pis = [n for n in circuit.inputs if n in unconsumed]
    if not unused_pis:
        return
    gates = list(circuit.gates())
    is_input = circuit.is_input
    fanout_counts: Dict[str, int] = {}
    for gate in gates:
        for net in gate.inputs:
            fanout_counts[net] = fanout_counts.get(net, 0) + 1

    def swap(gate, pin: int, pi: str) -> None:
        old = gate.inputs[pin]
        new_inputs = list(gate.inputs)
        new_inputs[pin] = pi
        gate.inputs = tuple(new_inputs)
        fanout_counts[old] -= 1
        fanout_counts[pi] = fanout_counts.get(pi, 0) + 1
        unconsumed.discard(pi)

    swapped = False
    if len(unused_pis) * len(gates) <= _ABSORB_SHUFFLE_BUDGET:
        # Historical protocol: a fresh shuffle of the gate list per PI.
        # The RNG stream (one O(gates) shuffle per unused PI) is what
        # the paper-suite fingerprints pin, so it is preserved exactly
        # below the budget.
        for pi in unused_pis:
            rng.shuffle(gates)
            for gate in gates:
                if pi in gate.inputs:
                    continue  # defensive; an unused PI feeds no gate
                pin = _find_swap_pin(gate, is_input, fanout_counts)
                if pin < 0:
                    continue
                swap(gate, pin, pi)
                swapped = True
                break
            # If no swap site exists the PI stays unused; _assign_outputs
            # will expose it as a (degenerate but valid) primary output.
    else:
        # Scale protocol: one shuffle, then a monotone cursor over the
        # gate list.  Rejections are permanent — a pin is skipped only
        # because it reads a PI (never changes) or because its net's
        # fan-out count is below 2 (counts only ever decrease here) —
        # so the cursor never needs to revisit a rejected gate and the
        # whole pass is O(edges + unused_PIs).
        rng.shuffle(gates)
        cursor = 0
        n = len(gates)
        for pi in unused_pis:
            while cursor < n:
                gate = gates[cursor]
                pin = _find_swap_pin(gate, is_input, fanout_counts)
                if pin < 0:
                    cursor += 1
                    continue
                swap(gate, pin, pi)
                swapped = True
                break
            if cursor >= n:
                break  # no site anywhere; remaining PIs stay unused
    if swapped:
        circuit._dirty()  # noqa: SLF001 — structural edit by design


def _assign_outputs(
    circuit: Circuit,
    spec: CircuitSpec,
    level_nets: List[List[str]],
    unconsumed: set,
    rng: random.Random,
) -> None:
    """Every consumer-less net becomes a primary output; the list is
    then topped up toward ``spec.n_outputs`` with deep internal nets.

    Membership probes run against sets (the historical ``n not in
    dangling`` list scans were O(nets x dangling)), and the top-up pool
    is deduplicated so a net can never be offered as a primary output
    twice.
    """
    dangling = [n for n in circuit.nets() if circuit.fanout_count(n) == 0]
    dangling_set = set(dangling)
    for net in dangling:
        circuit.add_output(net)
    need = spec.n_outputs - len(dangling)
    if need > 0:
        pool: List[str] = []
        pool_seen: set = set(dangling_set)
        for lv in range(len(level_nets) - 1, 0, -1):
            for n in level_nets[lv]:
                if n not in pool_seen:
                    pool_seen.add(n)
                    pool.append(n)
            if len(pool) >= 3 * need:
                break
        rng.shuffle(pool)
        for net in pool[:need]:
            circuit.add_output(net)
