"""Seeded synthetic generator for ISCAS'85-like benchmark circuits.

The paper evaluates on *synthesized* ISCAS'85 netlists mapped onto a
commercial 180nm library — artifacts we cannot redistribute.  The
sizing and pruning algorithms, however, consume only the circuit's
*structure*: node/edge counts, logic depth, fan-in mix, fan-out
distribution and reconvergent fan-out.  This module generates seeded
random combinational DAGs that match those statistics circuit-by-
circuit (see :mod:`repro.netlist.benchmarks` for the calibrated specs),
which preserves every behaviour the experiments measure:

* node and edge counts are matched **exactly** to Table 1, column 2;
* logic depth is matched to the real benchmark's depth;
* fan-in is a mix of 1/2/3/4-input cells chosen to hit the edge count;
* every internal net fans out to at least one consumer, and multi-
  fan-out nets create the reconvergence that makes the statistical-max
  upper bound (and thus the pruning theory) non-trivial.

Generation is deterministic per ``(spec, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import NetlistError
from ..library.library import CellLibrary, default_library
from .circuit import Circuit

__all__ = ["CircuitSpec", "generate_circuit"]


@dataclass(frozen=True)
class CircuitSpec:
    """Target statistics for one synthetic benchmark.

    ``n_nets = n_inputs + n_gates`` is the paper's node count and
    ``n_pin_edges`` its edge count; both are hit exactly.  ``depth`` is
    the number of logic levels (hit exactly as long as
    ``n_gates >= depth``).  ``n_outputs`` is a soft target: nets left
    without consumers always become primary outputs, then the list is
    topped up with deep, already-consumed nets.
    """

    name: str
    n_inputs: int
    n_outputs: int
    n_gates: int
    n_pin_edges: int
    depth: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise NetlistError(f"{self.name}: need at least one input")
        if self.n_gates < 1:
            raise NetlistError(f"{self.name}: need at least one gate")
        if self.depth < 1 or self.depth > self.n_gates:
            raise NetlistError(
                f"{self.name}: depth {self.depth} must be in [1, n_gates]"
            )
        if self.n_outputs < 1:
            raise NetlistError(f"{self.name}: need at least one output")
        lo = self.n_gates  # every gate has >= 1 pin
        hi = self.max_fanin * self.n_gates
        if not lo <= self.n_pin_edges <= hi:
            raise NetlistError(
                f"{self.name}: n_pin_edges {self.n_pin_edges} outside "
                f"[{lo}, {hi}] for {self.n_gates} gates with "
                f"{self.n_inputs} inputs (a level-1 gate cannot have more "
                f"distinct pins than there are primary inputs)"
            )

    @property
    def max_fanin(self) -> int:
        """Largest per-gate pin count the generator may assign: the
        library tops out at 4 pins, and a gate can never have more
        distinct inputs than the shallowest level offers."""
        return min(4, self.n_inputs)

    @property
    def n_nets(self) -> int:
        """Paper's node count (primary inputs + gate outputs)."""
        return self.n_inputs + self.n_gates

    def scaled(self, factor: float, *, name: Optional[str] = None) -> "CircuitSpec":
        """A proportionally smaller (or larger) variant of this spec.

        Used by the experiment harness to run paper-shaped workloads at
        laptop-friendly sizes; the fan-in mix (edges per gate) and the
        relative depth are preserved.
        """
        if factor <= 0.0:
            raise NetlistError(f"scale factor must be positive, got {factor}")
        n_gates = max(2, round(self.n_gates * factor))
        depth = max(1, min(n_gates, round(self.depth * factor ** 0.5)))
        edges_per_gate = self.n_pin_edges / self.n_gates
        n_inputs = max(2, round(self.n_inputs * factor))
        cap = min(4, n_inputs)
        n_pin_edges = min(cap * n_gates, max(n_gates, round(n_gates * edges_per_gate)))
        return CircuitSpec(
            name=name or f"{self.name}_s{factor:g}",
            n_inputs=n_inputs,
            n_outputs=max(1, round(self.n_outputs * factor)),
            n_gates=n_gates,
            n_pin_edges=n_pin_edges,
            depth=depth,
            seed=self.seed,
        )


def _fanin_counts(spec: CircuitSpec, rng: random.Random) -> List[int]:
    """Per-gate pin counts summing exactly to ``spec.n_pin_edges``.

    Start from all-2-input and convert gates up (to 3, then 4 pins) or
    down (to 1 pin) until the target is met; conversions are spread
    randomly so no level is systematically wide or narrow.
    """
    counts = [min(2, spec.max_fanin)] * spec.n_gates
    deficit = spec.n_pin_edges - sum(counts)
    order = list(range(spec.n_gates))
    rng.shuffle(order)
    idx = 0
    while deficit > 0:
        g = order[idx % len(order)]
        if counts[g] < spec.max_fanin:
            counts[g] += 1
            deficit -= 1
        idx += 1
    idx = 0
    while deficit < 0:
        g = order[idx % len(order)]
        if counts[g] > 1:
            counts[g] -= 1
            deficit += 1
        idx += 1
    return counts


_ONE_INPUT_CELLS = ["NOT", "NOT", "NOT", "BUF"]
_TWO_INPUT_CELLS = ["NAND", "NAND", "NAND", "NOR", "NOR", "AND", "OR", "XOR"]
_WIDE_CELLS = ["NAND", "NOR", "AND", "OR"]


def _pick_function(n_pins: int, rng: random.Random) -> str:
    """Choose a logic function for a gate with ``n_pins`` inputs,
    weighted toward the NAND-dominated mix of the real benchmarks."""
    if n_pins == 1:
        return rng.choice(_ONE_INPUT_CELLS)
    if n_pins == 2:
        return rng.choice(_TWO_INPUT_CELLS)
    return rng.choice(_WIDE_CELLS)


def _gates_per_level(spec: CircuitSpec, rng: random.Random) -> List[int]:
    """Distribute gates across ``depth`` levels, at least one per level,
    with a mid-heavy profile like the real benchmarks (cones widen then
    converge toward the outputs)."""
    depth = spec.depth
    remaining = spec.n_gates - depth
    counts = [1] * depth
    if remaining > 0 and depth > 1:
        # Triangular weights peaking at ~1/3 of the depth, floored so
        # deep levels always keep a share.
        peak = max(1.0, depth / 3.0)
        weights = [max(0.25, 1.0 + peak - abs((lv + 1) - peak) / 2.0)
                   for lv in range(depth)]
        total = sum(weights)
        allocated = 0
        for lv in range(depth):
            share = int(remaining * weights[lv] / total)
            counts[lv] += share
            allocated += share
        for _ in range(remaining - allocated):
            counts[rng.randrange(depth)] += 1
    elif remaining > 0:
        counts[0] += remaining
    return counts


def generate_circuit(
    spec: CircuitSpec,
    *,
    library: Optional[CellLibrary] = None,
) -> Circuit:
    """Generate a validated circuit matching ``spec``.

    The wiring strategy guarantees levels and exact edge counts:

    * each gate's *first* input comes from the previous level (this
      pins the gate's level), preferring nets that nothing consumes yet;
    * the remaining inputs are drawn from any earlier level with a
      geometric bias toward recent levels (local structure) and the
      same prefer-unconsumed rule (keeps dangling nets — and therefore
      the primary output count — under control while creating multi-
      fan-out nets and reconvergence).
    """
    lib = library if library is not None else default_library()
    rng = random.Random(spec.seed ^ 0x5EED)
    circuit = Circuit(spec.name)

    level_nets: List[List[str]] = [[]]
    for i in range(spec.n_inputs):
        net = f"I{i}"
        circuit.add_input(net)
        level_nets[0].append(net)

    fanins = _fanin_counts(spec, rng)
    per_level = _gates_per_level(spec, rng)
    unconsumed: set = set(level_nets[0])
    gate_idx = 0

    for level in range(1, spec.depth + 1):
        current: List[str] = []
        prev = level_nets[level - 1]
        for _ in range(per_level[level - 1]):
            n_pins = fanins[gate_idx]
            chosen: List[str] = []
            # Pin 0: previous level, preferring unconsumed nets.
            prev_unconsumed = [n for n in prev if n in unconsumed]
            first = rng.choice(prev_unconsumed if prev_unconsumed else prev)
            chosen.append(first)
            # Remaining pins: earlier levels, biased toward recent ones.
            guard = 0
            while len(chosen) < n_pins:
                guard += 1
                if guard > 200:  # tiny circuits can run out of distinct nets
                    candidates = [
                        n for lv in level_nets for n in lv if n not in chosen
                    ]
                    if not candidates:
                        break
                    chosen.append(rng.choice(candidates))
                    continue
                src_level = level - 1
                while src_level > 0 and rng.random() < 0.45:
                    src_level -= 1
                pool = level_nets[src_level]
                pool_unconsumed = [n for n in pool if n in unconsumed]
                use_pool = pool_unconsumed if (pool_unconsumed and rng.random() < 0.7) else pool
                net = rng.choice(use_pool)
                if net not in chosen:
                    chosen.append(net)
            n_pins = len(chosen)  # may shrink only on degenerate tiny specs
            cell = lib.find(_pick_function(n_pins, rng), n_pins)
            out_net = f"N{spec.n_inputs + gate_idx}"
            circuit.add_gate(cell, chosen, out_net)
            unconsumed.difference_update(chosen)
            unconsumed.add(out_net)
            current.append(out_net)
            gate_idx += 1
        level_nets.append(current)

    _absorb_unused_inputs(circuit, unconsumed, rng)
    _assign_outputs(circuit, spec, level_nets, unconsumed, rng)
    circuit.validate()
    return circuit


def _absorb_unused_inputs(circuit: Circuit, unconsumed: set, rng: random.Random) -> None:
    """Rewire so every primary input has a consumer.

    An unused PI replaces one pin of a gate whose current net has other
    consumers; a PI is level 0, so the swap can never create a cycle or
    raise a gate's level past its consumers.
    """
    unused_pis = [n for n in circuit.inputs if n in unconsumed]
    if not unused_pis:
        return
    gates = list(circuit.gates())
    for pi in unused_pis:
        rng.shuffle(gates)
        for gate in gates:
            for pin, net in enumerate(gate.inputs):
                if net == pi or pi in gate.inputs:
                    break
                if pin == 0:
                    continue  # pin 0 pins the gate's level (exact depth)
                if circuit.is_input(net):
                    continue  # keep other PIs connected
                if circuit.fanout_count(net) < 2:
                    continue  # would dangle the replaced net
                new_inputs = list(gate.inputs)
                new_inputs[pin] = pi
                gate.inputs = tuple(new_inputs)
                unconsumed.discard(pi)
                circuit._dirty()  # noqa: SLF001 — structural edit by design
                break
            if pi not in unconsumed:
                break
        # If no swap site exists the PI stays unused; _assign_outputs
        # will expose it as a (degenerate but valid) primary output.


def _assign_outputs(
    circuit: Circuit,
    spec: CircuitSpec,
    level_nets: List[List[str]],
    unconsumed: set,
    rng: random.Random,
) -> None:
    """Every consumer-less net becomes a primary output; the list is
    then topped up toward ``spec.n_outputs`` with deep internal nets."""
    dangling = [n for n in circuit.nets() if circuit.fanout_count(n) == 0]
    for net in dangling:
        circuit.add_output(net)
    need = spec.n_outputs - len(dangling)
    if need > 0:
        pool: List[str] = []
        for lv in range(len(level_nets) - 1, 0, -1):
            pool.extend(n for n in level_nets[lv] if n not in dangling)
            if len(pool) >= 3 * need:
                break
        rng.shuffle(pool)
        for net in pool[:need]:
            circuit.add_output(net)
