"""Structural netlist validation.

The optimizers and timing engines assume a well-formed combinational
netlist; this module checks that assumption once, up front, and reports
*all* problems rather than the first (a netlist fresh out of a parser
usually has several related mistakes).
"""

from __future__ import annotations

from typing import List

from ..errors import NetlistError

__all__ = ["validate_circuit", "structural_issues"]


def structural_issues(circuit) -> List[str]:
    """Return a list of human-readable structural problems (empty when
    the circuit is valid).

    Checks:
    * at least one primary input, output, and gate;
    * every primary output net is driven (by a PI or a gate);
    * every gate input reads a driven net;
    * no combinational cycles (via topological ordering);
    * every net other than a primary output has at least one consumer
      (dangling internal nets indicate a broken netlist);
    * every primary input is actually used.
    """
    issues: List[str] = []
    if not circuit.inputs:
        issues.append("circuit has no primary inputs")
    if not circuit.outputs:
        issues.append("circuit has no primary outputs")
    if circuit.n_gates == 0:
        issues.append("circuit has no gates")

    driven = set(circuit.inputs)
    driven.update(g.output for g in circuit.gates())
    for net in circuit.outputs:
        if net not in driven:
            issues.append(f"primary output {net!r} is not driven")
    for gate in circuit.gates():
        for net in gate.inputs:
            if net not in driven:
                issues.append(f"gate {gate.name!r} reads undriven net {net!r}")

    if not issues:
        try:
            circuit.topo_gates()
        except NetlistError as exc:
            issues.append(str(exc))

    output_set = set(circuit.outputs)
    for net in driven:
        if net not in output_set and circuit.fanout_count(net) == 0:
            if net in circuit.inputs:
                issues.append(f"primary input {net!r} is unused")
            else:
                issues.append(f"internal net {net!r} dangles (no consumer)")
    return issues


def validate_circuit(circuit) -> None:
    """Raise :class:`NetlistError` listing every structural issue."""
    issues = structural_issues(circuit)
    if issues:
        shown = issues[:20]
        more = f" (+{len(issues) - 20} more)" if len(issues) > 20 else ""
        raise NetlistError(
            f"circuit {circuit.name!r} is invalid:\n  - "
            + "\n  - ".join(shown)
            + more
        )
