"""Gate-level netlist model.

A :class:`Circuit` is a combinational network in the ISCAS'85 style:
named nets, each driven either by a primary input or by exactly one
gate, with gates named after the net they drive (the ``.bench``
convention).  Gate *width* is the continuous sizing variable; topology
is fixed once built, so topological caches (gate order, net levels,
fan-out maps) are computed lazily and invalidated only on structural
edits — re-sizing a gate never invalidates them.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import NetlistError
from ..library.cell import CellType

__all__ = ["Gate", "Circuit"]


class Gate:
    """One sized cell instance.

    The instance drives the net :attr:`output` and reads the nets in
    :attr:`inputs` (pin order matters for delay arcs).  :attr:`width`
    is the continuous size factor, ``1.0`` = minimum size.
    """

    __slots__ = ("cell", "inputs", "output", "width")

    def __init__(
        self,
        cell: CellType,
        inputs: Sequence[str],
        output: str,
        width: float = 1.0,
    ) -> None:
        if len(inputs) != cell.n_inputs:
            raise NetlistError(
                f"gate {output!r}: cell {cell.name} has {cell.n_inputs} pins "
                f"but {len(inputs)} nets were connected"
            )
        if len(set(inputs)) != len(inputs):
            raise NetlistError(f"gate {output!r}: duplicate input net")
        if output in inputs:
            raise NetlistError(f"gate {output!r}: combinational self-loop")
        if width <= 0.0:
            raise NetlistError(f"gate {output!r}: width must be positive")
        self.cell = cell
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.output = output
        self.width = float(width)

    @property
    def name(self) -> str:
        """Gates are named after the net they drive."""
        return self.output

    @property
    def n_inputs(self) -> int:
        """Number of input pins."""
        return len(self.inputs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Gate({self.output} = {self.cell.function}"
            f"({', '.join(self.inputs)}), w={self.width:g})"
        )


class Circuit:
    """A combinational gate-level netlist.

    Construction order is free: gates may reference nets that are
    declared later.  Call :meth:`validate` (or any query that needs
    topology) once the netlist is complete; structural problems raise
    :class:`~repro.errors.NetlistError`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}
        self._input_set: set = set()
        self._output_set: set = set()
        # Lazy topology caches.
        self._fanouts: Optional[Dict[str, List[Tuple[Gate, int]]]] = None
        self._topo_gates: Optional[List[Gate]] = None
        self._levels: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> None:
        """Declare a primary input net."""
        if net in self._input_set:
            raise NetlistError(f"duplicate primary input {net!r}")
        if net in self._gates:
            raise NetlistError(f"net {net!r} is already driven by a gate")
        self._inputs.append(net)
        self._input_set.add(net)
        self._dirty()

    def add_output(self, net: str) -> None:
        """Declare a primary output net (must be driven by the time the
        circuit is validated)."""
        if net in self._output_set:
            raise NetlistError(f"duplicate primary output {net!r}")
        self._outputs.append(net)
        self._output_set.add(net)

    def add_gate(
        self,
        cell: CellType,
        inputs: Sequence[str],
        output: str,
        width: float = 1.0,
    ) -> Gate:
        """Instantiate ``cell`` driving net ``output`` from ``inputs``."""
        if output in self._gates:
            raise NetlistError(f"net {output!r} already has a driver")
        if output in self._input_set:
            raise NetlistError(f"net {output!r} is a primary input")
        gate = Gate(cell, inputs, output, width)
        self._gates[output] = gate
        self._dirty()
        return gate

    def _dirty(self) -> None:
        self._fanouts = None
        self._topo_gates = None
        self._levels = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Tuple[str, ...]:
        """Primary input nets in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        """Primary output nets in declaration order."""
        return tuple(self._outputs)

    def is_input(self, net: str) -> bool:
        """True for primary input nets."""
        return net in self._input_set

    def has_gate(self, net: str) -> bool:
        """True when ``net`` is driven by a gate."""
        return net in self._gates

    def gate(self, net: str) -> Gate:
        """The gate driving ``net``."""
        try:
            return self._gates[net]
        except KeyError:
            raise NetlistError(f"no gate drives net {net!r}") from None

    def gates(self) -> Iterator[Gate]:
        """All gates, in insertion order."""
        return iter(self._gates.values())

    def nets(self) -> List[str]:
        """All nets: primary inputs first, then gate outputs."""
        return list(self._inputs) + list(self._gates.keys())

    @property
    def n_gates(self) -> int:
        """Number of gate instances."""
        return len(self._gates)

    @property
    def n_nets(self) -> int:
        """Number of nets (the paper's "node" count, Table 1 col 2)."""
        return len(self._inputs) + len(self._gates)

    @property
    def n_pin_edges(self) -> int:
        """Number of gate input pins (the paper's "edge" count)."""
        return sum(g.n_inputs for g in self._gates.values())

    # ------------------------------------------------------------------
    # Topology caches
    # ------------------------------------------------------------------
    def fanouts(self, net: str) -> List[Tuple[Gate, int]]:
        """Gates (with pin index) reading ``net``."""
        if self._fanouts is None:
            self._build_fanouts()
        assert self._fanouts is not None
        return self._fanouts.get(net, [])

    def fanout_count(self, net: str) -> int:
        """Number of gate pins loading ``net``."""
        return len(self.fanouts(net))

    def _build_fanouts(self) -> None:
        fo: Dict[str, List[Tuple[Gate, int]]] = {}
        for gate in self._gates.values():
            for pin, net in enumerate(gate.inputs):
                fo.setdefault(net, []).append((gate, pin))
        self._fanouts = fo

    def topo_gates(self) -> List[Gate]:
        """Gates in topological order (fan-in before fan-out).

        Raises :class:`NetlistError` on combinational cycles or
        undriven nets.
        """
        if self._topo_gates is None:
            self._build_topology()
        assert self._topo_gates is not None
        return self._topo_gates

    def levels(self) -> Dict[str, int]:
        """Topological level per net: primary inputs are level 0 and a
        gate output is one more than its deepest input."""
        if self._levels is None:
            self._build_topology()
        assert self._levels is not None
        return self._levels

    def depth(self) -> int:
        """Maximum net level (logic depth in gate stages)."""
        levels = self.levels()
        return max(levels.values()) if levels else 0

    def _build_topology(self) -> None:
        levels: Dict[str, int] = {net: 0 for net in self._inputs}
        order: List[Gate] = []
        # Kahn's algorithm over gates keyed by unresolved input count.
        pending: Dict[str, int] = {}
        ready: List[Gate] = []
        for gate in self._gates.values():
            unresolved = sum(1 for net in gate.inputs if net not in levels)
            for net in gate.inputs:
                if net not in levels and net not in self._gates:
                    raise NetlistError(
                        f"gate {gate.name!r} reads undriven net {net!r}"
                    )
            if unresolved == 0:
                ready.append(gate)
            else:
                pending[gate.output] = unresolved
        if self._fanouts is None:
            self._build_fanouts()
        assert self._fanouts is not None
        head = 0
        while head < len(ready):
            gate = ready[head]
            head += 1
            order.append(gate)
            levels[gate.output] = 1 + max(levels[n] for n in gate.inputs)
            for consumer, _pin in self._fanouts.get(gate.output, []):
                remaining = pending.get(consumer.output)
                if remaining is None:
                    continue
                if remaining == 1:
                    del pending[consumer.output]
                    ready.append(consumer)
                else:
                    pending[consumer.output] = remaining - 1
        if pending:
            cyclic = sorted(pending)[:8]
            raise NetlistError(
                f"combinational cycle or unreachable gates involving {cyclic}"
            )
        self._topo_gates = order
        self._levels = levels

    # ------------------------------------------------------------------
    # Validation and copying
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Run full structural validation (see
        :func:`repro.netlist.validate.validate_circuit`)."""
        from .validate import validate_circuit

        validate_circuit(self)

    def copy(self, *, name: Optional[str] = None) -> "Circuit":
        """Deep copy: fresh :class:`Gate` objects, so sizing the copy
        never touches the original."""
        dup = Circuit(name or self.name)
        for net in self._inputs:
            dup.add_input(net)
        for gate in self._gates.values():
            dup.add_gate(gate.cell, gate.inputs, gate.output, gate.width)
        for net in self._outputs:
            dup.add_output(net)
        return dup

    def widths(self) -> Dict[str, float]:
        """Snapshot of all gate widths, keyed by gate name."""
        return {g.output: g.width for g in self._gates.values()}

    def set_widths(self, widths: Dict[str, float]) -> None:
        """Restore a width snapshot from :meth:`widths`."""
        for name, w in widths.items():
            self.gate(name).width = float(w)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit({self.name!r}: {len(self._inputs)} in, "
            f"{len(self._outputs)} out, {self.n_gates} gates)"
        )
