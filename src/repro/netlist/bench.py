"""ISCAS'85 ``.bench`` netlist reader and writer.

The paper evaluates on the ISCAS'85 benchmarks [10], distributed in the
``.bench`` format::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

This module parses that format into a :class:`~repro.netlist.circuit.
Circuit` (mapping each logic function onto a library cell with the
matching pin count) and can serialize a circuit back out, so users with
the genuine benchmark files can run every experiment on them directly.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import BenchParseError, LibraryError
from ..library.library import CellLibrary, default_library
from .circuit import Circuit

__all__ = ["parse_bench", "parse_bench_file", "write_bench", "C17_BENCH"]

#: Mapping from ``.bench`` operator spellings to library function tags.
_BENCH_OPS: Dict[str, str] = {
    "AND": "AND",
    "NAND": "NAND",
    "OR": "OR",
    "NOR": "NOR",
    "XOR": "XOR",
    "XNOR": "XNOR",
    "NOT": "NOT",
    "INV": "NOT",
    "BUF": "BUF",
    "BUFF": "BUF",
    "DFF": "DFF",  # recognized so we can reject it with a clear message
}

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(([^)]*)\)$")

#: The genuine ISCAS'85 c17 netlist (Brglez & Fujiwara, ISCAS 1985) —
#: small enough to embed, and the one real benchmark shipped with the
#: reproduction (see DESIGN.md substitution notes).
C17_BENCH = """\
# c17 — ISCAS'85 benchmark (Brglez & Fujiwara 1985)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


def parse_bench(
    text: str,
    *,
    name: str = "bench",
    library: Optional[CellLibrary] = None,
) -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`.

    Each gate line is mapped to the library cell implementing the same
    function with the same pin count; missing cells raise
    :class:`~repro.errors.BenchParseError` (sequential elements are
    rejected — the reproduction, like the paper, is combinational).
    """
    lib = library if library is not None else default_library()
    circuit = Circuit(name)
    pending_outputs: List[str] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind = io_match.group(1).upper()
            net = io_match.group(2)
            if kind == "INPUT":
                circuit.add_input(net)
            else:
                pending_outputs.append(net)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            output, op, operand_text = gate_match.groups()
            op = op.upper()
            function = _BENCH_OPS.get(op)
            if function is None:
                raise BenchParseError(f"unknown operator {op!r}", line_no)
            if function == "DFF":
                raise BenchParseError(
                    "sequential element DFF is not supported "
                    "(combinational benchmarks only)",
                    line_no,
                )
            operands = [tok.strip() for tok in operand_text.split(",") if tok.strip()]
            if not operands:
                raise BenchParseError(f"gate {output!r} has no operands", line_no)
            try:
                cell = lib.find(function, len(operands))
            except LibraryError as exc:
                raise BenchParseError(str(exc), line_no) from exc
            circuit.add_gate(cell, operands, output)
            continue
        raise BenchParseError(f"unparseable line: {line!r}", line_no)
    for net in pending_outputs:
        circuit.add_output(net)
    return circuit


def parse_bench_file(
    path: Union[str, Path],
    *,
    library: Optional[CellLibrary] = None,
) -> Circuit:
    """Parse a ``.bench`` file; the circuit is named after the file."""
    path = Path(path)
    return parse_bench(
        path.read_text(), name=path.stem, library=library
    )


def write_bench(circuit: Circuit) -> str:
    """Serialize a circuit back to ``.bench`` text.

    Gates are emitted in topological order so the output is directly
    human-followable; function tags use canonical spellings.
    """
    lines: List[str] = [f"# {circuit.name} ({circuit.n_gates} gates)"]
    for net in circuit.inputs:
        lines.append(f"INPUT({net})")
    for net in circuit.outputs:
        lines.append(f"OUTPUT({net})")
    for gate in circuit.topo_gates():
        operands = ", ".join(gate.inputs)
        lines.append(f"{gate.output} = {gate.cell.function}({operands})")
    return "\n".join(lines) + "\n"
