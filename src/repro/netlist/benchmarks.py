"""Registry of the paper's benchmark suite.

Table 1 of the paper lists ten ISCAS'85 circuits with their synthesized
node/edge counts.  The specs below reproduce those counts exactly (node
= primary inputs + gates, edge = gate input pins) together with the
real benchmarks' primary I/O counts and logic depths.  Circuits are
generated deterministically by :mod:`repro.netlist.generate`; the
genuine ``c17`` netlist is included verbatim as a parser/ground-truth
anchor.

``load("c432")`` (etc.) returns a *fresh copy* each call, so optimizers
may mutate widths freely.  ``load`` also accepts a ``scale`` to run the
paper's workload shapes at reduced size — the experiment configs use
this for the largest circuits.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..errors import NetlistError
from .bench import C17_BENCH, parse_bench
from .circuit import Circuit
from .generate import CircuitSpec, generate_circuit

__all__ = ["PAPER_SUITE", "SPECS", "load", "spec_for", "paper_row"]

#: name -> (n_inputs, n_outputs, n_gates, n_pin_edges, depth)
#: n_inputs/n_outputs/depth follow the real ISCAS'85 circuits;
#: n_inputs + n_gates and n_pin_edges match Table 1 column 2 exactly.
_SPEC_TABLE: Dict[str, Tuple[int, int, int, int, int]] = {
    "c432": (36, 7, 178, 379, 17),
    "c499": (41, 32, 520, 978, 11),
    "c880": (60, 26, 365, 804, 24),
    "c1355": (41, 32, 529, 1071, 24),
    "c1908": (33, 25, 433, 858, 40),
    "c2670": (233, 140, 826, 1731, 32),
    "c3540": (50, 22, 941, 1972, 47),
    "c5315": (178, 123, 1628, 3311, 49),
    "c6288": (32, 32, 2471, 4999, 124),
    "c7552": (207, 108, 1995, 3945, 43),
}

#: Benchmark order as printed in the paper's tables.
PAPER_SUITE: List[str] = list(_SPEC_TABLE)

SPECS: Dict[str, CircuitSpec] = {
    name: CircuitSpec(
        name=name,
        n_inputs=ins,
        n_outputs=outs,
        n_gates=gates,
        n_pin_edges=edges,
        depth=depth,
        seed=sum(ord(ch) for ch in name),
    )
    for name, (ins, outs, gates, edges, depth) in _SPEC_TABLE.items()
}


def spec_for(name: str) -> CircuitSpec:
    """The calibrated :class:`CircuitSpec` for a paper benchmark."""
    try:
        return SPECS[name]
    except KeyError:
        raise NetlistError(
            f"unknown benchmark {name!r}; available: {PAPER_SUITE + ['c17']}"
        ) from None


@lru_cache(maxsize=None)
def _build(name: str, scale: float) -> Circuit:
    if name == "c17":
        return parse_bench(C17_BENCH, name="c17")
    spec = spec_for(name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    return generate_circuit(spec)


def load(name: str, *, scale: float = 1.0) -> Circuit:
    """Load a benchmark circuit (fresh, mutable copy).

    Parameters
    ----------
    name:
        ``"c17"`` (the genuine embedded netlist) or one of the Table 1
        circuits ``c432 .. c7552`` (synthetic equivalents).
    scale:
        Proportional size factor; ``scale=0.25`` builds a quarter-size
        circuit with the same fan-in mix and relative depth (used by
        the fast experiment configurations).
    """
    if name != "c17" and name not in SPECS:
        raise NetlistError(
            f"unknown benchmark {name!r}; available: {PAPER_SUITE + ['c17']}"
        )
    return _build(name, float(scale)).copy()


def paper_row(name: str) -> Tuple[int, int]:
    """The paper's (node, edge) counts for Table 1 column 2."""
    spec = spec_for(name)
    return spec.n_nets, spec.n_pin_edges
