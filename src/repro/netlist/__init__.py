"""Netlist layer: circuit model, ISCAS ``.bench`` I/O, structural
validation, the synthetic benchmark generator, and the calibrated
paper-suite registry."""

from .bench import C17_BENCH, parse_bench, parse_bench_file, write_bench
from .benchmarks import PAPER_SUITE, SPECS, load, paper_row, spec_for
from .circuit import Circuit, Gate
from .generate import CircuitSpec, generate_circuit
from .validate import structural_issues, validate_circuit

__all__ = [
    "Circuit",
    "Gate",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "C17_BENCH",
    "CircuitSpec",
    "generate_circuit",
    "PAPER_SUITE",
    "SPECS",
    "load",
    "spec_for",
    "paper_row",
    "structural_issues",
    "validate_circuit",
]
