"""JSON-over-HTTP front of the analysis service.

A deliberately thin, dependency-light request layer (stdlib
:class:`~http.server.HTTPServer` plus a fixed handler pool) over the
long-lived shared domain state in
:class:`~repro.service.state.ServiceState` — the Kalmukov
conference-management-system shape: requests are cheap adapters, all
interesting state lives one layer down and survives across requests.

Endpoints (all bodies JSON):

=======  =================  ==============================================
Method   Path               Action
=======  =================  ==============================================
GET      /health            liveness + versions
GET      /stats             cache/session/latency/overload aggregates
POST     /session           open a session ``{"config": {...}}`` -> id
POST     /session/close     close ``{"session": id}``
POST     /analyze           SSTA+STA ``{"circuit", "scale", ...}``
POST     /optimize          sizing run ``{"circuit", "iterations", ...}``
POST     /yield             yield queries ``{"circuit", "target", ...}``
POST     /flush             write the cache snapshot now
POST     /shutdown          graceful drain (responds, then stops serving)
=======  =================  ==============================================

Admission control (bounded by design, not by accident)
-------------------------------------------------------
The server never spawns a thread per request.  A **fixed pool** of
handler threads drains a **bounded work queue**; the accept loop's
only job is to enqueue the connection or — when the queue is full —
write an immediate ``503`` with a ``Retry-After`` hint and close.
Overload therefore degrades the service along exactly one axis:
*whether* a request is served.  Every accepted request runs the same
code a lone request would, so what an answer contains never depends
on load (the bitwise invariant the overload suite pins).  Queue
depth, rejection counts, and queue-wait percentiles are served by
``/stats`` under ``overload``.

Every request's wall-clock is recorded into the state's latency
window (the p50/p99 numbers served by /stats and recorded in
``BENCH_dist.json``'s ``service`` section).

Lifecycle: :func:`serve` wires warm-start (``cache_file``), a periodic
snapshot flusher, ``atexit`` flush, and SIGTERM/SIGINT drain.  The
drain is **truncation-free**: stop accepting, finish everything
already admitted (handler threads are tracked and joined under a
deadline — never abandoned mid-write the way daemonized
``ThreadingHTTPServer`` handlers were), then flush the snapshot and
exit 0.
"""

from __future__ import annotations

import atexit
import json
import queue
import signal
import socket
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, HTTPServer
from typing import List, Optional, Tuple

from .. import __version__
from ..config import (
    DEFAULT_SERVICE_DRAIN_TIMEOUT_S,
    DEFAULT_SERVICE_HANDLER_THREADS,
    DEFAULT_SERVICE_QUEUE_DEPTH,
    DEFAULT_SERVICE_RETRY_AFTER_S,
)
from ..errors import ReproError, ServiceError
from ..exec import shutdown_executors
from .protocol import PROTOCOL_VERSION, overload_body
from .state import ServiceState

__all__ = ["AnalysisServer", "OverloadStats", "start_server", "serve"]

#: Queue-wait samples kept for the /stats overload percentiles.
_QUEUE_WAIT_WINDOW = 8192

#: Pool-thread stop marker (placed on the work queue *behind* every
#: admitted request, so draining never drops accepted work).
_SENTINEL = object()


def _quantile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty sorted sample."""
    idx = min(
        len(sorted_values) - 1,
        max(0, int(round(q * (len(sorted_values) - 1)))),
    )
    return sorted_values[idx]


class OverloadStats:
    """Admission accounting for one server: accepted / rejected /
    completed tallies, the in-flight gauge, and a bounded window of
    queue-wait samples.  Thread-safe; mutated from the accept loop and
    every pool thread."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.in_flight = 0
        self._waits: deque = deque(maxlen=_QUEUE_WAIT_WINDOW)

    def record_accepted(self) -> None:
        with self._lock:
            self.accepted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_started(self, queue_wait_s: float) -> None:
        with self._lock:
            self.in_flight += 1
            self._waits.append(queue_wait_s)

    def record_completed(self) -> None:
        with self._lock:
            self.in_flight -= 1
            self.completed += 1

    def snapshot(self, *, queued: int, queue_limit: int,
                 handler_threads: int) -> dict:
        with self._lock:
            waits = sorted(self._waits)
            out = {
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "in_flight": self.in_flight,
                "queued": queued,
                "queue_limit": queue_limit,
                "handler_threads": handler_threads,
                "queue_wait_p50_ms": 0.0,
                "queue_wait_p99_ms": 0.0,
            }
        if waits:
            out["queue_wait_p50_ms"] = _quantile(waits, 0.50) * 1e3
            out["queue_wait_p99_ms"] = _quantile(waits, 0.99) * 1e3
        return out


class AnalysisServer(HTTPServer):
    """HTTP server with bounded admission over one :class:`ServiceState`.

    ``handler_threads`` fixed pool threads drain a work queue bounded
    at ``queue_depth``; a request arriving with the queue full is
    answered ``503`` + ``Retry-After: retry_after_s`` straight from
    the accept loop (pre-execution by construction — rejected requests
    never touch domain state, which is what makes them safe for any
    client to retry).  ``sock`` lets the multi-worker front hand in an
    already-bound listening socket (``SO_REUSEPORT`` siblings).
    """

    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        state: ServiceState,
        *,
        quiet: bool = True,
        handler_threads: int = DEFAULT_SERVICE_HANDLER_THREADS,
        queue_depth: int = DEFAULT_SERVICE_QUEUE_DEPTH,
        retry_after_s: float = DEFAULT_SERVICE_RETRY_AFTER_S,
        sock: Optional[socket.socket] = None,
    ) -> None:
        if handler_threads < 1:
            raise ServiceError(
                f"handler_threads must be >= 1, got {handler_threads}"
            )
        if queue_depth < 1:
            raise ServiceError(
                f"queue_depth must be >= 1, got {queue_depth}"
            )
        self.state = state
        self.quiet = quiet
        self.handler_threads = int(handler_threads)
        self.queue_depth = int(queue_depth)
        self.retry_after_s = float(retry_after_s)
        self.overload = OverloadStats()
        self._work: "queue.Queue" = queue.Queue(maxsize=self.queue_depth)
        self._drain_lock = threading.Lock()
        self._drained = False
        self._drain_clean = True
        self._serving = False
        # Created empty BEFORE the bind: a bind failure inside
        # super().__init__ triggers socketserver's server_close(),
        # which runs our drain() — it must find a (empty) pool, not
        # an AttributeError shadowing the real OSError.
        self._pool: List[threading.Thread] = []
        if sock is None:
            super().__init__(address, _Handler)
        else:
            # Adopt a pre-bound, already-listening socket (the
            # pre-fork front binds per worker with SO_REUSEPORT).
            super().__init__(address, _Handler, bind_and_activate=False)
            self.socket.close()
            self.socket = sock
            host = self.socket.getsockname()
            self.server_address = host
            self.server_name = socket.getfqdn(host[0])
            self.server_port = host[1]
        # Pool threads are daemonic so a wedged handler can never pin
        # process exit past the drain deadline; the graceful path
        # joins them explicitly before the final flush.
        self._pool = [
            threading.Thread(
                target=self._handler_loop,
                name=f"svc-handler-{i}",
                daemon=True,
            )
            for i in range(self.handler_threads)
        ]  # populated only once the socket is live (see above)
        for t in self._pool:
            t.start()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # ------------------------------------------------------------------
    # Admission (runs on the accept-loop thread)
    # ------------------------------------------------------------------
    def process_request(self, request, client_address) -> None:
        try:
            self._work.put_nowait(
                (request, client_address, time.perf_counter())
            )
        except queue.Full:
            self._reject_overloaded(request)
        else:
            self.overload.record_accepted()

    def _reject_overloaded(self, request) -> None:
        """Immediate 503 + Retry-After, written straight to the socket
        without *parsing* the request (bytes are drained and discarded,
        so nothing about the request can influence the answer)."""
        self.overload.record_rejected()
        body = json.dumps(overload_body(self.retry_after_s)).encode("utf-8")
        head = (
            "HTTP/1.1 503 Service Unavailable\r\n"
            f"Retry-After: {self.retry_after_s:g}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        try:
            # Drain what the client already sent before answering:
            # closing a socket with unread received bytes turns into a
            # RST that can destroy the 503 before the client reads it.
            # Bounded so a drip-feeding client cannot pin the accept
            # loop; requests here are a few hundred bytes, one pass.
            request.settimeout(0.1)
            while True:
                chunk = request.recv(65536)
                if not chunk or len(chunk) < 65536:
                    break
        except OSError:
            pass
        try:
            request.settimeout(1.0)
            request.sendall(head + body)
        except OSError:  # pragma: no cover - client already gone
            pass
        finally:
            self.shutdown_request(request)

    # ------------------------------------------------------------------
    # Handler pool
    # ------------------------------------------------------------------
    def _handler_loop(self) -> None:
        while True:
            item = self._work.get()
            if item is _SENTINEL:
                return
            request, client_address, enqueued = item
            self.overload.record_started(time.perf_counter() - enqueued)
            try:
                self.finish_request(request, client_address)
            except Exception:
                self.handle_error(request, client_address)
            finally:
                self.shutdown_request(request)
                self.overload.record_completed()

    def handle_error(self, request, client_address):  # pragma: no cover
        if not self.quiet:
            super().handle_error(request, client_address)

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    # ------------------------------------------------------------------
    # Graceful drain
    # ------------------------------------------------------------------
    def drain(
        self, timeout_s: float = DEFAULT_SERVICE_DRAIN_TIMEOUT_S
    ) -> bool:
        """Stop accepting, finish everything admitted, stop the pool.

        Every queued request is handled before the pool threads see
        their stop sentinels (FIFO order), and in-flight handlers are
        *joined* — with ``timeout_s`` as the deadline — so a response
        mid-write is never truncated by the final flush or process
        exit.  Idempotent; concurrent callers serialize and the late
        ones return the first drain's verdict.  Returns True when
        every pool thread exited within the deadline.
        """
        with self._drain_lock:
            if self._drained:
                return self._drain_clean
            if self._serving:
                self.shutdown()  # blocks until serve_forever returns
            # Sentinels queue FIFO behind all admitted work; a full
            # queue just makes the puts wait for handler progress.
            for _ in self._pool:
                self._work.put(_SENTINEL)
            deadline = time.monotonic() + float(timeout_s)
            clean = True
            for t in self._pool:
                t.join(max(0.0, deadline - time.monotonic()))
                clean = clean and not t.is_alive()
            self._drained = True
            self._drain_clean = clean
            return clean

    def server_close(self) -> None:
        # Closing without an explicit drain (unit-test fixtures) still
        # stops the pool; anything already admitted is finished first.
        self.drain()
        super().server_close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def overload_snapshot(self) -> dict:
        return self.overload.snapshot(
            queued=self._work.qsize(),
            queue_limit=self.queue_depth,
            handler_threads=self.handler_threads,
        )


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-ssta-service/{__version__}"
    protocol_version = "HTTP/1.1"
    #: With a fixed pool, an idle keep-alive connection is thread
    #: starvation; bound how long one may hold a handler.
    timeout = 30.0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, fmt, *args):  # pragma: no cover - log noise
        if not getattr(self.server, "quiet", True):
            super().log_message(fmt, *args)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        body = self.rfile.read(length)
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        state: ServiceState = self.server.state
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        t0 = time.perf_counter()
        # The latency sample must be recorded *before* the reply bytes
        # leave: a client that receives its response and immediately
        # asks /stats must observe the request it just made (the
        # stats-reports-latency contract).  Handling therefore splits
        # into compute (timed) and send (after the record).
        try:
            handler = _ROUTES.get((method, path))
            if handler is None:
                reply = (
                    {"error": f"no such endpoint: {method} {path}"}, 404
                )
            else:
                payload = self._read_json() if method == "POST" else {}
                reply = (handler(self, state, payload), 200)
        except ServiceError as exc:
            reply = ({"error": str(exc)}, 400)
        except ReproError as exc:
            # A domain error (bad netlist, sizing failure): the
            # request was understood but the analysis failed.
            reply = ({"error": f"{type(exc).__name__}: {exc}"}, 422)
        except Exception as exc:  # pragma: no cover - defensive
            reply = (
                {"error": f"internal error: {type(exc).__name__}: {exc}"},
                500,
            )
        state.record_latency(f"{method} {path}",
                             time.perf_counter() - t0)
        body, status = reply
        self._send_json(body, status=status)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


# ----------------------------------------------------------------------
# Routes (thin adapters; the domain logic lives in ServiceState)
# ----------------------------------------------------------------------

def _route_health(handler, state: ServiceState, payload: dict) -> dict:
    return {
        "status": "ok",
        "version": __version__,
        "protocol": PROTOCOL_VERSION,
    }


def _route_stats(handler, state: ServiceState, payload: dict) -> dict:
    out = state.stats()
    out["overload"] = handler.server.overload_snapshot()
    return out


def _route_session_open(handler, state, payload: dict) -> dict:
    return {"session": state.open_session(payload.get("config"))}


def _route_session_close(handler, state, payload: dict) -> dict:
    session = payload.get("session")
    if not session:
        raise ServiceError("'session' is required")
    return {"closed": session, "summary": state.close_session(session)}


def _require_circuit(payload: dict) -> str:
    circuit = payload.get("circuit")
    if not isinstance(circuit, str) or not circuit:
        raise ServiceError("'circuit' (a benchmark name) is required")
    return circuit


def _route_analyze(handler, state: ServiceState, payload: dict) -> dict:
    kwargs = {}
    if payload.get("percentiles") is not None:
        kwargs["percentiles"] = payload["percentiles"]
    return state.analyze(
        _require_circuit(payload),
        scale=payload.get("scale", 1.0),
        session_id=payload.get("session"),
        config_overrides=payload.get("config"),
        **kwargs,
    )


def _route_optimize(handler, state: ServiceState, payload: dict) -> dict:
    return state.optimize(
        _require_circuit(payload),
        iterations=payload.get("iterations", 25),
        scale=payload.get("scale", 1.0),
        sizer=payload.get("sizer", "pruned"),
        session_id=payload.get("session"),
        config_overrides=payload.get("config"),
    )


def _route_yield(handler, state: ServiceState, payload: dict) -> dict:
    return state.yield_query(
        _require_circuit(payload),
        scale=payload.get("scale", 1.0),
        target=payload.get("target"),
        n_points=payload.get("n_points", 12),
        session_id=payload.get("session"),
        config_overrides=payload.get("config"),
    )


def _route_flush(handler, state: ServiceState, payload: dict) -> dict:
    return {"entries_saved": state.flush(), "file": state.cache_file}


def _route_shutdown(handler, state: ServiceState, payload: dict) -> dict:
    server: AnalysisServer = handler.server
    # drain() joins the pool thread running this very handler, so it
    # must run off-thread; the response goes out first either way
    # (this handler finishes before its thread consumes a sentinel).
    threading.Thread(target=server.drain, daemon=True).start()
    return {"shutting_down": True, "entries_saved": state.flush()}


_ROUTES = {
    ("GET", "/health"): _route_health,
    ("GET", "/stats"): _route_stats,
    ("POST", "/session"): _route_session_open,
    ("POST", "/session/close"): _route_session_close,
    ("POST", "/analyze"): _route_analyze,
    ("POST", "/optimize"): _route_optimize,
    ("POST", "/yield"): _route_yield,
    ("POST", "/flush"): _route_flush,
    ("POST", "/shutdown"): _route_shutdown,
}


# ----------------------------------------------------------------------
# Lifecycle helpers
# ----------------------------------------------------------------------

def start_server(
    state: ServiceState,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
    handler_threads: int = DEFAULT_SERVICE_HANDLER_THREADS,
    queue_depth: int = DEFAULT_SERVICE_QUEUE_DEPTH,
    retry_after_s: float = DEFAULT_SERVICE_RETRY_AFTER_S,
    sock: Optional[socket.socket] = None,
) -> AnalysisServer:
    """Bind an :class:`AnalysisServer` (port 0 picks a free port).
    The caller drives ``serve_forever`` — tests and the benchmark run
    it on a background thread; the CLI runs it in the main thread."""
    return AnalysisServer(
        (host, port),
        state,
        quiet=quiet,
        handler_threads=handler_threads,
        queue_depth=queue_depth,
        retry_after_s=retry_after_s,
        sock=sock,
    )


class _PeriodicFlusher(threading.Thread):
    """Background snapshot writer: flush every ``interval_s`` seconds
    until stopped (the final flush at shutdown is the server's).  Both
    paths serialize through ``ServiceState.flush``'s one flush lock,
    and each save writes through a per-writer temp file, so a periodic
    flush racing the drain flush can never corrupt the snapshot."""

    def __init__(self, state: ServiceState, interval_s: float) -> None:
        super().__init__(name="cache-flusher", daemon=True)
        self.state = state
        self.interval_s = interval_s
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.state.flush()
            except Exception:  # pragma: no cover - disk-full etc.
                # A failed periodic flush must not kill the server;
                # the exit flush will retry (and surface) the error.
                pass

    def stop(self) -> None:
        self._stop.set()


def serve(
    state: ServiceState,
    host: str = "127.0.0.1",
    port: int = 8731,
    *,
    flush_interval_s: Optional[float] = 300.0,
    quiet: bool = True,
    ready_callback=None,
    handler_threads: int = DEFAULT_SERVICE_HANDLER_THREADS,
    queue_depth: int = DEFAULT_SERVICE_QUEUE_DEPTH,
    retry_after_s: float = DEFAULT_SERVICE_RETRY_AFTER_S,
    drain_timeout_s: float = DEFAULT_SERVICE_DRAIN_TIMEOUT_S,
    server: Optional[AnalysisServer] = None,
) -> int:
    """Run the service until SIGTERM/SIGINT, with snapshot lifecycle.

    Blocks in ``serve_forever``.  On signal: stop accepting work, let
    in-flight requests finish (joined under ``drain_timeout_s``),
    flush the snapshot, return 0.  ``ready_callback(server)`` fires
    after binding (the CLI prints the resolved URL there, which is how
    ``--port 0`` callers learn the port).  ``server`` accepts a
    pre-built :class:`AnalysisServer` (the multi-worker front passes
    one wrapping its SO_REUSEPORT socket).
    """
    if server is None:
        server = start_server(
            state, host, port, quiet=quiet,
            handler_threads=handler_threads, queue_depth=queue_depth,
            retry_after_s=retry_after_s,
        )
    flusher = None
    if state.cache_file is not None and flush_interval_s:
        flusher = _PeriodicFlusher(state, float(flush_interval_s))
        flusher.start()
    # The exit flush runs however the process ends; flush() is
    # idempotent and internally serialized.
    atexit.register(state.flush)

    def _drain(signum, frame):  # pragma: no cover - signal timing
        threading.Thread(
            target=server.drain, args=(drain_timeout_s,), daemon=True
        ).start()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _drain)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        if ready_callback is not None:
            ready_callback(server)
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:  # pragma: no cover - ^C without handler
        pass
    finally:
        for sig, old in previous.items():
            try:
                signal.signal(sig, old)
            except ValueError:  # pragma: no cover
                pass
        if flusher is not None:
            flusher.stop()
        # Wait for the in-flight handlers (idempotent when the signal
        # thread already drained): no response may be cut off by the
        # flush or the process exit below.
        server.drain(drain_timeout_s)
        server.server_close()
        state.flush()
        # Arena lifecycle hook: analyses served with jobs > 1 hold
        # worker pools and shared-memory operand arenas through the
        # executor registry; the drain is the last moment the service
        # can guarantee every named segment is unlinked (atexit would
        # also sweep them, but a long-lived embedding process should
        # not keep dead segments resident until interpreter exit).
        shutdown_executors()
    return 0
