"""JSON-over-HTTP front of the analysis service.

A deliberately thin, dependency-light request layer (stdlib
:class:`~http.server.ThreadingHTTPServer`) over the long-lived shared
domain state in :class:`~repro.service.state.ServiceState` — the
Kalmukov conference-management-system shape: requests are cheap
adapters, all interesting state lives one layer down and survives
across requests.

Endpoints (all bodies JSON):

=======  =================  ==============================================
Method   Path               Action
=======  =================  ==============================================
GET      /health            liveness + versions
GET      /stats             cache/session/latency aggregates
POST     /session           open a session ``{"config": {...}}`` -> id
POST     /session/close     close ``{"session": id}``
POST     /analyze           SSTA+STA ``{"circuit", "scale", ...}``
POST     /optimize          sizing run ``{"circuit", "iterations", ...}``
POST     /yield             yield queries ``{"circuit", "target", ...}``
POST     /flush             write the cache snapshot now
POST     /shutdown          graceful drain (responds, then stops serving)
=======  =================  ==============================================

Every request's wall-clock is recorded into the state's latency
window (the p50/p99 numbers served by /stats and recorded in
``BENCH_dist.json``'s ``service`` section).

Lifecycle: :func:`serve` wires warm-start (``cache_file``), a periodic
snapshot flusher, ``atexit`` flush, and SIGTERM/SIGINT drain — the
process stops accepting connections, finishes in-flight requests
(daemon handler threads), flushes the snapshot, and exits 0.
"""

from __future__ import annotations

import atexit
import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .. import __version__
from ..errors import ReproError, ServiceError
from ..exec import shutdown_executors
from .protocol import PROTOCOL_VERSION
from .state import ServiceState

__all__ = ["AnalysisServer", "start_server", "serve"]


class AnalysisServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`ServiceState`."""

    #: In-flight requests must never pin the process at shutdown.
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], state: ServiceState,
                 *, quiet: bool = True) -> None:
        self.state = state
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-ssta-service/{__version__}"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, fmt, *args):  # pragma: no cover - log noise
        if not getattr(self.server, "quiet", True):
            super().log_message(fmt, *args)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        body = self.rfile.read(length)
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, method: str) -> None:
        state: ServiceState = self.server.state
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        t0 = time.perf_counter()
        # The latency sample must be recorded *before* the reply bytes
        # leave: a client that receives its response and immediately
        # asks /stats must observe the request it just made (the
        # stats-reports-latency contract).  Handling therefore splits
        # into compute (timed) and send (after the record).
        try:
            handler = _ROUTES.get((method, path))
            if handler is None:
                reply = (
                    {"error": f"no such endpoint: {method} {path}"}, 404
                )
            else:
                payload = self._read_json() if method == "POST" else {}
                reply = (handler(self, state, payload), 200)
        except ServiceError as exc:
            reply = ({"error": str(exc)}, 400)
        except ReproError as exc:
            # A domain error (bad netlist, sizing failure): the
            # request was understood but the analysis failed.
            reply = ({"error": f"{type(exc).__name__}: {exc}"}, 422)
        except Exception as exc:  # pragma: no cover - defensive
            reply = (
                {"error": f"internal error: {type(exc).__name__}: {exc}"},
                500,
            )
        state.record_latency(f"{method} {path}",
                             time.perf_counter() - t0)
        body, status = reply
        self._send_json(body, status=status)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


# ----------------------------------------------------------------------
# Routes (thin adapters; the domain logic lives in ServiceState)
# ----------------------------------------------------------------------

def _route_health(handler, state: ServiceState, payload: dict) -> dict:
    return {
        "status": "ok",
        "version": __version__,
        "protocol": PROTOCOL_VERSION,
    }


def _route_stats(handler, state: ServiceState, payload: dict) -> dict:
    return state.stats()


def _route_session_open(handler, state, payload: dict) -> dict:
    return {"session": state.open_session(payload.get("config"))}


def _route_session_close(handler, state, payload: dict) -> dict:
    session = payload.get("session")
    if not session:
        raise ServiceError("'session' is required")
    return {"closed": session, "summary": state.close_session(session)}


def _require_circuit(payload: dict) -> str:
    circuit = payload.get("circuit")
    if not isinstance(circuit, str) or not circuit:
        raise ServiceError("'circuit' (a benchmark name) is required")
    return circuit


def _route_analyze(handler, state: ServiceState, payload: dict) -> dict:
    kwargs = {}
    if payload.get("percentiles") is not None:
        kwargs["percentiles"] = payload["percentiles"]
    return state.analyze(
        _require_circuit(payload),
        scale=payload.get("scale", 1.0),
        session_id=payload.get("session"),
        config_overrides=payload.get("config"),
        **kwargs,
    )


def _route_optimize(handler, state: ServiceState, payload: dict) -> dict:
    return state.optimize(
        _require_circuit(payload),
        iterations=payload.get("iterations", 25),
        scale=payload.get("scale", 1.0),
        sizer=payload.get("sizer", "pruned"),
        session_id=payload.get("session"),
        config_overrides=payload.get("config"),
    )


def _route_yield(handler, state: ServiceState, payload: dict) -> dict:
    return state.yield_query(
        _require_circuit(payload),
        scale=payload.get("scale", 1.0),
        target=payload.get("target"),
        n_points=payload.get("n_points", 12),
        session_id=payload.get("session"),
        config_overrides=payload.get("config"),
    )


def _route_flush(handler, state: ServiceState, payload: dict) -> dict:
    return {"entries_saved": state.flush(), "file": state.cache_file}


def _route_shutdown(handler, state: ServiceState, payload: dict) -> dict:
    server: AnalysisServer = handler.server
    # shutdown() blocks until serve_forever() returns, so it must run
    # off the handler thread; the response goes out first either way.
    threading.Thread(target=server.shutdown, daemon=True).start()
    return {"shutting_down": True, "entries_saved": state.flush()}


_ROUTES = {
    ("GET", "/health"): _route_health,
    ("GET", "/stats"): _route_stats,
    ("POST", "/session"): _route_session_open,
    ("POST", "/session/close"): _route_session_close,
    ("POST", "/analyze"): _route_analyze,
    ("POST", "/optimize"): _route_optimize,
    ("POST", "/yield"): _route_yield,
    ("POST", "/flush"): _route_flush,
    ("POST", "/shutdown"): _route_shutdown,
}


# ----------------------------------------------------------------------
# Lifecycle helpers
# ----------------------------------------------------------------------

def start_server(
    state: ServiceState,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    quiet: bool = True,
) -> AnalysisServer:
    """Bind an :class:`AnalysisServer` (port 0 picks a free port).
    The caller drives ``serve_forever`` — tests and the benchmark run
    it on a background thread; the CLI runs it in the main thread."""
    return AnalysisServer((host, port), state, quiet=quiet)


class _PeriodicFlusher(threading.Thread):
    """Background snapshot writer: flush every ``interval_s`` seconds
    until stopped (the final flush at shutdown is the server's)."""

    def __init__(self, state: ServiceState, interval_s: float) -> None:
        super().__init__(name="cache-flusher", daemon=True)
        self.state = state
        self.interval_s = interval_s
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.state.flush()
            except Exception:  # pragma: no cover - disk-full etc.
                # A failed periodic flush must not kill the server;
                # the exit flush will retry (and surface) the error.
                pass

    def stop(self) -> None:
        self._stop.set()


def serve(
    state: ServiceState,
    host: str = "127.0.0.1",
    port: int = 8731,
    *,
    flush_interval_s: Optional[float] = 300.0,
    quiet: bool = True,
    ready_callback=None,
) -> int:
    """Run the service until SIGTERM/SIGINT, with snapshot lifecycle.

    Blocks in ``serve_forever``.  On signal: stop accepting work, let
    in-flight requests finish, flush the snapshot, return 0.
    ``ready_callback(server)`` fires after binding (the CLI prints the
    resolved URL there, which is how ``--port 0`` callers learn the
    port).
    """
    server = start_server(state, host, port, quiet=quiet)
    flusher = None
    if state.cache_file is not None and flush_interval_s:
        flusher = _PeriodicFlusher(state, float(flush_interval_s))
        flusher.start()
    # The exit flush runs however the process ends; flush() is
    # idempotent and internally serialized.
    atexit.register(state.flush)

    def _drain(signum, frame):  # pragma: no cover - signal timing
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _drain)
        except ValueError:  # pragma: no cover - non-main thread
            pass
    try:
        if ready_callback is not None:
            ready_callback(server)
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:  # pragma: no cover - ^C without handler
        pass
    finally:
        for sig, old in previous.items():
            try:
                signal.signal(sig, old)
            except ValueError:  # pragma: no cover
                pass
        if flusher is not None:
            flusher.stop()
        server.server_close()
        state.flush()
        # Arena lifecycle hook: analyses served with jobs > 1 hold
        # worker pools and shared-memory operand arenas through the
        # executor registry; the drain is the last moment the service
        # can guarantee every named segment is unlinked (atexit would
        # also sweep them, but a long-lived embedding process should
        # not keep dead segments resident until interpreter exit).
        shutdown_executors()
    return 0
